// netbatchd — serve the placement engine over unix-domain and TCP sockets.
//
// The daemon owns a cluster (any scenario preset or calibrated workload
// preset sizes it) and the same scheduler/policy decision stack the
// simulator drives; clients submit jobs, report completions, suspend,
// resume, kill, and query over the binary protocol in service/protocol.h.
// With --threads=N the pools are interleaved across N event-loop shards,
// each running its own single-threaded SchedulerCore; requests hop shards
// over lock-free mailboxes when their target lives elsewhere.
//
// Examples:
//   # Serve the normal-scenario cluster with the paper's default stack:
//   netbatchd --socket=/tmp/nb.sock
//
//   # Four shards, plus a TCP listener on port 7331:
//   netbatchd --socket=/tmp/nb.sock --threads=4 --tcp=7331
//
//   # Utilization scheduling + DupSusUtil at 1000x real time:
//   netbatchd --socket=/tmp/nb.sock --scheduler=util --policy=DupSusUtil
//             --time-scale=1000
//
// SIGINT/SIGTERM drain cleanly: sessions close, the socket file unlinks.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include "common/check.h"
#include "common/flags.h"
#include "netbatch.h"

using namespace netbatch;

namespace {

constexpr const char* kUsage = R"(netbatchd — NetBatchSim placement daemon

  --socket=<path>              unix socket to serve on
  --tcp=<port>                 also listen on TCP (0 = kernel-chosen port);
                               at least one of --socket/--tcp is required
  --threads=<n>                event-loop shards; pools are interleaved
                               across shards, capped at the pool count
                               (default 1)
  --scenario=<name|preset.ini> cluster sizing: normal | high | highsusp |
                               year | bigpool, or a workload preset file
                               (default normal)
  --scale=<0..1>               cluster scale (default 0.25)
  --seed=<n>                   scenario/policy seed (default 42); shard s
                               mixes s into its policy seed so shard RNG
                               streams stay independent
  --scheduler=<rr|util>        initial scheduler (default rr)
  --staleness=<min>            util-scheduler snapshot staleness (default 0)
  --policy=<name>              NoRes | ResSusUtil | ResSusRand |
                               ResSusWaitUtil | ResSusWaitRand | DupSusUtil
                               (default ResSusUtil)
  --threshold=<min>            Wait-policy threshold (default 30)
  --time-scale=<n>             simulated seconds per wall second: job
                               runtimes and wait timeouts replay n x real
                               time (default 1000)
  --auto-complete=<bool>       daemon completes jobs after their runtime;
                               false leaves completion to clients
                               (default true)
  --data-dir=<path>            durability root: shard s write-ahead-logs and
                               checkpoints under <path>/shard-<s> and
                               recovers from it on start (default off —
                               in-memory only)
  --fsync-every=<n>            fdatasync after n unsynced WAL records:
                               1 = sync every ack batch, 0 = record
                               trigger off (default 0; SIGKILL durability
                               never depends on fsync)
  --fsync-interval-ms=<n>      fdatasync when n ms have passed since the
                               last sync; 0 = time trigger off (default
                               250 — bounds the power-loss window)
  --checkpoint-every=<sec>     write a checkpoint every n wall-clock
                               seconds; 0 = only on kCheckpoint/kDrain
                               requests (default 0)
)";

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  service::DaemonOptions options;
  options.socket_path = flags.GetString("socket", "");
  const int tcp_port = flags.GetInt("tcp", -1);
  if (tcp_port >= 0) {
    NETBATCH_CHECK(tcp_port < 65536, "--tcp port out of range");
    options.tcp = true;
    options.tcp_port = static_cast<std::uint16_t>(tcp_port);
  }
  NETBATCH_CHECK(!options.socket_path.empty() || options.tcp,
                 "--socket or --tcp is required");
  const int threads = flags.GetInt("threads", 1);
  NETBATCH_CHECK(threads > 0, "--threads must be positive");
  options.threads = static_cast<std::uint32_t>(threads);
  options.time_scale = flags.GetInt("time-scale", 1000);
  options.auto_complete = flags.GetBool("auto-complete", true);
  options.data_dir = flags.GetString("data-dir", "");
  const int fsync_every = flags.GetInt("fsync-every", 0);
  NETBATCH_CHECK(fsync_every >= 0, "--fsync-every must be >= 0");
  options.fsync_every = static_cast<std::uint32_t>(fsync_every);
  const int fsync_interval = flags.GetInt("fsync-interval-ms", 250);
  NETBATCH_CHECK(fsync_interval >= 0, "--fsync-interval-ms must be >= 0");
  options.fsync_interval_ms = static_cast<std::uint32_t>(fsync_interval);
  const int checkpoint_every = flags.GetInt("checkpoint-every", 0);
  NETBATCH_CHECK(checkpoint_every >= 0, "--checkpoint-every must be >= 0");
  // Wall seconds -> ticks: the loop clock runs time_scale ticks per second.
  options.checkpoint_every_ticks = checkpoint_every * options.time_scale;

  const double scale = flags.GetDouble("scale", 0.25);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const runner::Scenario scenario = runner::ResolveScenario(
      flags.GetString("scenario", "normal"), scale, seed);

  const auto scheduler_kind = runner::ParseInitialSchedulerKind(
      flags.GetString("scheduler", "rr"));
  NETBATCH_CHECK(scheduler_kind.has_value(), "--scheduler must be rr or util");
  const Ticks staleness = MinutesToTicks(flags.GetInt("staleness", 0));

  const std::string policy_name = flags.GetString("policy", "ResSusUtil");
  core::PolicyOptions policy_options;
  policy_options.wait_threshold =
      MinutesToTicks(flags.GetInt("threshold", 30));
  std::optional<core::PolicyKind> policy_kind;
  if (policy_name != "DupSusUtil") {
    policy_kind = core::ParsePolicyKind(policy_name);
    NETBATCH_CHECK(policy_kind.has_value(), "unknown --policy (see --help)");
  }

  const auto unused = flags.UnusedFlags();
  NETBATCH_CHECK(unused.empty(),
                 "unknown flag --" + (unused.empty() ? "" : unused.front()) +
                     " (see --help)");

  // Each shard gets its own scheduler/policy instances (policies carry RNG
  // state). Per-shard seeds are derived by mixing the shard index so shard 0
  // of a single-shard daemon reproduces the original stream exactly.
  service::ShardStackFactory factory =
      [&](std::uint32_t shard) -> service::ShardStack {
    service::ShardStack stack;
    if (*scheduler_kind == runner::InitialSchedulerKind::kRoundRobin) {
      stack.scheduler = std::make_unique<sched::RoundRobinScheduler>();
    } else {
      stack.scheduler = std::make_unique<sched::UtilizationScheduler>(staleness);
    }
    core::PolicyOptions shard_policy = policy_options;
    shard_policy.seed =
        shard == 0 ? seed : seed ^ (0x9e3779b97f4a7c15ull * (shard + 1));
    if (policy_name == "DupSusUtil") {
      stack.policy = core::MakeDuplicationPolicy(shard_policy);
    } else {
      stack.policy = core::MakePolicy(*policy_kind, shard_policy);
    }
    return stack;
  };

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  service::Daemon daemon(scenario.cluster, factory, options);
  std::printf(
      "netbatchd: %zu pools, %lld cores, %s/%s, %lldx real time, "
      "%u shard(s), %s%s%s\n",
      scenario.cluster.pools.size(),
      static_cast<long long>(scenario.cluster.TotalCores()),
      flags.GetString("scheduler", "rr").c_str(), policy_name.c_str(),
      static_cast<long long>(options.time_scale), daemon.shard_count(),
      options.socket_path.empty() ? "(no unix)" : options.socket_path.c_str(),
      options.tcp ? " tcp:" : "",
      options.tcp ? std::to_string(daemon.tcp_port()).c_str() : "");
  // Scripts scrape the banner for the kernel-chosen --tcp=0 port; don't
  // leave it sitting in a block buffer when stdout is redirected.
  std::fflush(stdout);
  daemon.Run(g_stop);

  const LatencyHistogram& latency = daemon.placement_latency();
  if (latency.count() > 0) {
    std::printf(
        "placement latency: %llu placements, p50 %.1fus, p99 %.1fus, "
        "p999 %.1fus\n",
        static_cast<unsigned long long>(latency.count()),
        static_cast<double>(latency.Quantile(0.50)) / 1e3,
        static_cast<double>(latency.Quantile(0.99)) / 1e3,
        static_cast<double>(latency.Quantile(0.999)) / 1e3);
  }
  return 0;
}

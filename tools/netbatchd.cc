// netbatchd — serve the placement engine over a unix-domain socket.
//
// The daemon owns a cluster (any scenario preset or calibrated workload
// preset sizes it) and the same scheduler/policy decision stack the
// simulator drives; clients submit jobs, report completions, suspend,
// resume, and query over the binary protocol in service/protocol.h.
//
// Examples:
//   # Serve the normal-scenario cluster with the paper's default stack:
//   netbatchd --socket=/tmp/nb.sock
//
//   # Utilization scheduling + DupSusUtil at 1000x real time:
//   netbatchd --socket=/tmp/nb.sock --scheduler=util --policy=DupSusUtil
//             --time-scale=1000
//
// SIGINT/SIGTERM drain cleanly: sessions close, the socket file unlinks.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include "common/check.h"
#include "common/flags.h"
#include "netbatch.h"

using namespace netbatch;

namespace {

constexpr const char* kUsage = R"(netbatchd — NetBatchSim placement daemon

  --socket=<path>              unix socket to serve on (required)
  --scenario=<name|preset.ini> cluster sizing: normal | high | highsusp |
                               year | bigpool, or a workload preset file
                               (default normal)
  --scale=<0..1>               cluster scale (default 0.25)
  --seed=<n>                   scenario/policy seed (default 42)
  --scheduler=<rr|util>        initial scheduler (default rr)
  --staleness=<min>            util-scheduler snapshot staleness (default 0)
  --policy=<name>              NoRes | ResSusUtil | ResSusRand |
                               ResSusWaitUtil | ResSusWaitRand | DupSusUtil
                               (default ResSusUtil)
  --threshold=<min>            Wait-policy threshold (default 30)
  --time-scale=<n>             simulated seconds per wall second: job
                               runtimes and wait timeouts replay n x real
                               time (default 1000)
  --auto-complete=<bool>       daemon completes jobs after their runtime;
                               false leaves completion to clients
                               (default true)
)";

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  const std::string socket_path = flags.GetString("socket", "");
  NETBATCH_CHECK(!socket_path.empty(), "--socket is required");

  const double scale = flags.GetDouble("scale", 0.25);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const runner::Scenario scenario = runner::ResolveScenario(
      flags.GetString("scenario", "normal"), scale, seed);

  std::unique_ptr<cluster::InitialScheduler> scheduler;
  {
    const auto kind = runner::ParseInitialSchedulerKind(
        flags.GetString("scheduler", "rr"));
    NETBATCH_CHECK(kind.has_value(), "--scheduler must be rr or util");
    if (*kind == runner::InitialSchedulerKind::kRoundRobin) {
      scheduler = std::make_unique<sched::RoundRobinScheduler>();
    } else {
      scheduler = std::make_unique<sched::UtilizationScheduler>(
          MinutesToTicks(flags.GetInt("staleness", 0)));
    }
  }

  const std::string policy_name = flags.GetString("policy", "ResSusUtil");
  core::PolicyOptions policy_options;
  policy_options.wait_threshold =
      MinutesToTicks(flags.GetInt("threshold", 30));
  policy_options.seed = seed;
  std::unique_ptr<cluster::ReschedulingPolicy> policy;
  if (policy_name == "DupSusUtil") {
    policy = core::MakeDuplicationPolicy(policy_options);
  } else {
    const auto kind = core::ParsePolicyKind(policy_name);
    NETBATCH_CHECK(kind.has_value(), "unknown --policy (see --help)");
    policy = core::MakePolicy(*kind, policy_options);
  }

  service::DaemonOptions options;
  options.socket_path = socket_path;
  options.time_scale = flags.GetInt("time-scale", 1000);
  options.auto_complete = flags.GetBool("auto-complete", true);

  const auto unused = flags.UnusedFlags();
  NETBATCH_CHECK(unused.empty(),
                 "unknown flag --" + (unused.empty() ? "" : unused.front()) +
                     " (see --help)");

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  service::Daemon daemon(scenario.cluster, *scheduler, *policy, options);
  std::printf("netbatchd: %zu pools, %lld cores, %s/%s, %lldx real time, %s\n",
              scenario.cluster.pools.size(),
              static_cast<long long>(scenario.cluster.TotalCores()),
              flags.GetString("scheduler", "rr").c_str(), policy_name.c_str(),
              static_cast<long long>(options.time_scale),
              socket_path.c_str());
  daemon.Run(g_stop);

  const LatencyHistogram& latency = daemon.placement_latency();
  if (latency.count() > 0) {
    std::printf(
        "placement latency: %llu placements, p50 %.1fus, p99 %.1fus, "
        "p999 %.1fus\n",
        static_cast<unsigned long long>(latency.count()),
        static_cast<double>(latency.Quantile(0.50)) / 1e3,
        static_cast<double>(latency.Quantile(0.99)) / 1e3,
        static_cast<double>(latency.Quantile(0.999)) / 1e3);
  }
  return 0;
}

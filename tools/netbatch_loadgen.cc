// netbatch_loadgen — replay a workload against a running netbatchd.
//
// Opens N concurrent sessions (unix-domain or TCP), shards the trace across
// them, and submits each job over the binary protocol — either paced
// against the trace's submit times (--speed=100 replays at 100x real time)
// or as fast as the daemon will take them (--speed=0, pipelining up to
// --window requests per session). Responses are matched to requests by
// request_id — a sharded daemon reorders responses when a submit hops to
// another event-loop shard. Reports client-observed submit round-trip
// latency (p50 / p99 / p999 via the log-bucketed LatencyHistogram,
// losslessly merged across sessions) plus the daemon's own
// admission-to-placement histogram from its stats endpoint.
//
// --drill runs a live outage during the replay: a side session fails a
// machine (kFailMachine), holds the outage, then repairs it
// (kRepairMachine) — the serving twin of the simulator's failure injection.
//
// Examples:
//   # Replay the normal workload at 1000x from 4 sessions:
//   netbatch_loadgen --socket=/tmp/nb.sock --scenario=normal --speed=1000
//       --sessions=4
//
//   # Throughput firehose for BENCH_serve against a 4-shard daemon:
//   netbatch_loadgen --tcp=127.0.0.1:7077 --scenario=bigpool --speed=0
//       --sessions=8 --window=64 --json-out=bench.json
//
//   # Replay with a 2-second outage of machine 3 in pool 1:
//   netbatch_loadgen --socket=/tmp/nb.sock --drill=1:3:2000
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "net/socket.h"
#include "netbatch.h"

using namespace netbatch;

namespace {

constexpr const char* kUsage = R"(netbatch_loadgen — netbatchd load generator

  --socket=<path>              daemon unix socket (this or --tcp required)
  --tcp=<host:port>            connect over TCP instead of the unix socket
  --drill=<pool>:<machine>:<hold_ms>
                               run a live outage drill during the replay:
                               fail the machine, hold, then repair it
  --scenario=<name|preset.ini> workload to replay: scenario preset name or
                               a calibrated workload preset file
                               (default normal); must match the cluster
                               netbatchd was started with
  --trace-in=<file.csv>        replay a saved trace instead of generating
  --scale=<0..1>               workload scale (default 0.25)
  --seed=<n>                   workload seed (default 42)
  --jobs=<n>                   cap the number of jobs submitted (default
                               all)
  --sessions=<n>               concurrent client sessions (default 4)
  --speed=<n>                  replay speed vs. the trace's submit times:
                               1 = real time, 1000 = 1000x; 0 = submit as
                               fast as possible (default 1000)
  --window=<n>                 max in-flight requests per session when
                               --speed=0 (default 64)
  --json-out=<file>            write a machine-readable result summary
  --acked-out=<file>           crash-drill mode: append every acked submit's
                               request_id (one per line, flushed per ack)
                               and tolerate the daemon dying mid-run — the
                               file is the acked prefix a restarted daemon
                               must still know
  --verify-acked=<file>        query-only mode: read request_ids from the
                               file, kQueryJob each against the daemon, and
                               exit nonzero if any is unknown or listed
                               twice (no jobs are submitted)
)";

std::uint64_t WallNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Returns false when the peer is gone (crash-drill sessions tolerate that;
// everything else treats it as fatal).
bool SendAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// Serialized sink for --acked-out: one decimal request_id per line, flushed
// before the ack is counted, so the file never claims an ack that was not
// fully received.
struct AckedLog {
  std::mutex mu;
  std::ofstream out;
};

// Per-session tallies, merged after the workers join.
struct SessionResult {
  LatencyHistogram rtt;  // submit round-trip, nanoseconds
  std::uint64_t ok = 0;
  std::uint64_t queued = 0;
  std::uint64_t rejected = 0;
  std::uint64_t other = 0;
};

struct LoadConfig {
  std::string socket_path;  // empty when connecting over TCP
  std::string tcp_host;
  std::uint16_t tcp_port = 0;
  double speed = 1000;   // 0 = unthrottled
  std::size_t window = 64;
  // Crash-drill hooks (--acked-out): record acks, survive the daemon dying.
  AckedLog* acked_log = nullptr;
  bool tolerate_close = false;
};

int Connect(const LoadConfig& config) {
  if (!config.tcp_host.empty()) {
    return net::ConnectTcp(config.tcp_host, config.tcp_port);
  }
  return net::ConnectUnix(config.socket_path);
}

void CountStatus(service::Status status, SessionResult& result) {
  switch (status) {
    case service::Status::kOk:
      ++result.ok;
      break;
    case service::Status::kQueued:
      ++result.queued;
      break;
    case service::Status::kRejected:
      ++result.rejected;
      break;
    default:
      ++result.other;
      break;
  }
}

// One session: submit every job in `shard` in order, tracking round-trip
// latency per request. Responses are matched by request_id — a sharded
// daemon answers cross-shard submits out of order relative to shard-local
// ones, so arrival order carries no meaning.
void RunSession(const LoadConfig& config,
                const std::vector<const workload::JobSpec*>& shard,
                std::uint64_t origin_ns, SessionResult& result) {
  const int fd = Connect(config);
  NETBATCH_CHECK(fd >= 0, "cannot connect to netbatchd");

  service::FrameDecoder decoder;
  std::vector<service::Frame> frames;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> frame_buf;
  std::uint8_t read_buf[1 << 16];
  // request_id -> send time for every in-flight submit.
  std::unordered_map<std::uint64_t, std::uint64_t> in_flight;
  const std::size_t window = config.speed > 0 ? 1 : config.window;

  std::size_t next = 0;
  std::size_t received = 0;
  while (received < shard.size()) {
    // Fill the window, pacing against the trace clock when throttled.
    while (next < shard.size() && in_flight.size() < window) {
      const workload::JobSpec& spec = *shard[next];
      if (config.speed > 0) {
        const auto due_ns = static_cast<std::uint64_t>(
            static_cast<double>(spec.submit_time) * 1e9 / config.speed);
        while (WallNanos() - origin_ns < due_ns) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
      payload.clear();
      service::EncodeJobSpec(spec, payload);
      frame_buf.clear();
      service::EncodeFrame(
          static_cast<std::uint16_t>(service::Opcode::kSubmit),
          /*request_id=*/spec.id.value(), payload, frame_buf);
      in_flight.emplace(spec.id.value(), WallNanos());
      if (!SendAll(fd, frame_buf.data(), frame_buf.size())) {
        NETBATCH_CHECK(config.tolerate_close,
                       "send to netbatchd failed mid-run");
        ::close(fd);
        return;  // crash drill: the acked prefix is already on disk
      }
      ++next;
    }

    // Drain at least one response.
    const ssize_t n = ::recv(fd, read_buf, sizeof(read_buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      NETBATCH_CHECK(config.tolerate_close,
                     "netbatchd closed the session mid-run");
      ::close(fd);
      return;
    }
    NETBATCH_CHECK(
        decoder.Feed(read_buf, static_cast<std::size_t>(n), frames),
        "protocol error from netbatchd: " + decoder.error());
    const std::uint64_t now_ns = WallNanos();
    for (const service::Frame& frame : frames) {
      const auto it = in_flight.find(frame.header.request_id);
      NETBATCH_CHECK(it != in_flight.end(),
                     "response for a request that is not in flight");
      result.rtt.Record(now_ns - it->second);
      in_flight.erase(it);
      ++received;
      service::SubmitResponse response;
      NETBATCH_CHECK(service::DecodeSubmitResponse(frame.payload, response),
                     "malformed submit response");
      // Record the ack before counting it: only ids whose job survives on
      // the daemon (placed or queued) are part of the recovery contract.
      if (config.acked_log != nullptr &&
          (response.status == service::Status::kOk ||
           response.status == service::Status::kQueued)) {
        std::lock_guard<std::mutex> lock(config.acked_log->mu);
        config.acked_log->out << frame.header.request_id << '\n';
        config.acked_log->out.flush();
      }
      CountStatus(response.status, result);
    }
    frames.clear();
  }
  ::close(fd);
}

// --verify-acked: replay the acked-id file as kQueryJob probes. Every id
// must be known to the daemon and listed exactly once — the client half of
// the crash-recovery contract.
int VerifyAcked(const LoadConfig& config, const std::string& path) {
  std::ifstream in(path);
  NETBATCH_CHECK(static_cast<bool>(in), "cannot open --verify-acked file");
  std::vector<std::uint64_t> ids;
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t duplicate_lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::uint64_t id = std::stoull(line);
    if (!seen.insert(id).second) {
      ++duplicate_lines;
      continue;
    }
    ids.push_back(id);
  }

  const int fd = Connect(config);
  NETBATCH_CHECK(fd >= 0, "cannot connect to netbatchd");
  service::FrameDecoder decoder;
  std::vector<service::Frame> frames;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> frame_buf;
  std::uint8_t read_buf[1 << 16];
  std::size_t next = 0;
  std::size_t received = 0;
  std::uint64_t unknown = 0;
  while (received < ids.size()) {
    while (next < ids.size() && next - received < config.window) {
      payload.clear();
      service::WireWriter(payload).U64(ids[next]);
      frame_buf.clear();
      service::EncodeFrame(static_cast<std::uint16_t>(service::Opcode::kQueryJob),
                           /*request_id=*/ids[next], payload, frame_buf);
      NETBATCH_CHECK(SendAll(fd, frame_buf.data(), frame_buf.size()),
                     "send to netbatchd failed");
      ++next;
    }
    const ssize_t n = ::recv(fd, read_buf, sizeof(read_buf), 0);
    if (n < 0 && errno == EINTR) continue;
    NETBATCH_CHECK(n > 0, "netbatchd closed the verify session");
    NETBATCH_CHECK(decoder.Feed(read_buf, static_cast<std::size_t>(n), frames),
                   "protocol error from netbatchd: " + decoder.error());
    for (const service::Frame& frame : frames) {
      service::WireReader r(frame.payload);
      const auto status = static_cast<service::Status>(r.U32());
      if (status == service::Status::kUnknownJob) {
        std::printf("verify: job %llu unknown after restart\n",
                    static_cast<unsigned long long>(frame.header.request_id));
        ++unknown;
      }
      ++received;
    }
    frames.clear();
  }
  ::close(fd);
  std::printf("verify: %zu acked ids, %llu unknown, %llu duplicate lines\n",
              ids.size(), static_cast<unsigned long long>(unknown),
              static_cast<unsigned long long>(duplicate_lines));
  return (unknown == 0 && duplicate_lines == 0) ? 0 : 1;
}

// Sends one status-style request (kFailMachine / kRepairMachine / kDrain)
// on `fd` and returns the response status.
service::Status RoundTripStatus(int fd, service::Opcode opcode,
                                const std::vector<std::uint8_t>& payload,
                                std::uint64_t request_id) {
  std::vector<std::uint8_t> frame_buf;
  service::EncodeFrame(static_cast<std::uint16_t>(opcode), request_id, payload,
                       frame_buf);
  SendAll(fd, frame_buf.data(), frame_buf.size());
  service::FrameDecoder decoder;
  std::vector<service::Frame> frames;
  std::uint8_t read_buf[4096];
  while (frames.empty()) {
    const ssize_t n = ::recv(fd, read_buf, sizeof(read_buf), 0);
    if (n < 0 && errno == EINTR) continue;
    NETBATCH_CHECK(n > 0, "netbatchd closed the drill session");
    NETBATCH_CHECK(decoder.Feed(read_buf, static_cast<std::size_t>(n), frames),
                   "protocol error from netbatchd: " + decoder.error());
  }
  service::WireReader r(frames.front().payload);
  return static_cast<service::Status>(r.U32());
}

// The outage drill: fail a machine, hold the outage, repair it. Runs
// concurrently with the replay sessions, exercising the daemon's
// kFailMachine eviction/requeue path and the repair-triggered restarts.
void RunDrill(const LoadConfig& config, std::uint32_t pool,
              std::uint32_t machine, std::int64_t hold_ms) {
  const int fd = Connect(config);
  NETBATCH_CHECK(fd >= 0, "drill cannot connect to netbatchd");
  std::vector<std::uint8_t> payload;
  service::EncodeMachineOpPayload(pool, machine, payload);
  const service::Status failed =
      RoundTripStatus(fd, service::Opcode::kFailMachine, payload, 1);
  NETBATCH_CHECK(failed == service::Status::kOk,
                 "kFailMachine refused (bad --drill pool/machine?)");
  std::printf("drill: failed pool %u machine %u for %lldms\n", pool, machine,
              static_cast<long long>(hold_ms));
  std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
  const service::Status repaired =
      RoundTripStatus(fd, service::Opcode::kRepairMachine, payload, 2);
  NETBATCH_CHECK(repaired == service::Status::kOk, "kRepairMachine refused");
  std::printf("drill: repaired pool %u machine %u\n", pool, machine);
  ::close(fd);
}

// Fetches the daemon's stats rendering (counters + its server-side
// admission-to-placement histogram) over a fresh session.
std::string FetchServerStats(const LoadConfig& config) {
  const int fd = Connect(config);
  if (fd < 0) return "";
  std::vector<std::uint8_t> frame_buf;
  service::EncodeFrame(static_cast<std::uint16_t>(service::Opcode::kStats),
                       /*request_id=*/0, {}, frame_buf);
  SendAll(fd, frame_buf.data(), frame_buf.size());
  service::FrameDecoder decoder;
  std::vector<service::Frame> frames;
  std::uint8_t read_buf[1 << 16];
  while (frames.empty()) {
    const ssize_t n = ::recv(fd, read_buf, sizeof(read_buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    if (!decoder.Feed(read_buf, static_cast<std::size_t>(n), frames)) break;
  }
  ::close(fd);
  if (frames.empty()) return "";
  return std::string(frames.front().payload.begin(),
                     frames.front().payload.end());
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  LoadConfig config;
  config.socket_path = flags.GetString("socket", "");
  const std::string tcp = flags.GetString("tcp", "");
  if (!tcp.empty()) {
    const std::size_t colon = tcp.rfind(':');
    NETBATCH_CHECK(colon != std::string::npos && colon > 0,
                   "--tcp must be host:port");
    config.tcp_host = tcp.substr(0, colon);
    const int port = std::stoi(tcp.substr(colon + 1));
    NETBATCH_CHECK(port > 0 && port < 65536, "--tcp port out of range");
    config.tcp_port = static_cast<std::uint16_t>(port);
    config.socket_path.clear();  // TCP wins when both are given
  }
  NETBATCH_CHECK(!config.socket_path.empty() || !config.tcp_host.empty(),
                 "--socket or --tcp is required");
  config.speed = flags.GetDouble("speed", 1000);
  NETBATCH_CHECK(config.speed >= 0, "--speed must be >= 0");
  config.window =
      static_cast<std::size_t>(flags.GetInt("window", 64));
  NETBATCH_CHECK(config.window > 0, "--window must be > 0");
  const auto sessions = static_cast<std::size_t>(flags.GetInt("sessions", 4));
  NETBATCH_CHECK(sessions > 0, "--sessions must be > 0");

  // Query-only mode: verify a previous run's acked ids and exit.
  const std::string verify_acked = flags.GetString("verify-acked", "");
  if (!verify_acked.empty()) {
    const auto unused_verify = flags.UnusedFlags();
    NETBATCH_CHECK(
        unused_verify.empty(),
        "unknown flag --" +
            (unused_verify.empty() ? "" : unused_verify.front()) +
            " (see --help)");
    return VerifyAcked(config, verify_acked);
  }

  AckedLog acked_log;
  const std::string acked_out = flags.GetString("acked-out", "");
  if (!acked_out.empty()) {
    acked_log.out.open(acked_out, std::ios::trunc);
    NETBATCH_CHECK(static_cast<bool>(acked_log.out),
                   "cannot open --acked-out path");
    config.acked_log = &acked_log;
    config.tolerate_close = true;
  }

  workload::Trace trace;
  if (flags.Has("trace-in")) {
    trace = workload::ReadTraceFile(flags.GetString("trace-in", ""));
  } else {
    const runner::Scenario scenario = runner::ResolveScenario(
        flags.GetString("scenario", "normal"), flags.GetDouble("scale", 0.25),
        static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
    trace = workload::GenerateTrace(scenario.workload);
  }
  std::size_t total = trace.size();
  if (flags.Has("jobs")) {
    total = std::min(total,
                     static_cast<std::size_t>(flags.GetInt("jobs", 0)));
  }
  NETBATCH_CHECK(total > 0, "nothing to submit");

  const std::string json_out = flags.GetString("json-out", "");
  const std::string drill = flags.GetString("drill", "");
  std::uint32_t drill_pool = 0;
  std::uint32_t drill_machine = 0;
  std::int64_t drill_hold_ms = 0;
  if (!drill.empty()) {
    const std::size_t c1 = drill.find(':');
    const std::size_t c2 = c1 == std::string::npos
                               ? std::string::npos
                               : drill.find(':', c1 + 1);
    NETBATCH_CHECK(c1 != std::string::npos && c2 != std::string::npos,
                   "--drill must be pool:machine:hold_ms");
    drill_pool = static_cast<std::uint32_t>(std::stoul(drill.substr(0, c1)));
    drill_machine = static_cast<std::uint32_t>(
        std::stoul(drill.substr(c1 + 1, c2 - c1 - 1)));
    drill_hold_ms = std::stoll(drill.substr(c2 + 1));
    NETBATCH_CHECK(drill_hold_ms >= 0, "--drill hold must be >= 0");
  }
  const auto unused = flags.UnusedFlags();
  NETBATCH_CHECK(unused.empty(),
                 "unknown flag --" + (unused.empty() ? "" : unused.front()) +
                     " (see --help)");

  // Shard round-robin so every session sees the trace's arrival pattern.
  std::vector<std::vector<const workload::JobSpec*>> shards(sessions);
  for (std::size_t i = 0; i < total; ++i) {
    shards[i % sessions].push_back(&trace.jobs()[i]);
  }

  std::printf("loadgen: %zu jobs, %zu sessions, %s\n", total, sessions,
              config.speed > 0
                  ? (std::to_string(config.speed) + "x real time").c_str()
                  : ("unthrottled, window " + std::to_string(config.window))
                        .c_str());

  std::vector<SessionResult> results(sessions);
  const std::uint64_t origin_ns = WallNanos();
  std::vector<std::thread> workers;
  workers.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    workers.emplace_back(RunSession, std::cref(config), std::cref(shards[s]),
                         origin_ns, std::ref(results[s]));
  }
  std::thread drill_worker;
  if (!drill.empty()) {
    drill_worker = std::thread(RunDrill, std::cref(config), drill_pool,
                               drill_machine, drill_hold_ms);
  }
  for (std::thread& worker : workers) worker.join();
  if (drill_worker.joinable()) drill_worker.join();
  const double wall_seconds =
      static_cast<double>(WallNanos() - origin_ns) / 1e9;

  SessionResult merged;
  for (const SessionResult& result : results) {
    merged.rtt.Merge(result.rtt);
    merged.ok += result.ok;
    merged.queued += result.queued;
    merged.rejected += result.rejected;
    merged.other += result.other;
  }
  const double rate =
      wall_seconds > 0 ? static_cast<double>(merged.rtt.count()) / wall_seconds
                       : 0;

  std::printf(
      "submitted %llu jobs in %.2fs (%.0f decisions/s): %llu started, "
      "%llu queued, %llu rejected, %llu other\n",
      static_cast<unsigned long long>(merged.rtt.count()), wall_seconds, rate,
      static_cast<unsigned long long>(merged.ok),
      static_cast<unsigned long long>(merged.queued),
      static_cast<unsigned long long>(merged.rejected),
      static_cast<unsigned long long>(merged.other));
  std::printf(
      "submit rtt: p50 %.1fus  p99 %.1fus  p999 %.1fus  max %.1fus\n",
      static_cast<double>(merged.rtt.Quantile(0.50)) / 1e3,
      static_cast<double>(merged.rtt.Quantile(0.99)) / 1e3,
      static_cast<double>(merged.rtt.Quantile(0.999)) / 1e3,
      static_cast<double>(merged.rtt.max()) / 1e3);

  const std::string stats = FetchServerStats(config);
  const std::size_t latency_line = stats.find("placement_latency_ns");
  if (latency_line != std::string::npos) {
    const std::size_t end = stats.find('\n', latency_line);
    std::printf("server %s\n",
                stats.substr(latency_line, end - latency_line).c_str());
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    NETBATCH_CHECK(static_cast<bool>(out), "cannot open --json-out path");
    out << "{\n"
        << "  \"jobs\": " << merged.rtt.count() << ",\n"
        << "  \"sessions\": " << sessions << ",\n"
        << "  \"speed\": " << config.speed << ",\n"
        << "  \"window\": " << config.window << ",\n"
        << "  \"wall_seconds\": " << wall_seconds << ",\n"
        << "  \"decisions_per_second\": " << rate << ",\n"
        << "  \"started\": " << merged.ok << ",\n"
        << "  \"queued\": " << merged.queued << ",\n"
        << "  \"rejected\": " << merged.rejected << ",\n"
        << "  \"rtt_ns\": {\"p50\": " << merged.rtt.Quantile(0.50)
        << ", \"p99\": " << merged.rtt.Quantile(0.99)
        << ", \"p999\": " << merged.rtt.Quantile(0.999)
        << ", \"max\": " << merged.rtt.max() << "}\n"
        << "}\n";
    std::printf("wrote %s\n", json_out.c_str());
  }
  return merged.other == 0 ? 0 : 1;
}

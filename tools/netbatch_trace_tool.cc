// netbatch_trace_tool — inspect and transform trace CSV files.
//
//   netbatch_trace_tool stats     --in=trace.csv
//   netbatch_trace_tool window    --in=trace.csv --out=busy.csv \
//                                 --begin-min=76000 --end-min=86080
//   netbatch_trace_tool thin      --in=trace.csv --out=half.csv --keep=0.5
//   netbatch_trace_tool scale-rt  --in=trace.csv --out=slow.csv --factor=2
//   netbatch_trace_tool filter    --in=trace.csv --out=low.csv --class=low
//   netbatch_trace_tool merge     --in=a.csv --in2=b.csv --out=ab.csv
//
// The window subcommand mirrors the paper's own methodology: its tables are
// computed on the jobs "with submission time between 76000 and 86080
// minutes" of the year-long trace (§3.1).
#include <cstdio>
#include <string>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "workload/trace_io.h"
#include "workload/transform.h"

using namespace netbatch;

namespace {

constexpr const char* kUsage =
    R"(netbatch_trace_tool <stats|window|thin|scale-rt|filter|merge> [flags]

  stats     print summary statistics            --in
  window    keep a submission-time window       --in --out --begin-min --end-min
  thin      keep each job with probability p    --in --out --keep [--seed]
  scale-rt  multiply runtimes by a factor       --in --out --factor
  filter    keep one priority class             --in --out --class=low|high
  merge     concatenate two traces              --in --in2 --out [--rebase]
)";

void PrintStats(const workload::Trace& trace) {
  const workload::TraceStats stats = trace.Stats();
  TextTable table({"Metric", "Value"});
  table.AddRow({"jobs", std::to_string(stats.job_count)});
  table.AddRow({"high priority", std::to_string(stats.high_priority_count)});
  table.AddRow({"first submit (min)",
                TextTable::Fixed(TicksToMinutes(stats.first_submit), 1)});
  table.AddRow({"last submit (min)",
                TextTable::Fixed(TicksToMinutes(stats.last_submit), 1)});
  table.AddRow({"mean runtime (min)",
                TextTable::Fixed(stats.mean_runtime_minutes, 1)});
  table.AddRow({"mean cores", TextTable::Fixed(stats.mean_cores, 2)});
  table.AddRow({"total work (core-min)",
                std::to_string(stats.total_work_core_minutes)});
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (flags.positional().empty() || flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return flags.GetBool("help", false) ? 0 : 1;
  }
  const std::string command = flags.positional().front();
  const std::string in = flags.GetString("in", "");
  NETBATCH_CHECK(!in.empty(), "--in is required");
  const workload::Trace trace = workload::ReadTraceFile(in);

  if (command == "stats") {
    PrintStats(trace);
    return 0;
  }

  const std::string out = flags.GetString("out", "");
  NETBATCH_CHECK(!out.empty(), "--out is required for transforms");

  workload::Trace result;
  if (command == "window") {
    const Ticks begin = MinutesToTicks(flags.GetInt("begin-min", 0));
    const Ticks end = MinutesToTicks(
        flags.GetInt("end-min", TicksToMinutes(kTicksPerWeek)));
    result = trace.Window(begin, end);
  } else if (command == "thin") {
    result = workload::ThinArrivals(
        trace, flags.GetDouble("keep", 0.5),
        static_cast<std::uint64_t>(flags.GetInt("seed", 1)));
  } else if (command == "scale-rt") {
    result = workload::ScaleRuntimes(trace, flags.GetDouble("factor", 1.0));
  } else if (command == "filter") {
    const std::string klass = flags.GetString("class", "low");
    NETBATCH_CHECK(klass == "low" || klass == "high",
                   "--class must be low or high");
    result = workload::FilterByPriority(
        trace, klass == "low" ? workload::kLowPriority
                              : workload::kHighPriority);
  } else if (command == "merge") {
    const std::string in2 = flags.GetString("in2", "");
    NETBATCH_CHECK(!in2.empty(), "merge requires --in2");
    result = workload::Merge(trace, workload::ReadTraceFile(in2),
                             flags.GetBool("rebase", false));
  } else {
    NETBATCH_CHECK(false, "unknown subcommand (see --help)");
  }

  workload::WriteTraceFile(result, out);
  std::printf("%s: %zu jobs -> %zu jobs -> %s\n", command.c_str(),
              trace.size(), result.size(), out.c_str());
  return 0;
}

// netbatch_trace_tool — inspect and transform trace CSV files.
//
//   netbatch_trace_tool stats      --in=trace.csv [--histograms]
//   netbatch_trace_tool window     --in=trace.csv --out=busy.csv \
//                                  --begin-min=76000 --end-min=86080
//   netbatch_trace_tool thin       --in=trace.csv --out=half.csv --keep=0.5
//   netbatch_trace_tool scale-rt   --in=trace.csv --out=slow.csv --factor=2
//   netbatch_trace_tool filter     --in=trace.csv --out=low.csv --class=low
//   netbatch_trace_tool merge      --in=a.csv --in2=b.csv --out=ab.csv
//   netbatch_trace_tool import-swf --in=log.swf --out=trace.csv
//
// The window subcommand mirrors the paper's own methodology: its tables are
// computed on the jobs "with submission time between 76000 and 86080
// minutes" of the year-long trace (§3.1). import-swf converts a Parallel
// Workloads Archive log (workload/swf.h) into the native CSV format so real
// traces can be replayed or calibrated against.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "netbatch.h"
#include "subcommand.h"

using namespace netbatch;

namespace {

constexpr const char* kUsage =
    R"(netbatch_trace_tool <stats|window|thin|scale-rt|filter|merge|import-swf>

  stats      print summary statistics           --in [--histograms]
  window     keep a submission-time window      --in --out --begin-min --end-min
  thin       keep each job with probability p   --in --out --keep [--seed]
  scale-rt   multiply runtimes by a factor      --in --out --factor
  filter     keep one priority class            --in --out --class=low|high
  merge      concatenate two traces             --in --in2 --out [--rebase]
  import-swf convert an SWF (Parallel Workloads --in --out
             Archive) log to the native CSV     [--include-failed]
                                                [--include-cancelled]
                                                [--high-queues=<q1,q2,...>]

  stats --histograms adds log-scale runtime and interarrival histograms.
  import-swf --high-queues marks jobs from those SWF queue numbers as
  high priority (SWF itself has no priority field).
)";

void PrintStats(const workload::Trace& trace) {
  const workload::TraceStats stats = trace.Stats();
  TextTable table({"Metric", "Value"});
  table.AddRow({"jobs", std::to_string(stats.job_count)});
  table.AddRow({"high priority", std::to_string(stats.high_priority_count)});
  table.AddRow({"first submit (min)",
                TextTable::Fixed(TicksToMinutes(stats.first_submit), 1)});
  table.AddRow({"last submit (min)",
                TextTable::Fixed(TicksToMinutes(stats.last_submit), 1)});
  table.AddRow({"mean runtime (min)",
                TextTable::Fixed(stats.mean_runtime_minutes, 1)});
  table.AddRow({"mean cores", TextTable::Fixed(stats.mean_cores, 2)});
  table.AddRow({"total work (core-min)",
                std::to_string(stats.total_work_core_minutes)});
  std::printf("%s", table.Render().c_str());
}

// An ASCII log-scale histogram: one row per occupied bucket, bar lengths
// proportional to the bucket count.
void PrintLogHistogram(const char* title, const std::vector<double>& values,
                       double lo, double hi) {
  if (values.empty()) {
    std::printf("\n%s: no samples\n", title);
    return;
  }
  LogHistogram hist(lo, hi, 4);
  for (double v : values) hist.Add(v);
  std::printf("\n%s (%lld samples, ~p50=%.2f ~p90=%.2f ~p99=%.2f)\n", title,
              static_cast<long long>(hist.total_count()),
              hist.ApproxQuantile(0.50), hist.ApproxQuantile(0.90),
              hist.ApproxQuantile(0.99));
  std::int64_t max_count = 0;
  std::size_t first = hist.bucket_count();
  std::size_t last = 0;
  for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
    if (hist.bucket(i) == 0) continue;
    max_count = std::max(max_count, hist.bucket(i));
    first = std::min(first, i);
    last = i;
  }
  for (std::size_t i = first; i <= last; ++i) {
    const int width = static_cast<int>(std::lround(
        40.0 * static_cast<double>(hist.bucket(i)) /
        static_cast<double>(max_count)));
    std::string bar(static_cast<std::size_t>(width), '#');
    std::printf("  >= %10.2f %10lld  %s\n", hist.bucket_lower(i),
                static_cast<long long>(hist.bucket(i)), bar.c_str());
  }
}

void PrintHistograms(const workload::Trace& trace) {
  std::vector<double> runtimes;
  std::vector<double> interarrivals;
  runtimes.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    runtimes.push_back(TicksToMinutes(trace[i].runtime));
    if (i > 0) {
      interarrivals.push_back(
          TicksToMinutes(trace[i].submit_time - trace[i - 1].submit_time));
    }
  }
  PrintLogHistogram("runtime minutes", runtimes, 1.0, 200000.0);
  PrintLogHistogram("interarrival minutes", interarrivals, 0.01, 10000.0);
}

std::vector<std::int64_t> SplitInts(const std::string& text) {
  std::vector<std::int64_t> values;
  std::string item;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ',') {
      if (!item.empty()) values.push_back(std::stoll(item));
      item.clear();
    } else {
      item += text[i];
    }
  }
  return values;
}

int RunImportSwf(const Flags& flags) {
  const std::string in = flags.GetString("in", "");
  NETBATCH_CHECK(!in.empty(), "--in is required");
  const std::string out = flags.GetString("out", "");
  NETBATCH_CHECK(!out.empty(), "import-swf requires --out");
  workload::SwfImportOptions options;
  options.include_failed = flags.GetBool("include-failed", false);
  options.include_cancelled = flags.GetBool("include-cancelled", false);
  options.high_priority_queues = SplitInts(flags.GetString("high-queues", ""));
  const auto unused = flags.UnusedFlags();
  NETBATCH_CHECK(unused.empty(),
                 "unknown flag --" + (unused.empty() ? "" : unused.front()) +
                     " (see --help)");

  const workload::SwfImportResult result = workload::ReadSwfTraceFile(in, options);
  workload::WriteTraceFile(result.trace, out);
  std::printf(
      "import-swf: %zu records -> %zu jobs -> %s\n"
      "  skipped: %zu by status filter, %zu invalid\n"
      "  mapped:  %zu pools, %zu owners\n",
      result.total_records, result.trace.size(), out.c_str(),
      result.skipped_status, result.skipped_invalid, result.pool_count,
      result.owner_count);
  return 0;
}

int RunStats(const Flags& flags) {
  const std::string in = flags.GetString("in", "");
  NETBATCH_CHECK(!in.empty(), "--in is required");
  const workload::Trace trace = workload::ReadTraceFile(in);
  PrintStats(trace);
  if (flags.GetBool("histograms", false)) PrintHistograms(trace);
  return 0;
}

// Shared scaffolding for the trace -> trace subcommands: load --in, apply
// the named transform, write --out.
int RunTransform(const Flags& flags, const std::string& command) {
  const std::string in = flags.GetString("in", "");
  NETBATCH_CHECK(!in.empty(), "--in is required");
  const workload::Trace trace = workload::ReadTraceFile(in);

  const std::string out = flags.GetString("out", "");
  NETBATCH_CHECK(!out.empty(), "--out is required for transforms");

  workload::Trace result;
  if (command == "window") {
    const Ticks begin = MinutesToTicks(flags.GetInt("begin-min", 0));
    const Ticks end = MinutesToTicks(
        flags.GetInt("end-min", TicksToMinutes(kTicksPerWeek)));
    result = trace.Window(begin, end);
  } else if (command == "thin") {
    result = workload::ThinArrivals(
        trace, flags.GetDouble("keep", 0.5),
        static_cast<std::uint64_t>(flags.GetInt("seed", 1)));
  } else if (command == "scale-rt") {
    result = workload::ScaleRuntimes(trace, flags.GetDouble("factor", 1.0));
  } else if (command == "filter") {
    const std::string klass = flags.GetString("class", "low");
    NETBATCH_CHECK(klass == "low" || klass == "high",
                   "--class must be low or high");
    result = workload::FilterByPriority(
        trace, klass == "low" ? workload::kLowPriority
                              : workload::kHighPriority);
  } else {
    NETBATCH_CHECK(command == "merge", "unknown transform: " + command);
    const std::string in2 = flags.GetString("in2", "");
    NETBATCH_CHECK(!in2.empty(), "merge requires --in2");
    result = workload::Merge(trace, workload::ReadTraceFile(in2),
                             flags.GetBool("rebase", false));
  }

  workload::WriteTraceFile(result, out);
  std::printf("%s: %zu jobs -> %zu jobs -> %s\n", command.c_str(),
              trace.size(), result.size(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  return tools::DispatchSubcommand(
      flags,
      {
          {"stats", RunStats},
          {"window",
           [](const Flags& f) { return RunTransform(f, "window"); }},
          {"thin", [](const Flags& f) { return RunTransform(f, "thin"); }},
          {"scale-rt",
           [](const Flags& f) { return RunTransform(f, "scale-rt"); }},
          {"filter", [](const Flags& f) { return RunTransform(f, "filter"); }},
          {"merge", [](const Flags& f) { return RunTransform(f, "merge"); }},
          {"import-swf", RunImportSwf},
      },
      kUsage);
}

// netbatch_cli — run arbitrary NetBatchSim experiments from the shell.
//
// Examples:
//   # Table-2-style run, full paper scale, custom seed:
//   netbatch_cli --scenario=high --policy=ResSusUtil --scale=1 --seed=7
//
//   # Compare all five paper policies on one generated trace:
//   netbatch_cli --scenario=normal --compare
//
//   # Persist the generated trace, then replay it later:
//   netbatch_cli --scenario=normal --trace-out=/tmp/trace.csv
//   netbatch_cli --trace-in=/tmp/trace.csv --policy=ResSusWaitRand
//
//   # Export the per-minute utilization/suspension series as CSV:
//   netbatch_cli --scenario=year --samples-out=/tmp/series.csv
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "common/flags.h"
#include "runner/config_file.h"
#include "metrics/event_log.h"
#include "metrics/report_json.h"
#include "netbatch.h"

using namespace netbatch;

namespace {

constexpr const char* kUsage = R"(netbatch_cli — NetBatchSim experiment driver

Flags:
  --config=<file.ini>                    load experiment settings from an
                                         INI file (flags below override it)
  --scenario=normal|high|highsusp|year   scenario preset (default normal)
  --scale=<0..1>                         cluster/workload scale (default 0.25)
  --seed=<n>                             workload seed (default 42)
  --policy=<name>                        NoRes | ResSusUtil | ResSusRand |
                                         ResSusWaitUtil | ResSusWaitRand |
                                         DupSusUtil        (default NoRes)
  --compare                              run all five paper policies instead
  --scheduler=rr|util                    initial scheduler (default rr)
  --staleness=<min>                      utilization snapshot staleness
  --threshold=<min>                      wait-reschedule threshold (default 30)
  --overhead=<min>                       restart transfer overhead (default 0)
  --checkpoint=<min>                     checkpoint interval in work minutes
  --mtbf=<min> --mttr=<min>              machine failure injection
  --trace-in=<path>                      replay a CSV trace instead of
                                         generating one
  --trace-out=<path>                     write the generated trace as CSV
  --samples-out=<path>                   write the per-minute samples as CSV
  --events-out=<path>                    write the per-job event log as CSV
  --json-out=<path>                      write the report(s) as JSON
  --cdf                                  print the suspension-time CDF
  --help                                 this text
)";

std::optional<core::PolicyKind> ParsePolicyKind(const std::string& name) {
  for (const core::PolicyKind kind :
       {core::PolicyKind::kNoRes, core::PolicyKind::kResSusUtil,
        core::PolicyKind::kResSusRand, core::PolicyKind::kResSusWaitUtil,
        core::PolicyKind::kResSusWaitRand}) {
    if (name == core::ToString(kind)) return kind;
  }
  return std::nullopt;
}

runner::Scenario MakeScenario(const std::string& name, double scale,
                              std::uint64_t seed) {
  if (name == "normal") return runner::NormalLoadScenario(scale, seed);
  if (name == "high") return runner::HighLoadScenario(scale, seed);
  if (name == "highsusp") return runner::HighSuspensionScenario(scale, seed);
  if (name == "year") return runner::YearLongScenario(scale, seed);
  NETBATCH_CHECK(false, "unknown --scenario (normal|high|highsusp|year)");
  return {};
}

void WriteSamplesCsv(const std::string& path,
                     const std::vector<metrics::Sample>& samples) {
  std::ofstream out(path);
  NETBATCH_CHECK(static_cast<bool>(out), "cannot open --samples-out path");
  out << "minute,utilization,suspended_jobs,waiting_jobs\n";
  for (const metrics::Sample& sample : samples) {
    out << TicksToMinutes(sample.time) << ',' << sample.utilization << ','
        << sample.suspended_jobs << ',' << sample.waiting_jobs << '\n';
  }
}

void PrintResult(const runner::ExperimentResult& result, bool print_cdf) {
  std::printf("%s\n", metrics::RenderPaperTable({result.report}).c_str());
  std::printf("%s\n", metrics::RenderWasteComponents({result.report}).c_str());
  std::printf("preemptions=%llu reschedules=%llu rejected=%zu events=%llu\n",
              static_cast<unsigned long long>(result.report.preemption_count),
              static_cast<unsigned long long>(result.report.reschedule_count),
              result.report.rejected_count,
              static_cast<unsigned long long>(result.fired_events));
  if (print_cdf && result.suspension_cdf.count() > 0) {
    std::printf("\n%s\n",
                analysis::RenderSuspensionCdf(result.suspension_cdf).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  // Base configuration: an INI file when given, defaults otherwise;
  // individual flags override either.
  runner::ExperimentConfig config;
  std::string config_policy = "NoRes";
  const bool from_file = flags.Has("config");
  if (from_file) {
    runner::LoadedExperiment loaded =
        runner::LoadExperimentFile(flags.GetString("config", ""));
    config = std::move(loaded.config);
    config_policy = loaded.policy_name;
  }
  const double scale = flags.GetDouble("scale", 0.25);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  if (!from_file || flags.Has("scenario") || flags.Has("scale") ||
      flags.Has("seed")) {
    config.scenario =
        MakeScenario(flags.GetString("scenario", "normal"), scale, seed);
  }

  const std::string scheduler = flags.GetString("scheduler", "rr");
  NETBATCH_CHECK(scheduler == "rr" || scheduler == "util",
                 "--scheduler must be rr or util");
  if (!from_file || flags.Has("scheduler")) {
    config.scheduler = scheduler == "rr"
                           ? runner::InitialSchedulerKind::kRoundRobin
                           : runner::InitialSchedulerKind::kUtilization;
  }
  if (!from_file || flags.Has("staleness")) {
    config.scheduler_staleness = MinutesToTicks(flags.GetInt("staleness", 0));
  }
  if (!from_file || flags.Has("threshold")) {
    config.policy_options.wait_threshold =
        MinutesToTicks(flags.GetInt("threshold", 30));
  }
  if (!from_file || flags.Has("overhead")) {
    config.sim_options.restart_overhead =
        MinutesToTicks(flags.GetInt("overhead", 0));
  }
  if (!from_file || flags.Has("checkpoint")) {
    config.sim_options.checkpoint_interval =
        MinutesToTicks(flags.GetInt("checkpoint", 0));
  }
  if (!from_file || flags.Has("mtbf")) {
    config.sim_options.outages.mtbf_minutes =
        static_cast<double>(flags.GetInt("mtbf", 0));
  }
  if (!from_file || flags.Has("mttr")) {
    config.sim_options.outages.mttr_minutes =
        static_cast<double>(flags.GetInt("mttr", 240));
  }

  // Trace: replay or generate (optionally persisting).
  workload::Trace trace;
  if (flags.Has("trace-in")) {
    trace = workload::ReadTraceFile(flags.GetString("trace-in", ""));
  } else {
    trace = workload::GenerateTrace(config.scenario.workload);
  }
  if (flags.Has("trace-out")) {
    workload::WriteTraceFile(trace, flags.GetString("trace-out", ""));
    std::printf("wrote %zu jobs to %s\n", trace.size(),
                flags.GetString("trace-out", "").c_str());
  }

  const std::string policy_name = flags.GetString("policy", config_policy);
  const bool compare = flags.GetBool("compare", false);
  const bool print_cdf = flags.GetBool("cdf", false);
  const std::string samples_out = flags.GetString("samples-out", "");
  const std::string events_out = flags.GetString("events-out", "");
  const std::string json_out = flags.GetString("json-out", "");

  // Reject typos before spending simulation time.
  const auto unused = flags.UnusedFlags();
  NETBATCH_CHECK(unused.empty(),
                 "unknown flag --" + (unused.empty() ? "" : unused.front()) +
                     " (see --help)");

  const workload::TraceStats stats = trace.Stats();
  std::printf("jobs=%zu (%.1f%% high priority), span=%.0f min\n\n",
              stats.job_count,
              stats.job_count == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(stats.high_priority_count) /
                        static_cast<double>(stats.job_count),
              TicksToMinutes(stats.last_submit - stats.first_submit));

  if (compare) {
    const auto results = runner::RunPolicyComparison(
        config,
        {core::PolicyKind::kNoRes, core::PolicyKind::kResSusUtil,
         core::PolicyKind::kResSusRand, core::PolicyKind::kResSusWaitUtil,
         core::PolicyKind::kResSusWaitRand});
    std::vector<metrics::MetricsReport> reports;
    for (const auto& result : results) reports.push_back(result.report);
    std::printf("%s\n", metrics::RenderPaperTable(reports).c_str());
    std::printf("%s\n", metrics::RenderWasteComponents(reports).c_str());
    if (!json_out.empty()) {
      std::ofstream out(json_out);
      NETBATCH_CHECK(static_cast<bool>(out), "cannot open --json-out path");
      out << metrics::ReportsToJson(reports) << '\n';
    }
    return 0;
  }

  // With --events-out we drive the simulation directly so the event-log
  // observer can be attached.
  if (!events_out.empty()) {
    const auto kind = ParsePolicyKind(policy_name);
    NETBATCH_CHECK(kind.has_value(),
                   "--events-out requires one of the five named policies");
    config.policy = *kind;
    const auto policy = core::MakePolicy(config.policy, config.policy_options);
    sched::RoundRobinScheduler rr;
    sched::UtilizationScheduler util(config.scheduler_staleness);
    cluster::InitialScheduler& initial =
        config.scheduler == runner::InitialSchedulerKind::kRoundRobin
            ? static_cast<cluster::InitialScheduler&>(rr)
            : static_cast<cluster::InitialScheduler&>(util);
    cluster::NetBatchSimulation sim(config.scenario.cluster, trace, initial,
                                    *policy, config.sim_options);
    metrics::MetricsCollector collector;
    metrics::EventLog log;
    sim.AddObserver(&collector);
    sim.AddObserver(&log);
    sim.Run();
    runner::ExperimentResult result;
    result.report = collector.BuildReport(sim, policy_name);
    result.samples = collector.samples();
    result.suspension_cdf = collector.SuspensionTimeCdf();
    result.trace_stats = trace.Stats();
    result.fired_events = sim.simulator().FiredEvents();
    PrintResult(result, print_cdf);
    std::ofstream out(events_out);
    NETBATCH_CHECK(static_cast<bool>(out), "cannot open --events-out path");
    log.WriteCsv(out);
    std::printf("wrote %zu events to %s\n", log.events().size(),
                events_out.c_str());
    if (!samples_out.empty()) WriteSamplesCsv(samples_out, result.samples);
    return 0;
  }

  runner::ExperimentResult result;
  if (policy_name == "DupSusUtil") {
    const auto policy = core::MakeDuplicationPolicy(config.policy_options);
    result = runner::RunExperimentWithPolicy(config, trace, *policy,
                                             "DupSusUtil");
  } else {
    const auto kind = ParsePolicyKind(policy_name);
    NETBATCH_CHECK(kind.has_value(), "unknown --policy (see --help)");
    config.policy = *kind;
    result = runner::RunExperimentOnTrace(config, trace);
  }

  PrintResult(result, print_cdf);
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    NETBATCH_CHECK(static_cast<bool>(out), "cannot open --json-out path");
    out << metrics::ReportToJson(result.report) << '\n';
  }
  if (!samples_out.empty()) {
    WriteSamplesCsv(samples_out, result.samples);
    std::printf("wrote %zu samples to %s\n", result.samples.size(),
                samples_out.c_str());
  }
  return 0;
}

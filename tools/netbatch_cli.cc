// netbatch_cli — run arbitrary NetBatchSim experiments from the shell.
//
// Examples:
//   # Table-2-style run, full paper scale, custom seed:
//   netbatch_cli --scenario=high --policy=ResSusUtil --scale=1 --seed=7
//
//   # Compare all five paper policies on one generated trace:
//   netbatch_cli --scenario=normal --compare
//
//   # A parallel factorial sweep with replications and a JSON summary:
//   netbatch_cli sweep --scenario=high --policies=NoRes,ResSusUtil
//       --schedulers=rr,util --seeds=42,43,44,45 --jobs=8
//       --json-out=sweep.json
//
//   # Persist the generated workload, then replay it later:
//   netbatch_cli --scenario=normal --workload-out=/tmp/trace.csv
//   netbatch_cli --trace-in=/tmp/trace.csv --policy=ResSusWaitRand
//
//   # Export the per-minute utilization/suspension series as CSV:
//   netbatch_cli --scenario=year --samples-out=/tmp/series.csv
//
//   # Export a Chrome-trace / Perfetto timeline of the run:
//   netbatch_cli --scenario=normal --trace-out=/tmp/run.json
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "netbatch.h"
#include "subcommand.h"

using namespace netbatch;

namespace {

constexpr const char* kUsage = R"(netbatch_cli — NetBatchSim experiment driver

Single-run flags:
  --config=<file.ini>                    load experiment settings from an
                                         INI file (flags below override it)
  --scenario=<name|preset.ini>           scenario preset: normal | high |
                                         highsusp | year | bigpool, or the
                                         path of a workload preset file
                                         written by `calibrate --emit-preset`
                                         (default normal)
  --scale=<0..1>                         cluster/workload scale (default 0.25)
  --seed=<n>                             workload seed (default 42)
  --policy=<name>                        NoRes | ResSusUtil | ResSusRand |
                                         ResSusWaitUtil | ResSusWaitRand |
                                         DupSusUtil        (default NoRes)
  --compare                              run all five paper policies instead
  --scheduler=rr|util                    initial scheduler (default rr)
  --staleness=<min>                      utilization snapshot staleness
  --threshold=<min>                      wait-reschedule threshold (default 30)
  --overhead=<min>                       restart transfer overhead (default 0)
  --checkpoint=<min>                     checkpoint interval in work minutes
  --mtbf=<min> --mttr=<min>              machine failure injection
  --trace-in=<path>                      replay a CSV trace instead of
                                         generating one
  --workload-out=<path>                  write the generated workload as CSV
  --trace-out=<path>                     write the run as Chrome-trace JSON
                                         (open in ui.perfetto.dev)
  --samples-out=<path>                   write the per-minute samples as CSV
  --events-out=<path>                    write the per-job event log as CSV
  --json-out=<path>                      write the report(s) as JSON
  --profile                              print wall-clock time and events/sec
  --counters                             print the simulation counter registry
  --audit-every=<min>                    run the invariant auditor every that
                                         many simulated minutes (0 = off;
                                         any violation aborts the run)
  --shards=<n>                           run on the sharded engine (one
                                         domain per pool) with n worker
                                         threads; any n >= 1 is bit-identical
                                         to n=1 (0 = classic engine; not
                                         combinable with --events-out or
                                         --trace-out)
  --cdf                                  print the suspension-time CDF
  --help                                 this text

Sweep subcommand — a parallel factorial scenario x scheduler x policy x
seed sweep with per-spec mean/stddev/95%-CI aggregation. Deterministic:
any --jobs value produces bit-identical reports.

  netbatch_cli sweep [flags]
  --scenario=<preset>                    as above (one scenario per sweep)
  --scale=<0..1>
  --policies=<a,b,...>                   default: all five paper policies
  --schedulers=rr,util                   default: rr
  --seeds=<s1,s2,...>                    explicit replication seeds, or
  --seed=<n> --replications=<k>          seeds n, n+1, ..., n+k-1
  --jobs=<n>                             worker threads (default: all cores)
  --staleness/--threshold/--overhead/--checkpoint/--mtbf/--mttr/--audit-every
  --shards                               as above
  --profile                              per-run wall-clock / events/sec table
  --csv-out=<path>                       summary rows as CSV
  --json-out=<path>                      per-run reports + summary as JSON

Calibrate subcommand — fit the workload generator to an observed trace
(calib/fit.h) and optionally save the result as a scenario preset usable
anywhere --scenario is accepted:

  netbatch_cli calibrate --in=<trace.csv> [flags]
  --emit-preset=<path>                   write the fitted GeneratorConfig as
                                         a workload preset INI
  --report                               regenerate a trace from the fit and
                                         print the goodness-of-fit report
                                         (KS statistics, quantile tables)
)";

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> items;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

void WriteSamplesCsv(const std::string& path,
                     const std::vector<metrics::Sample>& samples) {
  std::ofstream out(path);
  NETBATCH_CHECK(static_cast<bool>(out), "cannot open --samples-out path");
  out << "minute,utilization,suspended_jobs,waiting_jobs\n";
  for (const metrics::Sample& sample : samples) {
    out << TicksToMinutes(sample.time) << ',' << sample.utilization << ','
        << sample.suspended_jobs << ',' << sample.waiting_jobs << '\n';
  }
}

void PrintResult(const runner::ExperimentResult& result, bool print_cdf) {
  std::printf("%s\n", metrics::RenderPaperTable({result.report}).c_str());
  std::printf("%s\n", metrics::RenderWasteComponents({result.report}).c_str());
  std::printf("preemptions=%llu reschedules=%llu rejected=%zu events=%llu\n",
              static_cast<unsigned long long>(result.report.preemption_count),
              static_cast<unsigned long long>(result.report.reschedule_count),
              result.report.rejected_count,
              static_cast<unsigned long long>(result.fired_events));
  if (print_cdf && result.suspension_cdf.count() > 0) {
    std::printf("\n%s\n",
                analysis::RenderSuspensionCdf(result.suspension_cdf).c_str());
  }
}

// Applies the sweep-relevant sim/policy flags onto a builder-produced spec.
struct SharedKnobs {
  Ticks staleness = 0;
  Ticks threshold = MinutesToTicks(30);
  cluster::SimulationOptions sim_options;
};

SharedKnobs ReadSharedKnobs(const Flags& flags) {
  SharedKnobs knobs;
  knobs.staleness = MinutesToTicks(flags.GetInt("staleness", 0));
  knobs.threshold = MinutesToTicks(flags.GetInt("threshold", 30));
  knobs.sim_options.restart_overhead =
      MinutesToTicks(flags.GetInt("overhead", 0));
  knobs.sim_options.checkpoint_interval =
      MinutesToTicks(flags.GetInt("checkpoint", 0));
  knobs.sim_options.outages.mtbf_minutes =
      static_cast<double>(flags.GetInt("mtbf", 0));
  knobs.sim_options.outages.mttr_minutes =
      static_cast<double>(flags.GetInt("mttr", 240));
  knobs.sim_options.audit_period =
      MinutesToTicks(flags.GetInt("audit-every", 0));
  knobs.sim_options.shards = static_cast<int>(flags.GetInt("shards", 0));
  return knobs;
}

void PrintProfileTable(const runner::SweepResult& sweep) {
  std::printf("\n%-44s %10s %14s %14s\n", "run", "wall s", "events",
              "events/s");
  std::uint64_t total_events = 0;
  for (std::size_t i = 0; i < sweep.results.size(); ++i) {
    const runner::ExperimentResult& result = sweep.results[i];
    total_events += result.fired_events;
    std::printf("%-44s %10.3f %14llu %14.0f\n",
                sweep.specs[i].Label().c_str(), result.wall_seconds,
                static_cast<unsigned long long>(result.fired_events),
                result.EventsPerSecond());
  }
  std::printf("%-44s %10.3f %14llu %14.0f\n", "total (wall = sweep)",
              sweep.wall_seconds,
              static_cast<unsigned long long>(total_events),
              sweep.wall_seconds > 0
                  ? static_cast<double>(total_events) / sweep.wall_seconds
                  : 0.0);
}

void PrintCounters(const CounterSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    std::printf("%s=%llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value, max] : snapshot.gauges) {
    std::printf("%s=%lld (max=%lld)\n", name.c_str(),
                static_cast<long long>(value), static_cast<long long>(max));
  }
}

int RunCalibrateCommand(const Flags& flags) {
  const std::string in = flags.GetString("in", "");
  NETBATCH_CHECK(!in.empty(), "calibrate requires --in=<trace.csv>");
  const std::string emit_preset = flags.GetString("emit-preset", "");
  const bool report = flags.GetBool("report", false);
  const auto unused = flags.UnusedFlags();
  NETBATCH_CHECK(unused.empty(),
                 "unknown flag --" + (unused.empty() ? "" : unused.front()) +
                     " (see --help)");

  const workload::Trace trace = workload::ReadTraceFile(in);
  NETBATCH_CHECK(trace.size() > 0, "cannot calibrate an empty trace");
  const calib::FittedWorkloadModel fitted = calib::FitWorkloadModel(trace);
  std::printf("%s\n", calib::RenderFitSummary(fitted).c_str());

  if (!emit_preset.empty()) {
    runner::WriteWorkloadPresetFile(emit_preset, fitted.config);
    std::printf("wrote workload preset: %s (run it with --scenario=%s)\n",
                emit_preset.c_str(), emit_preset.c_str());
  }
  if (report) {
    const workload::Trace regenerated = workload::GenerateTrace(fitted.config);
    const calib::GoodnessReport goodness =
        calib::EvaluateFit(trace, regenerated);
    std::printf("\n%s\n", calib::RenderGoodnessReport(goodness).c_str());
  }
  return 0;
}

int RunSweepCommand(const Flags& flags) {
  const std::string scenario_name = flags.GetString("scenario", "normal");
  const double scale = flags.GetDouble("scale", 0.25);
  const auto base_seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));

  std::vector<std::uint64_t> seeds;
  if (flags.Has("seeds")) {
    for (const std::string& s : SplitList(flags.GetString("seeds", ""))) {
      std::uint64_t value = 0;
      std::size_t parsed = 0;
      try {
        value = std::stoull(s, &parsed);
      } catch (const std::exception&) {
        parsed = 0;
      }
      NETBATCH_CHECK(parsed == s.size() && !s.empty(),
                     "--seeds expects a comma-separated integer list, got '" +
                         s + "'");
      seeds.push_back(value);
    }
  } else {
    const std::int64_t replications = flags.GetInt("replications", 1);
    NETBATCH_CHECK(replications >= 1, "--replications must be >= 1");
    for (std::int64_t r = 0; r < replications; ++r) {
      seeds.push_back(base_seed + static_cast<std::uint64_t>(r));
    }
  }
  NETBATCH_CHECK(!seeds.empty(), "--seeds list is empty");

  std::vector<std::string> scheduler_names =
      SplitList(flags.GetString("schedulers", "rr"));
  std::vector<runner::InitialSchedulerKind> schedulers;
  for (const std::string& name : scheduler_names) {
    const auto kind = runner::ParseInitialSchedulerKind(name);
    NETBATCH_CHECK(kind.has_value(), "unknown scheduler '" + name + "'");
    schedulers.push_back(*kind);
  }

  std::string default_policies;
  for (const core::PolicyKind kind : core::kAllPolicyKinds) {
    if (!default_policies.empty()) default_policies += ',';
    default_policies += core::ToString(kind);
  }
  const std::vector<std::string> policy_names =
      SplitList(flags.GetString("policies", default_policies));
  NETBATCH_CHECK(!policy_names.empty(), "--policies list is empty");

  const SharedKnobs knobs = ReadSharedKnobs(flags);
  const auto jobs = static_cast<unsigned>(flags.GetInt("jobs", 0));
  const bool profile = flags.GetBool("profile", false);
  const std::string csv_out = flags.GetString("csv-out", "");
  const std::string json_out = flags.GetString("json-out", "");

  const auto unused = flags.UnusedFlags();
  NETBATCH_CHECK(unused.empty(),
                 "unknown flag --" + (unused.empty() ? "" : unused.front()) +
                     " (see --help)");

  const runner::Scenario scenario =
      runner::ResolveScenario(scenario_name, scale, base_seed);

  std::vector<runner::ExperimentSpec> specs;
  for (const runner::InitialSchedulerKind scheduler : schedulers) {
    for (const std::string& policy_name : policy_names) {
      for (const std::uint64_t seed : seeds) {
        runner::SpecBuilder builder;
        builder.Scenario(scenario_name, scenario)
            .Scheduler(scheduler, knobs.staleness)
            .WaitThreshold(knobs.threshold)
            .SimOptions(knobs.sim_options)
            .Seed(seed);
        if (policy_name == "DupSusUtil") {
          builder.Duplication();
        } else {
          const auto kind = core::ParsePolicyKind(policy_name);
          NETBATCH_CHECK(kind.has_value(),
                         "unknown policy '" + policy_name + "' (see --help)");
          builder.Policy(*kind);
        }
        specs.push_back(builder.Build());
      }
    }
  }

  std::printf("sweep: %zu specs (%zu policies x %zu schedulers x %zu seeds)\n",
              specs.size(), policy_names.size(), schedulers.size(),
              seeds.size());

  const runner::SweepResult sweep =
      runner::RunSweep(std::move(specs), {.jobs = jobs});

  std::vector<metrics::MetricsReport> reports;
  reports.reserve(sweep.results.size());
  for (const runner::ExperimentResult& result : sweep.results) {
    reports.push_back(result.report);
  }
  std::printf("\n%s\n", metrics::RenderPaperTable(reports).c_str());

  const std::vector<runner::SweepSummaryRow> summary =
      runner::SummarizeSweep(sweep);
  std::printf("%s\n", runner::RenderSweepSummary(summary).c_str());
  std::printf(
      "%zu runs, %zu generated traces, wall %.2fs (jobs=%u)\n",
      sweep.results.size(), sweep.generated_trace_count, sweep.wall_seconds,
      jobs == 0 ? ThreadPool::DefaultThreadCount() : jobs);
  if (profile) PrintProfileTable(sweep);

  if (!csv_out.empty()) {
    std::ofstream out(csv_out);
    NETBATCH_CHECK(static_cast<bool>(out), "cannot open --csv-out path");
    runner::WriteSweepSummaryCsv(out, summary);
    std::printf("wrote summary CSV: %s\n", csv_out.c_str());
  }
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    NETBATCH_CHECK(static_cast<bool>(out), "cannot open --json-out path");
    out << runner::SweepToJson(sweep, summary) << '\n';
    std::printf("wrote sweep JSON: %s\n", json_out.c_str());
  }
  return 0;
}

// Default mode: one experiment driven entirely by flags.
int RunSingleCommand(const Flags& flags) {
  // Base configuration: an INI file when given, defaults otherwise;
  // individual flags override either.
  runner::ExperimentConfig config;
  std::string config_policy = "NoRes";
  const bool from_file = flags.Has("config");
  if (from_file) {
    runner::LoadedExperiment loaded =
        runner::LoadExperimentFile(flags.GetString("config", ""));
    config = std::move(loaded.config);
    config_policy = loaded.policy_name;
  }
  const double scale = flags.GetDouble("scale", 0.25);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  std::string scenario_name = flags.GetString("scenario", "normal");
  if (!from_file || flags.Has("scenario") || flags.Has("scale") ||
      flags.Has("seed")) {
    config.scenario = runner::ResolveScenario(scenario_name, scale, seed);
  }

  if (!from_file || flags.Has("scheduler")) {
    const std::string scheduler = flags.GetString("scheduler", "rr");
    const auto kind = runner::ParseInitialSchedulerKind(scheduler);
    NETBATCH_CHECK(kind.has_value(), "--scheduler must be rr or util");
    config.scheduler = *kind;
  }
  if (!from_file || flags.Has("staleness")) {
    config.scheduler_staleness = MinutesToTicks(flags.GetInt("staleness", 0));
  }
  if (!from_file || flags.Has("threshold")) {
    config.policy_options.wait_threshold =
        MinutesToTicks(flags.GetInt("threshold", 30));
  }
  if (!from_file || flags.Has("overhead")) {
    config.sim_options.restart_overhead =
        MinutesToTicks(flags.GetInt("overhead", 0));
  }
  if (!from_file || flags.Has("checkpoint")) {
    config.sim_options.checkpoint_interval =
        MinutesToTicks(flags.GetInt("checkpoint", 0));
  }
  if (!from_file || flags.Has("mtbf")) {
    config.sim_options.outages.mtbf_minutes =
        static_cast<double>(flags.GetInt("mtbf", 0));
  }
  if (!from_file || flags.Has("mttr")) {
    config.sim_options.outages.mttr_minutes =
        static_cast<double>(flags.GetInt("mttr", 240));
  }
  if (!from_file || flags.Has("audit-every")) {
    config.sim_options.audit_period =
        MinutesToTicks(flags.GetInt("audit-every", 0));
  }
  if (!from_file || flags.Has("shards")) {
    config.sim_options.shards = static_cast<int>(flags.GetInt("shards", 0));
  }

  // Trace: replay or generate (optionally persisting).
  const runner::ExperimentSpec base_spec =
      runner::SpecFromConfig(config, scenario_name);
  workload::Trace trace;
  if (flags.Has("trace-in")) {
    trace = workload::ReadTraceFile(flags.GetString("trace-in", ""));
  } else {
    trace = runner::GenerateSpecTrace(base_spec);
  }
  if (flags.Has("workload-out")) {
    workload::WriteTraceFile(trace, flags.GetString("workload-out", ""));
    std::printf("wrote %zu jobs to %s\n", trace.size(),
                flags.GetString("workload-out", "").c_str());
  }

  const std::string policy_name = flags.GetString("policy", config_policy);
  const bool compare = flags.GetBool("compare", false);
  const bool print_cdf = flags.GetBool("cdf", false);
  const bool profile = flags.GetBool("profile", false);
  const bool print_counters = flags.GetBool("counters", false);
  const std::string samples_out = flags.GetString("samples-out", "");
  const std::string events_out = flags.GetString("events-out", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string json_out = flags.GetString("json-out", "");

  // Reject typos before spending simulation time.
  const auto unused = flags.UnusedFlags();
  NETBATCH_CHECK(unused.empty(),
                 "unknown flag --" + (unused.empty() ? "" : unused.front()) +
                     " (see --help)");

  const workload::TraceStats stats = trace.Stats();
  std::printf("jobs=%zu (%.1f%% high priority), span=%.0f min\n\n",
              stats.job_count,
              stats.job_count == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(stats.high_priority_count) /
                        static_cast<double>(stats.job_count),
              TicksToMinutes(stats.last_submit - stats.first_submit));

  if (compare) {
    std::vector<runner::ExperimentSpec> specs;
    for (const core::PolicyKind kind : core::kAllPolicyKinds) {
      runner::ExperimentSpec spec = base_spec;
      spec.policy = kind;
      spec.display_label = core::ToString(kind);
      specs.push_back(std::move(spec));
    }
    const runner::SweepResult sweep =
        runner::RunSweepOnTrace(std::move(specs), trace);
    std::vector<metrics::MetricsReport> reports;
    for (const auto& result : sweep.results) reports.push_back(result.report);
    std::printf("%s\n", metrics::RenderPaperTable(reports).c_str());
    std::printf("%s\n", metrics::RenderWasteComponents(reports).c_str());
    if (profile) PrintProfileTable(sweep);
    if (!json_out.empty()) {
      std::ofstream out(json_out);
      NETBATCH_CHECK(static_cast<bool>(out), "cannot open --json-out path");
      out << metrics::ReportsToJson(reports) << '\n';
    }
    return 0;
  }

  // Build the run's policy: one of the named kinds or the DupSusUtil
  // extension.
  runner::ExperimentSpec spec = base_spec;
  if (policy_name == "DupSusUtil") {
    runner::SpecBuilder builder;
    builder.Scenario(scenario_name, config.scenario)
        .Seed(base_spec.seed)
        .Scheduler(config.scheduler, config.scheduler_staleness)
        .WaitThreshold(config.policy_options.wait_threshold)
        .SimOptions(config.sim_options)
        .Duplication();
    spec = builder.Build();
  } else {
    const auto kind = core::ParsePolicyKind(policy_name);
    NETBATCH_CHECK(kind.has_value(), "unknown --policy (see --help)");
    spec.policy = *kind;
  }
  spec.display_label = policy_name;

  runner::ExperimentResult result;
  if (!events_out.empty() || !trace_out.empty()) {
    // Attach the export observers alongside the metrics collector.
    NETBATCH_CHECK(spec.policy_factory == nullptr || policy_name == "DupSusUtil",
                   "--events-out/--trace-out support named policies");
    // Export observers need the per-transition hooks, which the sharded
    // engine does not deliver (it fires OnSample only).
    NETBATCH_CHECK(spec.sim_options.shards == 0,
                   "--events-out/--trace-out require --shards=0");
    metrics::EventLog log;
    metrics::ChromeTraceExporter tracer;
    runner::PolicyInstance instance;
    if (spec.policy_factory != nullptr) {
      instance = spec.policy_factory(spec.RunSeed());
    } else {
      core::PolicyOptions options = spec.policy_options;
      options.seed = DeriveSeed(spec.RunSeed(), "policy");
      instance.policy = core::MakePolicy(spec.policy, options);
    }
    std::vector<cluster::SimulationObserver*> observers;
    for (const auto& observer : instance.observers) {
      observers.push_back(observer.get());
    }
    if (!events_out.empty()) observers.push_back(&log);
    if (!trace_out.empty()) observers.push_back(&tracer);
    result = runner::RunSpecWithPolicy(spec, trace, *instance.policy,
                                       policy_name, observers);
    if (!events_out.empty()) {
      std::ofstream out(events_out);
      NETBATCH_CHECK(static_cast<bool>(out), "cannot open --events-out path");
      log.WriteCsv(out);
      std::printf("wrote %zu events to %s\n", log.events().size(),
                  events_out.c_str());
    }
    if (!trace_out.empty()) {
      tracer.Finish();
      NETBATCH_CHECK(tracer.WriteFile(trace_out),
                     "cannot open --trace-out path");
      std::printf("wrote %zu trace events to %s\n", tracer.event_count(),
                  trace_out.c_str());
    }
  } else {
    result = runner::RunSpec(spec, trace);
  }

  PrintResult(result, print_cdf);
  if (profile) {
    std::printf("profile: wall %.3fs, %llu events, %.0f events/s\n",
                result.wall_seconds,
                static_cast<unsigned long long>(result.fired_events),
                result.EventsPerSecond());
  }
  if (print_counters) {
    std::printf("\n");
    PrintCounters(result.counters);
  }
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    NETBATCH_CHECK(static_cast<bool>(out), "cannot open --json-out path");
    out << metrics::ReportToJson(result.report) << '\n';
  }
  if (!samples_out.empty()) {
    WriteSamplesCsv(samples_out, result.samples);
    std::printf("wrote %zu samples to %s\n", result.samples.size(),
                samples_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  return tools::DispatchSubcommand(flags,
                                   {
                                       {"sweep", RunSweepCommand},
                                       {"calibrate", RunCalibrateCommand},
                                   },
                                   kUsage, RunSingleCommand);
}

// Shared subcommand dispatch for the netbatch tools.
//
// Each CLI fronts a table of named subcommands. Dispatch resolves the first
// positional argument against the table; --help prints usage and exits 0;
// an unknown or missing subcommand prints usage to stderr and exits with
// kUsageExitCode. (netbatch_cli used to silently fall through to its
// single-run mode on a misspelled subcommand — a typo'd `netbatch_cli swep`
// would run a default experiment and exit 0.)
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"

namespace netbatch::tools {

struct Subcommand {
  const char* name;
  int (*run)(const Flags& flags);
};

// Exit code for an unknown or missing subcommand — distinct from a
// subcommand that ran and failed, so scripts can tell the two apart.
inline constexpr int kUsageExitCode = 2;

// `fallback` (nullable) runs when no subcommand is named — netbatch_cli's
// flag-driven single-run mode. Tools without a default mode pass nullptr,
// making a bare invocation a usage error.
inline int DispatchSubcommand(const Flags& flags,
                              const std::vector<Subcommand>& commands,
                              const char* usage,
                              int (*fallback)(const Flags&) = nullptr) {
  if (flags.GetBool("help", false)) {
    std::fputs(usage, stdout);
    return 0;
  }
  if (flags.positional().empty()) {
    if (fallback != nullptr) return fallback(flags);
    std::fputs(usage, stderr);
    return kUsageExitCode;
  }
  const std::string& name = flags.positional().front();
  for (const Subcommand& command : commands) {
    if (name == command.name) return command.run(flags);
  }
  std::fprintf(stderr, "unknown subcommand '%s'\n\n", name.c_str());
  std::fputs(usage, stderr);
  return kUsageExitCode;
}

}  // namespace netbatch::tools

// Reproduces Table 1: NoRes / ResSusUtil / ResSusRand under normal load
// with the round-robin initial scheduler.
//
// Paper (Table 1):
//   NoRes       suspend 1.14%  AvgCT(susp) 2498.7  AvgCT(all) 569.8
//               AvgST 1189.1   AvgWCT 31.0
//   ResSusUtil  suspend 1.56%  AvgCT(susp) 1265.4  AvgCT(all) 560.0
//               AvgST 82.2     AvgWCT 20.8
//   ResSusRand  suspend 1.52%  AvgCT(susp) 7580.7  AvgCT(all) 638.7
//               AvgST 80.7     AvgWCT 91.9
// Expected shape: ResSusUtil halves AvgCT over suspended jobs and cuts
// AvgWCT ~1/3; ResSusRand backfires on AvgCT(susp).
#include "bench/bench_common.h"

int main() {
  using namespace netbatch;
  const double scale = runner::DefaultScale();

  const auto results = bench::RunPolicySweep(
      "normal", runner::NormalLoadScenario(scale),
      {core::PolicyKind::kNoRes, core::PolicyKind::kResSusUtil,
       core::PolicyKind::kResSusRand});

  bench::PrintHeader(
      "Table 1: normal load, round-robin initial scheduler", scale,
      results.front().trace_stats);
  bench::PrintComparison(results);
  return 0;
}

// Shared helpers for the table/figure bench binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/timeseries.h"
#include "metrics/report.h"
#include "runner/sweep.h"

namespace netbatch::bench {

// Builds one spec per policy for the scenario and runs them as a sweep:
// the trace is generated once and shared, execution fans out on the worker
// pool, and reports keep the plain policy-name labels the tables expect.
inline std::vector<runner::ExperimentResult> RunPolicySweep(
    const std::string& scenario_name, const runner::Scenario& scenario,
    const std::vector<core::PolicyKind>& policies,
    runner::InitialSchedulerKind scheduler =
        runner::InitialSchedulerKind::kRoundRobin,
    Ticks wait_threshold = MinutesToTicks(30)) {
  std::vector<runner::ExperimentSpec> specs;
  specs.reserve(policies.size());
  for (const core::PolicyKind policy : policies) {
    specs.push_back(runner::SpecBuilder()
                        .Scenario(scenario_name, scenario)
                        .Scheduler(scheduler)
                        .Policy(policy)
                        .WaitThreshold(wait_threshold)
                        .DisplayLabel(core::ToString(policy))
                        .Build());
  }
  return std::move(runner::RunSweep(std::move(specs)).results);
}

// Prints one experiment header line: what we are reproducing and at what
// scale, so bench output is self-describing in bench_output.txt.
inline void PrintHeader(const std::string& what, double scale,
                        const workload::TraceStats& stats) {
  std::printf("=== %s ===\n", what.c_str());
  std::printf(
      "scale=%.3g (NB_SCALE to change), jobs=%zu (%.1f%% high priority), "
      "span=%.0f min\n\n",
      scale, stats.job_count,
      stats.job_count == 0
          ? 0.0
          : 100.0 * static_cast<double>(stats.high_priority_count) /
                static_cast<double>(stats.job_count),
      TicksToMinutes(stats.last_submit - stats.first_submit));
}

// Samples within the trace's submission window. The simulation keeps
// sampling until the last (possibly very long-tailed) job completes, which
// would dilute utilization statistics; the paper's utilization figures are
// over the trace period.
inline std::span<const metrics::Sample> SubmissionWindow(
    const runner::ExperimentResult& result) {
  std::span<const metrics::Sample> samples = result.samples;
  const Ticks end = result.trace_stats.last_submit;
  std::size_t n = samples.size();
  while (n > 0 && samples[n - 1].time > end) --n;
  return samples.first(n);
}

// Renders the paper-style table plus the reschedule/preemption counters.
inline void PrintComparison(const std::vector<runner::ExperimentResult>& results) {
  std::vector<metrics::MetricsReport> reports;
  reports.reserve(results.size());
  for (const auto& result : results) reports.push_back(result.report);
  std::printf("%s\n", metrics::RenderPaperTable(reports).c_str());
  std::printf("%s\n", metrics::RenderDetailTable(reports).c_str());
  for (const auto& result : results) {
    const auto util = analysis::SummarizeUtilization(SubmissionWindow(result));
    std::printf(
        "  %-16s preemptions=%llu reschedules=%llu rejected=%zu "
        "util(mean/p10/p90)=%.0f%%/%.0f%%/%.0f%% max_susp=%.0f\n",
        result.report.label.c_str(),
        static_cast<unsigned long long>(result.report.preemption_count),
        static_cast<unsigned long long>(result.report.reschedule_count),
        result.report.rejected_count, util.mean * 100, util.p10 * 100,
        util.p90 * 100, util.max_suspended_jobs);
  }
  std::printf("\n");
}

}  // namespace netbatch::bench

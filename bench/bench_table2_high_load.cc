// Reproduces Table 2: NoRes / ResSusUtil / ResSusRand under HIGH load
// (cores halved, same trace) with the round-robin initial scheduler.
//
// Paper (Table 2):
//   NoRes       suspend 1.26%  AvgCT(susp) 5846.1  AvgCT(all) 988.7
//               AvgST 4402.4   AvgWCT 450.1
//   ResSusUtil  suspend 1.83%  AvgCT(susp) 1475.1  AvgCT(all) 962.2
//               AvgST 86.2     AvgWCT 423.9
//   ResSusRand  suspend 1.60%  AvgCT(susp) 6485    AvgCT(all) 1180
//               AvgST 73.2     AvgWCT 636.3
// Expected shape: rescheduling benefits grow under load (~75% AvgCT(susp)
// reduction); ResSusRand still backfires.
#include "bench/bench_common.h"

int main() {
  using namespace netbatch;
  const double scale = runner::DefaultScale();

  const auto results = bench::RunPolicySweep(
      "high", runner::HighLoadScenario(scale),
      {core::PolicyKind::kNoRes, core::PolicyKind::kResSusUtil,
       core::PolicyKind::kResSusRand});

  bench::PrintHeader(
      "Table 2: high load (cores halved), round-robin initial scheduler",
      scale, results.front().trace_stats);
  bench::PrintComparison(results);
  return 0;
}

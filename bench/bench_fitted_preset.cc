// End-to-end calibration demo: generate a "real" workload, fit the
// generator to it (calib/fit.h), and run the paper's policy comparison on a
// scenario rebuilt from the fitted preset alone.
//
// This is the closed loop the calibration subsystem exists for: if the fit
// is faithful, the policy ranking measured on the regenerated workload
// matches the ranking on the source workload — meaning conclusions drawn
// from fitted presets transfer to the traces they came from.
#include <cstdio>

#include "bench/bench_common.h"
#include "calib/fit.h"
#include "calib/goodness.h"
#include "netbatch.h"

using namespace netbatch;

int main() {
  const double scale = runner::DefaultScale();

  // The "observed" workload: the normal-load scenario's trace stands in for
  // a real NetBatch log (in production this would come from import-swf).
  const runner::Scenario source = runner::NormalLoadScenario(scale);
  const workload::Trace observed = workload::GenerateTrace(source.workload);
  bench::PrintHeader("calibration closed loop: fit -> regenerate -> compare",
                     scale, observed.Stats());

  // Fit every generator parameter to the observed trace.
  const calib::FittedWorkloadModel fitted = calib::FitWorkloadModel(observed);
  std::printf("%s\n", calib::RenderFitSummary(fitted).c_str());

  // Goodness of fit: source vs. a trace regenerated from the fit.
  workload::GeneratorConfig regen_config = fitted.config;
  regen_config.seed = 777;
  const workload::Trace regenerated = workload::GenerateTrace(regen_config);
  const calib::GoodnessReport goodness =
      calib::EvaluateFit(observed, regenerated);
  std::printf("%s\n", calib::RenderGoodnessReport(goodness).c_str());

  // Policy comparison on a scenario built purely from the fitted model.
  const runner::Scenario refit =
      runner::ScenarioFromWorkload(regen_config);
  const std::vector<core::PolicyKind> policies{
      core::PolicyKind::kNoRes, core::PolicyKind::kResSusUtil,
      core::PolicyKind::kResSusWaitUtil};

  std::printf("--- policies on the source workload ---\n");
  bench::PrintComparison(
      bench::RunPolicySweep("source", source, policies));
  std::printf("--- policies on the fitted, regenerated workload ---\n");
  bench::PrintComparison(bench::RunPolicySweep("fitted", refit, policies));
  return 0;
}

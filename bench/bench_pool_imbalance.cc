// Reproduces the paper's §2.3 motivating observation: high-priority bursts
// overwhelm their affine pools — causing mass suspension — while other
// pools are barely utilized and the cluster as a whole sits at moderate
// utilization.
//
// Not a numbered figure in the paper, but the claim every rescheduling
// result rests on; this bench quantifies it on the synthetic busy week.
#include "analysis/pool_imbalance.h"
#include "bench/bench_common.h"
#include "core/policies.h"
#include "sched/round_robin.h"
#include "workload/generator.h"

int main() {
  using namespace netbatch;
  const double scale = runner::DefaultScale();
  const runner::Scenario scenario = runner::NormalLoadScenario(scale);
  const workload::Trace trace = workload::GenerateTrace(scenario.workload);

  sched::RoundRobinScheduler scheduler;
  core::NoResPolicy policy;
  cluster::NetBatchSimulation sim(scenario.cluster, trace, scheduler, policy);
  metrics::MetricsCollector collector;
  collector.EnablePerPoolSamples();
  sim.AddObserver(&collector);
  sim.Run();
  const auto report = collector.BuildReport(sim, "NoRes");

  bench::PrintHeader("Pool imbalance during bursts (paper 2.3)", scale,
                     trace.Stats());

  // Restrict to the submission window (the post-trace drain would dilute).
  const Ticks end = trace.Stats().last_submit;
  std::size_t n = collector.samples().size();
  while (n > 0 && collector.samples()[n - 1].time > end) --n;

  std::vector<std::vector<float>> pool_util;
  for (const auto& series : collector.pool_utilization()) {
    pool_util.emplace_back(series.begin(),
                           series.begin() + static_cast<std::ptrdiff_t>(n));
  }
  std::vector<std::vector<std::uint32_t>> pool_queues;
  for (const auto& series : collector.pool_queue_lengths()) {
    pool_queues.emplace_back(series.begin(),
                             series.begin() + static_cast<std::ptrdiff_t>(n));
  }
  std::vector<double> cluster_util;
  cluster_util.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cluster_util.push_back(collector.samples()[i].utilization);
  }

  const auto summary =
      analysis::AnalyzePoolImbalance(pool_util, pool_queues, cluster_util);
  std::printf("%s", analysis::RenderPoolImbalance(summary).c_str());

  // The other half of the paper's §2 observation: "high wait time of jobs
  // exists even when the overall system utilization is relatively low".
  const EmpiricalCdf& waits = collector.WaitTimeCdf();
  std::printf(
      "\nwait time over all jobs (min): mean=%.1f p50=%.1f p90=%.1f "
      "p99=%.1f max=%.0f\n",
      report.avg_wait_minutes, waits.Quantile(0.5), waits.Quantile(0.9),
      waits.Quantile(0.99), waits.Quantile(1.0));
  return 0;
}

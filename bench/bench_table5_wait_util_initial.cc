// Reproduces Table 5: waiting-job rescheduling under high load with the
// UTILIZATION-BASED initial scheduler.
//
// Paper (Table 5):
//   NoRes           suspend 1.50%  AvgCT(susp) 5936   AvgCT(all) 994.2
//                   AvgST 4916     AvgWCT 456.6
//   ResSusWaitUtil  suspend 1.74%  AvgCT(susp) 1467.2 AvgCT(all) 937.9
//                   AvgST 84.5     AvgWCT 402.0
//   ResSusWaitRand  suspend 1.71%  AvgCT(susp) 1603.1 AvgCT(all) 935.7
//                   AvgST 100.6    AvgWCT 399.7
// Expected shape: the random scheme matches the utilization-based one —
// the observation that motivates fully decentralized, job-driven
// rescheduling (§3.3.2).
#include "bench/bench_common.h"

int main() {
  using namespace netbatch;
  const double scale = runner::DefaultScale();

  const auto results = bench::RunPolicySweep(
      "high", runner::HighLoadScenario(scale),
      {core::PolicyKind::kNoRes, core::PolicyKind::kResSusWaitUtil,
       core::PolicyKind::kResSusWaitRand},
      runner::InitialSchedulerKind::kUtilization, MinutesToTicks(30));

  bench::PrintHeader(
      "Table 5: +waiting-job rescheduling, high load, utilization-based "
      "initial",
      scale, results.front().trace_stats);
  bench::PrintComparison(results);
  return 0;
}

// Microbenchmarks of the simulation substrate: event queue throughput,
// RNG/distribution sampling, trace generation, placement, and end-to-end
// simulation rate (events/second).
#include <benchmark/benchmark.h>

#include "cluster/simulation.h"
#include "common/distributions.h"
#include "common/rng.h"
#include "core/policies.h"
#include "runner/experiment.h"
#include "runner/scenarios.h"
#include "sched/round_robin.h"
#include "sim/event_queue.h"
#include "workload/generator.h"

namespace {

using namespace netbatch;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  Rng rng(1);
  sim::Event ev;
  ev.kind = 1;
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::int64_t i = 0; i < batch; ++i) {
      queue.Schedule(rng.UniformInt(0, 1000000), ev);
    }
    while (!queue.Empty()) benchmark::DoNotOptimize(queue.Pop().time);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

// Schedule/cancel churn against a standing population of live events — the
// shape the engine produces under heavy suspension (every suspend cancels a
// completion event, every resume re-arms one). Exercises the indexed-heap
// removal path and the position-index trim.
void BM_EventQueueScheduleCancelPop(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  Rng rng(2);
  sim::Event ev;
  ev.kind = 1;
  for (auto _ : state) {
    sim::EventQueue queue;
    std::vector<sim::EventSeq> live;
    live.reserve(static_cast<std::size_t>(batch));
    for (std::int64_t i = 0; i < batch; ++i) {
      live.push_back(queue.Schedule(rng.UniformInt(0, 1000000), ev));
      // Cancel a random live event half the time, then re-arm it: 3 heap
      // operations per loop iteration on average.
      if (rng.Bernoulli(0.5) && !live.empty()) {
        const std::size_t victim = rng.UniformIndex(live.size());
        queue.Cancel(live[victim]);
        live[victim] = queue.Schedule(rng.UniformInt(0, 1000000), ev);
      }
    }
    while (!queue.Empty()) benchmark::DoNotOptimize(queue.Pop().time);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleCancelPop)->Arg(1024)->Arg(16384);

void BM_RngNext(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_LognormalSample(benchmark::State& state) {
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleLognormal(rng, 4.6, 1.2));
  }
}
BENCHMARK(BM_LognormalSample);

void BM_TraceGeneration(benchmark::State& state) {
  workload::GeneratorConfig config =
      runner::NormalLoadScenario(0.05).workload;
  for (auto _ : state) {
    const workload::Trace trace = workload::GenerateTrace(config);
    benchmark::DoNotOptimize(trace.size());
  }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

// Placement fast path: repeatedly place-and-complete one job in a pool
// with many machines (measures the first-fit scan + bookkeeping).
void BM_PoolPlaceAndComplete(benchmark::State& state) {
  using namespace cluster;
  const auto machines_count = static_cast<int>(state.range(0));
  JobTable jobs;
  MachineArena machines(PoolId(0), jobs);
  for (int m = 0; m < machines_count; ++m) {
    machines.Add(8, 65536, 1.0);
  }
  PhysicalPool pool(PoolId(0), std::move(machines), jobs, true);
  workload::JobSpec spec;
  spec.cores = 2;
  spec.memory_mb = 1024;
  spec.runtime = MinutesToTicks(10);
  JobId::ValueType next = 0;
  Ticks now = 0;
  for (auto _ : state) {
    spec.id = JobId(next++);
    Job job = jobs.Create(spec);
    job.OnSubmitted(now);
    benchmark::DoNotOptimize(pool.TryPlace(job, now));
    pool.OnJobCompleted(job, ++now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolPlaceAndComplete)->Arg(64)->Arg(512);

// Preemption path: a saturated pool where every placement must build a
// preemption plan and suspend a victim.
void BM_PoolPreemptionPath(benchmark::State& state) {
  using namespace cluster;
  JobTable jobs;
  MachineArena machines(PoolId(0), jobs);
  for (int m = 0; m < 64; ++m) {
    machines.Add(8, 65536, 1.0);
  }
  PhysicalPool pool(PoolId(0), std::move(machines), jobs, true);
  workload::JobSpec low;
  low.cores = 8;
  low.memory_mb = 1024;
  low.runtime = MinutesToTicks(10000);
  JobId::ValueType next = 0;
  for (int m = 0; m < 64; ++m) {
    low.id = JobId(next++);
    Job job = jobs.Create(low);
    job.OnSubmitted(0);
    pool.TryPlace(job, 0);
  }
  workload::JobSpec high = low;
  high.priority = workload::kHighPriority;
  high.runtime = MinutesToTicks(5);
  Ticks now = 1;
  for (auto _ : state) {
    high.id = JobId(next++);
    Job job = jobs.Create(high);
    job.OnSubmitted(now);
    const PlaceResult result = pool.TryPlace(job, now);
    benchmark::DoNotOptimize(result.suspended.size());
    // Complete the preemptor; its victim resumes via backfill.
    pool.OnJobCompleted(jobs.at(high.id), ++now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolPreemptionPath);

void BM_EndToEndSimulation(benchmark::State& state) {
  const runner::Scenario scenario = runner::NormalLoadScenario(0.05);
  const workload::Trace trace = workload::GenerateTrace(scenario.workload);
  std::uint64_t events = 0;
  for (auto _ : state) {
    sched::RoundRobinScheduler scheduler;
    const auto policy = core::MakePolicy(core::PolicyKind::kResSusUtil);
    cluster::NetBatchSimulation simulation(scenario.cluster, trace, scheduler,
                                           *policy);
    simulation.Run();
    events += simulation.simulator().FiredEvents();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = fired events");
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

// Counter-registry hot path: the per-event cost the engine pays for its
// observability counters (resolve once, one integer add per Increment).
void BM_CounterIncrement(benchmark::State& state) {
  CounterRegistry registry;
  Counter* counter = &registry.GetCounter("bench.events");
  for (auto _ : state) {
    counter->Increment();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncrement);

// End-to-end simulation with the invariant auditor fully on (periodic
// cluster-wide audits plus a pool-local audit on every transition) —
// compare against BM_EndToEndSimulation for the audit overhead.
void BM_EndToEndSimulationAudited(benchmark::State& state) {
  const runner::Scenario scenario = runner::NormalLoadScenario(0.05);
  const workload::Trace trace = workload::GenerateTrace(scenario.workload);
  std::uint64_t events = 0;
  for (auto _ : state) {
    sched::RoundRobinScheduler scheduler;
    const auto policy = core::MakePolicy(core::PolicyKind::kResSusUtil);
    cluster::SimulationOptions options;
    options.audit_period = MinutesToTicks(30);
    options.audit_on_transitions = true;
    cluster::NetBatchSimulation simulation(scenario.cluster, trace, scheduler,
                                           *policy, options);
    simulation.Run();
    events += simulation.simulator().FiredEvents();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = fired events");
}
BENCHMARK(BM_EndToEndSimulationAudited)->Unit(benchmark::kMillisecond);

}  // namespace

// Placement-engine benchmarks at paper-scale pool sizes ("tens of
// thousands of machines" per pool, §2.1).
//
// Each benchmark isolates one pool-scheduling path that used to be linear
// in machine count:
//   * first-fit placement when the only free machine is at the end of the
//     machine table (the saturated-pool common case);
//   * submission to a fully busy pool (step-1 scan + step-2 preemption scan
//     + enqueue), the dominant path of every standing backlog;
//   * preemption placement when the preemptible machines sit behind a long
//     prefix of non-preemptible ones;
//   * the HasEligibleMachine capacity probe the virtual pool manager issues
//     per candidate pool per decision;
//   * backfill against a machine with free cores but no free memory, in
//     front of a deep wait queue (the ScheduleNextOn gate).
// BM_EndToEndLargePool runs the bigpool scenario end to end; canonical
// before/after numbers live in BENCH_placement.json.
#include <benchmark/benchmark.h>

#include "cluster/pool.h"
#include "cluster/simulation.h"
#include "core/policies.h"
#include "runner/scenarios.h"
#include "sched/round_robin.h"
#include "workload/generator.h"

namespace {

using namespace netbatch;
using namespace netbatch::cluster;

workload::JobSpec MakeSpec(JobId::ValueType id, std::int32_t cores,
                           std::int64_t memory_mb, Ticks runtime_minutes,
                           workload::Priority priority = workload::kLowPriority,
                           workload::OwnerId owner = workload::kNoOwner) {
  workload::JobSpec spec;
  spec.id = JobId(id);
  spec.cores = cores;
  spec.memory_mb = memory_mb;
  spec.runtime = MinutesToTicks(runtime_minutes);
  spec.priority = priority;
  spec.owner = owner;
  return spec;
}

MachineArena UniformMachines(JobTable& jobs, int count,
                             std::int32_t cores = 8,
                             std::int64_t memory_mb = 64 * 1024,
                             std::int32_t owner = -1) {
  MachineArena machines(PoolId(0), jobs);
  machines.Reserve(static_cast<std::size_t>(count));
  for (int m = 0; m < count; ++m) {
    machines.Add(cores, memory_mb, 1.0, owner);
  }
  return machines;
}

// Fills every machine of `pool` with one `cores`-wide pinned job. Returns
// the first unused job id.
JobId::ValueType Saturate(PhysicalPool& pool, JobTable& jobs, int machines,
                          std::int32_t cores, JobId::ValueType next,
                          workload::Priority priority = workload::kLowPriority) {
  for (int m = 0; m < machines; ++m) {
    Job job = jobs.Create(MakeSpec(next++, cores, 1024, 100000, priority));
    job.OnSubmitted(0);
    const PlaceResult result = pool.TryPlace(job, 0);
    NETBATCH_CHECK(result.outcome == PlaceOutcome::kStarted,
                   "saturation job failed to start");
  }
  return next;
}

// First-fit when machines [0, N-1) are fully busy: the scan (or index
// lookup) must locate the lone free machine at the very end of the table.
void BM_FirstFitLastFreeMachine(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  JobTable jobs;
  PhysicalPool pool(PoolId(0), UniformMachines(jobs, machines), jobs,
                    /*suspended_holds_memory=*/true);
  JobId::ValueType next =
      Saturate(pool, jobs, machines - 1, /*cores=*/8, /*next=*/0);
  Ticks now = 1;
  for (auto _ : state) {
    Job job = jobs.Create(MakeSpec(next++, 2, 1024, 10));
    job.OnSubmitted(now);
    const PlaceResult result = pool.TryPlace(job, now);
    benchmark::DoNotOptimize(result.machine);
    pool.OnJobCompleted(job, ++now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FirstFitLastFreeMachine)->Arg(1024)->Arg(10000)->Arg(40000);

// Submission to a fully busy pool of equal-priority work: step 1 finds no
// free machine, step 2 finds no preemptible one, the job queues. This is
// the per-arrival cost of a standing backlog.
void BM_SaturatedSubmitToQueue(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  JobTable jobs;
  PhysicalPool pool(PoolId(0), UniformMachines(jobs, machines), jobs,
                    /*suspended_holds_memory=*/true);
  JobId::ValueType next = Saturate(pool, jobs, machines, /*cores=*/8, 0);
  Ticks now = 1;
  for (auto _ : state) {
    Job job = jobs.Create(MakeSpec(next++, 2, 1024, 10));
    job.OnSubmitted(now);
    const PlaceResult result = pool.TryPlace(job, now);
    NETBATCH_CHECK(result.outcome == PlaceOutcome::kQueued, "expected queue");
    pool.KillJob(job, ++now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SaturatedSubmitToQueue)->Arg(1024)->Arg(10000)->Arg(40000);

// Preemption placement where the first half of the machine table runs
// non-preemptible high-priority work: the victim search must skip it all
// (linearly, or via the preemptible-priority summary).
void BM_PreemptionBehindBusyPrefix(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  JobTable jobs;
  PhysicalPool pool(PoolId(0), UniformMachines(jobs, machines), jobs,
                    /*suspended_holds_memory=*/true);
  JobId::ValueType next = 0;
  next = Saturate(pool, jobs, machines / 2, /*cores=*/8, next,
                  workload::kHighPriority);
  next = Saturate(pool, jobs, machines / 2, /*cores=*/8, next,
                  workload::kLowPriority);
  Ticks now = 1;
  for (auto _ : state) {
    Job job = jobs.Create(
        MakeSpec(next++, 8, 1024, 5, workload::kHighPriority));
    job.OnSubmitted(now);
    const PlaceResult result = pool.TryPlace(job, now);
    NETBATCH_CHECK(result.outcome == PlaceOutcome::kStarted &&
                       !result.suspended.empty(),
                   "expected a preemption start");
    // Completing the preemptor resumes its victim: steady state.
    pool.OnJobCompleted(job, ++now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreemptionBehindBusyPrefix)->Arg(1024)->Arg(10000)->Arg(40000);

// The virtual pool manager's capacity probe for a job no machine can ever
// run — issued once per candidate pool per placement/rescheduling decision.
void BM_HasEligibleMachineMiss(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  JobTable jobs;
  PhysicalPool pool(PoolId(0), UniformMachines(jobs, machines), jobs,
                    /*suspended_holds_memory=*/true);
  const workload::JobSpec spec = MakeSpec(0, 128, 1024, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.HasEligibleMachine(spec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HasEligibleMachineMiss)->Arg(1024)->Arg(10000)->Arg(40000);

// Backfill against a machine whose cores are free but whose memory is
// exhausted, with a deep wait queue of memory-hungry jobs: the
// ScheduleNextOn gate decides whether the whole queue is walked per call.
void BM_BackfillMemoryExhausted(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  JobTable jobs;
  MachineArena machines(PoolId(0), jobs);
  machines.Add(64, 64 * 1024, 1.0);
  PhysicalPool pool(PoolId(0), std::move(machines), jobs,
                    /*suspended_holds_memory=*/true);
  JobId::ValueType next = 0;
  // One job claims all memory but few cores.
  Job hog = jobs.Create(MakeSpec(next++, 2, 64 * 1024, 100000));
  hog.OnSubmitted(0);
  NETBATCH_CHECK(pool.TryPlace(hog, 0).outcome == PlaceOutcome::kStarted,
                 "hog failed to start");
  for (int w = 0; w < waiters; ++w) {
    Job job = jobs.Create(MakeSpec(next++, 1, 2048, 10));
    job.OnSubmitted(0);
    NETBATCH_CHECK(pool.TryPlace(job, 0).outcome == PlaceOutcome::kQueued,
                   "waiter failed to queue");
  }
  Ticks now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Backfill(MachineId(0), ++now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackfillMemoryExhausted)->Arg(1024)->Arg(16384);

// End-to-end bigpool run at a reduced scale (the canonical scale-1.0
// numbers come from `netbatch_cli --scenario=bigpool --profile`; see
// BENCH_placement.json).
void BM_EndToEndLargePool(benchmark::State& state) {
  const runner::Scenario scenario = runner::LargePoolScenario(0.1);
  const workload::Trace trace = workload::GenerateTrace(scenario.workload);
  std::uint64_t events = 0;
  for (auto _ : state) {
    sched::RoundRobinScheduler scheduler;
    const auto policy = core::MakePolicy(core::PolicyKind::kResSusUtil);
    NetBatchSimulation simulation(scenario.cluster, trace, scheduler, *policy);
    simulation.Run();
    events += simulation.simulator().FiredEvents();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = fired events");
}
BENCHMARK(BM_EndToEndLargePool)->Unit(benchmark::kMillisecond);

}  // namespace

// Reproduces the §3.2.1 "High Suspension Scenario": a trace engineered for
// a much higher suspend rate (paper: ~14%), where rescheduling suspended
// jobs finally moves the needle on the completion time of ALL jobs.
//
// Paper: 7% reduction in AvgCT over all jobs, 44% reduction in AvgCT over
// suspended jobs, with a ~14% suspend rate.
#include "bench/bench_common.h"

int main() {
  using namespace netbatch;
  const double scale = runner::DefaultScale();

  const auto results = bench::RunPolicySweep(
      "highsusp", runner::HighSuspensionScenario(scale),
      {core::PolicyKind::kNoRes, core::PolicyKind::kResSusUtil});

  bench::PrintHeader("High-suspension scenario (paper 3.2.1)", scale,
                     results.front().trace_stats);
  bench::PrintComparison(results);

  const double ct_all_drop =
      1.0 - results[1].report.avg_ct_all_minutes /
                results[0].report.avg_ct_all_minutes;
  const double ct_susp_drop =
      1.0 - results[1].report.avg_ct_suspended_minutes /
                results[0].report.avg_ct_suspended_minutes;
  std::printf(
      "AvgCT(all) reduction:  %.1f%% (paper: ~7%%)\n"
      "AvgCT(susp) reduction: %.1f%% (paper: ~44%%)\n",
      ct_all_drop * 100, ct_susp_drop * 100);
  return 0;
}

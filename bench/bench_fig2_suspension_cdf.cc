// Reproduces Figure 2: the CDF of job suspension time over a year-long
// trace under the NetBatch baseline (no rescheduling).
//
// Paper headline numbers: median 437 minutes, mean 905 minutes, 20% of
// suspended jobs above 1100 minutes, long tail past 100k minutes.
#include <cstdlib>

#include "analysis/plot.h"
#include "analysis/suspension.h"
#include "bench/bench_common.h"

int main() {
  using namespace netbatch;
  const double scale = runner::YearLongDefaultScale();

  // Keep memory bounded over 500k simulated minutes: sample every 10
  // minutes instead of every minute (the CDF does not use the samples).
  cluster::SimulationOptions sim_options;
  sim_options.sample_period = MinutesToTicks(10);
  const auto result = runner::RunSingle(
      runner::SpecBuilder()
          .Scenario("year", runner::YearLongScenario(scale))
          .Policy(core::PolicyKind::kNoRes)
          .SimOptions(sim_options)
          .DisplayLabel("NoRes")
          .Build());

  bench::PrintHeader("Figure 2: CDF of job suspension time (year, NoRes)",
                     scale, result.trace_stats);
  std::printf("%s\n",
              analysis::RenderSuspensionCdf(result.suspension_cdf).c_str());
  if (const char* dir = std::getenv("NB_PLOT_DIR")) {
    const std::string script =
        analysis::WriteSuspensionCdfPlot(dir, result.suspension_cdf);
    std::printf("wrote gnuplot script: %s\n", script.c_str());
  }
  return 0;
}

// Reproduces Table 4: waiting-job rescheduling (30-minute threshold) under
// high load with the round-robin initial scheduler.
//
// Paper (Table 4):
//   NoRes           suspend 1.26%  AvgCT(susp) 5846.1  AvgCT(all) 988.7
//                   AvgST 4402.4   AvgWCT 450.1
//   ResSusWaitUtil  suspend 1.46%  AvgCT(susp) 1224.3  AvgCT(all) 951.4
//                   AvgST 72.7     AvgWCT 414.2
//   ResSusWaitRand  suspend 1.50%  AvgCT(susp) 1417    AvgCT(all) 954.7
//                   AvgST 62.3     AvgWCT 417.6
// Expected shape: adding wait rescheduling beats suspended-only rescheduling
// (79% AvgCT(susp) reduction), and the RANDOM variant now performs almost
// as well as the utilization-based one thanks to repeated second chances.
#include "bench/bench_common.h"

int main() {
  using namespace netbatch;
  const double scale = runner::DefaultScale();

  // Threshold: 30 minutes, "about twice the expected average waiting time
  // in the original system" (§3.3).
  const auto results = bench::RunPolicySweep(
      "high", runner::HighLoadScenario(scale),
      {core::PolicyKind::kNoRes, core::PolicyKind::kResSusWaitUtil,
       core::PolicyKind::kResSusWaitRand},
      runner::InitialSchedulerKind::kRoundRobin, MinutesToTicks(30));

  bench::PrintHeader(
      "Table 4: +waiting-job rescheduling, high load, round-robin initial",
      scale, results.front().trace_stats);
  bench::PrintComparison(results);
  return 0;
}

// Ablation benches for the design choices DESIGN.md calls out:
//
//   A. Wait-rescheduling threshold sweep (paper fixes 30 minutes, "about
//      twice the expected average waiting time"; §3.3).
//   B. Utilization-information staleness for the utilization-based initial
//      scheduler (the paper notes exact implementation "can be impractical
//      ... given the unavoidable propagation latency"; §3.2.2).
//   C. Restart overhead (paper future work: "network delays and other
//      rescheduling associated overheads"; §5).
//   D. ResSusUtil's retain rule on/off (the worst-case guarantee of §3.2.1).
//   E. Host-level resume-first vs strict pool-priority resumption.
//   F. Extension selectors (§5: "multiple metrics ... queue lengths,
//      prediction of job completion times"): shortest-queue and
//      predicted-delay alternate-pool selection.
//
// Every section is a spec grid replayed on one shared trace via
// RunSweepOnTrace, so variants within a section execute in parallel.
#include <memory>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/load_predictor.h"
#include "core/pool_selector.h"

using namespace netbatch;

namespace {

// Base spec for every ablation: high load, round-robin initial scheduler.
// Ablations only read job-level aggregates, so per-minute sampling is off.
runner::SpecBuilder HighLoadSpec(double scale) {
  cluster::SimulationOptions sim_options;
  sim_options.sampling_enabled = false;
  runner::SpecBuilder builder;
  builder.Scenario("high", runner::HighLoadScenario(scale))
      .SimOptions(sim_options);
  return builder;
}

std::vector<runner::ExperimentResult> SweepOnTrace(
    std::vector<runner::ExperimentSpec> specs, const workload::Trace& trace) {
  return std::move(
      runner::RunSweepOnTrace(std::move(specs), trace).results);
}

void ThresholdSweep(double scale, const workload::Trace& trace) {
  std::printf("--- A. Wait-rescheduling threshold sweep (ResSusWaitUtil, "
              "high load) ---\n");
  const std::vector<int> thresholds = {5, 15, 30, 60, 120, 240};
  std::vector<runner::ExperimentSpec> specs;
  for (const int minutes : thresholds) {
    specs.push_back(HighLoadSpec(scale)
                        .Policy(core::PolicyKind::kResSusWaitUtil)
                        .WaitThreshold(MinutesToTicks(minutes))
                        .Build());
  }
  const auto results = SweepOnTrace(std::move(specs), trace);

  TextTable table({"Threshold (min)", "AvgCT Suspend", "AvgCT All", "AvgWCT",
                   "Restarts"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.AddRow({
        std::to_string(thresholds[i]),
        TextTable::Fixed(results[i].report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(results[i].report.avg_ct_all_minutes, 1),
        TextTable::Fixed(results[i].report.avg_wct_minutes, 1),
        std::to_string(results[i].report.reschedule_count),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void StalenessSweep(double scale, const workload::Trace& trace) {
  std::printf("--- B. Utilization-snapshot staleness (util initial "
              "scheduler, ResSusUtil, high load) ---\n");
  const std::vector<int> staleness = {0, 5, 30, 120, 240};
  std::vector<runner::ExperimentSpec> specs;
  for (const int minutes : staleness) {
    specs.push_back(HighLoadSpec(scale)
                        .Scheduler(runner::InitialSchedulerKind::kUtilization,
                                   MinutesToTicks(minutes))
                        .Policy(core::PolicyKind::kResSusUtil)
                        .Build());
  }
  const auto results = SweepOnTrace(std::move(specs), trace);

  TextTable table({"Staleness (min)", "Suspend rate", "AvgCT All", "AvgWCT"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.AddRow({
        std::to_string(staleness[i]),
        TextTable::Percent(results[i].report.suspend_rate, 2),
        TextTable::Fixed(results[i].report.avg_ct_all_minutes, 1),
        TextTable::Fixed(results[i].report.avg_wct_minutes, 1),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void OverheadSweep(double scale, const workload::Trace& trace) {
  std::printf("--- C. Restart overhead sweep (ResSusWaitRand, high load) "
              "---\n");
  const std::vector<int> overheads = {0, 5, 15, 60, 120};
  std::vector<runner::ExperimentSpec> specs;
  for (const int minutes : overheads) {
    runner::ExperimentSpec spec = HighLoadSpec(scale)
                                      .Policy(core::PolicyKind::kResSusWaitRand)
                                      .Build();
    spec.sim_options.restart_overhead = MinutesToTicks(minutes);
    specs.push_back(std::move(spec));
  }
  const auto results = SweepOnTrace(std::move(specs), trace);

  TextTable table({"Overhead (min)", "AvgCT Suspend", "AvgWCT", "Restarts"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.AddRow({
        std::to_string(overheads[i]),
        TextTable::Fixed(results[i].report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(results[i].report.avg_wct_minutes, 1),
        std::to_string(results[i].report.reschedule_count),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void RetainRuleAblation(double scale, const workload::Trace& trace) {
  std::printf("--- D. ResSusUtil retain rule (high load) ---\n");
  std::vector<runner::ExperimentSpec> specs;
  for (const bool retain : {true, false}) {
    const char* label = retain ? "with retain rule" : "always move";
    specs.push_back(
        HighLoadSpec(scale)
            .CustomPolicy(label,
                          [retain](std::uint64_t) {
                            runner::PolicyInstance instance;
                            instance.policy = std::make_unique<
                                core::CompositeReschedulingPolicy>(
                                std::make_unique<
                                    core::LowestUtilizationSelector>(retain),
                                nullptr, Ticks{0});
                            return instance;
                          })
            .DisplayLabel(label)
            .Build());
  }
  const auto results = SweepOnTrace(std::move(specs), trace);

  TextTable table({"Variant", "AvgCT Suspend", "AvgCT All", "AvgWCT"});
  for (const auto& result : results) {
    table.AddRow({
        result.report.label,
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_ct_all_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void ResumeSemanticsAblation(double scale, const workload::Trace& trace) {
  std::printf("--- E. Host-level resume-first vs pool-priority resumption "
              "(NoRes, high load) ---\n");
  std::vector<runner::ExperimentSpec> specs;
  for (const bool local_first : {true, false}) {
    runner::ExperimentSpec spec =
        HighLoadSpec(scale)
            .Policy(core::PolicyKind::kNoRes)
            .DisplayLabel(local_first ? "host resumes own jobs first"
                                      : "strict pool priority")
            .Build();
    spec.scenario.cluster.local_resume_first = local_first;
    specs.push_back(std::move(spec));
  }
  const auto results = SweepOnTrace(std::move(specs), trace);

  TextTable table({"Resumption", "Suspend rate", "AvgCT Suspend", "AvgST",
                   "AvgWCT"});
  for (const auto& result : results) {
    table.AddRow({
        result.report.label,
        TextTable::Percent(result.report.suspend_rate, 2),
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_st_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void ExtensionSelectors(double scale, const workload::Trace& trace) {
  std::printf("--- F. Extension selectors for suspended+waiting "
              "rescheduling (high load) ---\n");
  // A selector pair per variant, built inside the run's policy factory.
  using SelectorFactory = std::unique_ptr<core::PoolSelector> (*)();
  struct Variant {
    const char* label;
    SelectorFactory make;
  };
  const std::vector<Variant> variants = {
      {"utilization",
       [] {
         return std::unique_ptr<core::PoolSelector>(
             std::make_unique<core::LowestUtilizationSelector>());
       }},
      {"shortest queue",
       [] {
         return std::unique_ptr<core::PoolSelector>(
             std::make_unique<core::ShortestQueueSelector>());
       }},
      {"predicted delay",
       [] {
         return std::unique_ptr<core::PoolSelector>(
             std::make_unique<core::PredictedDelaySelector>());
       }},
  };

  std::vector<runner::ExperimentSpec> specs;
  for (const Variant& variant : variants) {
    specs.push_back(
        HighLoadSpec(scale)
            .CustomPolicy(variant.label,
                          [make = variant.make](std::uint64_t) {
                            runner::PolicyInstance instance;
                            instance.policy = std::make_unique<
                                core::CompositeReschedulingPolicy>(
                                make(), make(), MinutesToTicks(30));
                            return instance;
                          })
            .DisplayLabel(variant.label)
            .Build());
  }
  {
    // Telemetry-driven variant: decisions from the sampled, EWMA-smoothed
    // monitoring stream rather than instantaneous global state.
    runner::ExperimentSpec spec =
        HighLoadSpec(scale)
            .CustomPolicy("telemetry predictor",
                          [](std::uint64_t) {
                            runner::PolicyInstance instance;
                            auto predictor =
                                std::make_unique<core::PoolLoadPredictor>(0.2);
                            instance.policy = std::make_unique<
                                core::CompositeReschedulingPolicy>(
                                std::make_unique<core::PredictorSelector>(
                                    *predictor),
                                std::make_unique<core::PredictorSelector>(
                                    *predictor),
                                MinutesToTicks(30));
                            instance.observers.push_back(std::move(predictor));
                            return instance;
                          })
            .DisplayLabel("telemetry predictor")
            .Build();
    spec.sim_options.sampling_enabled = true;  // feeds the predictor
    specs.push_back(std::move(spec));
  }
  const auto results = SweepOnTrace(std::move(specs), trace);

  TextTable table({"Selector", "AvgCT Suspend", "AvgCT All", "AvgWCT",
                   "Restarts"});
  for (const auto& result : results) {
    table.AddRow({
        result.report.label,
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_ct_all_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
        std::to_string(result.report.reschedule_count),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void InterSiteRescheduling(double scale, const workload::Trace& trace) {
  std::printf("--- H. Inter-site rescheduling with WAN transfer costs "
              "(high load) ---\n");
  struct Variant {
    bool cross_site;
    int wan_minutes;
    const char* label;
  };
  const std::vector<Variant> variants = {
      {false, 30, "in-site only"},
      {true, 0, "cross-site, free WAN"},
      {true, 30, "cross-site, 30min WAN"},
      {true, 120, "cross-site, 120min WAN"},
  };
  std::vector<runner::ExperimentSpec> specs;
  for (const Variant& variant : variants) {
    const bool cross_site = variant.cross_site;
    runner::ExperimentSpec spec =
        HighLoadSpec(scale)
            .CustomPolicy(variant.label,
                          [cross_site](std::uint64_t) {
                            runner::PolicyInstance instance;
                            instance.policy = std::make_unique<
                                core::CompositeReschedulingPolicy>(
                                std::make_unique<
                                    core::LowestUtilizationSelector>(
                                    true, cross_site),
                                std::make_unique<
                                    core::LowestUtilizationSelector>(
                                    true, cross_site),
                                MinutesToTicks(30));
                            return instance;
                          })
            .DisplayLabel(variant.label)
            .Build();
    spec.sim_options.transfer_matrix = runner::BuildTransferMatrix(
        spec.scenario, MinutesToTicks(2), MinutesToTicks(variant.wan_minutes));
    specs.push_back(std::move(spec));
  }
  const auto results = SweepOnTrace(std::move(specs), trace);

  TextTable table({"Scheme", "AvgCT Suspend", "AvgCT All", "AvgWCT",
                   "Restarts"});
  for (const auto& result : results) {
    table.AddRow({
        result.report.label,
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_ct_all_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
        std::to_string(result.report.reschedule_count),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void CheckpointSweep(double scale, const workload::Trace& trace) {
  std::printf("--- I. Checkpoint interval sweep (ResSusUtil, high load) "
              "---\n");
  const std::vector<int> intervals = {0, 10, 30, 120};
  std::vector<runner::ExperimentSpec> specs;
  for (const int minutes : intervals) {
    runner::ExperimentSpec spec = HighLoadSpec(scale)
                                      .Policy(core::PolicyKind::kResSusUtil)
                                      .Build();
    spec.sim_options.checkpoint_interval = MinutesToTicks(minutes);
    specs.push_back(std::move(spec));
  }
  const auto results = SweepOnTrace(std::move(specs), trace);

  TextTable table({"Checkpoint (work min)", "AvgCT Suspend",
                   "Resched waste", "AvgWCT"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.AddRow({
        intervals[i] == 0 ? std::string("none (paper baseline)")
                          : std::to_string(intervals[i]),
        TextTable::Fixed(results[i].report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(results[i].report.avg_resched_waste_minutes, 2),
        TextTable::Fixed(results[i].report.avg_wct_minutes, 1),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void DuplicationComparison(double scale, const workload::Trace& trace) {
  std::printf("--- G. Duplication extension vs restart (high load) ---\n");
  std::vector<runner::ExperimentSpec> specs;
  specs.push_back(HighLoadSpec(scale)
                      .Policy(core::PolicyKind::kNoRes)
                      .DisplayLabel("NoRes")
                      .Build());
  specs.push_back(HighLoadSpec(scale)
                      .Policy(core::PolicyKind::kResSusUtil)
                      .DisplayLabel("ResSusUtil (restart)")
                      .Build());
  specs.push_back(HighLoadSpec(scale)
                      .Duplication()
                      .DisplayLabel("DupSusUtil (duplicate)")
                      .Build());
  const auto results = SweepOnTrace(std::move(specs), trace);

  TextTable table({"Scheme", "Suspend rate", "AvgCT Suspend", "AvgCT All",
                   "AvgWCT"});
  for (const auto& result : results) {
    table.AddRow({
        result.report.label,
        TextTable::Percent(result.report.suspend_rate, 2),
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_ct_all_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void OutageSweep(double scale, const workload::Trace& trace) {
  std::printf("--- J. Machine churn (failure injection, high load) ---\n");
  // Without checkpoints the heavy-tailed (up to 100k-minute) jobs cannot
  // survive frequent eviction, so the aggressive-churn rows also enable
  // 30-minute checkpointing — the combination a real deployment would run.
  struct Variant {
    double mtbf_days;
    bool checkpoint;
  };
  const std::vector<Variant> variants = {
      {0.0, false}, {30.0, false}, {30.0, true}, {7.0, true}};
  const std::vector<core::PolicyKind> policies = {
      core::PolicyKind::kNoRes, core::PolicyKind::kResSusWaitUtil};

  std::vector<runner::ExperimentSpec> specs;
  std::vector<std::string> row_labels;
  for (const Variant& variant : variants) {
    for (const core::PolicyKind policy : policies) {
      runner::ExperimentSpec spec =
          HighLoadSpec(scale).Policy(policy).Build();
      spec.sim_options.outages.mtbf_minutes = variant.mtbf_days * 24 * 60;
      if (variant.checkpoint) {
        spec.sim_options.checkpoint_interval = MinutesToTicks(30);
      }
      specs.push_back(std::move(spec));
      row_labels.push_back(
          (variant.mtbf_days == 0
               ? std::string("none")
               : std::to_string(static_cast<int>(variant.mtbf_days)) + "d") +
          (variant.checkpoint ? "+ckpt" : ""));
    }
  }
  const auto results = SweepOnTrace(std::move(specs), trace);

  TextTable table({"MTBF", "Policy", "AvgCT All", "AvgWCT", "Outages",
                   "Evictions"});
  std::size_t i = 0;
  for (const Variant& variant : variants) {
    (void)variant;
    for (const core::PolicyKind policy : policies) {
      table.AddRow({
          row_labels[i],
          core::ToString(policy),
          TextTable::Fixed(results[i].report.avg_ct_all_minutes, 1),
          TextTable::Fixed(results[i].report.avg_wct_minutes, 1),
          std::to_string(results[i].report.outage_count),
          std::to_string(results[i].report.eviction_count),
      });
      ++i;
    }
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main() {
  const double scale = runner::DefaultScale();
  const workload::Trace trace =
      runner::GenerateSpecTrace(HighLoadSpec(scale).Build());

  bench::PrintHeader("Ablations (design-choice sweeps)", scale, trace.Stats());
  ThresholdSweep(scale, trace);
  StalenessSweep(scale, trace);
  OverheadSweep(scale, trace);
  RetainRuleAblation(scale, trace);
  ResumeSemanticsAblation(scale, trace);
  ExtensionSelectors(scale, trace);
  InterSiteRescheduling(scale, trace);
  CheckpointSweep(scale, trace);
  DuplicationComparison(scale, trace);
  OutageSweep(scale, trace);
  return 0;
}

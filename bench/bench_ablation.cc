// Ablation benches for the design choices DESIGN.md calls out:
//
//   A. Wait-rescheduling threshold sweep (paper fixes 30 minutes, "about
//      twice the expected average waiting time"; §3.3).
//   B. Utilization-information staleness for the utilization-based initial
//      scheduler (the paper notes exact implementation "can be impractical
//      ... given the unavoidable propagation latency"; §3.2.2).
//   C. Restart overhead (paper future work: "network delays and other
//      rescheduling associated overheads"; §5).
//   D. ResSusUtil's retain rule on/off (the worst-case guarantee of §3.2.1).
//   E. Host-level resume-first vs strict pool-priority resumption.
//   F. Extension selectors (§5: "multiple metrics ... queue lengths,
//      prediction of job completion times"): shortest-queue and
//      predicted-delay alternate-pool selection.
#include <memory>

#include "bench/bench_common.h"
#include "common/table.h"
#include "core/load_predictor.h"
#include "core/pool_selector.h"

using namespace netbatch;

namespace {

runner::ExperimentConfig HighLoadConfig(double scale) {
  runner::ExperimentConfig config;
  config.scenario = runner::HighLoadScenario(scale);
  // Ablations only read job-level aggregates; skip per-minute sampling.
  config.sim_options.sampling_enabled = false;
  return config;
}

void ThresholdSweep(double scale, const workload::Trace& trace) {
  std::printf("--- A. Wait-rescheduling threshold sweep (ResSusWaitUtil, "
              "high load) ---\n");
  TextTable table({"Threshold (min)", "AvgCT Suspend", "AvgCT All", "AvgWCT",
                   "Restarts"});
  for (const int minutes : {5, 15, 30, 60, 120, 240}) {
    runner::ExperimentConfig config = HighLoadConfig(scale);
    config.policy = core::PolicyKind::kResSusWaitUtil;
    config.policy_options.wait_threshold = MinutesToTicks(minutes);
    const auto result = runner::RunExperimentOnTrace(config, trace);
    table.AddRow({
        std::to_string(minutes),
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_ct_all_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
        std::to_string(result.report.reschedule_count),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void StalenessSweep(double scale, const workload::Trace& trace) {
  std::printf("--- B. Utilization-snapshot staleness (util initial "
              "scheduler, ResSusUtil, high load) ---\n");
  TextTable table({"Staleness (min)", "Suspend rate", "AvgCT All", "AvgWCT"});
  for (const int minutes : {0, 5, 30, 120, 240}) {
    runner::ExperimentConfig config = HighLoadConfig(scale);
    config.scheduler = runner::InitialSchedulerKind::kUtilization;
    config.scheduler_staleness = MinutesToTicks(minutes);
    config.policy = core::PolicyKind::kResSusUtil;
    const auto result = runner::RunExperimentOnTrace(config, trace);
    table.AddRow({
        std::to_string(minutes),
        TextTable::Percent(result.report.suspend_rate, 2),
        TextTable::Fixed(result.report.avg_ct_all_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void OverheadSweep(double scale, const workload::Trace& trace) {
  std::printf("--- C. Restart overhead sweep (ResSusWaitRand, high load) "
              "---\n");
  TextTable table({"Overhead (min)", "AvgCT Suspend", "AvgWCT", "Restarts"});
  for (const int minutes : {0, 5, 15, 60, 120}) {
    runner::ExperimentConfig config = HighLoadConfig(scale);
    config.policy = core::PolicyKind::kResSusWaitRand;
    config.sim_options.restart_overhead = MinutesToTicks(minutes);
    const auto result = runner::RunExperimentOnTrace(config, trace);
    table.AddRow({
        std::to_string(minutes),
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
        std::to_string(result.report.reschedule_count),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void RetainRuleAblation(double scale, const workload::Trace& trace) {
  std::printf("--- D. ResSusUtil retain rule (high load) ---\n");
  TextTable table({"Variant", "AvgCT Suspend", "AvgCT All", "AvgWCT"});
  for (const bool retain : {true, false}) {
    runner::ExperimentConfig config = HighLoadConfig(scale);
    core::CompositeReschedulingPolicy policy(
        std::make_unique<core::LowestUtilizationSelector>(retain), nullptr,
        Ticks{0});
    const auto result = runner::RunExperimentWithPolicy(
        config, trace, policy,
        retain ? "with retain rule" : "always move");
    table.AddRow({
        result.report.label,
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_ct_all_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void ResumeSemanticsAblation(double scale, const workload::Trace& trace) {
  std::printf("--- E. Host-level resume-first vs pool-priority resumption "
              "(NoRes, high load) ---\n");
  TextTable table({"Resumption", "Suspend rate", "AvgCT Suspend", "AvgST",
                   "AvgWCT"});
  for (const bool local_first : {true, false}) {
    runner::ExperimentConfig config = HighLoadConfig(scale);
    config.scenario.cluster.local_resume_first = local_first;
    config.policy = core::PolicyKind::kNoRes;
    const auto result = runner::RunExperimentOnTrace(config, trace);
    table.AddRow({
        local_first ? "host resumes own jobs first" : "strict pool priority",
        TextTable::Percent(result.report.suspend_rate, 2),
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_st_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void ExtensionSelectors(double scale, const workload::Trace& trace) {
  std::printf("--- F. Extension selectors for suspended+waiting "
              "rescheduling (high load) ---\n");
  TextTable table({"Selector", "AvgCT Suspend", "AvgCT All", "AvgWCT",
                   "Restarts"});
  const auto run = [&](std::unique_ptr<core::PoolSelector> suspend_selector,
                       std::unique_ptr<core::PoolSelector> wait_selector,
                       const char* label) {
    runner::ExperimentConfig config = HighLoadConfig(scale);
    core::CompositeReschedulingPolicy policy(std::move(suspend_selector),
                                             std::move(wait_selector),
                                             MinutesToTicks(30));
    const auto result =
        runner::RunExperimentWithPolicy(config, trace, policy, label);
    table.AddRow({
        result.report.label,
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_ct_all_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
        std::to_string(result.report.reschedule_count),
    });
  };
  run(std::make_unique<core::LowestUtilizationSelector>(),
      std::make_unique<core::LowestUtilizationSelector>(), "utilization");
  run(std::make_unique<core::ShortestQueueSelector>(),
      std::make_unique<core::ShortestQueueSelector>(), "shortest queue");
  run(std::make_unique<core::PredictedDelaySelector>(),
      std::make_unique<core::PredictedDelaySelector>(), "predicted delay");
  {
    // Telemetry-driven variant: decisions from the sampled, EWMA-smoothed
    // monitoring stream rather than instantaneous global state.
    runner::ExperimentConfig config = HighLoadConfig(scale);
    config.sim_options.sampling_enabled = true;  // feeds the predictor
    core::PoolLoadPredictor predictor(0.2);
    core::CompositeReschedulingPolicy policy(
        std::make_unique<core::PredictorSelector>(predictor),
        std::make_unique<core::PredictorSelector>(predictor),
        MinutesToTicks(30));
    const auto result = runner::RunExperimentWithPolicy(
        config, trace, policy, "telemetry predictor", {&predictor});
    table.AddRow({
        result.report.label,
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_ct_all_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
        std::to_string(result.report.reschedule_count),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void InterSiteRescheduling(double scale, const workload::Trace& trace) {
  std::printf("--- H. Inter-site rescheduling with WAN transfer costs "
              "(high load) ---\n");
  TextTable table({"Scheme", "AvgCT Suspend", "AvgCT All", "AvgWCT",
                   "Restarts"});
  const auto run = [&](bool cross_site, Ticks wan_minutes,
                       const std::string& label) {
    runner::ExperimentConfig config = HighLoadConfig(scale);
    config.sim_options.transfer_matrix = runner::BuildTransferMatrix(
        config.scenario, MinutesToTicks(2), wan_minutes);
    core::CompositeReschedulingPolicy policy(
        std::make_unique<core::LowestUtilizationSelector>(true, cross_site),
        std::make_unique<core::LowestUtilizationSelector>(true, cross_site),
        MinutesToTicks(30));
    const auto result =
        runner::RunExperimentWithPolicy(config, trace, policy, label);
    table.AddRow({
        result.report.label,
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_ct_all_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
        std::to_string(result.report.reschedule_count),
    });
  };
  run(false, MinutesToTicks(30), "in-site only");
  run(true, MinutesToTicks(0), "cross-site, free WAN");
  run(true, MinutesToTicks(30), "cross-site, 30min WAN");
  run(true, MinutesToTicks(120), "cross-site, 120min WAN");
  std::printf("%s\n", table.Render().c_str());
}

void CheckpointSweep(double scale, const workload::Trace& trace) {
  std::printf("--- I. Checkpoint interval sweep (ResSusUtil, high load) "
              "---\n");
  TextTable table({"Checkpoint (work min)", "AvgCT Suspend",
                   "Resched waste", "AvgWCT"});
  for (const int minutes : {0, 10, 30, 120}) {
    runner::ExperimentConfig config = HighLoadConfig(scale);
    config.policy = core::PolicyKind::kResSusUtil;
    config.sim_options.checkpoint_interval = MinutesToTicks(minutes);
    const auto result = runner::RunExperimentOnTrace(config, trace);
    table.AddRow({
        minutes == 0 ? std::string("none (paper baseline)")
                     : std::to_string(minutes),
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_resched_waste_minutes, 2),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
    });
  }
  std::printf("%s\n", table.Render().c_str());
}

void DuplicationComparison(double scale, const workload::Trace& trace) {
  std::printf("--- G. Duplication extension vs restart (high load) ---\n");
  TextTable table({"Scheme", "Suspend rate", "AvgCT Suspend", "AvgCT All",
                   "AvgWCT"});
  const auto run = [&](std::unique_ptr<cluster::ReschedulingPolicy> policy,
                       const char* label) {
    runner::ExperimentConfig config = HighLoadConfig(scale);
    const auto result =
        runner::RunExperimentWithPolicy(config, trace, *policy, label);
    table.AddRow({
        result.report.label,
        TextTable::Percent(result.report.suspend_rate, 2),
        TextTable::Fixed(result.report.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(result.report.avg_ct_all_minutes, 1),
        TextTable::Fixed(result.report.avg_wct_minutes, 1),
    });
  };
  run(core::MakePolicy(core::PolicyKind::kNoRes), "NoRes");
  run(core::MakePolicy(core::PolicyKind::kResSusUtil),
      "ResSusUtil (restart)");
  run(core::MakeDuplicationPolicy(), "DupSusUtil (duplicate)");
  std::printf("%s\n", table.Render().c_str());
}

void OutageSweep(double scale, const workload::Trace& trace) {
  std::printf("--- J. Machine churn (failure injection, high load) ---\n");
  TextTable table({"MTBF", "Policy", "AvgCT All", "AvgWCT", "Outages",
                   "Evictions"});
  // Without checkpoints the heavy-tailed (up to 100k-minute) jobs cannot
  // survive frequent eviction, so the aggressive-churn rows also enable
  // 30-minute checkpointing — the combination a real deployment would run.
  for (const auto& [mtbf_days, checkpoint] :
       std::initializer_list<std::pair<double, bool>>{
           {0.0, false}, {30.0, false}, {30.0, true}, {7.0, true}}) {
    for (const core::PolicyKind policy :
         {core::PolicyKind::kNoRes, core::PolicyKind::kResSusWaitUtil}) {
      runner::ExperimentConfig config = HighLoadConfig(scale);
      config.policy = policy;
      config.sim_options.outages.mtbf_minutes = mtbf_days * 24 * 60;
      if (checkpoint) {
        config.sim_options.checkpoint_interval = MinutesToTicks(30);
      }
      const workload::Trace& shared = trace;
      // RunExperimentOnTrace reads sim options incl. outages.
      const auto result = runner::RunExperimentOnTrace(config, shared);
      table.AddRow({
          (mtbf_days == 0 ? std::string("none")
                          : std::to_string(static_cast<int>(mtbf_days)) +
                                "d") + (checkpoint ? "+ckpt" : ""),
          core::ToString(policy),
          TextTable::Fixed(result.report.avg_ct_all_minutes, 1),
          TextTable::Fixed(result.report.avg_wct_minutes, 1),
          std::to_string(result.report.outage_count),
          std::to_string(result.report.eviction_count),
      });
    }
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main() {
  const double scale = runner::DefaultScale();
  const runner::ExperimentConfig base = HighLoadConfig(scale);
  const workload::Trace trace =
      workload::GenerateTrace(base.scenario.workload);

  bench::PrintHeader("Ablations (design-choice sweeps)", scale, trace.Stats());
  ThresholdSweep(scale, trace);
  StalenessSweep(scale, trace);
  OverheadSweep(scale, trace);
  RetainRuleAblation(scale, trace);
  ResumeSemanticsAblation(scale, trace);
  ExtensionSelectors(scale, trace);
  InterSiteRescheduling(scale, trace);
  CheckpointSweep(scale, trace);
  DuplicationComparison(scale, trace);
  OutageSweep(scale, trace);
  return 0;
}

// Durability benchmarks (BENCH_persist.json): WAL append throughput under
// the three fsync regimes (never / batched / every-record), snapshot
// write + load, SchedulerCore state export/import at 100k live jobs, and
// the recovery-plan scan rate over a long WAL.
//
// The end-to-end numbers (daemon throughput with --data-dir on vs off, and
// wall-clock recovery of a SIGKILLed daemon) come from netbatchd +
// netbatch_loadgen runs recorded alongside these in BENCH_persist.json —
// this binary measures the layers in isolation so regressions can be
// attributed.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "common/check.h"
#include "common/time.h"
#include "core/policies.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "sched/round_robin.h"
#include "service/scheduler_core.h"

using namespace netbatch;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The daemon arms real timers through its host; for a pure state benchmark
// deferred work can be dropped — nothing here advances time.
struct NullHost : sched::CoreHost {
  void ArmCompletion(cluster::Job, Ticks) override {}
  void CancelCompletion(cluster::Job) override {}
  void ArmWaitTimeout(cluster::Job, Ticks) override {}
  void ScheduleRestartDelivery(cluster::Job, PoolId, Ticks) override {}
  void OnJobTerminal(const cluster::Job&) override {}
};

cluster::ClusterConfig BenchCluster(std::uint32_t pools,
                                    std::int32_t machines_per_pool,
                                    std::int32_t cores_per_machine) {
  cluster::ClusterConfig config;
  for (std::uint32_t p = 0; p < pools; ++p) {
    cluster::MachineGroupConfig group;
    group.count = machines_per_pool;
    group.cores = cores_per_machine;
    group.memory_mb = 1 << 20;
    cluster::PoolConfig pool;
    pool.machine_groups.push_back(group);
    config.pools.push_back(pool);
  }
  return config;
}

class BenchDir {
 public:
  explicit BenchDir(const std::string& name)
      : path_("/tmp/nb_bench_persist_" + name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~BenchDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Models the serving loop: Append per record, Flush per ack batch. The
// fsync triggers fire (or not) at those flush boundaries exactly as they
// would in the daemon.
void BenchWalAppend(const char* label, std::uint32_t fsync_every,
                    std::uint32_t fsync_interval_ms, std::size_t records,
                    std::size_t batch, std::size_t payload_bytes) {
  BenchDir dir(std::string("wal_") + label);
  persist::WalOptions options;
  options.fsync_every = fsync_every;
  options.fsync_interval_ms = fsync_interval_ms;
  std::string error;
  auto wal = persist::WalWriter::Open(dir.path(), options, &error);
  NETBATCH_CHECK(wal != nullptr, error);

  const std::vector<std::uint8_t> payload(payload_bytes, 0x5a);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < records; ++i) {
    wal->Append(1, payload);
    if ((i + 1) % batch == 0) wal->Flush();
  }
  wal->Sync();
  const double seconds = SecondsSince(start);
  std::printf(
      "wal_append %s (fsync_every=%u interval_ms=%u batch=%zu): "
      "%zu records x %zuB in %.3fs -> %.0f records/s, %.1f MB/s\n",
      label, fsync_every, fsync_interval_ms, batch, records, payload_bytes,
      seconds, static_cast<double>(records) / seconds,
      static_cast<double>(wal->bytes_appended()) / seconds / 1e6);
}

}  // namespace

int main() {
  // --- WAL append throughput ----------------------------------------------
  // 96B payloads match the daemon's submit records (I64 now + JobSpec);
  // batch=256 records per Flush approximates one poll round of acks.
  BenchWalAppend("never", 0, 0, 200'000, 256, 96);
  BenchWalAppend("default_250ms", 0, 250, 200'000, 256, 96);
  BenchWalAppend("every_batch", 1, 0, 20'000, 256, 96);
  BenchWalAppend("strict_per_record", 1, 0, 2'000, 1, 96);

  // --- core export/import at 100k live jobs -------------------------------
  constexpr std::size_t kJobs = 100'000;
  const cluster::ClusterConfig config = BenchCluster(20, 1000, 8);
  sched::RoundRobinScheduler scheduler_a;
  core::PolicyOptions policy_options;
  auto policy_a = core::MakePolicy(core::PolicyKind::kNoRes, policy_options);
  NullHost host;
  sched::SchedulerCore core_a(config, scheduler_a, *policy_a, host);
  core_a.ReserveJobs(kJobs);
  {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t j = 0; j < kJobs; ++j) {
      workload::JobSpec spec;
      spec.id = JobId(static_cast<JobId::ValueType>(j + 1));
      spec.cores = 1;
      spec.memory_mb = 512;
      spec.runtime = MinutesToTicks(600);
      core_a.AdmitJob(std::move(spec));
      core_a.Submit(JobId(static_cast<JobId::ValueType>(j + 1)), 0);
    }
    std::printf("core_fill: %zu submits in %.3fs\n", kJobs,
                SecondsSince(start));
  }

  std::vector<std::uint8_t> payload;
  {
    const auto start = std::chrono::steady_clock::now();
    core_a.ExportState(payload);
    std::printf("core_export: %zu jobs -> %.1f MB in %.3fs\n", kJobs,
                static_cast<double>(payload.size()) / 1e6,
                SecondsSince(start));
  }

  BenchDir snap_dir("snapshot");
  {
    persist::SnapshotData snap;
    snap.lsn = kJobs;
    snap.payload = payload;
    std::string error;
    const auto start = std::chrono::steady_clock::now();
    NETBATCH_CHECK(persist::WriteSnapshot(snap_dir.path(), snap, &error),
                   error);
    std::printf("snapshot_write: %.1f MB in %.3fs (fsync'd, atomic rename)\n",
                static_cast<double>(payload.size()) / 1e6,
                SecondsSince(start));
  }
  {
    const auto start = std::chrono::steady_clock::now();
    const auto loaded = persist::LoadNewestSnapshot(snap_dir.path());
    NETBATCH_CHECK(loaded.has_value(), "snapshot load failed");
    std::printf("snapshot_load: %.1f MB in %.3fs (CRC-verified)\n",
                static_cast<double>(loaded->payload.size()) / 1e6,
                SecondsSince(start));
  }

  {
    sched::RoundRobinScheduler scheduler_b;
    auto policy_b = core::MakePolicy(core::PolicyKind::kNoRes, policy_options);
    sched::SchedulerCore core_b(config, scheduler_b, *policy_b, host);
    const auto start = std::chrono::steady_clock::now();
    NETBATCH_CHECK(core_b.ImportState(payload), "import failed");
    const double seconds = SecondsSince(start);
    std::vector<std::uint8_t> reexported;
    core_b.ExportState(reexported);
    NETBATCH_CHECK(reexported == payload, "roundtrip not byte-identical");
    std::printf("core_import: %zu jobs in %.3fs (re-export byte-identical)\n",
                kJobs, seconds);
  }

  // --- recovery-plan scan over a long WAL ---------------------------------
  {
    BenchDir dir("recovery_scan");
    persist::WalOptions options;
    options.fsync_every = 0;
    std::string error;
    auto wal = persist::WalWriter::Open(dir.path(), options, &error);
    NETBATCH_CHECK(wal != nullptr, error);
    const std::vector<std::uint8_t> record(96, 0x5a);
    constexpr std::size_t kRecords = 200'000;
    for (std::size_t i = 0; i < kRecords; ++i) wal->Append(1, record);
    wal->Sync();
    wal.reset();
    const auto start = std::chrono::steady_clock::now();
    const persist::RecoveryPlan plan = persist::BuildRecoveryPlan(dir.path());
    const double seconds = SecondsSince(start);
    NETBATCH_CHECK(plan.tail.size() == kRecords, "scan lost records");
    std::printf(
        "recovery_plan_scan: %zu records CRC-validated in %.3fs -> "
        "%.0f records/s\n",
        kRecords, seconds, static_cast<double>(kRecords) / seconds);
  }

  return 0;
}

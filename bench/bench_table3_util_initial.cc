// Reproduces Table 3: NoRes / ResSusUtil / ResSusRand under high load with
// the UTILIZATION-BASED initial scheduler.
//
// Paper (Table 3):
//   NoRes       suspend 1.50%  AvgCT(susp) 5936.0  AvgCT(all) 994.2
//               AvgST 4916     AvgWCT 456.6
//   ResSusUtil  suspend 1.72%  AvgCT(susp) 1466.9  AvgCT(all) 946.2
//               AvgST 84.5     AvgWCT 407.6
//   ResSusRand  suspend 1.62%  AvgCT(susp) 7979.9  AvgCT(all) 1229.9
//               AvgST 72.3     AvgWCT 686.8
// Expected shape: rescheduling keeps working under a different initial
// scheduler (~75% AvgCT(susp) reduction, ~11% AvgWCT reduction).
#include "bench/bench_common.h"

int main() {
  using namespace netbatch;
  const double scale = runner::DefaultScale();

  const auto results = bench::RunPolicySweep(
      "high", runner::HighLoadScenario(scale),
      {core::PolicyKind::kNoRes, core::PolicyKind::kResSusUtil,
       core::PolicyKind::kResSusRand},
      runner::InitialSchedulerKind::kUtilization);

  bench::PrintHeader(
      "Table 3: high load, utilization-based initial scheduler", scale,
      results.front().trace_stats);
  bench::PrintComparison(results);
  return 0;
}

// Reproduces Figure 3: the components of average wasted completion time
// (wait / suspend / wasted-by-rescheduling) for NoRes, ResSusUtil and
// ResSusRand under normal load.
//
// Paper (Fig. 3, minutes, approximate bar heights): NoRes is dominated by
// wait + suspend with zero rescheduling waste; ResSusUtil trades most of
// the suspend time for a small rescheduling waste; ResSusRand's waste is
// dominated by wait time incurred at poorly chosen alternate pools.
#include "bench/bench_common.h"

int main() {
  using namespace netbatch;
  const double scale = runner::DefaultScale();

  const auto results = bench::RunPolicySweep(
      "normal", runner::NormalLoadScenario(scale),
      {core::PolicyKind::kNoRes, core::PolicyKind::kResSusUtil,
       core::PolicyKind::kResSusRand});

  bench::PrintHeader(
      "Figure 3: average wasted completion time components, normal load",
      scale, results.front().trace_stats);
  std::vector<metrics::MetricsReport> reports;
  for (const auto& result : results) reports.push_back(result.report);
  std::printf("%s\n", metrics::RenderWasteComponents(reports).c_str());
  return 0;
}

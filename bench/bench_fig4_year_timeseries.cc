// Reproduces Figure 4: utilization (%) and number of suspended jobs over a
// year (500k minutes), sampled per minute and aggregated into 100-minute
// buckets, under the NetBatch baseline.
//
// Paper shape: utilization averages ~40% (typically 20-60%), while
// suspension spikes by orders of magnitude when high-priority bursts
// arrive, and those spikes last hours to a week.
#include <cstdlib>

#include "analysis/plot.h"
#include "analysis/timeseries.h"
#include "bench/bench_common.h"

int main() {
  using namespace netbatch;
  const double scale = runner::YearLongDefaultScale();

  const auto result = runner::RunSingle(
      runner::SpecBuilder()
          .Scenario("year", runner::YearLongScenario(scale))
          .Policy(core::PolicyKind::kNoRes)
          .DisplayLabel("NoRes")
          .Build());

  bench::PrintHeader("Figure 4: utilization and suspension over a year",
                     scale, result.trace_stats);

  const auto window = bench::SubmissionWindow(result);
  const auto util = analysis::SummarizeUtilization(window);
  std::printf(
      "utilization mean=%.1f%% p10=%.1f%% p90=%.1f%% (paper: ~40%%, "
      "20-60%% band); peak suspended jobs=%.0f\n\n",
      util.mean * 100, util.p10 * 100, util.p90 * 100,
      util.max_suspended_jobs);

  // The paper aggregates per-minute samples into 100-minute buckets.
  const auto points = analysis::AggregateSamples(window, MinutesToTicks(100));
  std::printf("%s", analysis::RenderTimeSeriesCsv(points).c_str());
  if (const char* dir = std::getenv("NB_PLOT_DIR")) {
    const std::string script = analysis::WriteYearTimeseriesPlot(dir, points);
    std::printf("wrote gnuplot script: %s\n", script.c_str());
  }
  return 0;
}

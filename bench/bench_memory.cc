// Memory-footprint benchmark for the SoA cluster core (BENCH_memory.json):
// resident bytes per machine at 1M machines, resident bytes per job slot at
// 10M reserved slots, and — the arena contract — the number of heap
// allocations performed by job creation after Reserve (must be zero for
// specs without candidate-pool lists).
//
// Run it on a quiet host and read three lines: machines, jobs, totals. The
// global operator new override counts allocations only while g_count is set,
// so the counters isolate the Create loop from everything around it.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "cluster/job_table.h"
#include "cluster/machine.h"
#include "cluster/pool.h"
#include "common/time.h"

static unsigned long long g_allocs = 0;
static unsigned long long g_alloc_bytes = 0;
static bool g_count = false;

void* operator new(std::size_t size) {
  if (g_count) {
    ++g_allocs;
    g_alloc_bytes += size;
  }
  void* p = std::malloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

static long RssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  long total = 0, rss = 0;
  if (f) {
    if (std::fscanf(f, "%ld %ld", &total, &rss) != 2) rss = 0;
    std::fclose(f);
  }
  return rss * 4096L;
}

using namespace netbatch;
using namespace netbatch::cluster;

int main() {
  const long rss0 = RssBytes();

  // --- 1M machines in pools of 40k (the paper's pool scale) ---------------
  constexpr std::size_t kMachines = 1'000'000;
  constexpr std::size_t kPerPool = 40'000;
  JobTable dummy_jobs;
  std::vector<std::unique_ptr<PhysicalPool>> pools;
  for (std::size_t base = 0; base < kMachines; base += kPerPool) {
    const PoolId pool_id(static_cast<PoolId::ValueType>(base / kPerPool));
    MachineArena machines(pool_id, dummy_jobs);
    machines.Reserve(kPerPool);
    for (std::size_t m = 0; m < kPerPool; ++m) {
      machines.Add(8, 32768, 1.0);
    }
    pools.push_back(std::make_unique<PhysicalPool>(
        pool_id, std::move(machines), dummy_jobs, true));
  }
  const long rss_machines = RssBytes();
  std::printf("machines: %zu, bytes=%ld, bytes/machine=%.1f\n", kMachines,
              rss_machines - rss0,
              double(rss_machines - rss0) / double(kMachines));

  // --- 10M job slots ------------------------------------------------------
  constexpr std::size_t kJobs = 10'000'000;
  JobTable jobs;
  jobs.Reserve(kJobs);
  g_count = true;
  for (std::size_t j = 0; j < kJobs; ++j) {
    workload::JobSpec spec;
    spec.id = JobId(static_cast<JobId::ValueType>(j));
    spec.submit_time = static_cast<Ticks>(j);
    spec.runtime = 1000;
    jobs.Create(std::move(spec));
  }
  g_count = false;
  const long rss_jobs = RssBytes();
  std::printf(
      "jobs: %zu, bytes=%ld, bytes/job=%.1f, allocs_after_reserve=%llu, "
      "alloc_bytes=%llu\n",
      kJobs, rss_jobs - rss_machines,
      double(rss_jobs - rss_machines) / double(kJobs), g_allocs,
      g_alloc_bytes);

  // Self-accounted column bytes, for cross-checking the RSS deltas.
  unsigned long long arena_machine_bytes = 0;
  for (const auto& pool : pools) {
    arena_machine_bytes += pool->machines().MemoryBytes();
  }
  std::printf("arena_bytes_machines=%llu, arena_bytes_jobs=%zu\n",
              arena_machine_bytes, jobs.MemoryBytes());
  std::printf("total_bytes=%ld\n", rss_jobs - rss0);
  return 0;
}

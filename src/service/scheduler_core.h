// The simulator-independent scheduling core.
//
// SchedulerCore is the narrow facade over the whole decision stack — the
// virtual pool manager's dispatch passes, PhysicalPool placement (and its
// indexes), the initial scheduler, and the rescheduling policy — with no
// dependency on sim::Simulator or NetBatchSimulation. The exact same code
// drives decisions under simulated time in sweeps (NetBatchSimulation is a
// thin event-loop shell around a core) and under wall-clock time in
// netbatchd (service/daemon.h).
//
// Time plumbing is the only thing the core cannot do itself: every entry
// point takes the caller's `now`, and anything that must fire *later* —
// completion after a job's remaining work, a wait-timeout check, a restart
// delivery after transfer overhead — is delegated to a CoreHost. The sim
// host arms typed events on the event heap; the daemon host arms wall-clock
// timers. Decisions are bit-identical across hosts because the core calls
// each hook at exactly the same program point either way; under the sim
// host those points fix the event-heap insertion sequence, which is what
// the byte-identical-sweep bar (BENCH_serve.json) pins.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/config.h"
#include "cluster/interfaces.h"
#include "cluster/invariants.h"
#include "cluster/job_table.h"
#include "cluster/pool.h"
#include "cluster/view.h"
#include "common/counters.h"

namespace netbatch::sched {

// Deferred-work callbacks the core fires mid-decision. Implementations own
// the time domain: NetBatchSimulation schedules typed events, the daemon
// pushes wall-clock timers. Every hook receives the job whose generation
// stamp guards the eventual callback (Job::GenerationIs), so a stale timer
// in either domain is a cheap no-op.
class CoreHost {
 public:
  virtual ~CoreHost() = default;

  // `job` just started (or resumed) running; fire Complete(job, stamp) after
  // `duration` ticks unless the job transitions first. The host may record a
  // handle in job.set_pending_event() for eager cancellation.
  virtual void ArmCompletion(cluster::Job job, Ticks duration) = 0;

  // `job` lost its machine (preemption, twin race, eviction) — drop its
  // completion timer. Hosts with lazy timers only clear the job's handle.
  virtual void CancelCompletion(cluster::Job job) = 0;

  // `job` queued in a pool and the policy wants a wait-timeout check
  // (OnWaitTimeout(job, stamp)) after `threshold` ticks.
  virtual void ArmWaitTimeout(cluster::Job job, Ticks threshold) = 0;

  // A rescheduling restart needs `overhead` ticks of transfer before
  // DeliverRestart(job, stamp, target) lands it. Zero-overhead restarts
  // never reach this hook — the core delivers them inline.
  virtual void ScheduleRestartDelivery(cluster::Job job, PoolId target,
                                       Ticks overhead) = 0;

  // `job` reached a terminal state (completed or rejected). The sim host
  // uses this to detect quiescence and stop the event loop.
  virtual void OnJobTerminal(const cluster::Job& job) = 0;
};

// The decision-relevant subset of SimulationOptions; everything here
// changes *what* the core decides, not when callbacks fire.
struct CoreOptions {
  // Delivery delay applied when a job is rescheduled to another pool
  // (models data/binary transfer; the paper's future-work overhead).
  Ticks restart_overhead = 0;
  // Periodic checkpointing granularity in work units (0 = the paper's
  // baseline: restarts lose all progress). See Job::OnRestart.
  Ticks checkpoint_interval = 0;
  // Per-pool-pair transfer delay for rescheduled jobs: overrides the scalar
  // restart_overhead when non-empty. Must be square with one row per pool.
  std::vector<std::vector<Ticks>> transfer_matrix;
  cluster::DispatchMode dispatch_mode =
      cluster::DispatchMode::kPreferImmediateStart;
  // Audit the affected pool after every pool-level job transition.
  bool audit_on_transitions = false;
};

class SchedulerCore final : public cluster::ClusterView,
                            private cluster::PoolObserver {
 public:
  // `scheduler`, `policy`, and `host` must outlive the core.
  SchedulerCore(const cluster::ClusterConfig& config,
                cluster::InitialScheduler& scheduler,
                cluster::ReschedulingPolicy& policy, CoreHost& host,
                CoreOptions options = {});

  SchedulerCore(const SchedulerCore&) = delete;
  SchedulerCore& operator=(const SchedulerCore&) = delete;

  // Observers must outlive the core.
  void AddObserver(cluster::SimulationObserver* observer);
  const std::vector<cluster::SimulationObserver*>& observers() const {
    return observers_;
  }

  // --- job admission --------------------------------------------------------

  void ReserveJobs(std::size_t n) { jobs_.Reserve(n); }

  // Registers a job in the table (validating its candidate pools) without
  // submitting it. Ids spawned for duplicates stay above every admitted id.
  cluster::Job AdmitJob(workload::JobSpec spec);

  // --- the facade -----------------------------------------------------------

  // Offers job `id` to pools in the initial scheduler's order (paper §2.1
  // dispatch). Returns false when every pool refused — the job is rejected.
  bool Submit(JobId id, Ticks now);

  // Completes a running job if `stamp` still matches its generation;
  // returns false on a stale stamp (the job transitioned meanwhile).
  bool Complete(JobId id, std::uint64_t stamp, Ticks now);

  // Host-level suspension of a running job (the daemon's kSuspend op):
  // parks it on its machine exactly like a preemption victim, then consults
  // the rescheduling policy, which may move it to another pool — the
  // paper's dynamic rescheduling, driven live. Returns false when the job
  // is not running.
  bool Suspend(JobId id, Ticks now);

  // Resumes a suspended job on its own machine if it fits right now
  // (the daemon's kResume op). Returns false otherwise.
  bool Resume(JobId id, Ticks now);

  // Terminates a job wherever it is parked (the daemon's kKill op):
  // running, suspended, waiting, or in transit. Refuses (returns false)
  // terminal jobs and jobs with a twin race in flight — the race must
  // resolve through ResolveTwinRace so waste accounting stays consistent.
  bool Kill(JobId id, Ticks now);

  // Advances the core's notion of time and refreshes the cluster.* gauges.
  void Tick(Ticks now);

  // Point-in-time cluster state for the serving layer's kSnapshot op.
  struct PoolSnapshot {
    PoolId id;
    std::int64_t total_cores = 0;
    std::int64_t busy_cores = 0;
    std::uint64_t queued = 0;
    std::uint64_t suspended = 0;
  };
  struct Snapshot {
    Ticks now = 0;
    std::uint64_t started = 0;  // jobs.started counter (placements)
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t reschedules = 0;
    std::vector<PoolSnapshot> pools;
  };
  Snapshot GetSnapshot() const;

  // --- host-driven continuations --------------------------------------------

  // The wait-timeout check armed by CoreHost::ArmWaitTimeout; stale stamps
  // are dropped. Re-arms itself when the policy keeps the job waiting.
  void OnWaitTimeout(JobId id, std::uint64_t stamp, Ticks now);

  // The delivery armed by CoreHost::ScheduleRestartDelivery.
  void DeliverRestart(JobId id, std::uint64_t stamp, PoolId target, Ticks now);

  // --- outage support -------------------------------------------------------

  // Takes a machine offline, evicting and resubmitting everything parked on
  // it. The caller owns failure/repair timing (and its randomness).
  void FailMachine(PoolId pool, MachineId machine, Ticks now);
  void RepairMachine(PoolId pool, MachineId machine, Ticks now);

  // --- results / state ------------------------------------------------------

  const cluster::JobTable& jobs() const { return jobs_; }
  cluster::JobTable& jobs() { return jobs_; }
  std::size_t completed_count() const { return completed_count_; }
  std::size_t rejected_count() const { return rejected_count_; }
  std::uint64_t preemption_count() const { return preemption_count_; }
  std::uint64_t reschedule_count() const { return reschedule_count_; }
  std::uint64_t duplicate_count() const { return duplicate_count_; }
  std::uint64_t outage_count() const { return outage_count_; }
  std::uint64_t eviction_count() const { return eviction_count_; }

  const cluster::PhysicalPool& pool(PoolId id) const {
    return *pools_[id.value()];
  }
  cluster::PhysicalPool& mutable_pool(PoolId id) {
    return *pools_[id.value()];
  }

  const CounterRegistry& counters() const { return counters_; }
  CounterRegistry& counters() { return counters_; }

  // Refreshes the cluster.* gauges (busy cores, suspended, waiting).
  void RefreshGauges(Ticks now);

  // --- checkpoint/restore ---------------------------------------------------

  // Serializes the complete decision state: the clock, result counters,
  // the counter registry (in registration order — it is part of the
  // observable surface), the scheduler/policy opaque blobs, every pool's
  // occupancy (offline machines; running/suspended/waiting jobs in the
  // canonical restore order) and the remaining jobs (pending, in-transit,
  // terminal-awaiting-reclaim) straight from the arena columns. Pending
  // host timers are NOT included — the host (shard loop) owns those and
  // persists its timer list alongside this payload.
  void ExportState(std::vector<std::uint8_t>& out) const;

  // Rebuilds the exported state into this core, which must be freshly
  // constructed over the same cluster config and scheduler/policy stack
  // and must not have admitted any job yet. Returns false (leaving the
  // core unusable) on a malformed or mismatched payload; finishes with
  // CheckInvariants() on success.
  bool ImportState(const std::vector<std::uint8_t>& payload);

  // Audits every pool's resource invariants plus cluster-wide conservation
  // (job states vs pool registries, busy cores vs running jobs, terminal
  // counters vs terminal states), reporting violations to `sink`. The
  // two-argument form stamps violations with the caller's clock (the sim
  // engine audits from ticks the core never saw).
  void AuditInvariants(cluster::InvariantSink& sink) const {
    AuditInvariants(sink, now_);
  }
  void AuditInvariants(cluster::InvariantSink& sink, Ticks now) const;

  // Fail-fast form of AuditInvariants: aborts on the first violation.
  void CheckInvariants() const;

  // --- ClusterView ----------------------------------------------------------
  Ticks Now() const override { return now_; }
  std::size_t PoolCount() const override { return pools_.size(); }
  double PoolUtilization(PoolId pool) const override;
  std::size_t PoolQueueLength(PoolId pool) const override;
  std::int64_t PoolTotalCores(PoolId pool) const override;
  bool PoolEligible(PoolId pool, const workload::JobSpec& spec) const override;
  double ClusterUtilization() const override;
  std::size_t SuspendedJobCount() const override;

 private:
  // PoolObserver: pools report job transitions here; the core bumps
  // counters, forwards to SimulationObservers, and (when enabled) audits.
  void OnJobStarted(const cluster::Job& job) override;
  void OnJobResumed(const cluster::Job& job) override;
  void OnJobEnqueued(const cluster::Job& job) override;
  void OnJobSuspended(const cluster::Job& job) override;
  void AuditTransition(PoolId pool);

  // Offers the job to pools in `order`; returns false if every pool refused.
  bool OfferToPools(cluster::Job job, const std::vector<PoolId>& order);
  void HandlePlaceResult(cluster::Job job, PoolId pool,
                         const cluster::PlaceResult& result);
  void HandleVictims(const std::vector<JobId>& victims);
  void ConsultPolicyOnSuspension(cluster::Job victim);
  void ScheduleCompletion(cluster::Job job);
  void ArmWaitTimeout(cluster::Job job);
  void RestartJob(cluster::Job job, PoolId target,
                  cluster::RescheduleReason reason);
  // Duplication extension: launch a copy of `original` in `target`; the
  // first of the pair to complete wins (ResolveTwinRace).
  void SpawnDuplicate(cluster::Job original, PoolId target);
  void ResolveTwinRace(cluster::Job winner);
  void FinishJobsScheduledBy(const std::vector<JobId>& scheduled);

  cluster::JobTable jobs_;
  std::vector<std::unique_ptr<cluster::PhysicalPool>> pools_;
  cluster::InitialScheduler* scheduler_;
  cluster::ReschedulingPolicy* policy_;
  CoreHost* host_;
  CoreOptions options_;
  std::vector<cluster::SimulationObserver*> observers_;

  CounterRegistry counters_;
  // Hot-path handles into counters_, resolved once at construction.
  struct HotCounters {
    Counter* submitted = nullptr;
    Counter* enqueued = nullptr;
    Counter* started = nullptr;
    Counter* resumed = nullptr;
    Counter* preempted = nullptr;
    Counter* completed = nullptr;
    Counter* rejected = nullptr;
    Counter* rescheduled = nullptr;
    Counter* duplicated = nullptr;
    Counter* evicted = nullptr;
    Counter* bounced = nullptr;
    Counter* failures = nullptr;
    Counter* repairs = nullptr;
    Counter* audits = nullptr;
    Gauge* busy_cores = nullptr;
    Gauge* suspended_jobs = nullptr;
    Gauge* waiting_jobs = nullptr;
    // Arena footprint gauges (resident column bytes + free job slots).
    Gauge* bytes_jobs = nullptr;
    Gauge* bytes_machines = nullptr;
    Gauge* job_slots_free = nullptr;
  };
  HotCounters hot_;

  Ticks now_ = 0;
  std::int64_t total_cores_ = 0;
  std::size_t completed_count_ = 0;
  std::size_t rejected_count_ = 0;
  std::uint64_t preemption_count_ = 0;
  std::uint64_t reschedule_count_ = 0;
  std::uint64_t duplicate_count_ = 0;
  std::uint64_t outage_count_ = 0;
  std::uint64_t eviction_count_ = 0;
  JobId::ValueType next_duplicate_id_ = 0;
};

}  // namespace netbatch::sched

#include "service/scheduler_core.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"
#include "service/protocol.h"

namespace netbatch::sched {

using cluster::DispatchMode;
using cluster::FailFastSink;
using cluster::InvariantSink;
using cluster::InvariantViolation;
using cluster::Job;
using cluster::JobState;
using cluster::Machine;
using cluster::MachineGroupConfig;
using cluster::PhysicalPool;
using cluster::PlaceOutcome;
using cluster::PlaceResult;
using cluster::PoolObserver;
using cluster::RescheduleReason;
using cluster::SimulationObserver;

SchedulerCore::SchedulerCore(const cluster::ClusterConfig& config,
                             cluster::InitialScheduler& scheduler,
                             cluster::ReschedulingPolicy& policy,
                             CoreHost& host, CoreOptions options)
    : scheduler_(&scheduler),
      policy_(&policy),
      host_(&host),
      options_(std::move(options)) {
  NETBATCH_CHECK(!config.pools.empty(), "cluster needs at least one pool");
  pools_.reserve(config.pools.size());
  for (std::size_t p = 0; p < config.pools.size(); ++p) {
    const PoolId pool_id(static_cast<PoolId::ValueType>(p));
    cluster::MachineArena machines(pool_id, jobs_);
    std::size_t machine_count = 0;
    for (const MachineGroupConfig& group : config.pools[p].machine_groups) {
      machine_count += static_cast<std::size_t>(std::max(group.count, 0));
    }
    machines.Reserve(machine_count);
    for (const MachineGroupConfig& group : config.pools[p].machine_groups) {
      for (std::int32_t i = 0; i < group.count; ++i) {
        machines.Add(group.cores, group.memory_mb, group.speed, group.owner);
      }
    }
    // A pool with no machine groups at all is a deliberate capacity-less
    // husk (the sharded engine slices a cluster by emptying remote pools'
    // group lists); declared groups that sum to zero machines stay an error.
    NETBATCH_CHECK(!machines.empty() || config.pools[p].machine_groups.empty(),
                   "pool without machines");
    pools_.push_back(std::make_unique<PhysicalPool>(
        pool_id, std::move(machines), jobs_, config.suspended_holds_memory,
        config.local_resume_first,
        /*observer=*/static_cast<PoolObserver*>(this)));
    total_cores_ += pools_.back()->total_cores();
  }

  // Resolve the hot-path counter handles once; every core transition then
  // costs a single integer add. Registration order is part of the observable
  // surface (CounterSnapshot preserves it), so keep this list stable.
  hot_.submitted = &counters_.GetCounter("jobs.submitted");
  hot_.enqueued = &counters_.GetCounter("jobs.enqueued");
  hot_.started = &counters_.GetCounter("jobs.started");
  hot_.resumed = &counters_.GetCounter("jobs.resumed");
  hot_.preempted = &counters_.GetCounter("jobs.preempted");
  hot_.completed = &counters_.GetCounter("jobs.completed");
  hot_.rejected = &counters_.GetCounter("jobs.rejected");
  hot_.rescheduled = &counters_.GetCounter("jobs.rescheduled");
  hot_.duplicated = &counters_.GetCounter("jobs.duplicated");
  hot_.evicted = &counters_.GetCounter("jobs.evicted");
  hot_.bounced = &counters_.GetCounter("vpm.bounces");
  hot_.failures = &counters_.GetCounter("outages.failures");
  hot_.repairs = &counters_.GetCounter("outages.repairs");
  hot_.audits = &counters_.GetCounter("audit.runs");
  hot_.busy_cores = &counters_.GetGauge("cluster.busy_cores");
  hot_.suspended_jobs = &counters_.GetGauge("cluster.suspended_jobs");
  hot_.waiting_jobs = &counters_.GetGauge("cluster.waiting_jobs");
  hot_.bytes_jobs = &counters_.GetGauge("sim.bytes_jobs");
  hot_.bytes_machines = &counters_.GetGauge("sim.bytes_machines");
  hot_.job_slots_free = &counters_.GetGauge("sim.job_slots_free");

  if (!options_.transfer_matrix.empty()) {
    NETBATCH_CHECK(options_.transfer_matrix.size() == pools_.size(),
                   "transfer matrix must have one row per pool");
    for (const auto& row : options_.transfer_matrix) {
      NETBATCH_CHECK(row.size() == pools_.size(),
                     "transfer matrix must be square");
      for (Ticks delay : row) {
        NETBATCH_CHECK(delay >= 0, "negative transfer delay");
      }
    }
  }
}

void SchedulerCore::AddObserver(SimulationObserver* observer) {
  NETBATCH_CHECK(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

Job SchedulerCore::AdmitJob(workload::JobSpec spec) {
  for (PoolId pool : spec.candidate_pools) {
    NETBATCH_CHECK(pool.value() < pools_.size(),
                   "job references unknown pool");
  }
  // Duplicates get ids above every admitted id.
  next_duplicate_id_ = std::max(next_duplicate_id_, spec.id.value() + 1);
  return jobs_.Create(std::move(spec));
}

bool SchedulerCore::Submit(JobId id, Ticks now) {
  now_ = now;
  Job job = jobs_.at(id);
  job.OnSubmitted(now_);
  hot_.submitted->Increment();
  const std::vector<PoolId> order = scheduler_->PoolOrder(job.spec(), *this);
  if (!OfferToPools(job, order)) {
    job.OnRejected(now_);
    ++rejected_count_;
    hot_.rejected->Increment();
    for (SimulationObserver* obs : observers_) obs->OnJobRejected(job);
    NETBATCH_LOG(kWarn) << "job " << id.value()
                        << " rejected: no eligible machine in any pool";
    host_->OnJobTerminal(job);
    return false;
  }
  return true;
}

bool SchedulerCore::OfferToPools(Job job, const std::vector<PoolId>& order) {
  if (options_.dispatch_mode == DispatchMode::kPreferImmediateStart) {
    // First pass: any pool that can start (or preempt for) the job now.
    for (PoolId pool_id : order) {
      NETBATCH_CHECK(pool_id.value() < pools_.size(),
                     "scheduler chose unknown pool");
      const PlaceResult result =
          pools_[pool_id.value()]->TryPlace(job, now_,
                                            /*allow_queue=*/false);
      if (result.outcome == PlaceOutcome::kNotEligible) continue;
      HandlePlaceResult(job, pool_id, result);
      return true;
    }
  }
  // Commit pass: queue at the first pool with an *online* eligible machine.
  // A pool whose only capacity-fit machines are down would strand the job
  // behind the outage, so it bounces to the next candidate instead.
  for (PoolId pool_id : order) {
    NETBATCH_CHECK(pool_id.value() < pools_.size(),
                   "scheduler chose unknown pool");
    const PlaceResult result = pools_[pool_id.value()]->TryPlace(
        job, now_, /*allow_queue=*/true, /*require_online=*/true);
    if (result.outcome == PlaceOutcome::kNotEligible) {
      // Only an availability refusal is a bounce: the pool has the capacity
      // but its eligible machines are down. Capacity refusals are the
      // ordinary §2.1 step-4 path, not outage fallout.
      if (pools_[pool_id.value()]->HasEligibleMachine(job.spec())) {
        hot_.bounced->Increment();
      }
      continue;
    }
    HandlePlaceResult(job, pool_id, result);
    return true;
  }
  // Fallback: every candidate pool's eligible machines are offline right
  // now. Queue at the first capacity-eligible pool and wait for repair —
  // rejection stays a pure capacity decision, never an availability one.
  for (PoolId pool_id : order) {
    const PlaceResult result = pools_[pool_id.value()]->TryPlace(job, now_);
    if (result.outcome == PlaceOutcome::kNotEligible) continue;
    HandlePlaceResult(job, pool_id, result);
    return true;
  }
  return false;
}

void SchedulerCore::HandlePlaceResult(Job job, PoolId pool,
                                      const PlaceResult& result) {
  (void)pool;
  switch (result.outcome) {
    case PlaceOutcome::kStarted:
      ScheduleCompletion(job);
      HandleVictims(result.suspended);
      break;
    case PlaceOutcome::kQueued:
      ArmWaitTimeout(job);
      break;
    case PlaceOutcome::kNotEligible:
      NETBATCH_CHECK(false, "HandlePlaceResult on a refused placement");
  }
}

void SchedulerCore::ScheduleCompletion(Job job) {
  NETBATCH_CHECK(job.state() == JobState::kRunning,
                 "scheduling completion of a non-running job");
  host_->ArmCompletion(job, job.TicksToCompletion(job.run_speed()));
}

void SchedulerCore::HandleVictims(const std::vector<JobId>& victims) {
  // First settle the bookkeeping for every victim, then consult the policy.
  // The two passes matter: rescheduling victim A away can free enough of
  // its machine to resume victim B immediately, and B must not be treated
  // as suspended (or have its new completion event cancelled) afterwards.
  // Counters and observer notification fired from the pool's per-victim
  // OnJobSuspended hook, inside TryPlace; only the timer plumbing the pool
  // cannot see (cancelling the victim's completion) remains here.
  for (JobId victim_id : victims) {
    host_->CancelCompletion(jobs_.at(victim_id));
  }
  for (JobId victim_id : victims) {
    Job victim = jobs_.at(victim_id);
    if (victim.state() != JobState::kSuspended) continue;  // already resumed
    ConsultPolicyOnSuspension(victim);
  }
}

void SchedulerCore::ConsultPolicyOnSuspension(Job victim) {
  // Duplicates never spawn further copies or restart: their race with the
  // original resolves on whichever side finishes first.
  if (victim.is_duplicate()) return;
  const std::optional<PoolId> target = policy_->OnSuspended(victim, *this);
  if (target.has_value() && *target != victim.pool()) {
    if (policy_->DuplicateInsteadOfRestart()) {
      SpawnDuplicate(victim, *target);
    } else {
      RestartJob(victim, *target, RescheduleReason::kSuspension);
    }
  }
}

bool SchedulerCore::Complete(JobId id, std::uint64_t stamp, Ticks now) {
  now_ = now;
  Job job = jobs_.at(id);
  if (!job.GenerationIs(stamp)) {
    return false;  // stale: the job was preempted or rescheduled meanwhile
  }
  NETBATCH_CHECK(job.state() == JobState::kRunning,
                 "completion matched generation of a non-running job");
  PhysicalPool& pool = *pools_[job.pool().value()];
  const std::vector<JobId> scheduled = pool.OnJobCompleted(job, now_);
  if (job.twin().valid()) ResolveTwinRace(job);
  if (!job.is_duplicate()) {
    ++completed_count_;
    hot_.completed->Increment();
    for (SimulationObserver* obs : observers_) obs->OnJobCompleted(job);
    host_->OnJobTerminal(job);
  }
  FinishJobsScheduledBy(scheduled);
  return true;
}

bool SchedulerCore::Suspend(JobId id, Ticks now) {
  now_ = now;
  Job job = jobs_.at(id);
  if (job.state() != JobState::kRunning) return false;
  PhysicalPool& pool = *pools_[job.pool().value()];
  pool.SuspendRunning(job, now_);
  host_->CancelCompletion(job);
  // The suspension is an ordinary preemption as far as the rescheduling
  // policy is concerned: it may move the job to another pool right now.
  if (job.state() == JobState::kSuspended) ConsultPolicyOnSuspension(job);
  return true;
}

bool SchedulerCore::Resume(JobId id, Ticks now) {
  now_ = now;
  Job job = jobs_.at(id);
  if (job.state() != JobState::kSuspended) return false;
  PhysicalPool& pool = *pools_[job.pool().value()];
  if (!pool.TryResume(job, now_)) return false;
  ScheduleCompletion(job);
  return true;
}

bool SchedulerCore::Kill(JobId id, Ticks now) {
  now_ = now;
  Job job = jobs_.at(id);
  if (job.twin().valid()) return false;  // let the twin race resolve itself
  std::vector<JobId> scheduled;
  switch (job.state()) {
    case JobState::kInTransit:
      // Holds no pool resources; the pending delivery is invalidated by the
      // terminal transition's generation bump.
      job.OnKilled(now_);
      break;
    case JobState::kRunning:
    case JobState::kWaiting:
    case JobState::kSuspended:
      host_->CancelCompletion(job);
      scheduled =
          pools_[job.pool().value()]->KillJob(job, now_,
                                              /*complete_by_twin=*/false);
      break;
    default:
      return false;  // pending (transient) or already terminal
  }
  // Lazy registration, same rationale as the twin-race kill counter: runs
  // that never kill keep their counter snapshot unchanged.
  counters_.GetCounter("jobs.killed").Increment();
  for (SimulationObserver* obs : observers_) obs->OnJobKilled(job);
  host_->OnJobTerminal(job);
  FinishJobsScheduledBy(scheduled);
  return true;
}

void SchedulerCore::Tick(Ticks now) {
  now_ = now;
  RefreshGauges(now);
}

SchedulerCore::Snapshot SchedulerCore::GetSnapshot() const {
  Snapshot snap;
  snap.now = now_;
  snap.started = hot_.started->value();
  snap.completed = completed_count_;
  snap.rejected = rejected_count_;
  snap.preemptions = preemption_count_;
  snap.reschedules = reschedule_count_;
  snap.pools.reserve(pools_.size());
  for (const auto& pool : pools_) {
    PoolSnapshot ps;
    ps.id = pool->id();
    ps.total_cores = pool->total_cores();
    ps.busy_cores = pool->busy_cores();
    ps.queued = pool->QueueLength();
    ps.suspended = pool->SuspendedCount();
    snap.pools.push_back(ps);
  }
  return snap;
}

void SchedulerCore::SpawnDuplicate(Job original, PoolId target) {
  NETBATCH_CHECK(!original.is_duplicate(), "duplicating a duplicate");
  if (original.twin().valid()) return;  // a race is already in flight

  workload::JobSpec spec = original.spec();
  spec.id = JobId(next_duplicate_id_++);
  spec.candidate_pools = {target};
  Job duplicate = jobs_.Create(std::move(spec));
  duplicate.MarkDuplicateOf(original.id());
  original.set_twin(duplicate.id());
  ++duplicate_count_;
  ++reschedule_count_;
  hot_.duplicated->Increment();
  hot_.rescheduled->Increment();
  for (SimulationObserver* obs : observers_) {
    obs->OnJobRescheduled(original, original.pool(), target,
                          RescheduleReason::kSuspension);
  }

  duplicate.OnSubmitted(now_);
  const PlaceResult result = pools_[target.value()]->TryPlace(duplicate, now_);
  NETBATCH_CHECK(result.outcome != PlaceOutcome::kNotEligible,
                 "policy duplicated a job into an ineligible pool");
  HandlePlaceResult(duplicate, target, result);
}

void SchedulerCore::ResolveTwinRace(Job winner) {
  Job loser = jobs_.at(winner.twin());
  winner.set_twin(JobId());
  loser.set_twin(JobId());
  Job original = winner.is_duplicate() ? loser : winner;

  host_->CancelCompletion(loser);

  // Remove the loser from wherever it is parked. A loser that is mid-
  // transit (restart overhead) holds no pool resources; its delivery event
  // is invalidated by the generation bump of the terminal transition.
  const bool complete_by_twin = winner.is_duplicate();
  std::vector<JobId> scheduled;
  if (loser.state() == JobState::kInTransit ||
      loser.state() == JobState::kPending) {
    if (complete_by_twin) {
      loser.OnCompletedByTwin(now_);
    } else {
      loser.OnKilled(now_);
    }
  } else {
    PhysicalPool& pool = *pools_[loser.pool().value()];
    scheduled = pool.KillJob(loser, now_, complete_by_twin);
  }
  if (!complete_by_twin) {
    // Registered lazily so runs without twin races (every run outside the
    // duplication extension) keep their counter snapshot unchanged.
    counters_.GetCounter("jobs.killed").Increment();
    for (SimulationObserver* obs : observers_) obs->OnJobKilled(loser);
  }
  FinishJobsScheduledBy(scheduled);

  // The duplicate side is terminal either way (killed or completed-by-proxy
  // via its winning run); tell the host so a serving layer can release its
  // per-job state. The sim host's hook only checks for quiescence, which
  // an extra call cannot disturb.
  host_->OnJobTerminal(winner.is_duplicate() ? winner : loser);

  if (winner.is_duplicate()) {
    // The original finishes with its duplicate's result. Its own partial
    // progress was folded into rescheduling waste by OnCompletedByTwin; the
    // duplicate's (useful) run is credited through the original's
    // completion time.
    NETBATCH_CHECK(original.state() == JobState::kCompleted,
                   "twin completion did not complete the original");
    ++completed_count_;
    hot_.completed->Increment();
    for (SimulationObserver* obs : observers_) obs->OnJobCompleted(original);
    host_->OnJobTerminal(original);
  } else {
    // The original won; the duplicate's entire execution is waste.
    original.AddExtraWaste(loser.executed_ticks());
  }
}

void SchedulerCore::FinishJobsScheduledBy(const std::vector<JobId>& scheduled) {
  for (JobId id : scheduled) {
    ScheduleCompletion(jobs_.at(id));
  }
}

void SchedulerCore::ArmWaitTimeout(Job job) {
  const std::optional<Ticks> threshold = policy_->WaitRescheduleThreshold();
  if (!threshold.has_value()) return;
  NETBATCH_CHECK(*threshold > 0, "wait-reschedule threshold must be positive");
  NETBATCH_CHECK(job.state() == JobState::kWaiting,
                 "arming wait timeout for a non-waiting job");
  host_->ArmWaitTimeout(job, *threshold);
}

void SchedulerCore::OnWaitTimeout(JobId id, std::uint64_t stamp, Ticks now) {
  now_ = now;
  Job job = jobs_.at(id);
  if (!job.GenerationIs(stamp)) {
    return;  // the job started, was moved, or completed meanwhile
  }
  NETBATCH_CHECK(job.state() == JobState::kWaiting,
                 "wait timeout matched generation of a non-waiting job");
  const std::optional<PoolId> target = policy_->OnWaitTimeout(job, *this);
  if (target.has_value() && *target != job.pool()) {
    RestartJob(job, *target, RescheduleReason::kWaitTimeout);
  } else {
    // Keep waiting here, but give the job another chance later ("the
    // rescheduled job can gain multiple second chances", §3.3.1).
    ArmWaitTimeout(job);
  }
}

void SchedulerCore::RestartJob(Job job, PoolId target,
                               RescheduleReason reason) {
  NETBATCH_CHECK(target.value() < pools_.size(), "restart to unknown pool");
  const PoolId from = job.pool();
  PhysicalPool& from_pool = *pools_[from.value()];

  MachineId freed_machine;
  if (job.state() == JobState::kSuspended) {
    freed_machine = from_pool.DetachSuspended(job);
  } else {
    from_pool.RemoveFromQueue(job.id());
  }
  job.OnRestart(now_, target, options_.checkpoint_interval);
  ++reschedule_count_;
  hot_.rescheduled->Increment();
  for (SimulationObserver* obs : observers_) {
    obs->OnJobRescheduled(job, from, target, reason);
  }

  // Detaching a suspended job may have freed memory another parked job was
  // waiting for; let the machine backfill before the restart is delivered.
  if (freed_machine.valid()) {
    FinishJobsScheduledBy(from_pool.Backfill(freed_machine, now_));
  }

  const Ticks overhead =
      options_.transfer_matrix.empty()
          ? options_.restart_overhead
          : options_.transfer_matrix[from.value()][target.value()];
  if (overhead == 0) {
    DeliverRestart(job.id(), job.generation(), target, now_);
  } else {
    host_->ScheduleRestartDelivery(job, target, overhead);
  }
}

void SchedulerCore::DeliverRestart(JobId id, std::uint64_t stamp,
                                   PoolId target, Ticks now) {
  now_ = now;
  Job job = jobs_.at(id);
  if (!job.GenerationIs(stamp)) {
    return;  // the transit was superseded (e.g. the job's twin resolved)
  }
  NETBATCH_CHECK(job.state() == JobState::kInTransit,
                 "restart delivery matched generation of a non-transit job");
  const PlaceResult result = pools_[target.value()]->TryPlace(job, now_);
  // Policies must pick pools the job is eligible for; the core exposes
  // PoolEligible() exactly for that check.
  NETBATCH_CHECK(result.outcome != PlaceOutcome::kNotEligible,
                 "policy rescheduled a job to an ineligible pool");
  HandlePlaceResult(job, target, result);
}

void SchedulerCore::FailMachine(PoolId pool_id, MachineId machine, Ticks now) {
  now_ = now;
  PhysicalPool& pool = *pools_[pool_id.value()];
  ++outage_count_;
  hot_.failures->Increment();
  const std::vector<JobId> evicted = pool.EvictMachine(machine, now_);

  // Evicted jobs lose their (un-checkpointed) progress and are resubmitted
  // through the virtual pool manager, like a rescheduling restart without a
  // chosen target.
  for (JobId id : evicted) {
    Job job = jobs_.at(id);
    host_->CancelCompletion(job);
    job.OnRestart(now_, job.pool(), options_.checkpoint_interval);
    ++eviction_count_;
    hot_.evicted->Increment();
    for (SimulationObserver* obs : observers_) obs->OnJobEvicted(job);
    const bool placed =
        OfferToPools(job, scheduler_->PoolOrder(job.spec(), *this));
    NETBATCH_CHECK(placed, "evicted job no longer placeable anywhere");
  }
}

void SchedulerCore::RepairMachine(PoolId pool_id, MachineId machine,
                                  Ticks now) {
  now_ = now;
  PhysicalPool& pool = *pools_[pool_id.value()];
  hot_.repairs->Increment();
  FinishJobsScheduledBy(pool.RepairMachine(machine, now_));
}

// ---- observability --------------------------------------------------------

void SchedulerCore::OnJobStarted(const Job& job) {
  hot_.started->Increment();
  for (SimulationObserver* obs : observers_) obs->OnJobStarted(job);
  AuditTransition(job.pool());
}

void SchedulerCore::OnJobResumed(const Job& job) {
  hot_.resumed->Increment();
  for (SimulationObserver* obs : observers_) obs->OnJobResumed(job);
  AuditTransition(job.pool());
}

void SchedulerCore::OnJobEnqueued(const Job& job) {
  hot_.enqueued->Increment();
  for (SimulationObserver* obs : observers_) obs->OnJobEnqueued(job);
  AuditTransition(job.pool());
}

void SchedulerCore::OnJobSuspended(const Job& job) {
  ++preemption_count_;
  hot_.preempted->Increment();
  for (SimulationObserver* obs : observers_) obs->OnJobSuspended(job);
  AuditTransition(job.pool());
}

void SchedulerCore::AuditTransition(PoolId pool) {
  if (!options_.audit_on_transitions) return;
  hot_.audits->Increment();
  FailFastSink sink;
  pools_[pool.value()]->AuditInvariants(now_, sink);
}

void SchedulerCore::RefreshGauges(Ticks now) {
  (void)now;
  std::int64_t busy = 0;
  std::size_t waiting = 0;
  for (const auto& pool : pools_) {
    busy += pool->busy_cores();
    waiting += pool->QueueLength();
  }
  hot_.busy_cores->Set(busy);
  hot_.suspended_jobs->Set(static_cast<std::int64_t>(SuspendedJobCount()));
  hot_.waiting_jobs->Set(static_cast<std::int64_t>(waiting));
  std::size_t machine_bytes = 0;
  for (const auto& pool : pools_) {
    machine_bytes += pool->machines().MemoryBytes();
  }
  hot_.bytes_jobs->Set(static_cast<std::int64_t>(jobs_.MemoryBytes()));
  hot_.bytes_machines->Set(static_cast<std::int64_t>(machine_bytes));
  hot_.job_slots_free->Set(static_cast<std::int64_t>(jobs_.free_slot_count()));
}

void SchedulerCore::AuditInvariants(InvariantSink& sink, Ticks now) const {
  for (const auto& pool : pools_) pool->AuditInvariants(now, sink);

  // Cluster-wide conservation. Pools audited their own registries above;
  // this pass cross-checks job states (the other side of the ledger)
  // against the pool aggregates and the core's terminal counters.
  const auto check = [&](bool ok, const char* what) {
    if (!ok) sink.Report(InvariantViolation{now, PoolId(), what, MachineId()});
  };
  std::size_t running = 0;
  std::size_t waiting = 0;
  std::size_t suspended = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::int64_t running_cores = 0;
  for (const Job& job : jobs_) {
    switch (job.state()) {
      case JobState::kRunning:
        ++running;
        running_cores += job.spec().cores;
        break;
      case JobState::kWaiting:
        ++waiting;
        break;
      case JobState::kSuspended:
        ++suspended;
        break;
      case JobState::kCompleted:
        // Duplicates are credited to their original, never to the core's
        // completion counter.
        if (!job.is_duplicate()) ++completed;
        break;
      case JobState::kRejected:
        ++rejected;
        break;
      default:
        break;
    }
  }
  std::int64_t busy = 0;
  std::size_t pool_suspended = 0;
  std::size_t pool_waiting = 0;
  std::size_t pool_running = 0;
  for (const auto& pool : pools_) {
    busy += pool->busy_cores();
    pool_suspended += pool->SuspendedCount();
    pool_waiting += pool->QueueLength();
    for (const Machine& machine : pool->machines()) {
      pool_running += machine.running().size();
    }
  }
  check(busy == running_cores,
        "cluster busy cores != sum of running job core demands");
  check(pool_running == running,
        "machine running registries != jobs in running state");
  check(pool_suspended == suspended,
        "pool suspended counts != jobs in suspended state");
  check(pool_waiting == waiting,
        "pool wait queues != jobs in waiting state");
  // With slot reclamation on (daemon path), terminal jobs leave the table
  // while the lifetime counters keep counting, so the terminal ledgers no
  // longer correspond. The non-terminal checks above stay exact: live jobs
  // are never reclaimed.
  if (!jobs_.reclaim_enabled()) {
    check(completed == completed_count_,
          "completion counter != completed (non-duplicate) jobs");
    check(rejected == rejected_count_,
          "rejection counter != rejected jobs");
  }
}

void SchedulerCore::CheckInvariants() const {
  FailFastSink sink;
  AuditInvariants(sink);
}

double SchedulerCore::PoolUtilization(PoolId pool) const {
  return pools_[pool.value()]->Utilization();
}

std::size_t SchedulerCore::PoolQueueLength(PoolId pool) const {
  return pools_[pool.value()]->QueueLength();
}

std::int64_t SchedulerCore::PoolTotalCores(PoolId pool) const {
  return pools_[pool.value()]->total_cores();
}

bool SchedulerCore::PoolEligible(PoolId pool,
                                 const workload::JobSpec& spec) const {
  return pools_[pool.value()]->HasEligibleMachine(spec);
}

double SchedulerCore::ClusterUtilization() const {
  if (total_cores_ == 0) return 0.0;
  std::int64_t busy = 0;
  for (const auto& pool : pools_) busy += pool->busy_cores();
  return static_cast<double>(busy) / static_cast<double>(total_cores_);
}

std::size_t SchedulerCore::SuspendedJobCount() const {
  std::size_t suspended = 0;
  for (const auto& pool : pools_) suspended += pool->SuspendedCount();
  return suspended;
}

// --- checkpoint/restore ------------------------------------------------------

namespace {

// v2: trailing free-slot generation-floor section (WAL-replayed admissions
// must reuse slots at the same floors the live run did).
constexpr std::uint32_t kCoreStateVersion = 2;

void EncodeJobRecord(const cluster::JobTable& jobs, JobId id,
                     std::vector<std::uint8_t>& out,
                     std::vector<std::uint8_t>& scratch) {
  const Job job = jobs.at(id);
  const cluster::JobArena::RestoreImage image = jobs.CaptureImage(id);
  scratch.clear();
  service::EncodeJobSpec(job.spec(), scratch);
  service::WireWriter w(out);
  w.U32(static_cast<std::uint32_t>(scratch.size()));
  out.insert(out.end(), scratch.begin(), scratch.end());
  service::WireWriter body(out);
  body.U32(static_cast<std::uint32_t>(image.state));
  body.U32(image.pool.value());
  body.U32(image.machine.value());
  std::uint64_t speed_bits;
  std::memcpy(&speed_bits, &image.run_speed, 8);
  body.U64(speed_bits);
  body.I64(image.remaining_work);
  body.I64(image.state_since);
  body.I64(image.completion_time);
  body.I64(image.attempt_executed);
  body.I64(image.attempt_work);
  body.I64(image.wait_ticks);
  body.I64(image.suspend_ticks);
  body.I64(image.executed_ticks);
  body.I64(image.resched_waste_ticks);
  body.I64(image.transit_ticks);
  body.I32(image.suspend_count);
  body.I32(image.restart_count);
  body.U32(image.is_duplicate);
  body.U32(image.twin.value());
  body.I64(image.extra_waste_ticks);
  body.U64(image.generation);
}

bool DecodeJobRecord(service::WireReader& r,
                     std::vector<std::uint8_t>& scratch,
                     workload::JobSpec& spec,
                     cluster::JobArena::RestoreImage& image) {
  const std::uint32_t spec_len = r.U32();
  if (!r.ok()) return false;
  r.Bytes(spec_len, scratch);
  if (!r.ok() || !service::DecodeJobSpec(scratch, spec)) return false;
  image.state = static_cast<JobState>(r.U32());
  image.pool = PoolId(r.U32());
  image.machine = MachineId(r.U32());
  const std::uint64_t speed_bits = r.U64();
  std::memcpy(&image.run_speed, &speed_bits, 8);
  image.remaining_work = r.I64();
  image.state_since = r.I64();
  image.completion_time = r.I64();
  image.attempt_executed = r.I64();
  image.attempt_work = r.I64();
  image.wait_ticks = r.I64();
  image.suspend_ticks = r.I64();
  image.executed_ticks = r.I64();
  image.resched_waste_ticks = r.I64();
  image.transit_ticks = r.I64();
  image.suspend_count = r.I32();
  image.restart_count = r.I32();
  image.is_duplicate = static_cast<std::uint8_t>(r.U32());
  image.twin = JobId(r.U32());
  image.extra_waste_ticks = r.I64();
  image.generation = r.U64();
  return r.ok();
}

}  // namespace

void SchedulerCore::ExportState(std::vector<std::uint8_t>& out) const {
  service::WireWriter w(out);
  w.U32(kCoreStateVersion);
  w.I64(now_);
  w.U64(completed_count_);
  w.U64(rejected_count_);
  w.U64(preemption_count_);
  w.U64(reschedule_count_);
  w.U64(duplicate_count_);
  w.U64(outage_count_);
  w.U64(eviction_count_);
  w.U64(next_duplicate_id_);

  // Counter registry, in registration order — the order itself is part of
  // the rendered-stats surface, so import replays it name by name.
  const CounterSnapshot counters = counters_.TakeSnapshot();
  w.U32(static_cast<std::uint32_t>(counters.counters.size()));
  for (const auto& [name, value] : counters.counters) {
    w.U32(static_cast<std::uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    service::WireWriter(out).U64(value);
  }
  w.U32(static_cast<std::uint32_t>(counters.gauges.size()));
  for (const auto& [name, value, max] : counters.gauges) {
    (void)max;  // a gauge's historical max is not restorable
    w.U32(static_cast<std::uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    service::WireWriter(out).I64(value);
  }

  // Scheduler/policy decision state, length-prefixed opaque blobs.
  std::vector<std::uint8_t> blob;
  scheduler_->ExportState(blob);
  w.U32(static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
  blob.clear();
  policy_->ExportState(blob);
  service::WireWriter(out).U32(static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());

  // Pool occupancy in the canonical restore order.
  std::vector<std::uint8_t> scratch;
  w.U32(static_cast<std::uint32_t>(pools_.size()));
  std::vector<JobId> pooled_jobs;
  for (const auto& pool : pools_) {
    service::WireWriter pw(out);
    pw.U32(pool->id().value());
    std::vector<MachineId> offline;
    pool->AppendOfflineMachines(offline);
    pw.U32(static_cast<std::uint32_t>(offline.size()));
    for (const MachineId m : offline) service::WireWriter(out).U32(m.value());
    std::vector<JobId> ids;
    pool->AppendJobsInRestoreOrder(ids);
    service::WireWriter(out).U32(static_cast<std::uint32_t>(ids.size()));
    for (const JobId id : ids) {
      EncodeJobRecord(jobs_, id, out, scratch);
      pooled_jobs.push_back(id);
    }
  }

  // Everything not parked in a pool: pending, in-transit, and terminal
  // jobs awaiting reclamation — straight from the arena, in slot order.
  // A slot is live when the id index still points back at it (erased
  // slots, and slots whose id was re-admitted elsewhere, are skipped).
  std::vector<JobId> loose;
  for (const Job job : jobs_) {
    const JobId id = job.id();
    if (!jobs_.Contains(id) || jobs_.at(id).slot() != job.slot()) continue;
    const JobState state = job.state();
    if (state == JobState::kRunning || state == JobState::kSuspended ||
        state == JobState::kWaiting) {
      continue;  // emitted via its pool above
    }
    loose.push_back(id);
  }
  w.U32(static_cast<std::uint32_t>(loose.size()));
  for (const JobId id : loose) EncodeJobRecord(jobs_, id, out, scratch);

  // Parked free-slot generation floors, bottom of the reuse stack first.
  // Without them a restored (compacted) arena would hand WAL-replayed
  // submits fresh generation-0 slots where the live run reused parked ones,
  // and every replayed timer stamp for those jobs would read as stale.
  std::vector<std::uint64_t> floors;
  jobs_.AppendFreeSlotGenerations(floors);
  w.U32(static_cast<std::uint32_t>(floors.size()));
  for (const std::uint64_t floor : floors) {
    service::WireWriter(out).U64(floor);
  }
}

bool SchedulerCore::ImportState(const std::vector<std::uint8_t>& payload) {
  NETBATCH_CHECK(jobs_.size() == 0,
                 "ImportState into a core that already has jobs");
  service::WireReader r(payload);
  if (r.U32() != kCoreStateVersion) return false;
  now_ = r.I64();
  completed_count_ = r.U64();
  rejected_count_ = r.U64();
  preemption_count_ = r.U64();
  reschedule_count_ = r.U64();
  duplicate_count_ = r.U64();
  outage_count_ = r.U64();
  eviction_count_ = r.U64();
  next_duplicate_id_ = static_cast<JobId::ValueType>(r.U64());
  if (!r.ok()) return false;

  std::vector<std::uint8_t> scratch;
  const auto read_name = [&](std::string& name) {
    const std::uint32_t len = r.U32();
    if (!r.ok()) return false;
    r.Bytes(len, scratch);
    if (!r.ok()) return false;
    name.assign(scratch.begin(), scratch.end());
    return true;
  };

  const std::uint32_t counter_count = r.U32();
  if (!r.ok()) return false;
  std::string name;
  for (std::uint32_t i = 0; i < counter_count; ++i) {
    if (!read_name(name)) return false;
    const std::uint64_t value = r.U64();
    if (!r.ok()) return false;
    counters_.GetCounter(name).Increment(value);
  }
  const std::uint32_t gauge_count = r.U32();
  if (!r.ok()) return false;
  for (std::uint32_t i = 0; i < gauge_count; ++i) {
    if (!read_name(name)) return false;
    const std::int64_t value = r.I64();
    if (!r.ok()) return false;
    counters_.GetGauge(name).Set(value);
  }

  std::vector<std::uint8_t> blob;
  const auto read_blob = [&] {
    const std::uint32_t len = r.U32();
    if (!r.ok()) return false;
    r.Bytes(len, blob);
    return r.ok();
  };
  if (!read_blob()) return false;
  if (!scheduler_->ImportState(blob.data(), blob.size())) return false;
  if (!read_blob()) return false;
  if (!policy_->ImportState(blob.data(), blob.size())) return false;

  const std::uint32_t pool_count = r.U32();
  if (!r.ok() || pool_count != pools_.size()) return false;
  workload::JobSpec spec;
  cluster::JobArena::RestoreImage image;
  for (std::uint32_t p = 0; p < pool_count; ++p) {
    PhysicalPool& pool = *pools_[p];
    if (PoolId(r.U32()) != pool.id()) return false;
    const std::uint32_t offline_count = r.U32();
    if (!r.ok() || offline_count > pool.machines().size()) return false;
    for (std::uint32_t i = 0; i < offline_count; ++i) {
      const MachineId m(r.U32());
      if (!r.ok() || !m.valid() || m.value() >= pool.machines().size()) {
        return false;
      }
      pool.RestoreOffline(m);
    }
    const std::uint32_t job_count = r.U32();
    if (!r.ok() || job_count > payload.size()) return false;
    for (std::uint32_t i = 0; i < job_count; ++i) {
      if (!DecodeJobRecord(r, scratch, spec, image)) return false;
      if (image.pool != pool.id()) return false;
      const Job job = jobs_.RestoreJob(std::move(spec), image);
      switch (image.state) {
        case JobState::kRunning:
          pool.RestoreRunning(job);
          break;
        case JobState::kSuspended:
          pool.RestoreSuspended(job);
          break;
        case JobState::kWaiting:
          pool.RestoreWaiting(job);
          break;
        default:
          return false;  // pooled section only holds parked states
      }
    }
  }

  const std::uint32_t loose_count = r.U32();
  if (!r.ok() || loose_count > payload.size()) return false;
  for (std::uint32_t i = 0; i < loose_count; ++i) {
    if (!DecodeJobRecord(r, scratch, spec, image)) return false;
    switch (image.state) {
      case JobState::kRunning:
      case JobState::kSuspended:
      case JobState::kWaiting:
        return false;  // parked states belong to the pooled section
      default:
        break;
    }
    jobs_.RestoreJob(std::move(spec), image);
  }

  // Free-slot floors last: every RestoreJob above ran with an empty free
  // list (fresh slots only), so re-parking these now rebuilds the reuse
  // stack in its live LIFO order without disturbing the restored jobs.
  const std::uint32_t floor_count = r.U32();
  if (!r.ok() || floor_count > payload.size()) return false;
  if (floor_count > 0 && !jobs_.reclaim_enabled()) return false;
  for (std::uint32_t i = 0; i < floor_count; ++i) {
    const std::uint64_t floor = r.U64();
    if (!r.ok()) return false;
    jobs_.RestoreFreeSlot(floor);
  }
  if (!r.exhausted()) return false;
  CheckInvariants();
  return true;
}

}  // namespace netbatch::sched

#include "service/protocol.h"

#include <cstring>

namespace netbatch::service {

void WireWriter::U16(std::uint16_t v) {
  out_->push_back(static_cast<std::uint8_t>(v));
  out_->push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::U32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out_->push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::U64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out_->push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::uint16_t WireReader::U16() {
  if (pos_ + 2 > size_) {
    ok_ = false;
    return 0;
  }
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::U32() {
  if (pos_ + 4 > size_) {
    ok_ = false;
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::U64() {
  if (pos_ + 8 > size_) {
    ok_ = false;
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

void WireReader::Bytes(std::size_t len, std::vector<std::uint8_t>& out) {
  out.clear();
  if (len > size_ - pos_) {
    ok_ = false;
    return;
  }
  out.assign(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
}

void EncodeHeader(const FrameHeader& header, std::vector<std::uint8_t>& out) {
  WireWriter w(out);
  w.U32(header.magic);
  w.U16(header.version);
  w.U16(header.opcode);
  w.U64(header.request_id);
  w.U32(header.payload_len);
}

void EncodeFrame(std::uint16_t opcode, std::uint64_t request_id,
                 const std::vector<std::uint8_t>& payload,
                 std::vector<std::uint8_t>& out) {
  FrameHeader header;
  header.opcode = opcode;
  header.request_id = request_id;
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  EncodeHeader(header, out);
  out.insert(out.end(), payload.begin(), payload.end());
}

void EncodeJobSpec(const workload::JobSpec& spec,
                   std::vector<std::uint8_t>& out) {
  WireWriter w(out);
  w.U64(spec.id.value());
  w.U64(spec.task.value());
  w.I64(spec.submit_time);
  w.I32(spec.priority);
  w.I32(spec.cores);
  w.I64(spec.memory_mb);
  w.I64(spec.runtime);
  w.I32(spec.owner);
  w.U32(static_cast<std::uint32_t>(spec.candidate_pools.size()));
  for (PoolId pool : spec.candidate_pools) w.U32(pool.value());
}

bool DecodeJobSpec(const std::vector<std::uint8_t>& payload,
                   workload::JobSpec& spec) {
  WireReader r(payload);
  spec.id = JobId(static_cast<JobId::ValueType>(r.U64()));
  spec.task = TaskId(static_cast<TaskId::ValueType>(r.U64()));
  spec.submit_time = r.I64();
  spec.priority = r.I32();
  spec.cores = r.I32();
  spec.memory_mb = r.I64();
  spec.runtime = r.I64();
  spec.owner = r.I32();
  const std::uint32_t pool_count = r.U32();
  if (!r.ok()) return false;
  // A pool list longer than the payload could even encode is a lie; cap
  // before allocating.
  if (pool_count > payload.size() / 4) return false;
  spec.candidate_pools.clear();
  spec.candidate_pools.reserve(pool_count);
  for (std::uint32_t i = 0; i < pool_count; ++i) {
    spec.candidate_pools.push_back(PoolId(r.U32()));
  }
  return r.exhausted();
}

void EncodeSubmitResponse(const SubmitResponse& r,
                          std::vector<std::uint8_t>& out) {
  WireWriter w(out);
  w.U32(static_cast<std::uint32_t>(r.status));
  w.U64(r.job_id);
  w.U32(r.pool);
  w.U32(r.machine);
}

bool DecodeSubmitResponse(const std::vector<std::uint8_t>& payload,
                          SubmitResponse& r) {
  WireReader reader(payload);
  r.status = static_cast<Status>(reader.U32());
  r.job_id = reader.U64();
  r.pool = reader.U32();
  r.machine = reader.U32();
  return reader.exhausted();
}

void EncodeMachineOpPayload(std::uint32_t pool, std::uint32_t machine,
                            std::vector<std::uint8_t>& out) {
  WireWriter w(out);
  w.U32(pool);
  w.U32(machine);
}

bool DecodeMachineOpPayload(const std::vector<std::uint8_t>& payload,
                            std::uint32_t& pool, std::uint32_t& machine) {
  WireReader r(payload);
  pool = r.U32();
  machine = r.U32();
  return r.exhausted();
}

bool FrameDecoder::Fail(const std::string& why) {
  failed_ = true;
  error_ = why;
  buffer_.clear();
  return false;
}

bool FrameDecoder::Feed(const std::uint8_t* data, std::size_t size,
                        std::vector<Frame>& frames) {
  if (failed_) return false;
  buffer_.insert(buffer_.end(), data, data + size);
  std::size_t pos = 0;
  while (buffer_.size() - pos >= kFrameHeaderSize) {
    WireReader r(buffer_.data() + pos, kFrameHeaderSize);
    FrameHeader header;
    header.magic = r.U32();
    header.version = r.U16();
    header.opcode = r.U16();
    header.request_id = r.U64();
    header.payload_len = r.U32();
    if (header.magic != kMagic) return Fail("bad frame magic");
    if (header.version != kProtocolVersion) {
      return Fail("unsupported protocol version");
    }
    if (header.payload_len > max_payload_) return Fail("payload too large");
    if (buffer_.size() - pos - kFrameHeaderSize < header.payload_len) {
      break;  // payload still in flight
    }
    Frame frame;
    frame.header = header;
    const auto* payload_begin = buffer_.data() + pos + kFrameHeaderSize;
    frame.payload.assign(payload_begin, payload_begin + header.payload_len);
    frames.push_back(std::move(frame));
    pos += kFrameHeaderSize + header.payload_len;
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

}  // namespace netbatch::service

// Global JobId -> shard routing table for the sharded daemon.
//
// Each job admitted by any shard registers here so every shard can route a
// job op (complete / suspend / resume / query / kill) to the event loop
// that owns the job. The map is the only cluster-wide mutable state the
// shards share; it is touched once per submit, once per cross-shard job-op
// lookup, and once per terminal reclamation — never on the per-decision hot
// path — so a striped mutex is plenty. Internal duplicate jobs (the
// duplication extension's twins) are shard-local and never registered.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/ids.h"

namespace netbatch::service {

class JobDirectory {
 public:
  // Claims `id` for `shard`. Returns false (and changes nothing) when the
  // id is already claimed — the cluster-wide duplicate-submit check.
  bool TryInsert(JobId id, std::uint32_t shard) {
    Stripe& stripe = StripeFor(id);
    std::lock_guard<std::mutex> lock(stripe.mu);
    return stripe.map.emplace(id, shard).second;
  }

  std::optional<std::uint32_t> Lookup(JobId id) const {
    const Stripe& stripe = StripeFor(id);
    std::lock_guard<std::mutex> lock(stripe.mu);
    const auto it = stripe.map.find(id);
    if (it == stripe.map.end()) return std::nullopt;
    return it->second;
  }

  // Releases `id` if (and only if) `shard` owns it. The owner check keeps a
  // shard reclaiming one of its internal duplicate ids from releasing an
  // unrelated client job that happens to share the number on another shard.
  void EraseIfOwner(JobId id, std::uint32_t shard) {
    Stripe& stripe = StripeFor(id);
    std::lock_guard<std::mutex> lock(stripe.mu);
    const auto it = stripe.map.find(id);
    if (it != stripe.map.end() && it->second == shard) stripe.map.erase(it);
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      total += stripe.map.size();
    }
    return total;
  }

 private:
  static constexpr std::size_t kStripes = 64;

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<JobId, std::uint32_t> map;
  };

  Stripe& StripeFor(JobId id) { return stripes_[id.value() % kStripes]; }
  const Stripe& StripeFor(JobId id) const {
    return stripes_[id.value() % kStripes];
  }

  Stripe stripes_[kStripes];
};

}  // namespace netbatch::service

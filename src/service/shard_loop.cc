#include "service/shard_loop.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/check.h"
#include "common/crc32c.h"
#include "common/log.h"

namespace netbatch::service {

namespace {

// The poll timeout when nothing is pending: long enough to idle cheaply,
// short enough to notice the stop flag promptly.
constexpr int kIdlePollMs = 100;

// Epoll token for the mailbox eventfd; never collides with a session token
// (fd part would be 0xffffffff).
constexpr std::uint64_t kWakeToken = ~0ull;

bool IsTerminal(cluster::JobState state) {
  return state == cluster::JobState::kCompleted ||
         state == cluster::JobState::kRejected ||
         state == cluster::JobState::kKilled;
}

// WAL record types. Every payload leads with the I64 tick the mutation was
// applied at, so replay re-runs the exact decision sequence and recovery
// can fast-forward the clock before touching the core.
enum class WalKind : std::uint16_t {
  kSubmit = 1,     // now, JobSpec (candidate pools already shard-local)
  kJobOp = 2,      // now, u16 opcode, u64 job id — logged only if it mutated
  kMachineOp = 3,  // now, u16 opcode, u32 local pool, u32 machine
  kTimer = 4,      // now, u16 kind, u64 job, u64 stamp, u32 local pool
  kDrain = 5,      // now
  // now, u32 count, count * u64 job id. Reclamation reuses job-table slots
  // (with a generation floor), so WHEN a terminal job left the table is as
  // much a part of the decision sequence as the ops themselves: replay must
  // erase the same ids at the same point or later submits land in different
  // slots/generations than the live run (and an acked re-submit of a
  // reclaimed id would bounce off its still-present predecessor).
  kReclaim = 6,
};

// Ids per kReclaim record; a pathological round reclaiming more than this
// simply logs several records back to back (erase order is preserved).
constexpr std::size_t kReclaimIdsPerRecord = 8192;

// Version tag of the shard wrapper around the core's serialized state
// inside a snapshot payload.
constexpr std::uint32_t kSnapshotWrapperVersion = 1;

constexpr std::uint32_t kShardMetaMagic = 0x4d53424eu;  // "NBSM"

// The tick stamp leading every WAL record payload (0 if malformed — the
// CRC already vouched for it, so that never happens in practice).
Ticks WalRecordNow(const persist::WalRecord& record) {
  if (record.payload.size() < 8) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | record.payload[i];
  return static_cast<Ticks>(v);
}

// Scatter-gather stats folding uses the shared netbatch::MergeCounterSnapshots
// (common/counters.h): counters add, gauge values merge per-policy (sum for
// additive quantities, max for watermarks like daemon.recovery_ms), gauge
// maxes merge by max — a 2-shard daemon must report the cluster-wide
// watermark, not the sum of per-shard watermarks.

// Same layout as CounterRegistry::Render(), so clients parse one format
// whether the daemon runs one shard or many.
std::string RenderCounterSnapshot(const CounterSnapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += name + "=" + std::to_string(value) + "\n";
  }
  for (const auto& [name, value, max] : snap.gauges) {
    out += name + "=" + std::to_string(value) +
           " (max=" + std::to_string(max) + ")\n";
  }
  return out;
}

std::string RenderLatencyLine(const LatencyHistogram& lat) {
  return "placement_latency_ns{count=" + std::to_string(lat.count()) +
         ",p50=" + std::to_string(lat.Quantile(0.5)) +
         ",p99=" + std::to_string(lat.Quantile(0.99)) +
         ",p999=" + std::to_string(lat.Quantile(0.999)) +
         ",max=" + std::to_string(lat.max()) + "}\n";
}

}  // namespace

std::uint64_t WallNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ShardLoop::ShardLoop(const cluster::ClusterConfig& config,
                     cluster::InitialScheduler& scheduler,
                     cluster::ReschedulingPolicy& policy, ShardOptions options,
                     sched::CoreOptions core_options, JobDirectory& directory,
                     std::atomic<bool>& draining)
    : options_(options),
      core_(config, scheduler, policy, /*host=*/*this,
            std::move(core_options)),
      directory_(&directory),
      draining_(&draining) {
  NETBATCH_CHECK(options_.time_scale > 0, "time_scale must be positive");
  NETBATCH_CHECK(options_.shard_index < options_.shard_count,
                 "shard index out of range");
  core_.AddObserver(this);
  // A serving core reclaims terminal jobs; the simulator never does, which
  // is what keeps sweep artifacts byte-identical.
  core_.jobs().EnableReclamation();
  latency_map_gauge_ = &core_.counters().GetGauge("daemon.latency_map_entries");
  if (!options_.data_dir.empty()) {
    // Registered in the ctor (not lazily in the durability paths) so the
    // registry order is identical before a checkpoint and after a restore.
    wal_bytes_gauge_ = &core_.counters().GetGauge("daemon.wal_bytes");
    wal_records_gauge_ = &core_.counters().GetGauge("daemon.wal_records");
    recovery_ms_gauge_ = &core_.counters().GetGauge("daemon.recovery_ms");
  }
}

// --- time & timers ----------------------------------------------------------

Ticks ShardLoop::NowTicks() const {
  const std::uint64_t elapsed_ns = WallNanos() - clock_origin_ns_;
  // ticks = seconds * time_scale, computed in ns to avoid drift. The offset
  // is zero except after recovery, which resumes the pre-crash tick clock
  // (per shard — cross-shard tick comparability is approximate after a
  // restart, and nothing compares ticks across cores).
  return tick_offset_ +
         static_cast<Ticks>(
             static_cast<std::uint64_t>(options_.time_scale) * elapsed_ns /
             1'000'000'000ull);
}

void ShardLoop::PushTimer(TimerKind kind, const cluster::Job& job, Ticks delay,
                          PoolId pool) {
  Timer timer;
  timer.due = NowTicks() + delay;
  timer.seq = next_timer_seq_++;
  timer.kind = kind;
  timer.job = job.id();
  timer.stamp = job.generation();
  timer.pool = pool;
  timers_.push_back(timer);
  std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
}

void ShardLoop::ArmCompletion(cluster::Job job, Ticks duration) {
  if (!options_.auto_complete) return;  // the client owns completion
  PushTimer(TimerKind::kCompletion, job, duration);
}

void ShardLoop::ArmWaitTimeout(cluster::Job job, Ticks threshold) {
  PushTimer(TimerKind::kWaitTimeout, job, threshold);
}

void ShardLoop::ScheduleRestartDelivery(cluster::Job job, PoolId target,
                                        Ticks overhead) {
  PushTimer(TimerKind::kDelivery, job, overhead, target);
}

void ShardLoop::OnJobTerminal(const cluster::Job& job) {
  // A job that went terminal before ever starting (killed while queued,
  // rejected at admission) would leak its arrival entry forever — this
  // erase IS the latency-map drain.
  if (submit_arrival_ns_.erase(job.id()) > 0) {
    latency_map_gauge_->Set(
        static_cast<std::int64_t>(submit_arrival_ns_.size()));
  }
  reclaim_queue_.push_back(job.id());
}

void ShardLoop::OnJobStarted(const cluster::Job& job) {
  const auto it = submit_arrival_ns_.find(job.id());
  if (it == submit_arrival_ns_.end()) return;  // restart/backfill, not admission
  placement_latency_.Record(WallNanos() - it->second);
  submit_arrival_ns_.erase(it);
  latency_map_gauge_->Set(static_cast<std::int64_t>(submit_arrival_ns_.size()));
}

void ShardLoop::DrainDueTimers() {
  while (!timers_.empty()) {
    const Ticks now = NowTicks();
    if (timers_.front().due > now) break;
    const Timer timer = timers_.front();
    std::pop_heap(timers_.begin(), timers_.end(), TimerLater{});
    timers_.pop_back();
    // A reclaimed slot means the job this timer was armed for is gone (and
    // its id may even be reused — the generation floor on reuse would catch
    // that too, but an unknown id must not reach jobs_.at()).
    if (!core_.jobs().Contains(timer.job)) continue;
    switch (timer.kind) {
      case TimerKind::kCompletion:
        core_.Complete(timer.job, timer.stamp, now);
        break;
      case TimerKind::kWaitTimeout:
        core_.OnWaitTimeout(timer.job, timer.stamp, now);
        break;
      case TimerKind::kDelivery:
        core_.DeliverRestart(timer.job, timer.stamp, timer.pool, now);
        break;
    }
    if (wal_ != nullptr) {
      wal_payload_.clear();
      WireWriter w(wal_payload_);
      w.I64(now);
      w.U16(static_cast<std::uint16_t>(timer.kind));
      w.U64(timer.job.value());
      w.U64(timer.stamp);
      w.U32(timer.pool.value());
      AppendWal(static_cast<std::uint16_t>(WalKind::kTimer));
    }
  }
}

int ShardLoop::NextTimerDelayMs() const {
  if (timers_.empty()) return -1;
  const Ticks now = NowTicks();
  const Ticks due = timers_.front().due;
  if (due <= now) return 0;
  // ticks -> ms at time_scale ticks per second, rounded up so we never wake
  // a hair early and busy-spin.
  const std::int64_t ms =
      ((due - now) * 1000 + options_.time_scale - 1) / options_.time_scale;
  return static_cast<int>(std::min<std::int64_t>(ms, kIdlePollMs));
}

// --- lifecycle --------------------------------------------------------------

void ShardLoop::Start() {
  thread_ = std::thread([this] { Run(); });
}

void ShardLoop::RequestStop() {
  stop_.store(true, std::memory_order_relaxed);
  ShardMessage nudge;  // fd < 0: wakes the loop, handled as a no-op
  mailbox_.Post(std::move(nudge));
}

void ShardLoop::Join() {
  if (thread_.joinable()) thread_.join();
}

void ShardLoop::Run() {
  if (!options_.data_dir.empty()) RecoverFromDisk();
  poller_.Add(mailbox_.wake_fd(), net::kPollIn, kWakeToken);
  while (!stop_.load(std::memory_order_relaxed)) {
    int timeout_ms = NextTimerDelayMs();
    if (timeout_ms < 0) timeout_ms = kIdlePollMs;
    poller_.Wait(timeout_ms, ready_);
    // Clear-before-drain keeps the wake-up race-free (see net/mailbox.h).
    mailbox_.ClearWake();
    DrainMailbox();
    DrainDueTimers();
    DrainReclaim();
    if (wal_ != nullptr && options_.checkpoint_every_ticks > 0 &&
        NowTicks() >= next_checkpoint_due_) {
      DoLocalCheckpoint();
      next_checkpoint_due_ = NowTicks() + options_.checkpoint_every_ticks;
    }
    for (const net::PollResult& event : ready_) {
      if (event.token == kWakeToken) continue;  // handled above
      const int fd = static_cast<int>(event.token & 0xffffffffu);
      const auto gen = static_cast<std::uint32_t>(event.token >> 32);
      const auto it = sessions_.find(fd);
      // Generation mismatch: this event is for a connection dropped earlier
      // in the batch whose fd number was already recycled. Delivering it to
      // the new session would corrupt an unrelated client's stream.
      if (it == sessions_.end() || it->second.gen != gen) continue;
      SessionState& state = it->second;
      bool alive = true;
      if (event.events & net::kPollOut) {
        alive = state.session.FlushPending() == net::Session::IoStatus::kOk;
      }
      if (alive && (event.events & net::kPollIn)) {
        alive = HandleReadable(state, event.token);
      }
      if (alive && (event.events & net::kPollHup) &&
          !(event.events & net::kPollIn)) {
        alive = false;
      }
      if (!alive) {
        DropSession(fd);
        continue;
      }
      // Sessions with queued output get rearmed by FlushRound below,
      // usually straight back to read-only interest.
      if (!state.session.wants_write()) RearmSession(state);
    }
    // One WAL flush covers the whole round's records (also the time-based
    // fsync trigger's heartbeat), then the queued acks leave.
    FlushRound();
  }
  poller_.Remove(mailbox_.wake_fd());
  sessions_.clear();
  // Connections the acceptor posted after the stop flag flipped would leak
  // their fds inside dead mailbox nodes otherwise.
  inbox_.clear();
  mailbox_.Drain(inbox_);
  for (ShardMessage& msg : inbox_) {
    if (msg.kind == ShardMessage::Kind::kNewSession && msg.fd >= 0) {
      ::close(msg.fd);
    }
  }
  inbox_.clear();
}

void ShardLoop::DrainMailbox() {
  inbox_.clear();
  mailbox_.Drain(inbox_);
  for (ShardMessage& msg : inbox_) HandleMessage(msg);
  inbox_.clear();
}

void ShardLoop::DrainReclaim() {
  reclaimed_ids_.clear();
  for (JobId id : reclaim_queue_) {
    if (!core_.jobs().Contains(id)) continue;  // already reclaimed
    if (!IsTerminal(core_.jobs().at(id).state())) continue;
    directory_->EraseIfOwner(id, options_.shard_index);
    core_.jobs().Erase(id);
    if (wal_ != nullptr) reclaimed_ids_.push_back(id);
  }
  reclaim_queue_.clear();
  // Erasing frees slots for reuse, which moves the generation sequence
  // later Creates observe — log it so replay reclaims at the same point
  // (see WalKind::kReclaim).
  for (std::size_t base = 0; base < reclaimed_ids_.size();
       base += kReclaimIdsPerRecord) {
    const std::size_t end =
        std::min(base + kReclaimIdsPerRecord, reclaimed_ids_.size());
    wal_payload_.clear();
    WireWriter w(wal_payload_);
    w.I64(NowTicks());
    w.U32(static_cast<std::uint32_t>(end - base));
    for (std::size_t i = base; i < end; ++i) {
      w.U64(reclaimed_ids_[i].value());
    }
    AppendWal(static_cast<std::uint16_t>(WalKind::kReclaim));
  }
}

void ShardLoop::HandleMessage(ShardMessage& msg) {
  switch (msg.kind) {
    case ShardMessage::Kind::kNewSession:
      if (msg.fd >= 0) AddSession(msg.fd);
      break;
    case ShardMessage::Kind::kFrame:
      ProcessFrame(msg.sender, msg.token, msg.frame, msg.arrival_ns,
                   /*out=*/nullptr);
      break;
    case ShardMessage::Kind::kResponse:
      WriteToSession(msg.token, msg.bytes.data(), msg.bytes.size());
      break;
    case ShardMessage::Kind::kStatsQuery: {
      core_.RefreshGauges(NowTicks());
      ShardMessage reply;
      reply.kind = ShardMessage::Kind::kStatsReply;
      reply.sender = options_.shard_index;
      reply.gather = msg.gather;
      reply.counters = core_.counters().TakeSnapshot();
      reply.latency = placement_latency_;
      peers_[msg.sender]->Post(std::move(reply));
      break;
    }
    case ShardMessage::Kind::kStatsReply: {
      const auto it = stats_gathers_.find(msg.gather);
      if (it == stats_gathers_.end()) break;
      MergeCounterSnapshots(it->second.counters, msg.counters);
      it->second.latency.Merge(msg.latency);
      if (--it->second.remaining == 0) FinishStatsGather(msg.gather);
      break;
    }
    case ShardMessage::Kind::kSnapshotQuery: {
      ShardMessage reply;
      reply.kind = ShardMessage::Kind::kSnapshotReply;
      reply.sender = options_.shard_index;
      reply.gather = msg.gather;
      reply.snapshot = LocalSnapshot();
      peers_[msg.sender]->Post(std::move(reply));
      break;
    }
    case ShardMessage::Kind::kSnapshotReply: {
      const auto it = snapshot_gathers_.find(msg.gather);
      if (it == snapshot_gathers_.end()) break;
      SnapshotGather& g = it->second;
      g.merged.started += msg.snapshot.started;
      g.merged.completed += msg.snapshot.completed;
      g.merged.rejected += msg.snapshot.rejected;
      g.merged.preemptions += msg.snapshot.preemptions;
      g.merged.reschedules += msg.snapshot.reschedules;
      g.merged.pools.insert(g.merged.pools.end(), msg.snapshot.pools.begin(),
                            msg.snapshot.pools.end());
      if (--g.remaining == 0) FinishSnapshotGather(msg.gather);
      break;
    }
    case ShardMessage::Kind::kCheckpointQuery: {
      if (wal_ != nullptr) DoLocalCheckpoint();
      ShardMessage reply;
      reply.kind = ShardMessage::Kind::kCheckpointReply;
      reply.sender = options_.shard_index;
      reply.gather = msg.gather;
      peers_[msg.sender]->Post(std::move(reply));
      break;
    }
    case ShardMessage::Kind::kCheckpointReply: {
      const auto it = checkpoint_gathers_.find(msg.gather);
      if (it == checkpoint_gathers_.end()) break;
      if (--it->second.remaining == 0) FinishCheckpointGather(msg.gather);
      break;
    }
  }
}

// --- sessions ---------------------------------------------------------------

void ShardLoop::AddSession(int fd) {
  const std::uint32_t gen = next_session_gen_++;
  auto [it, inserted] =
      sessions_.emplace(fd, SessionState(fd, options_.max_payload, gen));
  NETBATCH_CHECK(inserted, "fd already has a session");
  it->second.session.set_max_pending(options_.max_session_pending);
  poller_.Add(fd, net::kPollIn, MakeToken(fd, gen));
}

void ShardLoop::DropSession(int fd) {
  poller_.Remove(fd);
  sessions_.erase(fd);
}

void ShardLoop::RearmSession(SessionState& state) {
  poller_.Modify(state.session.fd(),
                 state.session.wants_write() ? (net::kPollIn | net::kPollOut)
                                             : net::kPollIn,
                 MakeToken(state.session.fd(), state.gen));
}

bool ShardLoop::HandleReadable(SessionState& state, std::uint64_t token) {
  read_buf_.clear();
  const net::Session::IoStatus status = state.session.Read(read_buf_);
  if (status == net::Session::IoStatus::kError) return false;
  frames_.clear();
  if (!state.decoder.Feed(read_buf_.data(), read_buf_.size(), frames_)) {
    NETBATCH_LOG(kWarn) << "dropping session: " << state.decoder.error();
    return false;
  }
  const std::uint64_t arrival_ns = WallNanos();
  write_buf_.clear();
  for (const Frame& frame : frames_) {
    ProcessFrame(options_.shard_index, token, frame, arrival_ns, &write_buf_);
  }
  if (!write_buf_.empty()) {
    // Queue only — the bytes leave in FlushRound(), after this round's WAL
    // records have reached the kernel.
    if (state.session.QueueWrite(write_buf_.data(), write_buf_.size()) !=
        net::Session::IoStatus::kOk) {
      NETBATCH_LOG(kWarn) << "dropping session: pending output over "
                          << options_.max_session_pending
                          << " bytes (slow reader)";
      return false;
    }
    round_dirty_.push_back(token);
  }
  if (status == net::Session::IoStatus::kClosed) {
    // Orderly EOF. A partial frame left in the decoder means the peer
    // truncated mid-send; either way the session is done.
    return false;
  }
  return true;
}

void ShardLoop::WriteToSession(std::uint64_t token, const std::uint8_t* bytes,
                               std::size_t size) {
  const int fd = static_cast<int>(token & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(token >> 32);
  const auto it = sessions_.find(fd);
  if (it == sessions_.end() || it->second.gen != gen) return;  // session gone
  SessionState& state = it->second;
  if (state.session.QueueWrite(bytes, size) !=
      net::Session::IoStatus::kOk) {
    NETBATCH_LOG(kWarn) << "dropping session: pending output over "
                        << options_.max_session_pending
                        << " bytes (slow reader)";
    DropSession(fd);
    return;
  }
  round_dirty_.push_back(token);
}

void ShardLoop::FlushRound() {
  FlushWal();
  if (round_dirty_.empty()) return;
  for (const std::uint64_t token : round_dirty_) {
    const int fd = static_cast<int>(token & 0xffffffffu);
    const auto gen = static_cast<std::uint32_t>(token >> 32);
    const auto it = sessions_.find(fd);
    if (it == sessions_.end() || it->second.gen != gen) continue;
    if (it->second.session.FlushPending() != net::Session::IoStatus::kOk) {
      DropSession(fd);
      continue;
    }
    RearmSession(it->second);
  }
  round_dirty_.clear();
}

// --- frame dispatch ---------------------------------------------------------

void ShardLoop::Respond(std::uint32_t origin, std::uint64_t token,
                        std::vector<std::uint8_t>&& bytes,
                        std::vector<std::uint8_t>* out) {
  if (origin == options_.shard_index) {
    if (out != nullptr) {
      out->insert(out->end(), bytes.begin(), bytes.end());
    } else {
      WriteToSession(token, bytes.data(), bytes.size());
    }
    return;
  }
  // A forwarded mutation was applied (and logged) HERE, but its ack leaves
  // through the origin shard's socket — flush this shard's WAL before the
  // response crosses the mailbox, or the origin could ack an unflushed
  // record.
  FlushWal();
  ShardMessage msg;
  msg.kind = ShardMessage::Kind::kResponse;
  msg.sender = options_.shard_index;
  msg.token = token;
  msg.bytes = std::move(bytes);
  peers_[origin]->Post(std::move(msg));
}

void ShardLoop::RespondStatus(std::uint32_t origin, std::uint64_t token,
                              const FrameHeader& header, Status status,
                              std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  w.U32(static_cast<std::uint32_t>(status));
  std::vector<std::uint8_t> bytes;
  EncodeFrame(header.opcode | kResponseBit, header.request_id, payload, bytes);
  Respond(origin, token, std::move(bytes), out);
}

void ShardLoop::ForwardFrame(std::uint32_t target, std::uint32_t origin,
                             std::uint64_t token, const Frame& frame,
                             std::uint64_t arrival_ns) {
  ShardMessage msg;
  msg.kind = ShardMessage::Kind::kFrame;
  msg.sender = origin;
  msg.token = token;
  msg.frame = frame;
  msg.arrival_ns = arrival_ns;
  peers_[target]->Post(std::move(msg));
}

void ShardLoop::ProcessFrame(std::uint32_t origin, std::uint64_t token,
                             const Frame& frame, std::uint64_t arrival_ns,
                             std::vector<std::uint8_t>* out) {
  switch (static_cast<Opcode>(frame.header.opcode)) {
    case Opcode::kSubmit:
      HandleSubmit(origin, token, frame, arrival_ns, out);
      break;
    case Opcode::kComplete:
    case Opcode::kSuspend:
    case Opcode::kResume:
    case Opcode::kQueryJob:
    case Opcode::kKill:
      HandleJobOp(origin, token, frame, out);
      break;
    case Opcode::kFailMachine:
    case Opcode::kRepairMachine:
      HandleMachineOp(origin, token, frame, out);
      break;
    case Opcode::kDrain:
      draining_->store(true, std::memory_order_release);
      if (wal_ != nullptr) {
        // A drain is the orderly shutdown path: make everything acked so
        // far durable — log the drain, force the batch out, and write a
        // final checkpoint on every shard — before confirming it.
        wal_payload_.clear();
        WireWriter(wal_payload_).I64(NowTicks());
        AppendWal(static_cast<std::uint16_t>(WalKind::kDrain));
        wal_->Sync();
        StartCheckpointFanout(token, frame.header, out);
      } else {
        RespondStatus(origin, token, frame.header, Status::kOk, out);
      }
      break;
    case Opcode::kCheckpoint:
      if (wal_ == nullptr) {
        // No --data-dir: there is nowhere to checkpoint to.
        RespondStatus(origin, token, frame.header, Status::kBadState, out);
      } else {
        StartCheckpointFanout(token, frame.header, out);
      }
      break;
    case Opcode::kSnapshot:
      // Only ever initiated on the session's shard (never forwarded).
      HandleSnapshot(token, frame, out);
      break;
    case Opcode::kStats:
      HandleStats(token, frame, out);
      break;
    default:
      RespondStatus(origin, token, frame.header, Status::kBadRequest, out);
  }
}

void ShardLoop::HandleSubmit(std::uint32_t origin, std::uint64_t token,
                             const Frame& frame, std::uint64_t arrival_ns,
                             std::vector<std::uint8_t>* out) {
  SubmitResponse response;
  workload::JobSpec spec;
  bool valid = DecodeJobSpec(frame.payload, spec);
  if (valid) {
    response.job_id = spec.id.value();
    if (spec.cores <= 0 || spec.memory_mb < 0 || spec.runtime < 0) {
      valid = false;
    }
    for (PoolId pool : spec.candidate_pools) {
      if (pool.value() >= options_.global_pool_count) valid = false;
    }
  }
  if (valid && draining_->load(std::memory_order_acquire)) {
    response.status = Status::kDraining;
    std::vector<std::uint8_t> payload;
    EncodeSubmitResponse(response, payload);
    std::vector<std::uint8_t> bytes;
    EncodeFrame(static_cast<std::uint16_t>(Opcode::kSubmit) | kResponseBit,
                frame.header.request_id, payload, bytes);
    Respond(origin, token, std::move(bytes), out);
    return;
  }
  if (valid && !spec.candidate_pools.empty()) {
    // Keep the candidates this shard owns (an empty candidate list means
    // "any pool" and is always shard-local). When none are ours, forward to
    // the shard of the first candidate — the common case, where a client's
    // submits target pools on its session's shard, never crosses threads.
    std::vector<PoolId> local;
    for (PoolId pool : spec.candidate_pools) {
      if (ShardOfPool(pool.value()) == options_.shard_index) {
        local.push_back(ToLocalPool(pool.value()));
      }
    }
    if (local.empty()) {
      ForwardFrame(ShardOfPool(spec.candidate_pools.front().value()), origin,
                   token, frame, arrival_ns);
      return;
    }
    spec.candidate_pools = std::move(local);
  }
  if (valid) {
    const JobId id = spec.id;
    // Local duplicates first (covers ids the duplication extension spawned
    // on this shard), then the cluster-wide claim.
    if (core_.jobs().Contains(id) ||
        !directory_->TryInsert(id, options_.shard_index)) {
      valid = false;
    } else {
      const Ticks now = NowTicks();
      if (wal_ != nullptr) {
        // Log the spec as admitted — candidate pools already rewritten to
        // this shard's local ids — so replay skips the routing step.
        wal_payload_.clear();
        WireWriter(wal_payload_).I64(now);
        EncodeJobSpec(spec, wal_payload_);
      }
      core_.AdmitJob(std::move(spec));
      submit_arrival_ns_.emplace(id, arrival_ns);
      latency_map_gauge_->Set(
          static_cast<std::int64_t>(submit_arrival_ns_.size()));
      core_.Submit(id, now);
      // Even a rejected submit mutated state (the scheduler cursor, the
      // reject counters, possibly the duplicate id sequence) — log it
      // before acking so the replayed core lands on the same sequence.
      if (wal_ != nullptr) {
        AppendWal(static_cast<std::uint16_t>(WalKind::kSubmit));
      }
      const cluster::Job& job = core_.jobs().at(id);
      switch (job.state()) {
        case cluster::JobState::kRunning:
          response.status = Status::kOk;
          response.pool = ToGlobalPool(job.pool()).value();
          response.machine = job.machine().value();
          break;
        case cluster::JobState::kWaiting:
        case cluster::JobState::kInTransit:
          response.status = Status::kQueued;
          response.pool = ToGlobalPool(job.pool()).value();
          break;
        default:
          // Rejected: OnJobTerminal already drained the arrival entry and
          // queued the slot for reclamation.
          response.status = Status::kRejected;
          break;
      }
    }
  }
  if (!valid) response.status = Status::kBadRequest;
  std::vector<std::uint8_t> payload;
  EncodeSubmitResponse(response, payload);
  std::vector<std::uint8_t> bytes;
  EncodeFrame(static_cast<std::uint16_t>(Opcode::kSubmit) | kResponseBit,
              frame.header.request_id, payload, bytes);
  Respond(origin, token, std::move(bytes), out);
}

void ShardLoop::HandleJobOp(std::uint32_t origin, std::uint64_t token,
                            const Frame& frame,
                            std::vector<std::uint8_t>* out) {
  const auto opcode = static_cast<Opcode>(frame.header.opcode);
  WireReader r(frame.payload);
  const JobId id(static_cast<JobId::ValueType>(r.U64()));
  Status status = Status::kOk;
  std::uint32_t state = 0;
  std::uint32_t pool = 0;
  std::uint32_t machine = 0;
  if (!r.exhausted()) {
    status = Status::kBadRequest;
  } else {
    // Route to the owning shard. A directory miss falls through to the
    // local table: it may be an internal duplicate id (shard-local, never
    // registered) — or truly unknown.
    const std::optional<std::uint32_t> owner = directory_->Lookup(id);
    if (owner.has_value() && *owner != options_.shard_index) {
      ForwardFrame(*owner, origin, token, frame, 0);
      return;
    }
    if (!core_.jobs().Contains(id)) {
      status = Status::kUnknownJob;
    } else {
      const Ticks now = NowTicks();
      const cluster::Job job = core_.jobs().at(id);
      bool mutated = false;
      switch (opcode) {
        case Opcode::kComplete:
          if (job.state() != cluster::JobState::kRunning) {
            status = Status::kBadState;
          } else {
            core_.Complete(id, job.generation(), now);
            mutated = true;
          }
          break;
        case Opcode::kSuspend:
          if (!core_.Suspend(id, now)) {
            status = Status::kBadState;
          } else {
            mutated = true;
          }
          break;
        case Opcode::kResume:
          if (job.state() != cluster::JobState::kSuspended) {
            status = Status::kBadState;
          } else if (!core_.Resume(id, now)) {
            // Still suspended: its machine is full or offline right now.
            status = Status::kQueued;
          } else {
            mutated = true;
          }
          break;
        case Opcode::kQueryJob:
          break;
        case Opcode::kKill:
          if (!core_.Kill(id, now)) {
            status = Status::kBadState;
          } else {
            mutated = true;
          }
          break;
        default:
          status = Status::kBadRequest;
          break;
      }
      // Only ops that actually changed the core are logged: replay mirrors
      // the applied sequence, not the request stream.
      if (mutated && wal_ != nullptr) {
        wal_payload_.clear();
        WireWriter w(wal_payload_);
        w.I64(now);
        w.U16(frame.header.opcode);
        w.U64(id.value());
        AppendWal(static_cast<std::uint16_t>(WalKind::kJobOp));
      }
      state = static_cast<std::uint32_t>(job.state());
      pool = ToGlobalPool(job.pool()).value();
      machine = job.machine().value();
    }
  }
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  w.U32(static_cast<std::uint32_t>(status));
  if (opcode == Opcode::kQueryJob) {
    w.U32(state);
    w.U32(pool);
    w.U32(machine);
  }
  std::vector<std::uint8_t> bytes;
  EncodeFrame(frame.header.opcode | kResponseBit, frame.header.request_id,
              payload, bytes);
  Respond(origin, token, std::move(bytes), out);
}

void ShardLoop::HandleMachineOp(std::uint32_t origin, std::uint64_t token,
                                const Frame& frame,
                                std::vector<std::uint8_t>* out) {
  std::uint32_t pool = 0;
  std::uint32_t machine = 0;
  if (!DecodeMachineOpPayload(frame.payload, pool, machine) ||
      pool >= options_.global_pool_count) {
    RespondStatus(origin, token, frame.header, Status::kBadRequest, out);
    return;
  }
  const std::uint32_t owner = ShardOfPool(pool);
  if (owner != options_.shard_index) {
    ForwardFrame(owner, origin, token, frame, 0);
    return;
  }
  const PoolId local = ToLocalPool(pool);
  if (machine >= core_.pool(local).machines().size()) {
    RespondStatus(origin, token, frame.header, Status::kBadRequest, out);
    return;
  }
  const Ticks now = NowTicks();
  if (static_cast<Opcode>(frame.header.opcode) == Opcode::kFailMachine) {
    core_.FailMachine(local, MachineId(machine), now);
  } else {
    core_.RepairMachine(local, MachineId(machine), now);
  }
  if (wal_ != nullptr) {
    wal_payload_.clear();
    WireWriter w(wal_payload_);
    w.I64(now);
    w.U16(frame.header.opcode);
    w.U32(local.value());
    w.U32(machine);
    AppendWal(static_cast<std::uint16_t>(WalKind::kMachineOp));
  }
  RespondStatus(origin, token, frame.header, Status::kOk, out);
}

// --- stats & snapshot scatter-gather ----------------------------------------

void ShardLoop::HandleStats(std::uint64_t token, const Frame& frame,
                            std::vector<std::uint8_t>* out) {
  core_.RefreshGauges(NowTicks());
  if (options_.shard_count == 1) {
    std::string text = core_.counters().Render();
    text += RenderLatencyLine(placement_latency_);
    std::vector<std::uint8_t> payload(text.begin(), text.end());
    std::vector<std::uint8_t> bytes;
    EncodeFrame(static_cast<std::uint16_t>(Opcode::kStats) | kResponseBit,
                frame.header.request_id, payload, bytes);
    Respond(options_.shard_index, token, std::move(bytes), out);
    return;
  }
  const std::uint64_t gid = next_gather_id_++;
  StatsGather& g = stats_gathers_[gid];
  g.token = token;
  g.request_id = frame.header.request_id;
  g.remaining = options_.shard_count - 1;
  g.counters = core_.counters().TakeSnapshot();
  g.latency = placement_latency_;
  for (std::uint32_t s = 0; s < options_.shard_count; ++s) {
    if (s == options_.shard_index) continue;
    ShardMessage query;
    query.kind = ShardMessage::Kind::kStatsQuery;
    query.sender = options_.shard_index;
    query.gather = gid;
    peers_[s]->Post(std::move(query));
  }
}

void ShardLoop::FinishStatsGather(std::uint64_t gather_id) {
  const auto it = stats_gathers_.find(gather_id);
  StatsGather& g = it->second;
  std::string text = RenderCounterSnapshot(g.counters);
  text += RenderLatencyLine(g.latency);
  std::vector<std::uint8_t> payload(text.begin(), text.end());
  std::vector<std::uint8_t> bytes;
  EncodeFrame(static_cast<std::uint16_t>(Opcode::kStats) | kResponseBit,
              g.request_id, payload, bytes);
  WriteToSession(g.token, bytes.data(), bytes.size());
  stats_gathers_.erase(it);
}

sched::SchedulerCore::Snapshot ShardLoop::LocalSnapshot() {
  sched::SchedulerCore::Snapshot snap = core_.GetSnapshot();
  for (auto& pool : snap.pools) pool.id = ToGlobalPool(pool.id);
  return snap;
}

namespace {

void EncodeSnapshotPayload(Ticks now,
                           const sched::SchedulerCore::Snapshot& snap,
                           std::vector<std::uint8_t>& payload) {
  WireWriter w(payload);
  w.I64(now);
  w.U64(snap.started);
  w.U64(snap.completed);
  w.U64(snap.rejected);
  w.U64(snap.preemptions);
  w.U64(snap.reschedules);
  w.U32(static_cast<std::uint32_t>(snap.pools.size()));
  for (const auto& pool : snap.pools) {
    w.U32(pool.id.value());
    w.I64(pool.total_cores);
    w.I64(pool.busy_cores);
    w.U64(pool.queued);
    w.U64(pool.suspended);
  }
}

}  // namespace

void ShardLoop::HandleSnapshot(std::uint64_t token, const Frame& frame,
                               std::vector<std::uint8_t>* out) {
  if (options_.shard_count == 1) {
    std::vector<std::uint8_t> payload;
    EncodeSnapshotPayload(NowTicks(), LocalSnapshot(), payload);
    std::vector<std::uint8_t> bytes;
    EncodeFrame(static_cast<std::uint16_t>(Opcode::kSnapshot) | kResponseBit,
                frame.header.request_id, payload, bytes);
    Respond(options_.shard_index, token, std::move(bytes), out);
    return;
  }
  const std::uint64_t gid = next_gather_id_++;
  SnapshotGather& g = snapshot_gathers_[gid];
  g.token = token;
  g.request_id = frame.header.request_id;
  g.remaining = options_.shard_count - 1;
  g.merged = LocalSnapshot();
  for (std::uint32_t s = 0; s < options_.shard_count; ++s) {
    if (s == options_.shard_index) continue;
    ShardMessage query;
    query.kind = ShardMessage::Kind::kSnapshotQuery;
    query.sender = options_.shard_index;
    query.gather = gid;
    peers_[s]->Post(std::move(query));
  }
}

void ShardLoop::FinishSnapshotGather(std::uint64_t gather_id) {
  const auto it = snapshot_gathers_.find(gather_id);
  SnapshotGather& g = it->second;
  std::sort(g.merged.pools.begin(), g.merged.pools.end(),
            [](const auto& a, const auto& b) {
              return a.id.value() < b.id.value();
            });
  std::vector<std::uint8_t> payload;
  EncodeSnapshotPayload(NowTicks(), g.merged, payload);
  std::vector<std::uint8_t> bytes;
  EncodeFrame(static_cast<std::uint16_t>(Opcode::kSnapshot) | kResponseBit,
              g.request_id, payload, bytes);
  WriteToSession(g.token, bytes.data(), bytes.size());
  snapshot_gathers_.erase(it);
}

// --- durability -------------------------------------------------------------

void ShardLoop::AppendWal(std::uint16_t type) {
  wal_->Append(type, wal_payload_);
}

void ShardLoop::FlushWal() {
  if (wal_ == nullptr) return;
  const bool had_buffered = wal_->has_buffered();
  // Always let Flush run: with an empty buffer it still evaluates the
  // time-based fsync trigger for records flushed-but-unsynced earlier.
  wal_->Flush();
  if (!had_buffered) return;
  // Gauge updates ride the flush, not the per-record append — one batch's
  // worth of records shows up at once, which is also exactly when they
  // became crash-durable.
  wal_bytes_gauge_->Set(static_cast<std::int64_t>(wal_->bytes_appended()));
  wal_records_gauge_->Set(
      static_cast<std::int64_t>(wal_->records_appended()));
}

void ShardLoop::ValidateShardMeta() {
  const std::string path = options_.data_dir + "/shard.meta";
  std::vector<std::uint8_t> meta;
  {
    WireWriter w(meta);
    w.U32(kShardMetaMagic);
    w.U32(options_.shard_index);
    w.U32(options_.shard_count);
    w.U32(options_.global_pool_count);
    w.U32(ExtendCrc32c(0, meta.data(), meta.size()));
  }
  std::ifstream in(path, std::ios::binary);
  if (in) {
    std::vector<std::uint8_t> existing(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    if (existing == meta) return;
    // Separate an intact-but-different file from a torn write: the trailing
    // CRC vouches for intactness. Intact + different topology would
    // silently misroute every recovered job — refuse loudly. A torn file
    // (crash mid-write) says nothing about the topology; rewriting it below
    // keeps an otherwise healthy data dir bootable.
    const bool intact =
        existing.size() == meta.size() &&
        [&] {
          WireReader r(existing);
          const std::uint32_t magic = r.U32();
          r.U32();  // shard index
          r.U32();  // shard count
          r.U32();  // pool count
          const std::uint32_t crc = r.U32();
          return r.exhausted() && magic == kShardMetaMagic &&
                 crc == ExtendCrc32c(0, existing.data(), existing.size() - 4);
        }();
    NETBATCH_CHECK(!intact,
                   "shard.meta mismatch: " + path +
                       " was written by a daemon with different "
                       "--threads/pool topology");
    NETBATCH_LOG(kWarn) << "shard " << options_.shard_index
                        << ": torn/corrupt shard.meta, rewriting";
  }
  in.close();
  // tmp + fsync + rename, like snapshots: a crash mid-write must never
  // leave a partial file that bricks every subsequent start.
  const std::string tmp_path = path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  NETBATCH_CHECK(fd >= 0, "cannot create " + tmp_path);
  std::size_t off = 0;
  while (off < meta.size()) {
    const ssize_t n = ::write(fd, meta.data() + off, meta.size() - off);
    if (n < 0 && errno == EINTR) continue;
    NETBATCH_CHECK(n > 0, "cannot write " + tmp_path);
    off += static_cast<std::size_t>(n);
  }
  NETBATCH_CHECK(::fsync(fd) == 0, "cannot fsync " + tmp_path);
  ::close(fd);
  NETBATCH_CHECK(::rename(tmp_path.c_str(), path.c_str()) == 0,
                 "cannot rename " + tmp_path);
}

void ShardLoop::ApplyWalRecord(const persist::WalRecord& record) {
  WireReader r(record.payload);
  const Ticks now = r.I64();
  switch (static_cast<WalKind>(record.type)) {
    case WalKind::kSubmit: {
      workload::JobSpec spec;
      if (record.payload.size() < 8 ||
          !DecodeJobSpec(std::vector<std::uint8_t>(record.payload.begin() + 8,
                                                   record.payload.end()),
                         spec)) {
        NETBATCH_LOG(kWarn) << "WAL " << record.lsn << ": bad submit payload";
        return;
      }
      const JobId id = spec.id;
      if (core_.jobs().Contains(id)) {
        // Live, an id is only re-admitted after its terminal predecessor
        // was reclaimed, and that reclaim rides the log as a kReclaim
        // record preceding this one. A terminal occupant still here means
        // the reclaim record was lost (or the log predates kReclaim):
        // erase it rather than silently dropping an acked submit.
        if (!IsTerminal(core_.jobs().at(id).state())) {
          NETBATCH_LOG(kWarn) << "WAL " << record.lsn << ": duplicate submit";
          return;
        }
        directory_->EraseIfOwner(id, options_.shard_index);
        core_.jobs().Erase(id);
      }
      core_.AdmitJob(std::move(spec));
      core_.Submit(id, now);
      break;
    }
    case WalKind::kJobOp: {
      const auto opcode = static_cast<Opcode>(r.U16());
      const JobId id(static_cast<JobId::ValueType>(r.U64()));
      if (!r.exhausted() || !core_.jobs().Contains(id)) return;
      const cluster::Job job = core_.jobs().at(id);
      switch (opcode) {
        case Opcode::kComplete:
          if (job.state() == cluster::JobState::kRunning) {
            core_.Complete(id, job.generation(), now);
          }
          break;
        case Opcode::kSuspend:
          core_.Suspend(id, now);
          break;
        case Opcode::kResume:
          if (job.state() == cluster::JobState::kSuspended) {
            core_.Resume(id, now);
          }
          break;
        case Opcode::kKill:
          core_.Kill(id, now);
          break;
        default:
          break;
      }
      break;
    }
    case WalKind::kMachineOp: {
      const auto opcode = static_cast<Opcode>(r.U16());
      const PoolId local(r.U32());
      const MachineId machine(r.U32());
      if (!r.exhausted()) return;
      if (opcode == Opcode::kFailMachine) {
        core_.FailMachine(local, machine, now);
      } else {
        core_.RepairMachine(local, machine, now);
      }
      break;
    }
    case WalKind::kTimer: {
      const auto kind = static_cast<TimerKind>(r.U16());
      const JobId id(static_cast<JobId::ValueType>(r.U64()));
      const std::uint64_t stamp = r.U64();
      const PoolId pool(r.U32());
      if (!r.exhausted() || !core_.jobs().Contains(id)) return;
      switch (kind) {
        case TimerKind::kCompletion:
          core_.Complete(id, stamp, now);
          break;
        case TimerKind::kWaitTimeout:
          core_.OnWaitTimeout(id, stamp, now);
          break;
        case TimerKind::kDelivery:
          core_.DeliverRestart(id, stamp, pool, now);
          break;
      }
      break;
    }
    case WalKind::kReclaim: {
      // Mirror the live DrainReclaim that produced this record: erase the
      // listed ids in order, so slot reuse (and the generation floors it
      // seeds) advances exactly as it did before the crash.
      const std::uint32_t count = r.U32();
      for (std::uint32_t i = 0; i < count; ++i) {
        const JobId id(static_cast<JobId::ValueType>(r.U64()));
        if (!r.ok()) break;
        if (!core_.jobs().Contains(id)) continue;
        if (!IsTerminal(core_.jobs().at(id).state())) continue;
        directory_->EraseIfOwner(id, options_.shard_index);
        core_.jobs().Erase(id);
      }
      break;
    }
    case WalKind::kDrain:
      draining_->store(true, std::memory_order_release);
      break;
    default:
      NETBATCH_LOG(kWarn) << "WAL " << record.lsn << ": unknown record type "
                          << record.type;
  }
}

void ShardLoop::RecoverFromDisk() {
  const std::uint64_t start_ns = WallNanos();
  ValidateShardMeta();
  persist::RecoveryPlan plan = persist::BuildRecoveryPlan(options_.data_dir);
  if (plan.truncated) {
    NETBATCH_LOG(kWarn) << "shard " << options_.shard_index
                        << ": WAL truncated during recovery: " << plan.reason;
  }

  // Fast-forward the tick clock past every persisted stamp before touching
  // the core: elapsed-time settlements inside it require time to only move
  // forward, and replay feeds it pre-crash stamps.
  struct RearmedTimer {
    std::uint16_t kind;
    JobId job;
    std::uint64_t stamp;
    PoolId pool;
    Ticks rel_due;
  };
  std::vector<RearmedTimer> rearm;
  std::vector<std::uint8_t> core_payload;
  bool restore_draining = false;
  if (plan.snapshot.has_value()) {
    WireReader r(plan.snapshot->payload);
    NETBATCH_CHECK(r.U32() == kSnapshotWrapperVersion,
                   "snapshot wrapper version mismatch");
    NETBATCH_CHECK(r.U32() == options_.shard_index &&
                       r.U32() == options_.shard_count,
                   "snapshot belongs to a different shard topology");
    restore_draining = r.U32() != 0;
    tick_offset_ = std::max(tick_offset_, r.I64());
    const std::uint32_t timer_count = r.U32();
    NETBATCH_CHECK(r.ok(), "snapshot wrapper truncated");
    rearm.reserve(timer_count);
    for (std::uint32_t i = 0; i < timer_count; ++i) {
      RearmedTimer t;
      t.kind = r.U16();
      t.job = JobId(static_cast<JobId::ValueType>(r.U64()));
      t.stamp = r.U64();
      t.pool = PoolId(r.U32());
      t.rel_due = r.I64();
      rearm.push_back(t);
    }
    const std::uint32_t core_len = r.U32();
    NETBATCH_CHECK(r.ok(), "snapshot wrapper truncated");
    r.Bytes(core_len, core_payload);
    NETBATCH_CHECK(r.exhausted(), "snapshot wrapper has trailing bytes");
  }
  for (const persist::WalRecord& record : plan.tail) {
    tick_offset_ = std::max(tick_offset_, WalRecordNow(record));
  }

  if (plan.snapshot.has_value()) {
    // The snapshot passed its CRC, so a failed import is a codec bug, not
    // disk damage — crash rather than serve an empty cluster.
    NETBATCH_CHECK(core_.ImportState(core_payload),
                   "snapshot payload failed to import");
    if (restore_draining) {
      draining_->store(true, std::memory_order_release);
    }
    const Ticks now = NowTicks();
    for (const RearmedTimer& t : rearm) {
      if (!core_.jobs().Contains(t.job)) continue;
      Timer timer;
      timer.due = now + t.rel_due;
      timer.seq = next_timer_seq_++;
      timer.kind = static_cast<TimerKind>(t.kind);
      timer.job = t.job;
      timer.stamp = t.stamp;
      timer.pool = t.pool;
      timers_.push_back(timer);
      std::push_heap(timers_.begin(), timers_.end(), TimerLater{});
    }
  }

  for (const persist::WalRecord& record : plan.tail) ApplyWalRecord(record);

  // Re-register the surviving jobs in the shared directory (each shard
  // recovers its own; the directory stripes its locks, so concurrent
  // recovery is safe). Internal duplicates were never registered; terminal
  // jobs are queued for the normal reclaim path instead.
  std::size_t restored = 0;
  for (const cluster::Job job : core_.jobs()) {
    const JobId id = job.id();
    if (!core_.jobs().Contains(id) || core_.jobs().at(id).slot() != job.slot()) {
      continue;
    }
    ++restored;
    if (IsTerminal(job.state())) {
      reclaim_queue_.push_back(id);
      continue;
    }
    if (!job.is_duplicate()) directory_->TryInsert(id, options_.shard_index);
  }

  persist::WalOptions wal_options;
  wal_options.next_lsn = plan.next_lsn;
  wal_options.fsync_every = options_.fsync_every;
  wal_options.fsync_interval_ms = options_.fsync_interval_ms;
  std::string error;
  wal_ = persist::WalWriter::Open(options_.data_dir, wal_options, &error);
  NETBATCH_CHECK(wal_ != nullptr, "failed to open WAL: " + error);

  if (options_.checkpoint_every_ticks > 0) {
    next_checkpoint_due_ = NowTicks() + options_.checkpoint_every_ticks;
  }
  wal_bytes_gauge_->Set(0);
  wal_records_gauge_->Set(0);
  recovery_ms_gauge_->Set(
      static_cast<std::int64_t>((WallNanos() - start_ns) / 1'000'000ull));
  if (plan.snapshot.has_value() || !plan.tail.empty()) {
    NETBATCH_LOG(kInfo) << "shard " << options_.shard_index << ": recovered "
                        << restored << " jobs (snapshot lsn "
                        << (plan.snapshot ? plan.snapshot->lsn : 0)
                        << ", replayed " << plan.tail.size()
                        << " records, next lsn " << plan.next_lsn << ")";
  }
}

void ShardLoop::DoLocalCheckpoint() {
  // Nothing in the current WAL batch may outrun the snapshot that claims
  // to cover it.
  wal_->Sync();
  const std::uint64_t lsn = wal_->last_lsn();
  const Ticks now = NowTicks();

  persist::SnapshotData snap;
  snap.lsn = lsn;
  WireWriter w(snap.payload);
  w.U32(kSnapshotWrapperVersion);
  w.U32(options_.shard_index);
  w.U32(options_.shard_count);
  w.U32(draining_->load(std::memory_order_acquire) ? 1 : 0);
  w.I64(now);

  // Pending host timers, minus the lazily-cancelled ones (dead job or
  // stale generation), as relative deadlines sorted canonically.
  std::vector<Timer> live;
  for (const Timer& t : timers_) {
    if (!core_.jobs().Contains(t.job)) continue;
    if (!core_.jobs().at(t.job).GenerationIs(t.stamp)) continue;
    live.push_back(t);
  }
  std::sort(live.begin(), live.end(), [](const Timer& a, const Timer& b) {
    return a.due != b.due ? a.due < b.due : a.seq < b.seq;
  });
  w.U32(static_cast<std::uint32_t>(live.size()));
  for (const Timer& t : live) {
    WireWriter tw(snap.payload);
    tw.U16(static_cast<std::uint16_t>(t.kind));
    tw.U64(t.job.value());
    tw.U64(t.stamp);
    tw.U32(t.pool.value());
    tw.I64(std::max<Ticks>(0, t.due - now));
  }

  std::vector<std::uint8_t> core_payload;
  core_.ExportState(core_payload);
  WireWriter(snap.payload).U32(static_cast<std::uint32_t>(core_payload.size()));
  snap.payload.insert(snap.payload.end(), core_payload.begin(),
                      core_payload.end());

  std::string error;
  NETBATCH_CHECK(persist::WriteSnapshot(options_.data_dir, snap, &error),
                 "checkpoint write failed: " + error);
  wal_->StartSegmentAndTruncate(lsn);
  persist::DeleteSnapshotsBelow(options_.data_dir, lsn);
  wal_bytes_gauge_->Set(static_cast<std::int64_t>(wal_->bytes_appended()));
  wal_records_gauge_->Set(
      static_cast<std::int64_t>(wal_->records_appended()));
}

void ShardLoop::StartCheckpointFanout(std::uint64_t token,
                                      const FrameHeader& header,
                                      std::vector<std::uint8_t>* out) {
  DoLocalCheckpoint();
  if (options_.shard_count == 1) {
    RespondStatus(options_.shard_index, token, header, Status::kOk, out);
    return;
  }
  const std::uint64_t gid = next_gather_id_++;
  CheckpointGather& g = checkpoint_gathers_[gid];
  g.token = token;
  g.request_id = header.request_id;
  g.opcode = header.opcode;
  g.remaining = options_.shard_count - 1;
  for (std::uint32_t s = 0; s < options_.shard_count; ++s) {
    if (s == options_.shard_index) continue;
    ShardMessage query;
    query.kind = ShardMessage::Kind::kCheckpointQuery;
    query.sender = options_.shard_index;
    query.gather = gid;
    peers_[s]->Post(std::move(query));
  }
}

void ShardLoop::FinishCheckpointGather(std::uint64_t gather_id) {
  const auto it = checkpoint_gathers_.find(gather_id);
  CheckpointGather& g = it->second;
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  w.U32(static_cast<std::uint32_t>(Status::kOk));
  std::vector<std::uint8_t> bytes;
  EncodeFrame(g.opcode | kResponseBit, g.request_id, payload, bytes);
  WriteToSession(g.token, bytes.data(), bytes.size());
  checkpoint_gathers_.erase(it);
}

}  // namespace netbatch::service

#include "service/daemon.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "common/log.h"
#include "net/socket.h"

namespace netbatch::service {

namespace {

std::uint64_t WallNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The poll timeout when no timer is pending: long enough to idle cheaply,
// short enough to notice the stop flag promptly.
constexpr int kIdlePollMs = 100;

}  // namespace

Daemon::Daemon(const cluster::ClusterConfig& config,
               cluster::InitialScheduler& scheduler,
               cluster::ReschedulingPolicy& policy, DaemonOptions options,
               sched::CoreOptions core_options)
    : options_(std::move(options)),
      core_(config, scheduler, policy, /*host=*/*this,
            std::move(core_options)) {
  NETBATCH_CHECK(options_.time_scale > 0, "time_scale must be positive");
  NETBATCH_CHECK(!options_.socket_path.empty(), "socket path required");
  core_.AddObserver(this);
}

Ticks Daemon::NowTicks() const {
  const std::uint64_t elapsed_ns = WallNanos() - clock_origin_ns_;
  // ticks = seconds * time_scale, computed in ns to avoid drift.
  return static_cast<Ticks>(
      static_cast<std::uint64_t>(options_.time_scale) * elapsed_ns /
      1'000'000'000ull);
}

void Daemon::PushTimer(TimerKind kind, const cluster::Job& job, Ticks delay,
                       PoolId pool) {
  Timer timer;
  timer.due = NowTicks() + delay;
  timer.seq = next_timer_seq_++;
  timer.kind = kind;
  timer.job = job.id();
  timer.stamp = job.generation();
  timer.pool = pool;
  timers_.push(timer);
}

void Daemon::ArmCompletion(cluster::Job& job, Ticks duration) {
  if (!options_.auto_complete) return;  // the client owns completion
  PushTimer(TimerKind::kCompletion, job, duration);
}

void Daemon::ArmWaitTimeout(cluster::Job& job, Ticks threshold) {
  PushTimer(TimerKind::kWaitTimeout, job, threshold);
}

void Daemon::ScheduleRestartDelivery(cluster::Job& job, PoolId target,
                                     Ticks overhead) {
  PushTimer(TimerKind::kDelivery, job, overhead, target);
}

void Daemon::OnJobStarted(const cluster::Job& job) {
  const auto it = submit_arrival_ns_.find(job.id());
  if (it == submit_arrival_ns_.end()) return;  // restart/backfill, not admission
  placement_latency_.Record(WallNanos() - it->second);
  submit_arrival_ns_.erase(it);
}

void Daemon::DrainDueTimers() {
  while (!timers_.empty()) {
    const Ticks now = NowTicks();
    if (timers_.top().due > now) break;
    const Timer timer = timers_.top();
    timers_.pop();
    switch (timer.kind) {
      case TimerKind::kCompletion:
        core_.Complete(timer.job, timer.stamp, now);
        break;
      case TimerKind::kWaitTimeout:
        core_.OnWaitTimeout(timer.job, timer.stamp, now);
        break;
      case TimerKind::kDelivery:
        core_.DeliverRestart(timer.job, timer.stamp, timer.pool, now);
        break;
    }
  }
}

int Daemon::NextTimerDelayMs() const {
  if (timers_.empty()) return -1;
  const Ticks now = NowTicks();
  const Ticks due = timers_.top().due;
  if (due <= now) return 0;
  // ticks -> ms at time_scale ticks per second, rounded up so we never wake
  // a hair early and busy-spin.
  const std::int64_t ms =
      ((due - now) * 1000 + options_.time_scale - 1) / options_.time_scale;
  return static_cast<int>(std::min<std::int64_t>(ms, kIdlePollMs));
}

void Daemon::Run(const std::atomic<bool>& stop) {
  listener_fd_ = net::ListenUnix(options_.socket_path);
  poller_.Add(listener_fd_, net::kPollIn,
              static_cast<std::uint64_t>(listener_fd_));
  clock_origin_ns_ = WallNanos();
  NETBATCH_LOG(kInfo) << "netbatchd serving on " << options_.socket_path
                      << " (time_scale=" << options_.time_scale << ")";

  while (!stop.load(std::memory_order_relaxed)) {
    int timeout_ms = NextTimerDelayMs();
    if (timeout_ms < 0) timeout_ms = kIdlePollMs;
    poller_.Wait(timeout_ms, ready_);
    DrainDueTimers();
    for (const net::PollResult& event : ready_) {
      const int fd = static_cast<int>(event.token);
      if (fd == listener_fd_) {
        HandleListener();
        continue;
      }
      const auto it = sessions_.find(fd);
      if (it == sessions_.end()) continue;  // closed earlier this wake-up
      SessionState& state = it->second;
      bool alive = true;
      if (event.events & net::kPollOut) {
        alive = state.session.FlushPending() == net::Session::IoStatus::kOk;
      }
      if (alive && (event.events & net::kPollIn)) {
        alive = HandleReadable(state);
      }
      if (alive && (event.events & net::kPollHup) &&
          !(event.events & net::kPollIn)) {
        alive = false;
      }
      if (!alive) {
        poller_.Remove(fd);
        sessions_.erase(it);
        continue;
      }
      // Re-arm write interest to match the unsent-output state.
      poller_.Modify(fd,
                     state.session.wants_write()
                         ? (net::kPollIn | net::kPollOut)
                         : net::kPollIn,
                     static_cast<std::uint64_t>(fd));
    }
  }

  sessions_.clear();
  poller_.Remove(listener_fd_);
  ::close(listener_fd_);
  ::unlink(options_.socket_path.c_str());
  listener_fd_ = -1;
  NETBATCH_LOG(kInfo) << "netbatchd stopped; "
                      << core_.counters().GetCounter("jobs.started").value()
                      << " placements served";
}

void Daemon::HandleListener() {
  for (;;) {
    const int fd = net::AcceptUnix(listener_fd_);
    if (fd < 0) return;  // accept queue drained
    sessions_.emplace(fd, SessionState(fd, options_.max_payload));
    poller_.Add(fd, net::kPollIn, static_cast<std::uint64_t>(fd));
  }
}

bool Daemon::HandleReadable(SessionState& state) {
  read_buf_.clear();
  const net::Session::IoStatus status = state.session.Read(read_buf_);
  if (status == net::Session::IoStatus::kError) return false;
  frames_.clear();
  if (!state.decoder.Feed(read_buf_.data(), read_buf_.size(), frames_)) {
    NETBATCH_LOG(kWarn) << "dropping session: " << state.decoder.error();
    return false;
  }
  write_buf_.clear();
  for (const Frame& frame : frames_) {
    HandleFrame(frame, write_buf_);
  }
  if (!write_buf_.empty() &&
      state.session.Write(write_buf_.data(), write_buf_.size()) ==
          net::Session::IoStatus::kError) {
    return false;
  }
  if (status == net::Session::IoStatus::kClosed) {
    // Orderly EOF. A partial frame left in the decoder means the peer
    // truncated mid-send; either way the session is done.
    return false;
  }
  return true;
}

void Daemon::HandleFrame(const Frame& frame, std::vector<std::uint8_t>& out) {
  switch (static_cast<Opcode>(frame.header.opcode)) {
    case Opcode::kSubmit:
      HandleSubmit(frame, out);
      break;
    case Opcode::kComplete:
    case Opcode::kSuspend:
    case Opcode::kResume:
    case Opcode::kQueryJob:
      HandleJobOp(frame, out);
      break;
    case Opcode::kSnapshot:
      HandleSnapshot(frame, out);
      break;
    case Opcode::kStats:
      HandleStats(frame, out);
      break;
    default: {
      std::vector<std::uint8_t> payload;
      WireWriter w(payload);
      w.U32(static_cast<std::uint32_t>(Status::kBadRequest));
      EncodeFrame(frame.header.opcode | kResponseBit, frame.header.request_id,
                  payload, out);
    }
  }
}

void Daemon::HandleSubmit(const Frame& frame, std::vector<std::uint8_t>& out) {
  const std::uint64_t arrival_ns = WallNanos();
  SubmitResponse response;
  workload::JobSpec spec;
  bool valid = DecodeJobSpec(frame.payload, spec);
  if (valid) {
    response.job_id = spec.id.value();
    if (core_.jobs().Contains(spec.id)) valid = false;  // duplicate id
    if (spec.cores <= 0 || spec.memory_mb < 0 || spec.runtime < 0) {
      valid = false;
    }
    for (PoolId pool : spec.candidate_pools) {
      if (pool.value() >= core_.PoolCount()) valid = false;
    }
  }
  if (!valid) {
    response.status = Status::kBadRequest;
  } else {
    const JobId id = spec.id;
    core_.AdmitJob(std::move(spec));
    submit_arrival_ns_.emplace(id, arrival_ns);
    core_.Submit(id, NowTicks());
    const cluster::Job& job = core_.jobs().at(id);
    switch (job.state()) {
      case cluster::JobState::kRunning:
        response.status = Status::kOk;
        response.pool = job.pool().value();
        response.machine = job.machine().value();
        break;
      case cluster::JobState::kWaiting:
      case cluster::JobState::kInTransit:
        response.status = Status::kQueued;
        response.pool = job.pool().value();
        break;
      default:
        response.status = Status::kRejected;
        submit_arrival_ns_.erase(id);
        break;
    }
  }
  std::vector<std::uint8_t> payload;
  EncodeSubmitResponse(response, payload);
  EncodeFrame(static_cast<std::uint16_t>(Opcode::kSubmit) | kResponseBit,
              frame.header.request_id, payload, out);
}

void Daemon::HandleJobOp(const Frame& frame, std::vector<std::uint8_t>& out) {
  const auto opcode = static_cast<Opcode>(frame.header.opcode);
  WireReader r(frame.payload);
  const JobId id(static_cast<JobId::ValueType>(r.U64()));
  Status status = Status::kOk;
  std::uint32_t state = 0;
  std::uint32_t pool = 0;
  std::uint32_t machine = 0;
  if (!r.exhausted()) {
    status = Status::kBadRequest;
  } else if (!core_.jobs().Contains(id)) {
    status = Status::kUnknownJob;
  } else {
    const Ticks now = NowTicks();
    cluster::Job& job = core_.jobs().at(id);
    switch (opcode) {
      case Opcode::kComplete:
        if (job.state() != cluster::JobState::kRunning) {
          status = Status::kBadState;
        } else {
          core_.Complete(id, job.generation(), now);
        }
        break;
      case Opcode::kSuspend:
        if (!core_.Suspend(id, now)) status = Status::kBadState;
        break;
      case Opcode::kResume:
        if (job.state() != cluster::JobState::kSuspended) {
          status = Status::kBadState;
        } else if (!core_.Resume(id, now)) {
          // Still suspended: its machine is full or offline right now.
          status = Status::kQueued;
        }
        break;
      case Opcode::kQueryJob:
        break;
      default:
        status = Status::kBadRequest;
        break;
    }
    state = static_cast<std::uint32_t>(job.state());
    pool = job.pool().value();
    machine = job.machine().value();
  }
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  w.U32(static_cast<std::uint32_t>(status));
  if (opcode == Opcode::kQueryJob) {
    w.U32(state);
    w.U32(pool);
    w.U32(machine);
  }
  EncodeFrame(frame.header.opcode | kResponseBit, frame.header.request_id,
              payload, out);
}

void Daemon::HandleSnapshot(const Frame& frame,
                            std::vector<std::uint8_t>& out) {
  const sched::SchedulerCore::Snapshot snap = core_.GetSnapshot();
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  w.I64(NowTicks());
  w.U64(snap.started);
  w.U64(snap.completed);
  w.U64(snap.rejected);
  w.U64(snap.preemptions);
  w.U64(snap.reschedules);
  w.U32(static_cast<std::uint32_t>(snap.pools.size()));
  for (const auto& pool : snap.pools) {
    w.U32(pool.id.value());
    w.I64(pool.total_cores);
    w.I64(pool.busy_cores);
    w.U64(pool.queued);
    w.U64(pool.suspended);
  }
  EncodeFrame(static_cast<std::uint16_t>(Opcode::kSnapshot) | kResponseBit,
              frame.header.request_id, payload, out);
}

void Daemon::HandleStats(const Frame& frame, std::vector<std::uint8_t>& out) {
  core_.RefreshGauges(NowTicks());
  std::string text = core_.counters().Render();
  const LatencyHistogram& lat = placement_latency_;
  text += "placement_latency_ns{count=" + std::to_string(lat.count()) +
          ",p50=" + std::to_string(lat.Quantile(0.5)) +
          ",p99=" + std::to_string(lat.Quantile(0.99)) +
          ",p999=" + std::to_string(lat.Quantile(0.999)) +
          ",max=" + std::to_string(lat.max()) + "}\n";
  std::vector<std::uint8_t> payload(text.begin(), text.end());
  EncodeFrame(static_cast<std::uint16_t>(Opcode::kStats) | kResponseBit,
              frame.header.request_id, payload, out);
}

}  // namespace netbatch::service

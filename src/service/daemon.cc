#include "service/daemon.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>

#include "common/check.h"
#include "common/log.h"
#include "net/poller.h"
#include "net/socket.h"

namespace netbatch::service {

namespace {

// Acceptor poll timeout: long enough to idle cheaply, short enough to
// notice the stop/drain flags promptly.
constexpr int kIdlePollMs = 100;

constexpr std::uint64_t kUnixToken = 0;
constexpr std::uint64_t kTcpToken = 1;

}  // namespace

Daemon::Daemon(const cluster::ClusterConfig& config, ShardStackFactory factory,
               DaemonOptions options, sched::CoreOptions core_options)
    : options_(std::move(options)) {
  NETBATCH_CHECK(options_.time_scale > 0, "time_scale must be positive");
  NETBATCH_CHECK(options_.threads > 0, "at least one shard thread");
  NETBATCH_CHECK(!options_.socket_path.empty() || options_.tcp,
                 "daemon needs a unix socket path or a TCP listener");
  NETBATCH_CHECK(!config.pools.empty(), "cluster needs at least one pool");

  if (!options_.socket_path.empty()) {
    unix_listener_ = net::ListenUnix(options_.socket_path);
  }
  if (options_.tcp) {
    tcp_listener_ = net::ListenTcp(options_.tcp_port);
    tcp_port_ = net::BoundTcpPort(tcp_listener_);
  }

  // Interleaved slicing: global pool g lives on shard g % S as local pool
  // g / S, so any pool-count imbalance is at most one pool per shard.
  const auto pool_count = static_cast<std::uint32_t>(config.pools.size());
  const std::uint32_t shard_count = std::min(options_.threads, pool_count);
  std::vector<cluster::ClusterConfig> shard_configs(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    shard_configs[s].suspended_holds_memory = config.suspended_holds_memory;
    shard_configs[s].local_resume_first = config.local_resume_first;
  }
  for (std::uint32_t g = 0; g < pool_count; ++g) {
    shard_configs[g % shard_count].pools.push_back(config.pools[g]);
  }

  stacks_.reserve(shard_count);
  shards_.reserve(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    stacks_.push_back(factory(s));
    NETBATCH_CHECK(stacks_[s].scheduler != nullptr && stacks_[s].policy != nullptr,
                   "shard stack factory returned a null stage");
    ShardOptions shard_options;
    shard_options.shard_index = s;
    shard_options.shard_count = shard_count;
    shard_options.global_pool_count = pool_count;
    shard_options.time_scale = options_.time_scale;
    shard_options.auto_complete = options_.auto_complete;
    shard_options.max_payload = options_.max_payload;
    shard_options.max_session_pending = options_.max_session_pending;
    if (!options_.data_dir.empty()) {
      shard_options.data_dir =
          options_.data_dir + "/shard-" + std::to_string(s);
      std::error_code ec;
      std::filesystem::create_directories(shard_options.data_dir, ec);
      NETBATCH_CHECK(!ec, "failed to create " + shard_options.data_dir + ": " +
                              ec.message());
      shard_options.fsync_every = options_.fsync_every;
      shard_options.fsync_interval_ms = options_.fsync_interval_ms;
      shard_options.checkpoint_every_ticks = options_.checkpoint_every_ticks;
    }
    shards_.push_back(std::make_unique<ShardLoop>(
        shard_configs[s], *stacks_[s].scheduler, *stacks_[s].policy,
        shard_options, core_options, directory_, draining_));
  }
  std::vector<ShardLoop*> peers;
  peers.reserve(shard_count);
  for (auto& shard : shards_) peers.push_back(shard.get());
  for (auto& shard : shards_) shard->SetPeers(peers);
}

Daemon::~Daemon() {
  if (unix_listener_ >= 0) {
    ::close(unix_listener_);
    ::unlink(options_.socket_path.c_str());
  }
  if (tcp_listener_ >= 0) ::close(tcp_listener_);
}

void Daemon::Run(const std::atomic<bool>& stop) {
  const std::uint64_t origin_ns = WallNanos();
  for (auto& shard : shards_) shard->set_clock_origin(origin_ns);
  for (auto& shard : shards_) shard->Start();

  net::Poller poller;
  if (unix_listener_ >= 0) poller.Add(unix_listener_, net::kPollIn, kUnixToken);
  if (tcp_listener_ >= 0) poller.Add(tcp_listener_, net::kPollIn, kTcpToken);
  NETBATCH_LOG(kInfo) << "netbatchd serving on "
                      << (unix_listener_ >= 0 ? options_.socket_path
                                              : std::string("(no unix)"))
                      << (tcp_listener_ >= 0
                              ? " + tcp:" + std::to_string(tcp_port_)
                              : "")
                      << " (threads=" << shards_.size()
                      << ", time_scale=" << options_.time_scale << ")";

  std::vector<net::PollResult> ready;
  std::uint32_t next_shard = 0;
  bool listeners_open = true;
  while (!stop.load(std::memory_order_relaxed)) {
    poller.Wait(kIdlePollMs, ready);
    if (listeners_open && draining_.load(std::memory_order_acquire)) {
      // kDrain: stop admitting connections; existing sessions are served
      // until the stop flag flips.
      if (unix_listener_ >= 0) {
        poller.Remove(unix_listener_);
        ::close(unix_listener_);
        ::unlink(options_.socket_path.c_str());
        unix_listener_ = -1;
      }
      if (tcp_listener_ >= 0) {
        poller.Remove(tcp_listener_);
        ::close(tcp_listener_);
        tcp_listener_ = -1;
      }
      listeners_open = false;
      NETBATCH_LOG(kInfo) << "netbatchd draining: listeners closed";
      continue;
    }
    for (const net::PollResult& event : ready) {
      const int listener =
          event.token == kUnixToken ? unix_listener_ : tcp_listener_;
      if (listener < 0) continue;
      for (;;) {
        const int fd = event.token == kUnixToken ? net::AcceptUnix(listener)
                                                 : net::AcceptTcp(listener);
        if (fd < 0) break;  // accept queue drained
        ShardMessage msg;
        msg.kind = ShardMessage::Kind::kNewSession;
        msg.fd = fd;
        shards_[next_shard]->Post(std::move(msg));
        next_shard = (next_shard + 1) % shards_.size();
      }
    }
  }

  for (auto& shard : shards_) shard->RequestStop();
  for (auto& shard : shards_) shard->Join();

  placement_latency_ = LatencyHistogram();
  std::uint64_t placements = 0;
  for (auto& shard : shards_) {
    placement_latency_.Merge(shard->placement_latency());
    placements +=
        shard->core().counters().GetCounter("jobs.started").value();
  }

  if (unix_listener_ >= 0) {
    poller.Remove(unix_listener_);
    ::close(unix_listener_);
    ::unlink(options_.socket_path.c_str());
    unix_listener_ = -1;
  }
  if (tcp_listener_ >= 0) {
    poller.Remove(tcp_listener_);
    ::close(tcp_listener_);
    tcp_listener_ = -1;
  }
  NETBATCH_LOG(kInfo) << "netbatchd stopped; " << placements
                      << " placements served across " << shards_.size()
                      << " shard(s)";
}

}  // namespace netbatch::service

// The netbatchd wire protocol: length-prefixed binary frames over a
// stream socket (unix-domain or TCP; the framing is transport-agnostic).
//
// Every frame is a fixed 20-byte little-endian header followed by an
// opcode-specific payload:
//
//   offset  size  field
//        0     4  magic        0x3150424e ("NBP1")
//        4     2  version      kProtocolVersion
//        6     2  opcode       Opcode; responses set kResponseBit
//        8     8  request_id   echoed verbatim in the response
//       16     4  payload_len  bytes following the header (<= kMaxPayload)
//
// Integers are little-endian, fixed width; job/pool/machine ids travel as
// the widths of their in-memory types (common/ids.h) except JobId, which
// widens to u64 on the wire so the protocol outlives a future id widening.
// Submit payloads mirror workload::JobSpec field for field.
//
// The protocol is strictly request/response per frame, but clients may
// pipeline: every request gets exactly one response echoing its
// request_id, so a client can keep hundreds of requests in flight (the
// load generator does exactly that). Responses are NOT guaranteed to
// arrive in request order — on a sharded daemon a request whose target
// pool or job lives on another event-loop shard is forwarded over a
// mailbox and its response overtakes or trails shard-local ones — so
// clients must match responses to requests by request_id.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/job_spec.h"

namespace netbatch::service {

inline constexpr std::uint32_t kMagic = 0x3150424e;  // "NBP1" little-endian
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 20;
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;
inline constexpr std::uint16_t kResponseBit = 0x8000;

enum class Opcode : std::uint16_t {
  kSubmit = 1,    // JobSpec -> SubmitResponse
  kComplete = 2,  // job id -> StatusResponse (report a running job done)
  kSuspend = 3,   // job id -> StatusResponse
  kResume = 4,    // job id -> StatusResponse
  kQueryJob = 5,  // job id -> QueryJobResponse
  kSnapshot = 6,  // (empty) -> SnapshotResponse (merged across shards)
  kStats = 7,     // (empty) -> counter/latency text (merged across shards)
  // Admin opcodes: live outage drills and maintenance against the service,
  // mirroring the simulator's failure-injection hooks.
  kFailMachine = 8,    // u32 pool, u32 machine -> StatusResponse
  kRepairMachine = 9,  // u32 pool, u32 machine -> StatusResponse
  kDrain = 10,         // (empty) -> StatusResponse; stop accepting new work
  kKill = 11,          // job id -> StatusResponse (terminate wherever parked)
  kCheckpoint = 12,    // (empty) -> StatusResponse; force a durable snapshot
};

enum class Status : std::uint32_t {
  kOk = 0,          // the operation took effect (submit: job started)
  kQueued = 1,      // submit only: job admitted, waiting in a pool queue
  kRejected = 2,    // submit only: no pool can ever run the job
  kUnknownJob = 3,  // the job id names nothing on this daemon
  kBadState = 4,    // op legal but the job is not in the required state
  kBadRequest = 5,  // malformed payload
  kDraining = 6,    // submit refused: the daemon is draining (kDrain)
};

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t opcode = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

// --- little-endian scalar packing -------------------------------------------

// Appends fixed-width little-endian scalars to a byte buffer. Explicitly
// byte-by-byte, so the encoding is identical on any host.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }

 private:
  std::vector<std::uint8_t>* out_;
};

// Reads fixed-width little-endian scalars from a payload. Never aborts:
// reading past the end sets ok() false and returns zeros, so a malformed
// client payload becomes a kBadRequest response, not a daemon crash.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }

  // Copies `len` raw bytes into `out` (replacing its contents); sets ok()
  // false and leaves `out` empty on truncation.
  void Bytes(std::size_t len, std::vector<std::uint8_t>& out);

  bool ok() const { return ok_; }
  // True when every payload byte was consumed (trailing garbage is a
  // malformed request).
  bool exhausted() const { return ok_ && pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- frame and payload codecs -----------------------------------------------

void EncodeHeader(const FrameHeader& header, std::vector<std::uint8_t>& out);

// Appends a complete frame (header + payload) to `out`. The opcode is used
// verbatim — callers set kResponseBit for responses.
void EncodeFrame(std::uint16_t opcode, std::uint64_t request_id,
                 const std::vector<std::uint8_t>& payload,
                 std::vector<std::uint8_t>& out);

void EncodeJobSpec(const workload::JobSpec& spec,
                   std::vector<std::uint8_t>& out);

// Decodes a Submit payload into `spec`; false on truncation, trailing
// bytes, or an oversized pool list.
bool DecodeJobSpec(const std::vector<std::uint8_t>& payload,
                   workload::JobSpec& spec);

struct SubmitResponse {
  Status status = Status::kBadRequest;
  std::uint64_t job_id = 0;
  std::uint32_t pool = 0;     // valid when status is kOk / kQueued
  std::uint32_t machine = 0;  // valid when status is kOk
};
void EncodeSubmitResponse(const SubmitResponse& r,
                          std::vector<std::uint8_t>& out);
bool DecodeSubmitResponse(const std::vector<std::uint8_t>& payload,
                          SubmitResponse& r);

// kFailMachine / kRepairMachine payload: the target machine's global pool
// id and its machine id within that pool.
void EncodeMachineOpPayload(std::uint32_t pool, std::uint32_t machine,
                            std::vector<std::uint8_t>& out);
bool DecodeMachineOpPayload(const std::vector<std::uint8_t>& payload,
                            std::uint32_t& pool, std::uint32_t& machine);

// --- incremental frame reassembly -------------------------------------------

// Reassembles frames from an arbitrary byte stream: feed whatever read()
// returned, get back every complete frame. Handles headers split across
// reads, payloads split across reads, and multiple frames per read. A
// protocol violation (bad magic/version, payload over the cap) poisons the
// decoder — the session should be dropped.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  // Appends `size` bytes and moves every now-complete frame into `frames`.
  // Returns false (permanently) after a protocol violation.
  bool Feed(const std::uint8_t* data, std::size_t size,
            std::vector<Frame>& frames);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  // Bytes of a partial frame awaiting more input. A nonzero value at EOF
  // means the peer truncated a frame mid-send.
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  bool Fail(const std::string& why);

  std::uint32_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace netbatch::service

// One event-loop shard of the multi-core netbatchd.
//
// A ShardLoop is a whole single-threaded daemon in miniature: it owns its
// thread, its epoll Poller, the sessions the acceptor handed it, a timer
// min-heap, and one sched::SchedulerCore over the slice of pools assigned
// to this shard (global pool g lives on shard g % S as local pool g / S).
// Nothing in it is locked — every structure is touched only by the owning
// thread — so each core's decision sequence stays exactly as deterministic
// as the single-threaded daemon's.
//
// The only cross-thread seam is the mailbox (net/mailbox.h), drained at the
// top of every loop iteration:
//   - the acceptor posts new connections (kNewSession);
//   - peers forward protocol frames whose target pool or job lives here
//     (kFrame) and post back the encoded responses (kResponse);
//   - kSnapshot / kStats scatter a query to every peer (kSnapshotQuery /
//     kStatsQuery) and gather the per-shard contributions on the session's
//     shard, which merges and responds (LatencyHistogram::Merge is
//     lossless, counters sum by name).
//
// Epoll tokens are generation-stamped ((gen << 32) | fd): a token whose
// generation no longer matches the session registered under that fd is a
// stale event for a connection that died earlier in the same ready batch
// (the fd number may already belong to a new connection) and is dropped.
//
// Terminal jobs are reclaimed: CoreHost::OnJobTerminal queues the id, and
// the loop erases it from the job table (slot reuse with a generation
// floor, cluster/job_table.h) and the job directory one iteration later —
// after the dispatch that retired it has fully unwound.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/config.h"
#include "cluster/interfaces.h"
#include "common/histogram.h"
#include "net/mailbox.h"
#include "net/poller.h"
#include "net/session.h"
#include "persist/recovery.h"
#include "persist/wal.h"
#include "service/job_directory.h"
#include "service/protocol.h"
#include "service/scheduler_core.h"

namespace netbatch::service {

// Monotonic wall clock in nanoseconds (steady_clock).
std::uint64_t WallNanos();

// A cross-shard message. One struct with a kind tag rather than a variant:
// only kFrame/kResponse are frequent, and those use only the cheap fields.
struct ShardMessage {
  enum class Kind : std::uint8_t {
    kNewSession,     // fd (acceptor -> shard; fd < 0 is a stop nudge)
    kFrame,          // sender(origin shard), token, frame, arrival_ns
    kResponse,       // token, bytes (handler -> origin shard)
    kStatsQuery,       // sender(origin), gather
    kStatsReply,       // gather, counters, latency
    kSnapshotQuery,    // sender(origin), gather
    kSnapshotReply,    // gather, snapshot (pool ids already global)
    kCheckpointQuery,  // sender(origin), gather — force a durable snapshot
    kCheckpointReply,  // gather
  };
  Kind kind = Kind::kNewSession;
  std::uint32_t sender = 0;  // shard index the reply/response goes back to
  int fd = -1;
  std::uint64_t token = 0;       // origin shard's session token
  std::uint64_t gather = 0;      // scatter-gather correlation id
  std::uint64_t arrival_ns = 0;  // submit-frame arrival (latency accounting)
  Frame frame;
  std::vector<std::uint8_t> bytes;
  CounterSnapshot counters;
  LatencyHistogram latency;
  sched::SchedulerCore::Snapshot snapshot;
};

struct ShardOptions {
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  // Total pools across every shard; candidate validation is global.
  std::uint32_t global_pool_count = 0;
  std::int64_t time_scale = 1000;
  bool auto_complete = true;
  std::uint32_t max_payload = kMaxPayloadBytes;
  // Per-session unsent-output cap (net::Session); 0 = unlimited.
  std::size_t max_session_pending = 4u << 20;
  // Durability (src/persist). Empty = no WAL, no checkpoints, no recovery.
  // This shard's private log directory; must exist before Start().
  std::string data_dir;
  // Group-commit fdatasync triggers, evaluated when the loop flushes the
  // WAL before acking a batch (see persist/wal.h): sync after this many
  // unsynced records (1 = every flush, 0 = no record trigger) ...
  std::uint32_t fsync_every = 0;
  // ... or after this many ms since the last sync (0 = no time trigger).
  std::uint32_t fsync_interval_ms = 250;
  // Ticks between automatic checkpoints; 0 = only on kCheckpoint/kDrain.
  std::int64_t checkpoint_every_ticks = 0;
};

class ShardLoop final : private sched::CoreHost,
                        private cluster::SimulationObserver {
 public:
  // `config` is this shard's slice of the cluster (local pool ids).
  // `scheduler` / `policy` are this shard's private instances; `directory`
  // and `draining` are shared with every shard and must outlive the loop.
  ShardLoop(const cluster::ClusterConfig& config,
            cluster::InitialScheduler& scheduler,
            cluster::ReschedulingPolicy& policy, ShardOptions options,
            sched::CoreOptions core_options, JobDirectory& directory,
            std::atomic<bool>& draining);

  ShardLoop(const ShardLoop&) = delete;
  ShardLoop& operator=(const ShardLoop&) = delete;

  // Wires the peer table for forwarding; indexed by shard, includes this.
  // Must be called on every shard before any Start().
  void SetPeers(std::vector<ShardLoop*> peers) { peers_ = std::move(peers); }
  // The shared clock origin (all shards convert wall time to ticks from the
  // same zero, so ticks are comparable across shards). Set before Start().
  void set_clock_origin(std::uint64_t origin_ns) {
    clock_origin_ns_ = origin_ns;
  }

  void Start();
  void RequestStop();
  void Join();

  // Thread-safe: this is how the acceptor and peer shards reach the loop.
  void Post(ShardMessage message) { mailbox_.Post(std::move(message)); }

  std::uint32_t shard_index() const { return options_.shard_index; }

  // Owning-thread-or-quiesced access (tests and post-Join merging).
  sched::SchedulerCore& core() { return core_; }
  const LatencyHistogram& placement_latency() const {
    return placement_latency_;
  }

 private:
  struct SessionState {
    net::Session session;
    FrameDecoder decoder;
    std::uint32_t gen;
    SessionState(int fd, std::uint32_t max_payload, std::uint32_t gen)
        : session(fd), decoder(max_payload), gen(gen) {}
  };

  enum class TimerKind : std::uint8_t { kCompletion, kWaitTimeout, kDelivery };
  struct Timer {
    Ticks due = 0;
    std::uint64_t seq = 0;  // FIFO tie-break among equal deadlines
    TimerKind kind = TimerKind::kCompletion;
    JobId job;
    std::uint64_t stamp = 0;
    PoolId pool;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  // In-flight scatter-gather state for kStats / kSnapshot, keyed by gather
  // id on the session's shard.
  struct StatsGather {
    std::uint64_t token = 0;
    std::uint64_t request_id = 0;
    std::uint32_t remaining = 0;
    CounterSnapshot counters;
    LatencyHistogram latency;
  };
  struct SnapshotGather {
    std::uint64_t token = 0;
    std::uint64_t request_id = 0;
    std::uint32_t remaining = 0;
    sched::SchedulerCore::Snapshot merged;
  };
  // kCheckpoint / kDrain wait for every shard's snapshot to be durable
  // before acking; `opcode` is echoed so both ops share the machinery.
  struct CheckpointGather {
    std::uint64_t token = 0;
    std::uint64_t request_id = 0;
    std::uint16_t opcode = 0;
    std::uint32_t remaining = 0;
  };

  // --- pool id translation (interleaved sharding) ---------------------------
  PoolId ToGlobalPool(PoolId local) const {
    return PoolId(local.value() * options_.shard_count + options_.shard_index);
  }
  std::uint32_t ShardOfPool(std::uint32_t global) const {
    return global % options_.shard_count;
  }
  PoolId ToLocalPool(std::uint32_t global) const {
    return PoolId(global / options_.shard_count);
  }

  static std::uint64_t MakeToken(int fd, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(gen) << 32) |
           static_cast<std::uint32_t>(fd);
  }

  // sched::CoreHost — deferred work becomes stamped wall-clock timers.
  void ArmCompletion(cluster::Job job, Ticks duration) override;
  void CancelCompletion(cluster::Job job) override {
    (void)job;  // lazy: the generation bump already invalidated the timer
  }
  void ArmWaitTimeout(cluster::Job job, Ticks threshold) override;
  void ScheduleRestartDelivery(cluster::Job job, PoolId target,
                               Ticks overhead) override;
  // Drains the job's latency-map entry (kill/reject before start would
  // otherwise leak it) and queues the slot for reclamation.
  void OnJobTerminal(const cluster::Job& job) override;

  // cluster::SimulationObserver — the start transition closes the
  // admission-to-placement latency measurement.
  void OnJobStarted(const cluster::Job& job) override;

  Ticks NowTicks() const;
  void PushTimer(TimerKind kind, const cluster::Job& job, Ticks delay,
                 PoolId pool = PoolId());
  void DrainDueTimers();
  int NextTimerDelayMs() const;

  void Run();
  void DrainMailbox();
  void DrainReclaim();
  void HandleMessage(ShardMessage& msg);
  void AddSession(int fd);
  void DropSession(int fd);
  bool HandleReadable(SessionState& state, std::uint64_t token);
  void RearmSession(SessionState& state);
  // Queues `bytes` on the session identified by `token` (no-op if the
  // session is gone; drops it on overflow) and marks it for FlushRound().
  void WriteToSession(std::uint64_t token, const std::uint8_t* bytes,
                      std::size_t size);
  // End of one loop iteration: one WAL flush for every record the round
  // appended, THEN one socket flush per session with queued responses.
  // That order is the append-before-ack invariant at batch granularity.
  void FlushRound();

  // Frame dispatch. `origin` is the shard owning the session; `out` batches
  // responses when the frame came off a local readable (origin == this
  // shard), and is null for mailbox-delivered frames.
  void ProcessFrame(std::uint32_t origin, std::uint64_t token,
                    const Frame& frame, std::uint64_t arrival_ns,
                    std::vector<std::uint8_t>* out);
  void Respond(std::uint32_t origin, std::uint64_t token,
               std::vector<std::uint8_t>&& bytes,
               std::vector<std::uint8_t>* out);
  void RespondStatus(std::uint32_t origin, std::uint64_t token,
                     const FrameHeader& header, Status status,
                     std::vector<std::uint8_t>* out);
  void ForwardFrame(std::uint32_t target, std::uint32_t origin,
                    std::uint64_t token, const Frame& frame,
                    std::uint64_t arrival_ns);

  void HandleSubmit(std::uint32_t origin, std::uint64_t token,
                    const Frame& frame, std::uint64_t arrival_ns,
                    std::vector<std::uint8_t>* out);
  void HandleJobOp(std::uint32_t origin, std::uint64_t token,
                   const Frame& frame, std::vector<std::uint8_t>* out);
  void HandleMachineOp(std::uint32_t origin, std::uint64_t token,
                       const Frame& frame, std::vector<std::uint8_t>* out);
  void HandleStats(std::uint64_t token, const Frame& frame,
                   std::vector<std::uint8_t>* out);
  void HandleSnapshot(std::uint64_t token, const Frame& frame,
                      std::vector<std::uint8_t>* out);

  // This shard's snapshot with pool ids translated to global.
  sched::SchedulerCore::Snapshot LocalSnapshot();
  void FinishStatsGather(std::uint64_t gather_id);
  void FinishSnapshotGather(std::uint64_t gather_id);

  // --- durability (active only when options_.data_dir is set) ---------------
  // Rebuilds this shard's state from the newest valid snapshot plus the WAL
  // tail, re-arms timers, re-registers surviving jobs in the shared
  // directory, and opens the WAL for appending. Runs on the loop thread
  // before the first poll.
  void RecoverFromDisk();
  void ValidateShardMeta();
  void ApplyWalRecord(const persist::WalRecord& record);
  // Buffers wal_payload_ as one record; FlushWal() moves the batch into
  // the kernel. Every path that lets an ack escape this shard (a session
  // write or a response posted to a peer) flushes first, so an acked
  // mutation is always at least in the page cache when the client sees
  // the ack — that is the whole crash-safety argument.
  void AppendWal(std::uint16_t type);
  void FlushWal();
  // Syncs the WAL, writes a snapshot at last_lsn, then truncates the log
  // and deletes superseded snapshots. Callable at any point between core
  // operations — terminal-but-unreclaimed jobs serialize fine.
  void DoLocalCheckpoint();
  // Checkpoints locally, then every peer; responds kOk when all are durable.
  void StartCheckpointFanout(std::uint64_t token, const FrameHeader& header,
                             std::vector<std::uint8_t>* out);
  void FinishCheckpointGather(std::uint64_t gather_id);

  ShardOptions options_;
  sched::SchedulerCore core_;
  JobDirectory* directory_;
  std::atomic<bool>* draining_;
  std::vector<ShardLoop*> peers_;

  net::Mailbox<ShardMessage> mailbox_;
  net::Poller poller_;
  std::unordered_map<int, SessionState> sessions_;
  std::uint32_t next_session_gen_ = 1;
  // Tokens of sessions that queued output this iteration (may repeat; a
  // second FlushPending on a drained session is a no-op).
  std::vector<std::uint64_t> round_dirty_;

  // A binary heap via push_heap/pop_heap rather than priority_queue so
  // checkpointing can iterate the pending timers.
  std::vector<Timer> timers_;
  std::uint64_t next_timer_seq_ = 0;

  std::uint64_t clock_origin_ns_ = 0;
  // Recovery fast-forwards the tick clock past every persisted stamp
  // (elapsed time must never read negative inside the core).
  Ticks tick_offset_ = 0;

  std::unique_ptr<persist::WalWriter> wal_;
  std::vector<std::uint8_t> wal_payload_;
  Ticks next_checkpoint_due_ = 0;
  Gauge* wal_bytes_gauge_ = nullptr;
  Gauge* wal_records_gauge_ = nullptr;
  Gauge* recovery_ms_gauge_ = nullptr;

  std::unordered_map<JobId, std::uint64_t> submit_arrival_ns_;
  Gauge* latency_map_gauge_ = nullptr;
  LatencyHistogram placement_latency_;

  std::vector<JobId> reclaim_queue_;
  // Ids DrainReclaim actually erased this round, reused across rounds; they
  // become the round's kReclaim WAL record(s) so replay reclaims in step.
  std::vector<JobId> reclaimed_ids_;

  std::uint64_t next_gather_id_ = 1;
  std::unordered_map<std::uint64_t, StatsGather> stats_gathers_;
  std::unordered_map<std::uint64_t, SnapshotGather> snapshot_gathers_;
  std::unordered_map<std::uint64_t, CheckpointGather> checkpoint_gathers_;

  std::thread thread_;
  std::atomic<bool> stop_{false};

  // Reused per-wakeup buffers; steady-state serving allocates nothing
  // beyond mailbox nodes.
  std::vector<net::PollResult> ready_;
  std::vector<ShardMessage> inbox_;
  std::vector<std::uint8_t> read_buf_;
  std::vector<Frame> frames_;
  std::vector<std::uint8_t> write_buf_;
};

}  // namespace netbatch::service

// netbatchd: the placement engine served over a unix-domain socket.
//
// A single-threaded event loop owns all cluster state through a
// sched::SchedulerCore — the exact decision stack the simulator drives,
// here driven by wall-clock time. Clients submit jobs, report completions,
// suspend/resume, and query state over the binary protocol in
// service/protocol.h; deferred work the core requests (completions under
// auto-complete, wait-timeout checks, restart deliveries) sits in a timer
// min-heap drained between socket wake-ups.
//
// Time: one simulated tick is one trace second. `time_scale` maps ticks to
// wall time as ticks-per-wall-second, so 1000 replays a trace at 1000x real
// time. Timers are generation-stamped like simulator events: a job that
// transitioned before its timer fires invalidates it (the stamp no longer
// matches), so cancellation is lazy and O(1).
#pragma once

#include <atomic>
#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/config.h"
#include "cluster/interfaces.h"
#include "common/histogram.h"
#include "net/poller.h"
#include "net/session.h"
#include "service/protocol.h"
#include "service/scheduler_core.h"

namespace netbatch::service {

struct DaemonOptions {
  std::string socket_path;
  // Simulated ticks per wall-clock second; higher = faster replay.
  std::int64_t time_scale = 1000;
  // When set the daemon completes running jobs itself after their spec
  // runtime (scaled); otherwise clients drive completion via kComplete.
  bool auto_complete = true;
  std::uint32_t max_payload = kMaxPayloadBytes;
};

class Daemon final : private sched::CoreHost,
                     private cluster::SimulationObserver {
 public:
  // `scheduler` and `policy` must outlive the daemon.
  Daemon(const cluster::ClusterConfig& config,
         cluster::InitialScheduler& scheduler,
         cluster::ReschedulingPolicy& policy, DaemonOptions options,
         sched::CoreOptions core_options = {});

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Serves until `*stop` turns true (typically flipped by a SIGTERM
  // handler). Closes every session and unlinks the socket on exit.
  void Run(const std::atomic<bool>& stop);

  sched::SchedulerCore& core() { return core_; }
  // Server-side admission-to-placement latency (nanoseconds, wall clock):
  // from the submit frame's arrival to the job's start transition —
  // including pool-queue wait for jobs that could not start immediately.
  const LatencyHistogram& placement_latency() const {
    return placement_latency_;
  }

 private:
  struct SessionState {
    net::Session session;
    FrameDecoder decoder;
    explicit SessionState(int fd, std::uint32_t max_payload)
        : session(fd), decoder(max_payload) {}
  };

  enum class TimerKind : std::uint8_t { kCompletion, kWaitTimeout, kDelivery };
  struct Timer {
    Ticks due = 0;
    std::uint64_t seq = 0;  // FIFO tie-break among equal deadlines
    TimerKind kind = TimerKind::kCompletion;
    JobId job;
    std::uint64_t stamp = 0;
    PoolId pool;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  // sched::CoreHost — deferred work becomes stamped wall-clock timers.
  void ArmCompletion(cluster::Job& job, Ticks duration) override;
  void CancelCompletion(cluster::Job& job) override {
    (void)job;  // lazy: the generation bump already invalidated the timer
  }
  void ArmWaitTimeout(cluster::Job& job, Ticks threshold) override;
  void ScheduleRestartDelivery(cluster::Job& job, PoolId target,
                               Ticks overhead) override;
  void OnJobTerminal(const cluster::Job& job) override { (void)job; }

  // cluster::SimulationObserver — only the start transition matters here:
  // it closes the admission-to-placement latency measurement.
  void OnJobStarted(const cluster::Job& job) override;

  Ticks NowTicks() const;
  void PushTimer(TimerKind kind, const cluster::Job& job, Ticks delay,
                 PoolId pool = PoolId());
  void DrainDueTimers();
  // Milliseconds until the next timer is due (for the poll timeout);
  // -1 when the heap is empty.
  int NextTimerDelayMs() const;

  void HandleListener();
  // Reads, reassembles, dispatches, and responds for one ready session.
  // Returns false when the session should be dropped.
  bool HandleReadable(SessionState& state);
  void HandleFrame(const Frame& frame, std::vector<std::uint8_t>& out);

  void HandleSubmit(const Frame& frame, std::vector<std::uint8_t>& out);
  void HandleJobOp(const Frame& frame, std::vector<std::uint8_t>& out);
  void HandleSnapshot(const Frame& frame, std::vector<std::uint8_t>& out);
  void HandleStats(const Frame& frame, std::vector<std::uint8_t>& out);

  DaemonOptions options_;
  sched::SchedulerCore core_;

  net::Poller poller_;
  int listener_fd_ = -1;
  std::unordered_map<int, SessionState> sessions_;

  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  std::uint64_t next_timer_seq_ = 0;

  std::uint64_t clock_origin_ns_ = 0;

  // Submit-frame arrival time per not-yet-started job, closed by
  // OnJobStarted into placement_latency_.
  std::unordered_map<JobId, std::uint64_t> submit_arrival_ns_;
  LatencyHistogram placement_latency_;

  // Reused per-wakeup buffers: poll results, read bytes, decoded frames,
  // response bytes. Steady-state serving allocates nothing.
  std::vector<net::PollResult> ready_;
  std::vector<std::uint8_t> read_buf_;
  std::vector<Frame> frames_;
  std::vector<std::uint8_t> write_buf_;
};

}  // namespace netbatch::service

// netbatchd: the placement engine served over unix-domain and TCP sockets.
//
// The daemon is an acceptor in front of N event-loop shards
// (service/shard_loop.h). Each shard owns one thread, one epoll instance,
// its own timers and sessions, and a sched::SchedulerCore over an
// interleaved slice of the pools (global pool g -> shard g % N); accepted
// connections are dealt round-robin, and requests whose target pool or job
// lives elsewhere hop shards over lock-free mailboxes. With --threads=1 the
// whole arrangement degenerates to the original single-threaded daemon —
// no forwarding, no gathers, identical decisions.
//
// Time: one simulated tick is one trace second. `time_scale` maps ticks to
// wall time as ticks-per-wall-second, so 1000 replays a trace at 1000x real
// time. All shards share one clock origin, so ticks are comparable across
// shards. Timers are generation-stamped like simulator events: a job that
// transitioned before its timer fires invalidates it (the stamp no longer
// matches), so cancellation is lazy and O(1).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "cluster/interfaces.h"
#include "common/histogram.h"
#include "service/job_directory.h"
#include "service/shard_loop.h"

namespace netbatch::service {

struct DaemonOptions {
  // Unix listener path; empty disables the unix listener.
  std::string socket_path;
  // TCP listener; port 0 binds an ephemeral port (see tcp_port()).
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  // Event-loop shards. Effective shard count is min(threads, pool count)
  // so every shard owns at least one pool.
  std::uint32_t threads = 1;
  // Simulated ticks per wall-clock second; higher = faster replay.
  std::int64_t time_scale = 1000;
  // When set the daemon completes running jobs itself after their spec
  // runtime (scaled); otherwise clients drive completion via kComplete.
  bool auto_complete = true;
  std::uint32_t max_payload = kMaxPayloadBytes;
  // Per-session unsent-output cap; a reader that falls further behind than
  // this is dropped instead of growing the heap. 0 = unlimited.
  std::size_t max_session_pending = 4u << 20;
  // Durability root. When set, shard s logs and checkpoints under
  // <data_dir>/shard-<s> (created on construction) and recovers from it on
  // start. Empty = in-memory only, exactly the pre-durability daemon.
  std::string data_dir;
  // Group-commit fdatasync triggers (persist/wal.h): record-count trigger
  // (1 = sync every ack batch, 0 = off) and time trigger in ms (0 = off).
  // The defaults cost ~4 fdatasyncs/s/shard and bound the power-loss
  // window to ~250ms; SIGKILL durability never depends on either.
  std::uint32_t fsync_every = 0;
  std::uint32_t fsync_interval_ms = 250;
  // Ticks between automatic per-shard checkpoints; 0 = only on
  // kCheckpoint / kDrain requests.
  std::int64_t checkpoint_every_ticks = 0;
};

// One shard's private scheduler/policy instances. Policies carry RNG state,
// so shards cannot share them; the factory builds one stack per shard
// (typically with per-shard seeds).
struct ShardStack {
  std::unique_ptr<cluster::InitialScheduler> scheduler;
  std::unique_ptr<cluster::ReschedulingPolicy> policy;
};
using ShardStackFactory = std::function<ShardStack(std::uint32_t shard)>;

class Daemon {
 public:
  // Binds the listeners immediately (so tcp_port() is valid before Run —
  // tests bind port 0 and read the kernel's choice) and builds the shards.
  Daemon(const cluster::ClusterConfig& config, ShardStackFactory factory,
         DaemonOptions options, sched::CoreOptions core_options = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Serves until `*stop` turns true (typically flipped by a SIGTERM
  // handler). Closes every session and unlinks the socket on exit. A kDrain
  // request closes the listeners early; existing sessions keep being served
  // until stop.
  void Run(const std::atomic<bool>& stop);

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  // The TCP listener's bound port (the kernel's choice when tcp_port was 0).
  std::uint16_t tcp_port() const { return tcp_port_; }

  // Shard access for tests and post-run reporting. Only safe while the
  // shards are quiescent (before Run or after it returns).
  ShardLoop& shard(std::uint32_t index) { return *shards_[index]; }

  // Server-side admission-to-placement latency (nanoseconds, wall clock):
  // from the submit frame's arrival to the job's start transition —
  // including pool-queue wait for jobs that could not start immediately.
  // Merged across shards; valid after Run returns.
  const LatencyHistogram& placement_latency() const {
    return placement_latency_;
  }

 private:
  DaemonOptions options_;
  JobDirectory directory_;
  std::atomic<bool> draining_{false};
  std::vector<ShardStack> stacks_;
  std::vector<std::unique_ptr<ShardLoop>> shards_;

  int unix_listener_ = -1;
  int tcp_listener_ = -1;
  std::uint16_t tcp_port_ = 0;

  LatencyHistogram placement_latency_;
};

}  // namespace netbatch::service

#include "common/rng.h"

#include <cmath>

namespace netbatch {
namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t DeriveSeed(std::uint64_t root, std::string_view key) {
  std::uint64_t state = root;
  std::uint64_t derived = SplitMix64(state);
  // Absorb the key in 8-byte little-endian chunks; the final partial chunk
  // carries the key length so "ab" and "ab\0" stay distinct.
  std::uint64_t chunk = 0;
  int bytes = 0;
  for (const char c : key) {
    chunk |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
             << (8 * bytes);
    if (++bytes == 8) {
      state ^= chunk;
      derived ^= SplitMix64(state);
      chunk = 0;
      bytes = 0;
    }
  }
  state ^= chunk ^ (static_cast<std::uint64_t>(key.size()) << 56);
  derived ^= SplitMix64(state);
  return derived;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Fork() { return Rng(Next()); }

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  NETBATCH_CHECK(lo <= hi, "UniformInt requires lo <= hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(Next());  // full 64-bit
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

std::size_t Rng::UniformIndex(std::size_t size) {
  NETBATCH_CHECK(size > 0, "UniformIndex requires size > 0");
  return static_cast<std::size_t>(
      UniformInt(0, static_cast<std::int64_t>(size) - 1));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

}  // namespace netbatch

// Histograms and empirical CDFs.
//
// `EmpiricalCdf` backs the Figure 2 reproduction (CDF of job suspension
// time) and percentile reporting; `LogHistogram` provides compact summaries
// of long-tailed quantities without retaining every sample.
#pragma once

#include <cstdint>
#include <vector>

namespace netbatch {

// Exact empirical distribution: retains all samples, sorts lazily.
// Suitable for up to a few million samples, which covers every experiment
// in the paper (248k jobs / week, ~1M jobs / year at our scale).
class EmpiricalCdf {
 public:
  void Add(double x);
  void Reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }

  // P(X <= x); 0 for an empty distribution.
  double At(double x) const;

  // Inverse CDF: smallest sample s with P(X <= s) >= q, q in [0, 1].
  // Requires at least one sample.
  double Quantile(double q) const;

  double Median() const { return Quantile(0.5); }
  double Mean() const;

  // Fraction of samples strictly greater than x.
  double FractionAbove(double x) const;

  // Evenly spaced (in quantile space) CDF points for plotting:
  // `points` pairs of (value, cumulative fraction).
  struct Point {
    double value;
    double fraction;
  };
  std::vector<Point> CurvePoints(std::size_t points) const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-size histogram with logarithmically spaced bucket boundaries;
// bucket i covers [lo * ratio^i, lo * ratio^(i+1)). Values below `lo` land
// in the first bucket; values beyond the last boundary in the overflow.
class LogHistogram {
 public:
  // Buckets span [lo, hi] with `buckets_per_decade` buckets per 10x.
  LogHistogram(double lo, double hi, int buckets_per_decade);

  void Add(double x);

  std::int64_t total_count() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::int64_t bucket(std::size_t i) const { return counts_[i]; }
  // Lower bound of bucket i.
  double bucket_lower(std::size_t i) const;

  // Approximate quantile from bucket midpoints; q in [0, 1].
  double ApproxQuantile(double q) const;

 private:
  double lo_;
  double log_ratio_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace netbatch

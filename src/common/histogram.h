// Histograms and empirical CDFs.
//
// `EmpiricalCdf` backs the Figure 2 reproduction (CDF of job suspension
// time) and percentile reporting; `LogHistogram` provides compact summaries
// of long-tailed quantities without retaining every sample.
#pragma once

#include <cstdint>
#include <vector>

namespace netbatch {

// Exact empirical distribution: retains all samples, sorts lazily.
// Suitable for up to a few million samples, which covers every experiment
// in the paper (248k jobs / week, ~1M jobs / year at our scale).
class EmpiricalCdf {
 public:
  void Add(double x);
  void Reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }

  // P(X <= x); 0 for an empty distribution.
  double At(double x) const;

  // Inverse CDF: smallest sample s with P(X <= s) >= q, q in [0, 1].
  // Requires at least one sample.
  double Quantile(double q) const;

  double Median() const { return Quantile(0.5); }
  double Mean() const;

  // Fraction of samples strictly greater than x.
  double FractionAbove(double x) const;

  // Evenly spaced (in quantile space) CDF points for plotting:
  // `points` pairs of (value, cumulative fraction).
  struct Point {
    double value;
    double fraction;
  };
  std::vector<Point> CurvePoints(std::size_t points) const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-size histogram with logarithmically spaced bucket boundaries;
// bucket i covers [lo * ratio^i, lo * ratio^(i+1)). Values below `lo` land
// in the first bucket; values beyond the last boundary in the overflow.
class LogHistogram {
 public:
  // Buckets span [lo, hi] with `buckets_per_decade` buckets per 10x.
  LogHistogram(double lo, double hi, int buckets_per_decade);

  void Add(double x);

  std::int64_t total_count() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::int64_t bucket(std::size_t i) const { return counts_[i]; }
  // Lower bound of bucket i.
  double bucket_lower(std::size_t i) const;

  // Approximate quantile from bucket midpoints; q in [0, 1].
  double ApproxQuantile(double q) const;

 private:
  double lo_;
  double log_ratio_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

// Log-bucketed latency histogram for the serving layer: integer values
// (nanoseconds, microseconds — any unit), bounded relative error, lossless
// merge across threads.
//
// Values below 64 get one exact bucket each; larger values land in one of
// 64 sub-buckets per power of two (octave e = bit_width(v) - 1, sub-bucket
// from the 6 bits below the leading bit), so a reported quantile's bucket
// bound is within a factor of 1 + 1/64 (~1.6%) of the true sample. Buckets
// are allocated lazily per octave; the whole structure is a few KiB even
// for nanosecond-scale tails.
//
// Quantile() is exact-rank over the bucketed distribution: it walks the
// cumulative counts to rank ceil(q * count) and reports that bucket's upper
// bound (clamped to the recorded maximum, so Quantile(1) == max()).
// Merge() adds bucket-wise and is lossless: merging per-thread histograms
// then querying equals querying one histogram fed all samples.
class LatencyHistogram {
 public:
  void Record(std::uint64_t value);

  // Adds `other`'s samples into this histogram (bucket-wise; lossless).
  void Merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const;

  // Upper bound of the bucket holding the sample at rank ceil(q * count),
  // q in [0, 1]; relative error vs the true sample is at most 1/64.
  // Returns 0 for an empty histogram.
  std::uint64_t Quantile(double q) const;

 private:
  static constexpr std::uint32_t kSubBuckets = 64;
  static std::size_t BucketIndex(std::uint64_t value);
  static std::uint64_t BucketUpperBound(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace netbatch

// Simulation time.
//
// NetBatch traces and all paper metrics are expressed in minutes; machine
// speed heterogeneity makes sub-minute precision necessary, so the simulator
// clock counts integer *ticks* at 60 ticks per minute (i.e. seconds).
// Integer time keeps the simulation fully deterministic: there is no
// floating-point accumulation anywhere on the critical path.
#pragma once

#include <cstdint>
#include <string>

namespace netbatch {

// A point in simulated time, in ticks since the start of the simulation.
using Ticks = std::int64_t;

inline constexpr Ticks kTicksPerMinute = 60;

// One day / one week in ticks; used by scenario presets.
inline constexpr Ticks kTicksPerHour = 60 * kTicksPerMinute;
inline constexpr Ticks kTicksPerDay = 24 * kTicksPerHour;
inline constexpr Ticks kTicksPerWeek = 7 * kTicksPerDay;

// Converts whole minutes to ticks.
constexpr Ticks MinutesToTicks(std::int64_t minutes) {
  return minutes * kTicksPerMinute;
}

// Converts ticks to (possibly fractional) minutes for reporting.
constexpr double TicksToMinutes(Ticks t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerMinute);
}

// Renders a tick count as "Xd HH:MM:SS" for logs and reports.
std::string FormatTicks(Ticks t);

}  // namespace netbatch

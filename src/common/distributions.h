// Sampling distributions used by the workload model.
//
// The NetBatch trace statistics in the paper (long-tailed suspension and
// completion times, bursty high-priority arrivals) motivate the standard
// grid-workload toolkit: exponential inter-arrivals, lognormal bodies and
// (bounded) Pareto tails for service demand, and Zipf pool popularity.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace netbatch {

// Exponential with the given rate (events per unit time); mean = 1/rate.
double SampleExponential(Rng& rng, double rate);

// Lognormal: exp(N(mu, sigma^2)).
double SampleLognormal(Rng& rng, double mu, double sigma);

// Standard normal via Box-Muller (single value; no caching, deterministic).
double SampleStandardNormal(Rng& rng);

// Pareto with scale xm > 0 and shape alpha > 0. Mean is infinite for
// alpha <= 1; prefer the bounded variant for service times.
double SamplePareto(Rng& rng, double xm, double alpha);

// Bounded Pareto on [lo, hi] with shape alpha (lo < hi, alpha > 0).
double SampleBoundedPareto(Rng& rng, double lo, double hi, double alpha);

// Poisson with mean lambda >= 0. Knuth's method for small lambda, normal
// approximation above 30 (keeps sampling O(1) for bursty arrival rates).
std::int64_t SamplePoisson(Rng& rng, double lambda);

// Zipf over ranks {0, .., n-1} with exponent s >= 0 (s = 0 is uniform).
// Used for skewed pool popularity. O(n) setup per call is avoided by the
// caller caching a ZipfSampler.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t Sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative weights
};

// A two-state Markov-modulated process ("off"/"on"), used to model the
// bursty arrival of high-priority jobs (paper, Section 2.3: bursts last
// hours to a week). State dwell times are exponential.
class MarkovModulatedBursts {
 public:
  // mean_off / mean_on: expected dwell time (in the caller's time unit) in
  // the quiet / bursty state.
  MarkovModulatedBursts(double mean_off, double mean_on, Rng rng);

  // Advances to `now`, flipping states as dwell periods expire.
  // Returns true when the process is in the "on" (bursty) state at `now`.
  bool IsOnAt(double now);

 private:
  double mean_off_;
  double mean_on_;
  Rng rng_;
  bool on_ = false;
  double next_flip_;
};

}  // namespace netbatch

#include "common/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define NETBATCH_CRC32C_X86 1
#endif
#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define NETBATCH_CRC32C_ARM 1
#endif

namespace netbatch {

namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78u;

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t ExtendCrc32cSoftware(std::uint32_t crc, const void* data,
                                   std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xffu];
  }
  return ~crc;
}

#if defined(NETBATCH_CRC32C_X86)

// Compiled for SSE4.2 regardless of the baseline -march; only called after
// the cpuid check below confirms the instruction exists.
__attribute__((target("sse4.2"))) static std::uint32_t ExtendCrc32cHardware(
    std::uint32_t crc, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
#if defined(__x86_64__)
  std::uint64_t crc64 = crc;
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    size -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
#endif
  while (size >= 4) {
    std::uint32_t word;
    std::memcpy(&word, p, 4);
    crc = _mm_crc32_u32(crc, word);
    p += 4;
    size -= 4;
  }
  while (size > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --size;
  }
  return ~crc;
}

#elif defined(NETBATCH_CRC32C_ARM)

static std::uint32_t ExtendCrc32cHardware(std::uint32_t crc, const void* data,
                                          std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (size >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc = __crc32cd(crc, word);
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = __crc32cb(crc, *p++);
    --size;
  }
  return ~crc;
}

#endif

std::uint32_t ExtendCrc32c(std::uint32_t crc, const void* data,
                           std::size_t size) {
#if defined(NETBATCH_CRC32C_X86)
  static const bool kHasSse42 = __builtin_cpu_supports("sse4.2") != 0;
  if (kHasSse42) return ExtendCrc32cHardware(crc, data, size);
#elif defined(NETBATCH_CRC32C_ARM)
  return ExtendCrc32cHardware(crc, data, size);
#endif
  return ExtendCrc32cSoftware(crc, data, size);
}

}  // namespace netbatch

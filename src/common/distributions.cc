#include "common/distributions.h"

#include <cmath>
#include <numbers>
#include <vector>

namespace netbatch {

double SampleExponential(Rng& rng, double rate) {
  NETBATCH_CHECK(rate > 0, "exponential rate must be positive");
  // 1 - U in (0, 1] so log() never sees zero.
  return -std::log(1.0 - rng.NextDouble()) / rate;
}

double SampleStandardNormal(Rng& rng) {
  const double u1 = 1.0 - rng.NextDouble();  // (0, 1]
  const double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double SampleLognormal(Rng& rng, double mu, double sigma) {
  NETBATCH_CHECK(sigma >= 0, "lognormal sigma must be non-negative");
  return std::exp(mu + sigma * SampleStandardNormal(rng));
}

double SamplePareto(Rng& rng, double xm, double alpha) {
  NETBATCH_CHECK(xm > 0 && alpha > 0, "pareto parameters must be positive");
  return xm / std::pow(1.0 - rng.NextDouble(), 1.0 / alpha);
}

double SampleBoundedPareto(Rng& rng, double lo, double hi, double alpha) {
  NETBATCH_CHECK(lo > 0 && lo < hi && alpha > 0,
                 "bounded pareto requires 0 < lo < hi and alpha > 0");
  const double u = rng.NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the truncated Pareto.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::int64_t SamplePoisson(Rng& rng, double lambda) {
  NETBATCH_CHECK(lambda >= 0, "poisson mean must be non-negative");
  if (lambda == 0) return 0;
  if (lambda > 30) {
    // Normal approximation with continuity correction; adequate for
    // arrival-count generation at high rates.
    const double draw =
        lambda + std::sqrt(lambda) * SampleStandardNormal(rng) + 0.5;
    return draw < 0 ? 0 : static_cast<std::int64_t>(draw);
  }
  const double limit = std::exp(-lambda);
  std::int64_t k = 0;
  double product = rng.NextDouble();
  while (product > limit) {
    ++k;
    product *= rng.NextDouble();
  }
  return k;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  NETBATCH_CHECK(n > 0, "zipf requires n > 0");
  NETBATCH_CHECK(s >= 0, "zipf exponent must be non-negative");
  cdf_.resize(n);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Binary search for the first cumulative weight >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

MarkovModulatedBursts::MarkovModulatedBursts(double mean_off, double mean_on,
                                             Rng rng)
    : mean_off_(mean_off), mean_on_(mean_on), rng_(rng) {
  NETBATCH_CHECK(mean_off > 0 && mean_on > 0,
                 "burst dwell times must be positive");
  next_flip_ = SampleExponential(rng_, 1.0 / mean_off_);
}

bool MarkovModulatedBursts::IsOnAt(double now) {
  while (now >= next_flip_) {
    on_ = !on_;
    const double mean = on_ ? mean_on_ : mean_off_;
    next_flip_ += SampleExponential(rng_, 1.0 / mean);
  }
  return on_;
}

}  // namespace netbatch

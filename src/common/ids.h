// Strongly-typed entity identifiers.
//
// Jobs, pools, machines and tasks are all indexed by small integers; the
// strong typedef below prevents the classic bug of passing a machine index
// where a pool index is expected. Ids are trivially copyable and hashable.
#pragma once

#include <cstdint>
#include <functional>

namespace netbatch {

// A strongly-typed 32-bit id. `Tag` is a phantom type used only to make
// distinct id families incompatible with each other.
template <typename Tag>
class Id {
 public:
  using ValueType = std::uint32_t;

  // Sentinel meaning "no entity"; default construction yields it.
  static constexpr ValueType kInvalidValue = 0xffffffffu;

  constexpr Id() = default;
  constexpr explicit Id(ValueType value) : value_(value) {}

  constexpr ValueType value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  ValueType value_ = kInvalidValue;
};

struct JobIdTag {};
struct PoolIdTag {};
struct MachineIdTag {};
struct TaskIdTag {};

using JobId = Id<JobIdTag>;
using PoolId = Id<PoolIdTag>;
using MachineId = Id<MachineIdTag>;
using TaskId = Id<TaskIdTag>;

}  // namespace netbatch

namespace std {
template <typename Tag>
struct hash<netbatch::Id<Tag>> {
  size_t operator()(netbatch::Id<Tag> id) const noexcept {
    return std::hash<typename netbatch::Id<Tag>::ValueType>{}(id.value());
  }
};
}  // namespace std

#include "common/flags.h"

#include <charconv>
#include <cstdlib>

#include "common/check.h"

namespace netbatch {
namespace {

bool IsFlagToken(const std::string& token) {
  return token.size() > 2 && token[0] == '-' && token[1] == '-';
}

}  // namespace

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  bool positional_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (positional_only) {
      flags.positional_.push_back(token);
      continue;
    }
    if (token == "--") {
      positional_only = true;
      continue;
    }
    if (!IsFlagToken(token)) {
      // Bare tokens are positional arguments (e.g. a subcommand name).
      flags.positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = Entry{body.substr(eq + 1)};
      continue;
    }
    // `--name value` when the next token is not a flag; bare `--name` is a
    // boolean true.
    if (i + 1 < argc && !IsFlagToken(argv[i + 1]) &&
        std::string(argv[i + 1]) != "--") {
      flags.values_[body] = Entry{argv[++i]};
    } else {
      flags.values_[body] = Entry{"true"};
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.contains(name);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.used = true;
  return it->second.value;
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.used = true;
  const std::string& s = it->second.value;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  NETBATCH_CHECK(ec == std::errc{} && ptr == s.data() + s.size(),
                 "flag value is not an integer");
  return value;
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.used = true;
  const std::string& s = it->second.value;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  NETBATCH_CHECK(end == s.c_str() + s.size() && !s.empty(),
                 "flag value is not a number");
  return value;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  it->second.used = true;
  const std::string& s = it->second.value;
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  NETBATCH_CHECK(false, "flag value is not a boolean");
  return fallback;
}

std::vector<std::string> Flags::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, entry] : values_) {
    if (!entry.used) unused.push_back(name);
  }
  return unused;
}

}  // namespace netbatch

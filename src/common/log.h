// Leveled logging to stderr.
//
// The simulator is silent by default; tests and examples can raise the level
// to trace scheduling decisions. Logging never affects simulation state, so
// it is safe to toggle without perturbing determinism.
#pragma once

#include <sstream>
#include <string_view>

namespace netbatch {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line: "[LEVEL] message".
void LogMessage(LogLevel level, std::string_view message);

namespace internal {

// Stream-style log statement builder; flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace netbatch

#define NETBATCH_LOG(level)                                      \
  if (::netbatch::GetLogLevel() <= ::netbatch::LogLevel::level)  \
  ::netbatch::internal::LogLine(::netbatch::LogLevel::level)

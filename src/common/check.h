// Invariant-checking support.
//
// NETBATCH_CHECK is an always-on assertion: it is kept in release builds
// because the simulator's correctness argument rests on its internal
// invariants (resource conservation, event ordering, state-machine legality)
// and silent corruption would invalidate every experiment built on top.
#pragma once

#include <string_view>

namespace netbatch {

// Prints `expr` / `file:line` / `msg` to stderr and aborts.
// Out-of-line so the macro expansion stays cheap at every call site.
[[noreturn]] void CheckFailed(std::string_view expr, std::string_view file,
                              int line, std::string_view msg);

}  // namespace netbatch

// Aborts with a diagnostic when `cond` is false. `msg` is a string-view-
// convertible description of the violated invariant.
#define NETBATCH_CHECK(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::netbatch::CheckFailed(#cond, __FILE__, __LINE__, (msg));      \
    }                                                                 \
  } while (false)

// Plain-text table rendering for experiment reports.
//
// The benchmark binaries print tables in the same row/column layout as the
// paper's Tables 1-5; this helper keeps that formatting in one place.
#pragma once

#include <string>
#include <vector>

namespace netbatch {

// A simple right-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders with column separators and a rule under the header.
  std::string Render() const;

  // Convenience numeric formatting used by report code.
  static std::string Fixed(double v, int decimals);
  static std::string Percent(double fraction, int decimals);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace netbatch

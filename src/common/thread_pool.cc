#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace netbatch {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = std::max(1u, threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

unsigned ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace netbatch

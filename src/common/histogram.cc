#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace netbatch {

void EmpiricalCdf::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::At(double x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::Quantile(double q) const {
  NETBATCH_CHECK(!samples_.empty(), "Quantile() of empty distribution");
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto n = samples_.size();
  const std::size_t idx = std::min(
      n - 1, static_cast<std::size_t>(std::ceil(q * static_cast<double>(n))) -
                 (q > 0 ? 1 : 0));
  return samples_[idx];
}

double EmpiricalCdf::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double EmpiricalCdf::FractionAbove(double x) const {
  if (samples_.empty()) return 0.0;
  return 1.0 - At(x);
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::CurvePoints(
    std::size_t points) const {
  std::vector<Point> out;
  if (samples_.empty() || points == 0) return out;
  EnsureSorted();
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.push_back({Quantile(q), q});
  }
  return out;
}

LogHistogram::LogHistogram(double lo, double hi, int buckets_per_decade)
    : lo_(lo) {
  NETBATCH_CHECK(lo > 0 && hi > lo, "LogHistogram requires 0 < lo < hi");
  NETBATCH_CHECK(buckets_per_decade > 0, "need at least one bucket per decade");
  log_ratio_ = std::log(10.0) / buckets_per_decade;
  const auto buckets = static_cast<std::size_t>(
                           std::ceil(std::log(hi / lo) / log_ratio_)) +
                       1;  // +1 for overflow
  counts_.assign(buckets, 0);
}

void LogHistogram::Add(double x) {
  ++total_;
  std::size_t idx = 0;
  if (x > lo_) {
    idx = static_cast<std::size_t>(std::log(x / lo_) / log_ratio_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
}

double LogHistogram::bucket_lower(std::size_t i) const {
  return lo_ * std::exp(log_ratio_ * static_cast<double>(i));
}

double LogHistogram::ApproxQuantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) {
      // Midpoint of the bucket in log space.
      return lo_ * std::exp(log_ratio_ * (static_cast<double>(i) + 0.5));
    }
  }
  return bucket_lower(counts_.size() - 1);
}

// Bucket layout: values < 64 map to their own bucket (index == value).
// For v >= 64 with octave e = bit_width(v) - 1 (e >= 6), the 6 bits below
// the leading bit pick one of 64 sub-buckets; octave e starts at index
// (e - 5) * 64. The first octave (e = 6, values 64..127) therefore begins
// at index 64, flush against the exact region.
std::size_t LatencyHistogram::BucketIndex(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const int e = 63 - std::countl_zero(value);
  const std::uint64_t sub = (value >> (e - 6)) & (kSubBuckets - 1);
  return static_cast<std::size_t>(e - 5) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

// Largest value mapping to `index`, plus one — i.e. the exclusive upper
// bound of the bucket. Inverse of BucketIndex's layout.
std::uint64_t LatencyHistogram::BucketUpperBound(std::size_t index) {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index) + 1;
  const int e = static_cast<int>(index / kSubBuckets) + 5;
  const std::uint64_t sub = index % kSubBuckets;
  // Bucket spans [ (64+sub) << (e-6), (64+sub+1) << (e-6) ).
  return (kSubBuckets + sub + 1) << (e - 6);
}

void LatencyHistogram::Record(std::uint64_t value) {
  const std::size_t index = BucketIndex(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double LatencyHistogram::Mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Exact rank over the bucketed distribution, 1-based.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= rank) {
      // The bucket bound can overshoot the recorded maximum (the max sits
      // somewhere inside the top bucket); clamp so Quantile(1) == max().
      return std::min(BucketUpperBound(i) - 1, max_);
    }
  }
  return max_;
}

}  // namespace netbatch

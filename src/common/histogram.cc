#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace netbatch {

void EmpiricalCdf::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::At(double x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::Quantile(double q) const {
  NETBATCH_CHECK(!samples_.empty(), "Quantile() of empty distribution");
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto n = samples_.size();
  const std::size_t idx = std::min(
      n - 1, static_cast<std::size_t>(std::ceil(q * static_cast<double>(n))) -
                 (q > 0 ? 1 : 0));
  return samples_[idx];
}

double EmpiricalCdf::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double EmpiricalCdf::FractionAbove(double x) const {
  if (samples_.empty()) return 0.0;
  return 1.0 - At(x);
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::CurvePoints(
    std::size_t points) const {
  std::vector<Point> out;
  if (samples_.empty() || points == 0) return out;
  EnsureSorted();
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.push_back({Quantile(q), q});
  }
  return out;
}

LogHistogram::LogHistogram(double lo, double hi, int buckets_per_decade)
    : lo_(lo) {
  NETBATCH_CHECK(lo > 0 && hi > lo, "LogHistogram requires 0 < lo < hi");
  NETBATCH_CHECK(buckets_per_decade > 0, "need at least one bucket per decade");
  log_ratio_ = std::log(10.0) / buckets_per_decade;
  const auto buckets = static_cast<std::size_t>(
                           std::ceil(std::log(hi / lo) / log_ratio_)) +
                       1;  // +1 for overflow
  counts_.assign(buckets, 0);
}

void LogHistogram::Add(double x) {
  ++total_;
  std::size_t idx = 0;
  if (x > lo_) {
    idx = static_cast<std::size_t>(std::log(x / lo_) / log_ratio_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
}

double LogHistogram::bucket_lower(std::size_t i) const {
  return lo_ * std::exp(log_ratio_ * static_cast<double>(i));
}

double LogHistogram::ApproxQuantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) {
      // Midpoint of the bucket in log space.
      return lo_ * std::exp(log_ratio_ * (static_cast<double>(i) + 0.5));
    }
  }
  return bucket_lower(counts_.size() - 1);
}

}  // namespace netbatch

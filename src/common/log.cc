#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace netbatch {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, std::string_view message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::fprintf(stderr, "[%s] %.*s\n", LevelName(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace netbatch

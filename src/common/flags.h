// Minimal command-line flag parsing for the CLI and bench binaries.
//
// Supports --name=value and --name value forms, boolean flags (--name /
// --name=false), and typed access with defaults. Deliberately small: no
// registration globals, no abbreviations — just enough for NetBatchSim's
// own executables.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace netbatch {

class Flags {
 public:
  // Parses argv. Bare tokens (e.g. subcommand names) become positional
  // arguments; `--` forces everything after it to be positional.
  static Flags Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  // Typed getters; abort on unparsable values (a typo'd experiment flag
  // must not silently fall back to a default mid-sweep).
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Names of flags that were never read by any getter; lets executables
  // reject misspelled flags after configuration is complete.
  std::vector<std::string> UnusedFlags() const;

 private:
  struct Entry {
    std::string value;
    mutable bool used = false;
  };
  std::map<std::string, Entry> values_;
  std::vector<std::string> positional_;
};

}  // namespace netbatch

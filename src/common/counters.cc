#include "common/counters.h"

#include <algorithm>
#include <sstream>

namespace netbatch {

GaugeMergePolicy GaugeMergePolicyFor(std::string_view name) {
  // Watermark gauges: each shard reports its own maximum (or a duration that
  // is not additive across shards), so the cluster-wide value is the max of
  // the per-shard values — summing them fabricates a number no shard ever saw.
  if (name == "daemon.recovery_ms") return GaugeMergePolicy::kMax;
  if (name == "daemon.latency_map_entries") return GaugeMergePolicy::kMax;
  return GaugeMergePolicy::kSum;
}

void MergeCounterSnapshots(CounterSnapshot& into, const CounterSnapshot& from) {
  for (const auto& [name, value] : from.counters) {
    auto it = std::find_if(
        into.counters.begin(), into.counters.end(),
        [&](const auto& entry) { return entry.first == name; });
    if (it == into.counters.end()) {
      into.counters.emplace_back(name, value);
    } else {
      it->second += value;
    }
  }
  for (const auto& [name, value, max] : from.gauges) {
    auto it = std::find_if(into.gauges.begin(), into.gauges.end(),
                           [&](const auto& entry) {
                             return std::get<0>(entry) == name;
                           });
    if (it == into.gauges.end()) {
      into.gauges.emplace_back(name, value, max);
      continue;
    }
    if (GaugeMergePolicyFor(name) == GaugeMergePolicy::kMax) {
      std::get<1>(*it) = std::max(std::get<1>(*it), value);
    } else {
      std::get<1>(*it) += value;
    }
    std::get<2>(*it) = std::max(std::get<2>(*it), max);
  }
}

Counter& CounterRegistry::GetCounter(std::string_view name) {
  auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end()) return counters_[it->second];
  counter_index_.emplace(std::string(name), counters_.size());
  counter_names_.emplace_back(name);
  return counters_.emplace_back();
}

Gauge& CounterRegistry::GetGauge(std::string_view name) {
  auto it = gauge_index_.find(std::string(name));
  if (it != gauge_index_.end()) return gauges_[it->second];
  gauge_index_.emplace(std::string(name), gauges_.size());
  gauge_names_.emplace_back(name);
  return gauges_.emplace_back();
}

const Counter* CounterRegistry::FindCounter(std::string_view name) const {
  auto it = counter_index_.find(std::string(name));
  return it == counter_index_.end() ? nullptr : &counters_[it->second];
}

const Gauge* CounterRegistry::FindGauge(std::string_view name) const {
  auto it = gauge_index_.find(std::string(name));
  return it == gauge_index_.end() ? nullptr : &gauges_[it->second];
}

CounterSnapshot CounterRegistry::TakeSnapshot() const {
  CounterSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    snap.counters.emplace_back(counter_names_[i], counters_[i].value());
  }
  snap.gauges.reserve(gauges_.size());
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    snap.gauges.emplace_back(gauge_names_[i], gauges_[i].value(),
                             gauges_[i].max());
  }
  return snap;
}

std::string CounterRegistry::Render() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out << counter_names_[i] << "=" << counters_[i].value() << "\n";
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    out << gauge_names_[i] << "=" << gauges_[i].value()
        << " (max=" << gauges_[i].max() << ")\n";
  }
  return out.str();
}

}  // namespace netbatch

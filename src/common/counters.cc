#include "common/counters.h"

#include <sstream>

namespace netbatch {

Counter& CounterRegistry::GetCounter(std::string_view name) {
  auto it = counter_index_.find(std::string(name));
  if (it != counter_index_.end()) return counters_[it->second];
  counter_index_.emplace(std::string(name), counters_.size());
  counter_names_.emplace_back(name);
  return counters_.emplace_back();
}

Gauge& CounterRegistry::GetGauge(std::string_view name) {
  auto it = gauge_index_.find(std::string(name));
  if (it != gauge_index_.end()) return gauges_[it->second];
  gauge_index_.emplace(std::string(name), gauges_.size());
  gauge_names_.emplace_back(name);
  return gauges_.emplace_back();
}

const Counter* CounterRegistry::FindCounter(std::string_view name) const {
  auto it = counter_index_.find(std::string(name));
  return it == counter_index_.end() ? nullptr : &counters_[it->second];
}

const Gauge* CounterRegistry::FindGauge(std::string_view name) const {
  auto it = gauge_index_.find(std::string(name));
  return it == gauge_index_.end() ? nullptr : &gauges_[it->second];
}

CounterSnapshot CounterRegistry::TakeSnapshot() const {
  CounterSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    snap.counters.emplace_back(counter_names_[i], counters_[i].value());
  }
  snap.gauges.reserve(gauges_.size());
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    snap.gauges.emplace_back(gauge_names_[i], gauges_[i].value(),
                             gauges_[i].max());
  }
  return snap;
}

std::string CounterRegistry::Render() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out << counter_names_[i] << "=" << counters_[i].value() << "\n";
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    out << gauge_names_[i] << "=" << gauges_[i].value()
        << " (max=" << gauges_[i].max() << ")\n";
  }
  return out.str();
}

}  // namespace netbatch

// Streaming summary statistics.
//
// Used throughout the metrics layer for single-pass aggregation of job-level
// quantities (completion time, suspend time, wasted time, ...).
#pragma once

#include <cstdint>
#include <limits>
#include <span>

namespace netbatch {

// Replication summary: mean, SAMPLE standard deviation (n-1 denominator,
// unlike StreamingStats' population variance) and the half-width of a
// normal-approximation 95% confidence interval (1.96 * stddev / sqrt(n)).
// Used by the sweep engine to aggregate per-seed replications of one
// experiment spec into a `mean ± ci` summary row.
struct SampleSummary {
  std::size_t n = 0;
  double mean = 0;
  double stddev = 0;     // 0 for fewer than two observations
  double ci95_half = 0;  // 0 for fewer than two observations
};

SampleSummary SummarizeSamples(std::span<const double> values);

// Welford-style single-pass accumulator: count, mean, variance, min, max.
// Numerically stable; O(1) per observation.
class StreamingStats {
 public:
  void Add(double x);

  // Merges another accumulator into this one (parallel-safe combine).
  void Merge(const StreamingStats& other);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  // Population variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace netbatch

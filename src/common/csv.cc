#include "common/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace netbatch {
namespace {

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void WriteField(std::ostream& out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    WriteField(*out_, fields[i]);
  }
  *out_ << '\n';
}

std::vector<std::string> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::vector<std::vector<std::string>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line != "\r") rows.push_back(ParseCsvLine(line));
    if (end == text.size()) break;
    start = end + 1;
  }
  return rows;
}

std::vector<std::vector<std::string>> ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

}  // namespace netbatch

// Deterministic pseudo-random number generation.
//
// All randomness in NetBatchSim flows through `Rng` so that a (config, seed)
// pair fully determines every experiment. The generator is xoshiro256**,
// seeded through splitmix64 as its authors recommend; both are tiny, fast
// and have well-understood statistical quality.
//
// Independent subsystems (workload generation, pool selection, machine
// heterogeneity) should each own an `Rng` forked via `Fork()`, so that adding
// draws in one subsystem does not perturb the stream seen by another.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "common/check.h"

namespace netbatch {

// splitmix64 step; used for seeding and for forking child streams.
std::uint64_t SplitMix64(std::uint64_t& state);

// Derives a decorrelated substream seed from a root seed and a string key
// by absorbing the key, 8 bytes at a time, through splitmix64. Runs that
// differ in either the root or the key get independent streams, and the
// result depends only on (root, key) — never on how many other substreams
// were derived before it. The sweep engine keys every run's policy and
// outage streams on the run's spec label so that executing a sweep on 1
// worker or 16 yields bit-identical results.
std::uint64_t DeriveSeed(std::uint64_t root, std::string_view key);

// xoshiro256** with convenience draws. Copyable; copies continue the same
// stream independently (use Fork() when you want decorrelated streams).
class Rng {
 public:
  // Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed);

  // Next raw 64-bit draw.
  std::uint64_t Next();

  // A decorrelated child generator; deterministic given this Rng's state.
  // Advances this generator by one draw.
  Rng Fork();

  // Uniform real in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform index in [0, size); requires size > 0.
  std::size_t UniformIndex(std::size_t size);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Picks a uniformly random element of a non-empty span.
  template <typename T>
  const T& Pick(std::span<const T> items) {
    NETBATCH_CHECK(!items.empty(), "Pick() from empty span");
    return items[UniformIndex(items.size())];
  }

  // Raw state capture for checkpoint/restore: LoadState(SaveState())
  // resumes the exact stream. The words are xoshiro256** internal state —
  // persist them as opaque bytes, not as seeds.
  std::array<std::uint64_t, 4> SaveState() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void LoadState(const std::array<std::uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state[i];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace netbatch

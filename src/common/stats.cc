#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace netbatch {

void StreamingStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

SampleSummary SummarizeSamples(std::span<const double> values) {
  SampleSummary summary;
  summary.n = values.size();
  if (values.empty()) return summary;
  StreamingStats stats;
  for (const double v : values) stats.Add(v);
  summary.mean = stats.mean();
  if (values.size() >= 2) {
    // Convert the population variance (n denominator) to the sample
    // variance (n-1).
    const double n = static_cast<double>(values.size());
    summary.stddev = std::sqrt(stats.variance() * n / (n - 1.0));
    summary.ci95_half = 1.96 * summary.stddev / std::sqrt(n);
  }
  return summary;
}

}  // namespace netbatch

#include "common/time.h"

#include <cstdio>

namespace netbatch {

std::string FormatTicks(Ticks t) {
  const bool negative = t < 0;
  if (negative) t = -t;
  const std::int64_t seconds = t % 60;
  const std::int64_t minutes = (t / 60) % 60;
  const std::int64_t hours = (t / 3600) % 24;
  const std::int64_t days = t / 86400;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%lldd %02lld:%02lld:%02lld",
                negative ? "-" : "", static_cast<long long>(days),
                static_cast<long long>(hours), static_cast<long long>(minutes),
                static_cast<long long>(seconds));
  return buf;
}

}  // namespace netbatch

// CRC32C (Castagnoli) — the integrity check for WAL records and snapshots.
//
// Hardware-accelerated where the CPU supports it (SSE4.2 on x86, the CRC32
// extension on ARM), with a portable table-driven fallback. The polynomial
// is Castagnoli's 0x1EDC6F41 (reflected 0x82F63B78), the same choice as
// iSCSI, ext4 and leveldb, picked for its error-detection properties and
// because commodity CPUs compute it in hardware.
//
// The functions use the conventional ~0 pre/post conditioning, so
// Crc32c("123456789") == 0xE3069283 (the standard known-answer vector) and
// checksums are extendable: ExtendCrc32c(Crc32c(a), b) == Crc32c(a + b).
#pragma once

#include <cstddef>
#include <cstdint>

namespace netbatch {

// Extends `crc` (a previous Crc32c/ExtendCrc32c result, or 0 for a fresh
// checksum) over `size` bytes at `data`. Dispatches to the hardware
// instruction when available.
std::uint32_t ExtendCrc32c(std::uint32_t crc, const void* data,
                           std::size_t size);

inline std::uint32_t Crc32c(const void* data, std::size_t size) {
  return ExtendCrc32c(0, data, size);
}

// The table-driven path, always available regardless of CPU. Exposed so
// tests can assert the hardware and software paths agree byte-for-byte.
std::uint32_t ExtendCrc32cSoftware(std::uint32_t crc, const void* data,
                                   std::size_t size);

}  // namespace netbatch

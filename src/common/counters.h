// Cheap named counters and gauges for simulator observability.
//
// A CounterRegistry is a per-simulation (NOT global — sweeps run many
// simulations concurrently) set of monotonically increasing counters and
// last-value gauges. Hot paths resolve a Counter*/Gauge* once and then pay
// one integer add per event; the registry keeps registration order so
// snapshots and rendered output are stable across runs.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

namespace netbatch {

// A monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// A last-observed value (queue depth, busy cores); also tracks its maximum.
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_ = value;
    if (value > max_) max_ = value;
  }
  std::int64_t value() const { return value_; }
  std::int64_t max() const { return max_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

// Point-in-time copy of a registry, in registration order. Carried in
// ExperimentResult so sweep consumers can read counters after the
// simulation object is gone.
struct CounterSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  // (name, last value, max value)
  std::vector<std::tuple<std::string, std::int64_t, std::int64_t>> gauges;
};

// How a gauge's *value* combines when snapshots from several shards (or
// simulation domains) are folded into one cluster-wide view. Counters always
// add; a gauge's `max` field always merges by max-of-maxes — the policy only
// decides the merged `value`.
enum class GaugeMergePolicy {
  kSum,  // additive quantities: busy cores, queue depths, pending events
  kMax,  // watermarks / per-shard maxima: recovery time, map high-water marks
};

// Per-gauge merge policy by name. Additive by default; watermark-style
// gauges — whose per-shard values are already maxima or durations that do
// not add across shards — merge by max.
GaugeMergePolicy GaugeMergePolicyFor(std::string_view name);

// Folds `from` into `into`: counters add, gauge values merge per
// GaugeMergePolicyFor, gauge maxes merge by max. Names absent from `into`
// are appended, preserving first-seen order.
void MergeCounterSnapshots(CounterSnapshot& into, const CounterSnapshot& from);

class CounterRegistry {
 public:
  // Returns the counter/gauge with `name`, creating it on first use.
  // References stay valid for the registry's lifetime.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);

  // Read-only lookup; nullptr when the name was never registered.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;

  CounterSnapshot TakeSnapshot() const;

  // One "name=value" per line, counters first, in registration order.
  std::string Render() const;

 private:
  // Deques keep references stable across registration.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
};

}  // namespace netbatch

// A fixed-size worker pool for CPU-bound simulation fan-out.
//
// The sweep engine executes independent simulation runs on this pool; each
// task writes only to state it owns (its slot of a pre-sized results
// vector), so parallel execution needs no locking beyond the queue itself
// and results are independent of scheduling order. Tasks must not block on
// other tasks — the pool has no work stealing and a dependency cycle would
// deadlock Wait().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace netbatch {

class ThreadPool {
 public:
  // Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);

  // Joins all workers; pending tasks are still drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Safe to call from any thread except a worker running
  // a task submitted to this pool (tasks do not submit tasks).
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished. If any task threw, the
  // first captured exception is rethrown here (remaining tasks still ran).
  void Wait();

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  // std::thread::hardware_concurrency(), clamped to at least 1 (the
  // standard allows it to return 0 when unknown).
  static unsigned DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace netbatch

#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace netbatch {

void CheckFailed(std::string_view expr, std::string_view file, int line,
                 std::string_view msg) {
  std::fprintf(stderr, "NETBATCH_CHECK failed: %.*s\n  at %.*s:%d\n  %.*s\n",
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(msg.size()), msg.data());
  std::abort();
}

}  // namespace netbatch

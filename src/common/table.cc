#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace netbatch {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  NETBATCH_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::AddRow(std::vector<std::string> row) {
  NETBATCH_CHECK(row.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << std::string(widths[c] - row[c].size(), ' ') << row[c];
    }
    out << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::Fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TextTable::Percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace netbatch

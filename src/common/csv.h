// Minimal CSV reading and writing.
//
// Traces and experiment outputs are exchanged as CSV (RFC-4180 quoting for
// fields containing commas/quotes/newlines). This is deliberately small:
// enough for NetBatchSim's own files, not a general-purpose parser.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace netbatch {

// Writes rows to an ostream, quoting fields when necessary.
class CsvWriter {
 public:
  // The stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void WriteRow(const std::vector<std::string>& fields);

 private:
  std::ostream* out_;
};

// Splits one CSV line into fields, honoring double-quote escaping.
// Multi-line quoted fields are not supported (trace files never need them).
std::vector<std::string> ParseCsvLine(std::string_view line);

// Reads an entire CSV document from a string (used by tests) or a file.
// Returns one vector of fields per non-empty line.
std::vector<std::vector<std::string>> ParseCsv(std::string_view text);
std::vector<std::vector<std::string>> ReadCsvFile(const std::string& path);

}  // namespace netbatch

// Stream socket helpers for netbatchd and its clients: unix-domain for
// local drivers, TCP for remote ones. The NBP1 framing layer is
// transport-agnostic, so both transports share Session/FrameDecoder.
//
// Free functions over raw fds; ownership stays with the caller (the daemon
// tracks fds in its per-shard session maps, the load generator in its
// worker state). All sockets are created close-on-exec.
#pragma once

#include <cstdint>
#include <string>

namespace netbatch::net {

// Binds and listens on `path` (unlinking a stale socket file first) and
// returns the nonblocking listener fd. Aborts on bind/listen failure —
// a daemon that cannot claim its socket has nothing to serve.
int ListenUnix(const std::string& path, int backlog = 128);

// Connects to the daemon at `path`. Returns the connected fd, or -1 with
// errno set (callers retry while the daemon is still starting). The fd is
// blocking; call SetNonBlocking for event-loop use.
int ConnectUnix(const std::string& path);

// Accepts one pending connection from a nonblocking listener. Returns the
// nonblocking connection fd, or -1 when the accept queue is empty (EAGAIN)
// or the connection aborted before we got to it.
int AcceptUnix(int listener_fd);

// Binds and listens on `port` (all interfaces, SO_REUSEADDR) and returns
// the nonblocking listener fd. Port 0 asks the kernel for an ephemeral
// port; recover it with BoundTcpPort. Aborts on bind/listen failure.
int ListenTcp(std::uint16_t port, int backlog = 128);

// The port a TCP listener actually bound (resolves port 0).
std::uint16_t BoundTcpPort(int listener_fd);

// Accepts one pending TCP connection; same contract as AcceptUnix, plus
// TCP_NODELAY on the accepted fd (the protocol is small request/response
// frames — Nagle would serialize pipelined round-trips).
int AcceptTcp(int listener_fd);

// Connects to `host:port` (name or numeric address). Returns the connected
// blocking fd with TCP_NODELAY set, or -1 with errno set.
int ConnectTcp(const std::string& host, std::uint16_t port);

void SetNonBlocking(int fd);

}  // namespace netbatch::net

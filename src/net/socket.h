// Unix-domain stream socket helpers for netbatchd and its clients.
//
// Free functions over raw fds; ownership stays with the caller (the daemon
// tracks fds in its session map, the load generator in its worker state).
// All sockets are created close-on-exec.
#pragma once

#include <string>

namespace netbatch::net {

// Binds and listens on `path` (unlinking a stale socket file first) and
// returns the nonblocking listener fd. Aborts on bind/listen failure —
// a daemon that cannot claim its socket has nothing to serve.
int ListenUnix(const std::string& path, int backlog = 128);

// Connects to the daemon at `path`. Returns the connected fd, or -1 with
// errno set (callers retry while the daemon is still starting). The fd is
// blocking; call SetNonBlocking for event-loop use.
int ConnectUnix(const std::string& path);

// Accepts one pending connection from a nonblocking listener. Returns the
// nonblocking connection fd, or -1 when the accept queue is empty (EAGAIN)
// or the connection aborted before we got to it.
int AcceptUnix(int listener_fd);

void SetNonBlocking(int fd);

}  // namespace netbatch::net

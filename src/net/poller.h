// A thin epoll wrapper for the serving layer's single-threaded event loop.
//
// One Poller instance owns one epoll fd. Interest is registered per fd with
// a user token (typically the fd itself, or a session key); Wait() fills a
// caller-owned vector so the loop allocates nothing in steady state.
#pragma once

#include <cstdint>
#include <vector>

namespace netbatch::net {

// Readiness bits, kept independent of the epoll ABI so callers never
// include <sys/epoll.h>.
enum PollEvents : std::uint32_t {
  kPollIn = 1u << 0,   // readable (or a pending accept on a listener)
  kPollOut = 1u << 1,  // writable
  kPollHup = 1u << 2,  // peer closed / error; always waited for implicitly
};

struct PollResult {
  std::uint64_t token = 0;
  std::uint32_t events = 0;  // PollEvents bits
};

class Poller {
 public:
  Poller();
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  // Registers / re-arms / removes interest in `fd`. `token` comes back
  // verbatim in PollResult. Add aborts on kernel refusal (fd exhaustion is
  // not a recoverable serving state); Modify/Remove abort likewise.
  void Add(int fd, std::uint32_t events, std::uint64_t token);
  void Modify(int fd, std::uint32_t events, std::uint64_t token);
  void Remove(int fd);

  // Blocks up to `timeout_ms` (-1 = forever, 0 = poll) and appends one
  // PollResult per ready fd to `out` (cleared first). Returns the number of
  // ready fds; 0 on timeout. EINTR reports as 0 ready fds so signal-driven
  // shutdown flags get rechecked by the caller.
  int Wait(int timeout_ms, std::vector<PollResult>& out);

  int fd() const { return epoll_fd_; }

 private:
  int epoll_fd_ = -1;
  // Scratch for the raw epoll_event array, sized to the high-water mark of
  // ready fds per wake-up.
  std::vector<unsigned char> scratch_;
};

}  // namespace netbatch::net

#include "net/session.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace netbatch::net {

Session::~Session() {
  if (fd_ >= 0) ::close(fd_);
}

Session::Session(Session&& other) noexcept
    : fd_(other.fd_),
      pending_(std::move(other.pending_)),
      pending_head_(other.pending_head_),
      max_pending_(other.max_pending_) {
  other.fd_ = -1;
}

Session::IoStatus Session::Read(std::vector<std::uint8_t>& buf,
                                std::size_t max_bytes) {
  std::size_t total = 0;
  while (total < max_bytes) {
    std::uint8_t chunk[4096];
    const std::size_t want =
        std::min(sizeof(chunk), max_bytes - total);
    const ssize_t n = ::recv(fd_, chunk, want, 0);
    if (n > 0) {
      buf.insert(buf.end(), chunk, chunk + n);
      total += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOk;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
  return IoStatus::kOk;  // hit the per-call cap; poller will re-report
}

Session::IoStatus Session::Write(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  // Preserve ordering: never bypass bytes already queued.
  if (!wants_write()) {
    while (size > 0) {
      const ssize_t n = ::send(fd_, bytes, size, MSG_NOSIGNAL);
      if (n > 0) {
        bytes += n;
        size -= static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
  }
  if (size > 0) {
    if (max_pending_ != 0 && pending_bytes() + size > max_pending_) {
      return IoStatus::kOverflow;
    }
    pending_.insert(pending_.end(), bytes, bytes + size);
  }
  return IoStatus::kOk;
}

Session::IoStatus Session::QueueWrite(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  if (max_pending_ != 0 && pending_bytes() + size > max_pending_) {
    return IoStatus::kOverflow;
  }
  pending_.insert(pending_.end(), bytes, bytes + size);
  return IoStatus::kOk;
}

Session::IoStatus Session::FlushPending() {
  while (wants_write()) {
    const std::size_t left = pending_.size() - pending_head_;
    const ssize_t n =
        ::send(fd_, pending_.data() + pending_head_, left, MSG_NOSIGNAL);
    if (n > 0) {
      pending_head_ += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
  if (pending_head_ == pending_.size()) {
    pending_.clear();
    pending_head_ = 0;
  } else if (pending_head_ > pending_.size() / 2) {
    pending_.erase(pending_.begin(),
                   pending_.begin() +
                       static_cast<std::ptrdiff_t>(pending_head_));
    pending_head_ = 0;
  }
  return IoStatus::kOk;
}

}  // namespace netbatch::net

#include "net/poller.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>

#include "common/check.h"

namespace netbatch::net {

namespace {

constexpr std::size_t kInitialReadyCap = 64;

std::uint32_t ToEpoll(std::uint32_t events) {
  std::uint32_t raw = 0;
  if (events & kPollIn) raw |= EPOLLIN;
  if (events & kPollOut) raw |= EPOLLOUT;
  // EPOLLHUP / EPOLLERR are always reported; nothing to request.
  return raw;
}

std::uint32_t FromEpoll(std::uint32_t raw) {
  std::uint32_t events = 0;
  if (raw & EPOLLIN) events |= kPollIn;
  if (raw & EPOLLOUT) events |= kPollOut;
  if (raw & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) events |= kPollHup;
  return events;
}

}  // namespace

Poller::Poller() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  NETBATCH_CHECK(epoll_fd_ >= 0, "epoll_create1 failed");
  scratch_.resize(kInitialReadyCap * sizeof(struct epoll_event));
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Poller::Add(int fd, std::uint32_t events, std::uint64_t token) {
  struct epoll_event ev = {};
  ev.events = ToEpoll(events);
  ev.data.u64 = token;
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  NETBATCH_CHECK(rc == 0, "epoll_ctl ADD failed");
}

void Poller::Modify(int fd, std::uint32_t events, std::uint64_t token) {
  struct epoll_event ev = {};
  ev.events = ToEpoll(events);
  ev.data.u64 = token;
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  NETBATCH_CHECK(rc == 0, "epoll_ctl MOD failed");
}

void Poller::Remove(int fd) {
  const int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  NETBATCH_CHECK(rc == 0, "epoll_ctl DEL failed");
}

int Poller::Wait(int timeout_ms, std::vector<PollResult>& out) {
  out.clear();
  auto* events = reinterpret_cast<struct epoll_event*>(scratch_.data());
  const int cap = static_cast<int>(scratch_.size() / sizeof(*events));
  const int n = ::epoll_wait(epoll_fd_, events, cap, timeout_ms);
  if (n < 0) {
    NETBATCH_CHECK(errno == EINTR, "epoll_wait failed");
    return 0;  // interrupted: let the caller recheck its stop flag
  }
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(PollResult{events[i].data.u64, FromEpoll(events[i].events)});
  }
  // Saturated result array: grow so the next wake-up drains more per call.
  if (n == cap) scratch_.resize(scratch_.size() * 2);
  return n;
}

}  // namespace netbatch::net

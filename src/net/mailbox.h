// Lock-free MPSC mailbox with an eventfd wake-up, the cross-thread seam of
// the sharded daemon.
//
// Any thread may Post; exactly one thread (the owning event loop) drains.
// Posting pushes onto a Treiber stack with a single CAS and signals the
// eventfd; the consumer registers wake_fd() with its poller, clears the
// eventfd on wake-up, then drains the whole batch in one exchange (the
// stack is reversed on drain, so delivery is FIFO per producer and totally
// ordered per drain batch). Clearing the eventfd *before* draining makes
// the wake-up race-free: a Post that lands after the drain leaves the
// eventfd signaled, so the next poller wait returns immediately.
//
// The queue is intentionally unbounded: producers are event-loop peers
// forwarding protocol frames, and back-pressure is applied upstream by the
// per-session pending-output cap, not here.
#pragma once

#include <sys/eventfd.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace netbatch::net {

template <typename T>
class Mailbox {
 public:
  Mailbox() {
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    NETBATCH_CHECK(wake_fd_ >= 0, "eventfd failed");
  }

  ~Mailbox() {
    Node* node = head_.exchange(nullptr, std::memory_order_acquire);
    while (node != nullptr) {
      Node* next = node->next;
      delete node;
      node = next;
    }
    ::close(wake_fd_);
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  // Thread-safe; wakes the owning loop. Wait-free except for CAS retries
  // under contention.
  void Post(T value) {
    Node* node = new Node{std::move(value), head_.load(std::memory_order_relaxed)};
    while (!head_.compare_exchange_weak(node->next, node,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
    }
    const std::uint64_t one = 1;
    // The eventfd counter saturates at 2^64-2; a failed write means the
    // loop is already guaranteed to wake.
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }

  // Consumer only: clears the wake signal. Call when the poller reports
  // wake_fd() readable, before Drain.
  void ClearWake() {
    std::uint64_t count = 0;
    [[maybe_unused]] const ssize_t n =
        ::read(wake_fd_, &count, sizeof(count));
  }

  // Consumer only: appends every posted message to `out` in FIFO order.
  void Drain(std::vector<T>& out) {
    Node* node = head_.exchange(nullptr, std::memory_order_acquire);
    // The stack yields newest-first; reverse in place for FIFO delivery.
    Node* reversed = nullptr;
    while (node != nullptr) {
      Node* next = node->next;
      node->next = reversed;
      reversed = node;
      node = next;
    }
    while (reversed != nullptr) {
      out.push_back(std::move(reversed->value));
      Node* done = reversed;
      reversed = reversed->next;
      delete done;
    }
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

  // Register with the owning loop's poller (read interest).
  int wake_fd() const { return wake_fd_; }

 private:
  struct Node {
    T value;
    Node* next;
  };

  std::atomic<Node*> head_{nullptr};
  int wake_fd_ = -1;
};

}  // namespace netbatch::net

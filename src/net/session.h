// One accepted connection in the daemon's event loop.
//
// A Session owns its fd and the unsent-output buffer that makes writes
// nonblocking-safe: Write() pushes straight to the socket and queues the
// remainder on EAGAIN or partial send, FlushPending() drains the queue when
// the poller reports writability. Reads hand raw bytes to the caller, which
// feeds them to a protocol FrameDecoder (service/protocol.h) — the session
// is deliberately framing-agnostic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace netbatch::net {

class Session {
 public:
  explicit Session(int fd) : fd_(fd) {}
  ~Session();
  Session(Session&& other) noexcept;
  Session& operator=(Session&&) = delete;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int fd() const { return fd_; }

  enum class IoStatus {
    kOk,        // made progress (or had nothing to do)
    kClosed,    // orderly EOF from the peer
    kError,     // connection reset / unrecoverable errno
    kOverflow,  // pending output exceeded max_pending (slow reader)
  };

  // Reads whatever the socket has into `buf` (appending), up to `max_bytes`
  // per call. Returns kOk when the socket is drained (EAGAIN), kClosed on
  // EOF with no buffered input remaining to process after this call.
  IoStatus Read(std::vector<std::uint8_t>& buf,
                std::size_t max_bytes = 1 << 16);

  // Queues `size` bytes for the peer, writing as much as the socket accepts
  // immediately. Returns kError when the connection is gone, kOverflow when
  // the unsent queue would exceed max_pending — a reader too slow (or too
  // stalled) to keep up with the responses it keeps requesting must be
  // dropped, not allowed to grow the daemon's heap without bound.
  IoStatus Write(const void* data, std::size_t size);

  // Queues `size` bytes without touching the socket — the batching half of
  // Write. The caller coalesces a whole event-loop round of responses and
  // drains them with one FlushPending() per session (the daemon flushes its
  // WAL in between, which is what makes acks-after-log cheap). Returns
  // kOverflow exactly as Write does; never kError (no I/O happens here).
  IoStatus QueueWrite(const void* data, std::size_t size);

  // Caps the unsent-output queue; 0 means unlimited (the default for
  // client-side use, where the peer is trusted).
  void set_max_pending(std::size_t bytes) { max_pending_ = bytes; }

  // Drains the unsent-output queue; call when the poller reports POLLOUT.
  IoStatus FlushPending();

  bool wants_write() const { return pending_head_ < pending_.size(); }
  std::size_t pending_bytes() const { return pending_.size() - pending_head_; }

 private:
  int fd_;
  // Unsent output. Consumed from pending_head_ forward; compacted once the
  // head clears half the buffer so a slow reader cannot pin stale bytes.
  std::vector<std::uint8_t> pending_;
  std::size_t pending_head_ = 0;
  std::size_t max_pending_ = 0;  // 0 = unlimited
};

}  // namespace netbatch::net

#include "net/socket.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace netbatch::net {

namespace {

// Fills a sockaddr_un for `path`, aborting if the path does not fit — a
// truncated socket path would silently bind somewhere else.
sockaddr_un MakeAddress(const std::string& path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  NETBATCH_CHECK(path.size() < sizeof(addr.sun_path),
                 "unix socket path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int ListenUnix(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  NETBATCH_CHECK(fd >= 0, "socket(AF_UNIX) failed");
  // A previous daemon instance (or unclean shutdown) may have left the
  // socket file behind; the bind below would fail on it.
  ::unlink(path.c_str());
  const sockaddr_un addr = MakeAddress(path);
  const int bound =
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  NETBATCH_CHECK(bound == 0, "bind on unix socket failed");
  NETBATCH_CHECK(::listen(fd, backlog) == 0, "listen failed");
  SetNonBlocking(fd);
  return fd;
}

int ConnectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  NETBATCH_CHECK(fd >= 0, "socket(AF_UNIX) failed");
  const sockaddr_un addr = MakeAddress(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int AcceptUnix(int listener_fd) {
  const int fd = ::accept4(listener_fd, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return -1;  // EAGAIN (queue drained) or aborted connection
  SetNonBlocking(fd);
  return fd;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  NETBATCH_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  NETBATCH_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "fcntl(F_SETFL, O_NONBLOCK) failed");
}

}  // namespace netbatch::net

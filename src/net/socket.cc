#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace netbatch::net {

namespace {

// Fills a sockaddr_un for `path`, aborting if the path does not fit — a
// truncated socket path would silently bind somewhere else.
sockaddr_un MakeAddress(const std::string& path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  NETBATCH_CHECK(path.size() < sizeof(addr.sun_path),
                 "unix socket path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void SetNoDelay(int fd) {
  const int one = 1;
  // Best-effort: a kernel refusing TCP_NODELAY costs latency, not
  // correctness.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

int ListenUnix(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  NETBATCH_CHECK(fd >= 0, "socket(AF_UNIX) failed");
  // A previous daemon instance (or unclean shutdown) may have left the
  // socket file behind; the bind below would fail on it.
  ::unlink(path.c_str());
  const sockaddr_un addr = MakeAddress(path);
  const int bound =
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  NETBATCH_CHECK(bound == 0, "bind on unix socket failed");
  NETBATCH_CHECK(::listen(fd, backlog) == 0, "listen failed");
  SetNonBlocking(fd);
  return fd;
}

int ConnectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  NETBATCH_CHECK(fd >= 0, "socket(AF_UNIX) failed");
  const sockaddr_un addr = MakeAddress(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int AcceptUnix(int listener_fd) {
  const int fd = ::accept4(listener_fd, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return -1;  // EAGAIN (queue drained) or aborted connection
  SetNonBlocking(fd);
  return fd;
}

int ListenTcp(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  NETBATCH_CHECK(fd >= 0, "socket(AF_INET) failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  const int bound =
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  NETBATCH_CHECK(bound == 0, "bind on tcp port failed");
  NETBATCH_CHECK(::listen(fd, backlog) == 0, "listen failed");
  SetNonBlocking(fd);
  return fd;
}

std::uint16_t BoundTcpPort(int listener_fd) {
  sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  NETBATCH_CHECK(::getsockname(listener_fd,
                               reinterpret_cast<sockaddr*>(&addr), &len) == 0,
                 "getsockname failed");
  return ntohs(addr.sin_port);
}

int AcceptTcp(int listener_fd) {
  const int fd = ::accept4(listener_fd, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return -1;
  SetNoDelay(fd);
  SetNonBlocking(fd);
  return fd;
}

int ConnectTcp(const std::string& host, std::uint16_t port) {
  addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &result) != 0) {
    errno = EHOSTUNREACH;
    return -1;
  }
  int fd = -1;
  for (const addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    const int saved = errno;
    ::close(fd);
    fd = -1;
    errno = saved;
  }
  ::freeaddrinfo(result);
  if (fd >= 0) SetNoDelay(fd);
  return fd;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  NETBATCH_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  NETBATCH_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "fcntl(F_SETFL, O_NONBLOCK) failed");
}

}  // namespace netbatch::net

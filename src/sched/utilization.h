// Utilization-based initial scheduler (paper §3.2.2).
//
// "each job entering a virtual pool manager is scheduled to the physical
// pool that currently has the lowest utilization". The paper also remarks
// that exact implementation "requires the virtual pool manager to know the
// current situation in every physical pool at any time, which can be
// impractical ... given the unavoidable propagation latency"; the
// `staleness` option models that latency by only refreshing the utilization
// snapshot every so often (the staleness ablation bench sweeps it).
#pragma once

#include <vector>

#include "cluster/interfaces.h"

namespace netbatch::sched {

class UtilizationScheduler final : public cluster::InitialScheduler {
 public:
  // staleness = 0 reads live utilization on every decision.
  explicit UtilizationScheduler(Ticks staleness = 0);

  // Candidate pools sorted by utilization, least-loaded first
  // (ties broken by pool id for determinism).
  std::vector<PoolId> PoolOrder(const workload::JobSpec& spec,
                                const cluster::ClusterView& view) override;

 private:
  double Utilization(PoolId pool, const cluster::ClusterView& view);
  void RefreshSnapshot(const cluster::ClusterView& view);

  Ticks staleness_;
  Ticks snapshot_time_ = -1;
  std::vector<double> snapshot_;
};

}  // namespace netbatch::sched

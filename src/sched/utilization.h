// Utilization-based initial scheduler (paper §3.2.2).
//
// "each job entering a virtual pool manager is scheduled to the physical
// pool that currently has the lowest utilization". The paper also remarks
// that exact implementation "requires the virtual pool manager to know the
// current situation in every physical pool at any time, which can be
// impractical ... given the unavoidable propagation latency"; the
// `staleness` option models that latency by only refreshing the utilization
// snapshot every so often (the staleness ablation bench sweeps it).
#pragma once

#include <cstring>
#include <vector>

#include "cluster/interfaces.h"

namespace netbatch::sched {

class UtilizationScheduler final : public cluster::InitialScheduler {
 public:
  // staleness = 0 reads live utilization on every decision.
  explicit UtilizationScheduler(Ticks staleness = 0);

  // Candidate pools sorted by utilization, least-loaded first
  // (ties broken by pool id for determinism).
  std::vector<PoolId> PoolOrder(const workload::JobSpec& spec,
                                const cluster::ClusterView& view) override;

  // Checkpoint/restore: the staleness snapshot cache. A restored daemon
  // with staleness > 0 must keep serving the same cached utilizations
  // until the original refresh deadline, or its decisions would diverge
  // from the uncrashed run. Layout: i64 snapshot_time, u32 pool count,
  // then one IEEE-754 double (as little-endian u64 bits) per pool.
  void ExportState(std::vector<std::uint8_t>& out) const override {
    auto put_u64 = [&out](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
      }
    };
    put_u64(static_cast<std::uint64_t>(snapshot_time_));
    const auto count = static_cast<std::uint32_t>(snapshot_.size());
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(count >> (8 * i)));
    }
    for (const double value : snapshot_) {
      std::uint64_t bits;
      std::memcpy(&bits, &value, 8);
      put_u64(bits);
    }
  }
  bool ImportState(const std::uint8_t* data, std::size_t size) override {
    auto get_u64 = [data](std::size_t at) {
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(data[at + i]) << (8 * i);
      }
      return v;
    };
    if (size < 12) return false;
    std::uint32_t count = 0;
    for (int i = 0; i < 4; ++i) {
      count |= static_cast<std::uint32_t>(data[8 + i]) << (8 * i);
    }
    if (size != 12 + static_cast<std::size_t>(count) * 8) return false;
    snapshot_time_ = static_cast<Ticks>(get_u64(0));
    snapshot_.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t bits = get_u64(12 + static_cast<std::size_t>(i) * 8);
      std::memcpy(&snapshot_[i], &bits, 8);
    }
    return true;
  }

 private:
  double Utilization(PoolId pool, const cluster::ClusterView& view);
  void RefreshSnapshot(const cluster::ClusterView& view);

  Ticks staleness_;
  Ticks snapshot_time_ = -1;
  std::vector<double> snapshot_;
};

}  // namespace netbatch::sched

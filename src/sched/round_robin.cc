#include "sched/round_robin.h"

#include <algorithm>

namespace netbatch::sched {

std::vector<PoolId> CandidatePools(const workload::JobSpec& spec,
                                   const cluster::ClusterView& view) {
  if (!spec.candidate_pools.empty()) return spec.candidate_pools;
  std::vector<PoolId> all;
  all.reserve(view.PoolCount());
  for (std::size_t p = 0; p < view.PoolCount(); ++p) {
    all.emplace_back(static_cast<PoolId::ValueType>(p));
  }
  return all;
}

std::vector<PoolId> RoundRobinScheduler::PoolOrder(
    const workload::JobSpec& spec, const cluster::ClusterView& view) {
  std::vector<PoolId> candidates = CandidatePools(spec, view);
  const std::size_t start = next_++ % candidates.size();
  std::rotate(candidates.begin(),
              candidates.begin() + static_cast<std::ptrdiff_t>(start),
              candidates.end());
  return candidates;
}

}  // namespace netbatch::sched

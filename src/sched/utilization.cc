#include "sched/utilization.h"

#include <algorithm>

#include "common/check.h"
#include "sched/round_robin.h"

namespace netbatch::sched {

UtilizationScheduler::UtilizationScheduler(Ticks staleness)
    : staleness_(staleness) {
  NETBATCH_CHECK(staleness >= 0, "staleness cannot be negative");
}

void UtilizationScheduler::RefreshSnapshot(const cluster::ClusterView& view) {
  snapshot_.resize(view.PoolCount());
  for (std::size_t p = 0; p < snapshot_.size(); ++p) {
    snapshot_[p] = view.PoolUtilization(PoolId(static_cast<PoolId::ValueType>(p)));
  }
  snapshot_time_ = view.Now();
}

double UtilizationScheduler::Utilization(PoolId pool,
                                         const cluster::ClusterView& view) {
  if (staleness_ == 0) return view.PoolUtilization(pool);
  if (snapshot_time_ < 0 || view.Now() - snapshot_time_ >= staleness_) {
    RefreshSnapshot(view);
  }
  return snapshot_[pool.value()];
}

std::vector<PoolId> UtilizationScheduler::PoolOrder(
    const workload::JobSpec& spec, const cluster::ClusterView& view) {
  std::vector<PoolId> candidates = CandidatePools(spec, view);
  // Utilization is compared at 1% granularity (pool monitoring reports
  // percentages, not exact core counts), with per-capacity queue backlog as
  // the tiebreak. Without the tiebreak, every job submitted while all
  // candidates sit at ~100% would pile onto whichever saturated pool is
  // marginally least utilized — usually the smallest, i.e. the slowest to
  // drain.
  struct Key {
    int util_pct;
    double queue_per_core;
    PoolId pool;
    bool operator<(const Key& other) const {
      if (util_pct != other.util_pct) return util_pct < other.util_pct;
      if (queue_per_core != other.queue_per_core) {
        return queue_per_core < other.queue_per_core;
      }
      return pool < other.pool;
    }
  };
  std::vector<Key> keyed;
  keyed.reserve(candidates.size());
  for (PoolId pool : candidates) {
    const double cores = static_cast<double>(view.PoolTotalCores(pool));
    keyed.push_back(Key{
        static_cast<int>(Utilization(pool, view) * 100.0),
        static_cast<double>(view.PoolQueueLength(pool)) / std::max(1.0, cores),
        pool});
  }
  std::sort(keyed.begin(), keyed.end());
  for (std::size_t i = 0; i < keyed.size(); ++i) candidates[i] = keyed[i].pool;
  return candidates;
}

}  // namespace netbatch::sched

// NetBatch's default initial scheduler.
//
// "The default scheduling follows a round-robin fashion" (paper §2.1): the
// virtual pool manager hands successive submissions to successive candidate
// pools; if a pool refuses (no eligible machine), the next one is tried.
#pragma once

#include "cluster/interfaces.h"

namespace netbatch::sched {

class RoundRobinScheduler final : public cluster::InitialScheduler {
 public:
  // Returns the job's candidate pools rotated by a global counter, so
  // successive jobs start at successive pools.
  std::vector<PoolId> PoolOrder(const workload::JobSpec& spec,
                                const cluster::ClusterView& view) override;

  // Checkpoint/restore: the rotation cursor, 8 bytes little-endian.
  void ExportState(std::vector<std::uint8_t>& out) const override {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(next_ >> (8 * i)));
    }
  }
  bool ImportState(const std::uint8_t* data, std::size_t size) override {
    if (size != 8) return false;
    next_ = 0;
    for (int i = 0; i < 8; ++i) {
      next_ |= static_cast<std::uint64_t>(data[i]) << (8 * i);
    }
    return true;
  }

 private:
  std::uint64_t next_ = 0;
};

// Shared helper: a job's candidate pools, expanding "empty = every pool".
std::vector<PoolId> CandidatePools(const workload::JobSpec& spec,
                                   const cluster::ClusterView& view);

}  // namespace netbatch::sched

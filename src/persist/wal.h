// Framed, CRC32C-protected write-ahead log for netbatchd shards.
//
// Each shard appends one record per state-mutating request *after* applying
// it in memory and *before* acking it, so every acked mutation is on disk
// (in the page cache at minimum; fsync batching below decides when it is
// on the platter). Records carry a monotonically increasing LSN; recovery
// replays the tail above the newest snapshot and stops permanently at the
// first torn or corrupt record — everything before that point was acked
// durably, everything after it never was.
//
// On-disk layout: a directory of segment files `wal-<016x>.log`, the hex
// being the first LSN the segment holds. A record is a 24-byte header
// followed by the payload:
//
//   u32 magic   'WAL1' (0x314c4157 little-endian)
//   u32 payload_len
//   u64 lsn
//   u16 type
//   u16 pad     (zero)
//   u32 crc32c  over [lsn | type | pad | payload]
//
// All integers are little-endian. The CRC covers the LSN and type, so a
// record spliced from another position (or another shard's log) is rejected
// even when its payload bytes are intact.
//
// Group commit: `Append` only encodes into a userspace buffer; `Flush`
// hands the whole batch to the kernel with one write() and then decides
// whether an fdatasync is due — after `fsync_every` unsynced records,
// or `fsync_interval_ms` since the last sync, whichever fires first
// (either trigger can be disabled with 0; both 0 = page cache only).
// The serving loop flushes before any ack leaves the process, so an
// acked mutation is always at least in the page cache: process crashes
// (SIGKILL) lose nothing regardless of the sync policy, and the policy
// only sizes the power-loss window. `Sync()` forces both the flush and
// the fdatasync; checkpoint and drain call it so a snapshot never refers
// to WAL state that could outrun it after a power cut.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace netbatch::persist {

// Hard cap on a single record's payload; anything larger in a scan is
// treated as corruption rather than an allocation request.
inline constexpr std::uint32_t kMaxWalPayloadBytes = 16u << 20;

inline constexpr std::uint32_t kWalMagic = 0x314c4157u;  // "WAL1"
inline constexpr std::size_t kWalHeaderBytes = 24;

struct WalOptions {
  // First LSN this writer will assign (recovery passes last valid + 1).
  std::uint64_t next_lsn = 1;
  // Record trigger: a Flush issues fdatasync once this many records are
  // unsynced (1 = sync on every flush, 0 = no record trigger). Unsynced
  // records still survive process crashes; only power loss can lose them.
  std::uint32_t fsync_every = 0;
  // Time trigger: a Flush issues fdatasync when this many milliseconds
  // have passed since the last sync (0 = no time trigger). The default
  // bounds the power-loss window to ~250ms of acked work at a cost of a
  // few fdatasyncs per second instead of one per record batch.
  std::uint32_t fsync_interval_ms = 250;
};

struct WalRecord {
  std::uint64_t lsn = 0;
  std::uint16_t type = 0;
  std::vector<std::uint8_t> payload;
};

// Append-only writer over a shard's WAL directory. Opening truncates any
// torn bytes past `next_lsn - 1` (they were never acked) and starts a
// fresh segment at `next_lsn`.
class WalWriter {
 public:
  // Opens `dir` (which must exist) for appending. Deletes segments that
  // start at or above `options.next_lsn`, physically truncates a torn tail
  // in the newest surviving segment, and creates segment
  // `wal-<next_lsn>.log`. Returns nullptr and fills `error` on I/O failure.
  static std::unique_ptr<WalWriter> Open(const std::string& dir,
                                         const WalOptions& options,
                                         std::string* error);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Encodes one record into the userspace batch buffer and returns its
  // LSN. The record reaches the kernel on the next Flush()/Sync() — the
  // caller must flush before acking it.
  std::uint64_t Append(std::uint16_t type,
                       const std::vector<std::uint8_t>& payload);

  // Writes every buffered record with a single write(), then issues an
  // fdatasync if either group-commit trigger is due. Crashes the process
  // on I/O error — a daemon that cannot log cannot safely ack.
  void Flush();

  // Flush() plus an unconditional fdatasync of anything still unsynced.
  void Sync();

  // True when Append()ed records have not reached the kernel yet.
  bool has_buffered() const { return !buffer_.empty(); }

  // Called right after a snapshot at `snapshot_lsn` (== last_lsn()) is
  // durably on disk: starts a fresh segment at next_lsn() and deletes every
  // older segment — all their records are covered by the snapshot.
  void StartSegmentAndTruncate(std::uint64_t snapshot_lsn);

  std::uint64_t next_lsn() const { return next_lsn_; }
  std::uint64_t last_lsn() const { return next_lsn_ - 1; }

  // Lifetime totals for the daemon.wal_bytes / daemon.wal_records gauges.
  std::uint64_t bytes_appended() const { return bytes_appended_; }
  std::uint64_t records_appended() const { return records_appended_; }

 private:
  WalWriter(std::string dir, int fd, const WalOptions& options);

  void OpenSegment();
  void DoSync();

  std::string dir_;
  int fd_ = -1;
  std::uint64_t next_lsn_ = 1;
  std::uint32_t fsync_every_ = 0;
  std::uint32_t fsync_interval_ms_ = 250;
  std::uint32_t unsynced_ = 0;
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t records_appended_ = 0;
  std::uint64_t buffered_records_ = 0;
  std::vector<std::uint8_t> buffer_;
  std::chrono::steady_clock::time_point last_sync_;
};

struct WalScanResult {
  // Valid records with lsn > after_lsn, in LSN order.
  std::vector<WalRecord> records;
  // One past the last valid LSN seen (1 when the log is empty).
  std::uint64_t next_lsn = 1;
  // True when the scan stopped at a torn/corrupt record; `reason` says why.
  bool truncated = false;
  std::string reason;
};

// Reads every segment in `dir` in LSN order, validating framing, CRC and
// LSN continuity. Stops permanently at the first anomaly: later segments
// are NOT read (their records were never ackable once the chain broke).
// Records with lsn <= after_lsn are validated but not returned.
WalScanResult ScanWal(const std::string& dir, std::uint64_t after_lsn);

// Segment files in `dir` sorted by start LSN, as (start_lsn, path) pairs.
std::vector<std::pair<std::uint64_t, std::string>> ListWalSegments(
    const std::string& dir);

}  // namespace netbatch::persist

// Shard recovery: newest valid snapshot + the WAL tail above it.
//
// BuildRecoveryPlan is pure inspection — it reads the shard's data
// directory and returns what a restart should do; the shard loop owns the
// actual state reconstruction (import the snapshot payload, replay the tail
// records in LSN order, re-arm timers). The plan stops at the first torn or
// corrupt WAL record: by the append-before-ack contract nothing after that
// point was ever acknowledged to a client.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "persist/snapshot.h"
#include "persist/wal.h"

namespace netbatch::persist {

struct RecoveryPlan {
  // Newest snapshot that passed validation; nullopt = cold start (replay
  // the WAL from the beginning).
  std::optional<SnapshotData> snapshot;
  // WAL records to replay, strictly above the snapshot's LSN, contiguous
  // and in order.
  std::vector<WalRecord> tail;
  // Where the reopened WAL writer continues: last recovered LSN + 1.
  std::uint64_t next_lsn = 1;
  // True when the WAL had a torn/corrupt record (or a gap after a
  // fallen-back snapshot); `reason` is human-readable for the log line.
  bool truncated = false;
  std::string reason;
};

RecoveryPlan BuildRecoveryPlan(const std::string& dir);

}  // namespace netbatch::persist

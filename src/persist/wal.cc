#include "persist/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/check.h"
#include "common/crc32c.h"
#include "common/log.h"

namespace netbatch::persist {

namespace {

void PutU16(std::uint16_t v, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void PutU32(std::uint32_t v, std::uint8_t* out) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void PutU64(std::uint64_t v, std::uint8_t* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t GetU16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t GetU32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

std::uint64_t GetU64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

std::string SegmentPath(const std::string& dir, std::uint64_t start_lsn) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%016llx.log",
                static_cast<unsigned long long>(start_lsn));
  return dir + "/" + name;
}

// Parses "wal-<016x>.log"; returns false for anything else in the dir.
bool ParseSegmentName(const std::string& name, std::uint64_t& start_lsn) {
  if (name.size() != 4 + 16 + 4) return false;
  if (name.compare(0, 4, "wal-") != 0) return false;
  if (name.compare(20, 4, ".log") != 0) return false;
  std::uint64_t lsn = 0;
  for (std::size_t i = 4; i < 20; ++i) {
    const char c = name[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    lsn = (lsn << 4) | digit;
  }
  start_lsn = lsn;
  return true;
}

void WriteAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0 && errno == EINTR) continue;
    NETBATCH_CHECK(n > 0, "WAL write failed: " +
                              std::string(std::strerror(errno)));
    written += static_cast<std::size_t>(n);
  }
}

void FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

// One record parsed from a segment. `valid_end` advances past each accepted
// record so callers know where the valid prefix of the file ends.
struct SegmentCursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t offset = 0;
};

enum class ParseStatus { kRecord, kEndOfFile, kCorrupt };

ParseStatus ParseRecord(SegmentCursor& cursor, WalRecord& out,
                        std::string& reason) {
  if (cursor.offset == cursor.size) return ParseStatus::kEndOfFile;
  if (cursor.size - cursor.offset < kWalHeaderBytes) {
    reason = "torn record header";
    return ParseStatus::kCorrupt;
  }
  const std::uint8_t* h = cursor.data + cursor.offset;
  if (GetU32(h) != kWalMagic) {
    reason = "bad record magic";
    return ParseStatus::kCorrupt;
  }
  const std::uint32_t payload_len = GetU32(h + 4);
  if (payload_len > kMaxWalPayloadBytes) {
    reason = "oversized record payload";
    return ParseStatus::kCorrupt;
  }
  if (cursor.size - cursor.offset - kWalHeaderBytes < payload_len) {
    reason = "torn record payload";
    return ParseStatus::kCorrupt;
  }
  const std::uint64_t lsn = GetU64(h + 8);
  const std::uint16_t type = GetU16(h + 16);
  const std::uint16_t pad = GetU16(h + 18);
  const std::uint32_t stored_crc = GetU32(h + 20);
  // CRC covers [lsn | type | pad | payload] — the 12 header bytes starting
  // at the LSN, then the payload.
  std::uint32_t crc = ExtendCrc32c(0, h + 8, 12);
  crc = ExtendCrc32c(crc, h + kWalHeaderBytes, payload_len);
  if (pad != 0 || crc != stored_crc) {
    reason = "record checksum mismatch";
    return ParseStatus::kCorrupt;
  }
  out.lsn = lsn;
  out.type = type;
  out.payload.assign(h + kWalHeaderBytes,
                     h + kWalHeaderBytes + payload_len);
  cursor.offset += kWalHeaderBytes + payload_len;
  return ParseStatus::kRecord;
}

bool ReadFile(const std::string& path, std::vector<std::uint8_t>& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out.clear();
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return true;
}

}  // namespace

std::vector<std::pair<std::uint64_t, std::string>> ListWalSegments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint64_t start_lsn = 0;
    if (ParseSegmentName(entry.path().filename().string(), start_lsn)) {
      segments.emplace_back(start_lsn, entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

WalWriter::WalWriter(std::string dir, int fd, const WalOptions& options)
    : dir_(std::move(dir)),
      fd_(fd),
      next_lsn_(options.next_lsn),
      fsync_every_(options.fsync_every),
      fsync_interval_ms_(options.fsync_interval_ms),
      last_sync_(std::chrono::steady_clock::now()) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (!buffer_.empty()) WriteAll(fd_, buffer_.data(), buffer_.size());
    if (unsynced_ > 0 || buffered_records_ > 0) ::fdatasync(fd_);
    ::close(fd_);
  }
}

std::unique_ptr<WalWriter> WalWriter::Open(const std::string& dir,
                                           const WalOptions& options,
                                           std::string* error) {
  NETBATCH_CHECK(options.next_lsn >= 1, "WAL LSNs start at 1");
  const auto segments = ListWalSegments(dir);

  // Segments that start at or past next_lsn hold only records recovery
  // rejected (torn tail, or past a corruption point) — remove them so a
  // later scan cannot resurrect them.
  std::string newest_keep;
  for (const auto& [start_lsn, path] : segments) {
    if (start_lsn >= options.next_lsn) {
      ::unlink(path.c_str());
    } else {
      newest_keep = path;  // segments are sorted: last assignment wins
    }
  }

  // Physically truncate a torn tail in the newest surviving segment: parse
  // its valid prefix up to next_lsn - 1 and cut everything after it.
  if (!newest_keep.empty()) {
    std::vector<std::uint8_t> bytes;
    if (!ReadFile(newest_keep, bytes)) {
      if (error) *error = "cannot read WAL segment " + newest_keep;
      return nullptr;
    }
    SegmentCursor cursor{bytes.data(), bytes.size()};
    std::size_t valid_end = 0;
    WalRecord record;
    std::string reason;
    while (ParseRecord(cursor, record, reason) == ParseStatus::kRecord &&
           record.lsn < options.next_lsn) {
      valid_end = cursor.offset;
    }
    if (valid_end < bytes.size()) {
      if (::truncate(newest_keep.c_str(), static_cast<off_t>(valid_end)) !=
          0) {
        if (error) *error = "cannot truncate WAL segment " + newest_keep;
        return nullptr;
      }
      // The truncation itself must be durable before any new segment takes
      // acked records: if power is lost with the shrunken length still only
      // in memory, the torn bytes resurrect, the next scan stops at them,
      // and every durably-synced record in newer segments is discarded.
      const int tfd = ::open(newest_keep.c_str(), O_WRONLY);
      const bool trunc_synced = tfd >= 0 && ::fsync(tfd) == 0;
      if (tfd >= 0) ::close(tfd);
      if (!trunc_synced) {
        if (error) {
          *error = "cannot fsync truncated WAL segment " + newest_keep;
        }
        return nullptr;
      }
    }
  }

  const std::string path = SegmentPath(dir, options.next_lsn);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error) {
      *error = "cannot create WAL segment " + path + ": " +
               std::strerror(errno);
    }
    return nullptr;
  }
  FsyncDir(dir);
  return std::unique_ptr<WalWriter>(new WalWriter(dir, fd, options));
}

std::uint64_t WalWriter::Append(std::uint16_t type,
                                const std::vector<std::uint8_t>& payload) {
  NETBATCH_CHECK(payload.size() <= kMaxWalPayloadBytes,
                 "WAL payload exceeds the record size cap");
  const std::uint64_t lsn = next_lsn_++;
  const std::size_t base = buffer_.size();
  buffer_.resize(base + kWalHeaderBytes + payload.size());
  std::uint8_t* h = buffer_.data() + base;
  PutU32(kWalMagic, h);
  PutU32(static_cast<std::uint32_t>(payload.size()), h + 4);
  PutU64(lsn, h + 8);
  PutU16(type, h + 16);
  PutU16(0, h + 18);
  if (!payload.empty()) {
    std::memcpy(h + kWalHeaderBytes, payload.data(), payload.size());
  }
  std::uint32_t crc = ExtendCrc32c(0, h + 8, 12);
  crc = ExtendCrc32c(crc, payload.data(), payload.size());
  PutU32(crc, h + 20);
  bytes_appended_ += kWalHeaderBytes + payload.size();
  ++records_appended_;
  ++buffered_records_;
  return lsn;
}

void WalWriter::Flush() {
  if (!buffer_.empty()) {
    WriteAll(fd_, buffer_.data(), buffer_.size());
    buffer_.clear();
    unsynced_ += static_cast<std::uint32_t>(buffered_records_);
    buffered_records_ = 0;
  }
  if (unsynced_ == 0) return;
  if (fsync_every_ != 0 && unsynced_ >= fsync_every_) {
    DoSync();
    return;
  }
  if (fsync_interval_ms_ != 0 &&
      std::chrono::steady_clock::now() - last_sync_ >=
          std::chrono::milliseconds(fsync_interval_ms_)) {
    DoSync();
  }
}

void WalWriter::Sync() {
  if (!buffer_.empty()) {
    WriteAll(fd_, buffer_.data(), buffer_.size());
    buffer_.clear();
    unsynced_ += static_cast<std::uint32_t>(buffered_records_);
    buffered_records_ = 0;
  }
  if (unsynced_ == 0) return;
  DoSync();
}

void WalWriter::DoSync() {
  NETBATCH_CHECK(::fdatasync(fd_) == 0,
                 "WAL fdatasync failed: " + std::string(std::strerror(errno)));
  unsynced_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
}

void WalWriter::StartSegmentAndTruncate(std::uint64_t snapshot_lsn) {
  NETBATCH_CHECK(snapshot_lsn == last_lsn(),
                 "snapshot must cover the whole WAL before truncation");
  Sync();
  ::close(fd_);
  fd_ = -1;
  OpenSegment();
  // Every older segment only holds records <= snapshot_lsn — covered.
  for (const auto& [start_lsn, path] : ListWalSegments(dir_)) {
    if (start_lsn < next_lsn_) ::unlink(path.c_str());
  }
  FsyncDir(dir_);
}

void WalWriter::OpenSegment() {
  const std::string path = SegmentPath(dir_, next_lsn_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  NETBATCH_CHECK(fd_ >= 0, "cannot create WAL segment " + path + ": " +
                               std::strerror(errno));
  unsynced_ = 0;
}

WalScanResult ScanWal(const std::string& dir, std::uint64_t after_lsn) {
  WalScanResult result;
  result.next_lsn = after_lsn + 1;
  std::uint64_t expected = 0;  // 0 = first record defines the chain start

  for (const auto& [start_lsn, path] : ListWalSegments(dir)) {
    std::vector<std::uint8_t> bytes;
    if (!ReadFile(path, bytes)) {
      result.truncated = true;
      result.reason = "unreadable segment " + path;
      return result;
    }
    if (bytes.empty()) continue;  // fresh segment, nothing appended yet
    SegmentCursor cursor{bytes.data(), bytes.size()};
    WalRecord record;
    std::string reason;
    bool first_in_segment = true;
    for (;;) {
      const ParseStatus status = ParseRecord(cursor, record, reason);
      if (status == ParseStatus::kEndOfFile) break;
      if (status == ParseStatus::kCorrupt) {
        result.truncated = true;
        result.reason = reason + " in " + path;
        return result;
      }
      if (first_in_segment && record.lsn != start_lsn) {
        result.truncated = true;
        result.reason = "segment name / first LSN mismatch in " + path;
        return result;
      }
      first_in_segment = false;
      if (expected != 0 && record.lsn != expected) {
        result.truncated = true;
        result.reason = "LSN discontinuity in " + path;
        return result;
      }
      expected = record.lsn + 1;
      if (record.lsn > after_lsn) {
        result.records.push_back(std::move(record));
        record = WalRecord{};
      }
      result.next_lsn = expected;
    }
  }
  if (result.next_lsn < after_lsn + 1) result.next_lsn = after_lsn + 1;
  return result;
}

}  // namespace netbatch::persist

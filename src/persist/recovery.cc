#include "persist/recovery.h"

#include <algorithm>
#include <utility>

namespace netbatch::persist {

RecoveryPlan BuildRecoveryPlan(const std::string& dir) {
  RecoveryPlan plan;
  plan.snapshot = LoadNewestSnapshot(dir);
  const std::uint64_t snapshot_lsn = plan.snapshot ? plan.snapshot->lsn : 0;

  WalScanResult scan = ScanWal(dir, snapshot_lsn);
  plan.truncated = scan.truncated;
  plan.reason = std::move(scan.reason);
  plan.tail = std::move(scan.records);
  plan.next_lsn = std::max(scan.next_lsn, snapshot_lsn + 1);

  // If the newest snapshot was corrupt and we fell back to an older one,
  // the WAL may have been truncated past the older snapshot's LSN already —
  // the tail then starts with a gap and cannot be replayed against it.
  if (!plan.tail.empty() && plan.tail.front().lsn != snapshot_lsn + 1) {
    plan.truncated = true;
    plan.reason = "WAL gap after snapshot; dropping unreachable tail";
    plan.next_lsn = snapshot_lsn + 1;
    plan.tail.clear();
  }
  return plan;
}

}  // namespace netbatch::persist

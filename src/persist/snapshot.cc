#include "persist/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/crc32c.h"

namespace netbatch::persist {

namespace {

void PutU32(std::uint32_t v, std::uint8_t* out) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void PutU64(std::uint64_t v, std::uint8_t* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t GetU32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

std::uint64_t GetU64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

std::string SnapshotPath(const std::string& dir, std::uint64_t lsn) {
  char name[32];
  std::snprintf(name, sizeof(name), "snap-%016llx.nbs",
                static_cast<unsigned long long>(lsn));
  return dir + "/" + name;
}

bool ParseSnapshotName(const std::string& name, std::uint64_t& lsn) {
  if (name.size() != 5 + 16 + 4) return false;
  if (name.compare(0, 5, "snap-") != 0) return false;
  if (name.compare(21, 4, ".nbs") != 0) return false;
  std::uint64_t value = 0;
  for (std::size_t i = 5; i < 21; ++i) {
    const char c = name[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  lsn = value;
  return true;
}

// Snapshot files in `dir`, newest (highest LSN) first.
std::vector<std::pair<std::uint64_t, std::string>> ListSnapshots(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> snaps;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint64_t lsn = 0;
    if (ParseSnapshotName(entry.path().filename().string(), lsn)) {
      snaps.emplace_back(lsn, entry.path().string());
    }
  }
  std::sort(snaps.begin(), snaps.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return snaps;
}

bool WriteAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

bool WriteSnapshot(const std::string& dir, const SnapshotData& snap,
                   std::string* error) {
  const std::string final_path = SnapshotPath(dir, snap.lsn);
  const std::string tmp_path = final_path + ".tmp";

  std::uint8_t header[kSnapshotHeaderBytes];
  PutU32(kSnapshotMagic, header);
  PutU32(kSnapshotVersion, header + 4);
  PutU64(snap.lsn, header + 8);
  PutU64(snap.payload.size(), header + 16);
  PutU32(Crc32c(snap.payload.data(), snap.payload.size()), header + 24);

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error) {
      *error = "cannot create " + tmp_path + ": " + std::strerror(errno);
    }
    return false;
  }
  const bool wrote = WriteAll(fd, header, sizeof(header)) &&
                     (snap.payload.empty() ||
                      WriteAll(fd, snap.payload.data(), snap.payload.size()));
  const bool synced = wrote && ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    if (error) *error = "cannot write " + tmp_path;
    ::unlink(tmp_path.c_str());
    return false;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    if (error) {
      *error = "cannot rename " + tmp_path + ": " + std::strerror(errno);
    }
    ::unlink(tmp_path.c_str());
    return false;
  }
  FsyncDir(dir);
  return true;
}

std::optional<SnapshotData> LoadNewestSnapshot(const std::string& dir) {
  for (const auto& [lsn, path] : ListSnapshots(dir)) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) continue;
    std::uint8_t header[kSnapshotHeaderBytes];
    std::size_t got = 0;
    while (got < sizeof(header)) {
      const ssize_t n = ::read(fd, header + got, sizeof(header) - got);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    if (got != sizeof(header) || GetU32(header) != kSnapshotMagic ||
        GetU32(header + 4) != kSnapshotVersion || GetU64(header + 8) != lsn) {
      ::close(fd);
      continue;  // torn or corrupt header: never load, try the next-newest
    }
    const std::uint64_t payload_len = GetU64(header + 16);
    const std::uint32_t stored_crc = GetU32(header + 24);
    // The length field is not covered by the payload CRC, so validate it
    // against the file's actual size before trusting it with an allocation:
    // a corrupted length must read as "corrupt snapshot, try the next one",
    // not as a near-2^64 resize() that kills recovery with bad_alloc.
    struct stat st;
    if (::fstat(fd, &st) != 0 ||
        static_cast<std::uint64_t>(st.st_size) !=
            kSnapshotHeaderBytes + payload_len) {
      ::close(fd);
      continue;
    }
    SnapshotData snap;
    snap.lsn = lsn;
    snap.payload.resize(payload_len);
    std::size_t read = 0;
    bool ok = true;
    while (read < payload_len) {
      const ssize_t n =
          ::read(fd, snap.payload.data() + read, payload_len - read);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ok = false;  // shorter than its header claims: torn write
        break;
      }
      read += static_cast<std::size_t>(n);
    }
    ::close(fd);
    if (!ok) continue;
    if (Crc32c(snap.payload.data(), snap.payload.size()) != stored_crc) {
      continue;  // bit rot: never load a payload that fails its checksum
    }
    return snap;
  }
  return std::nullopt;
}

void DeleteSnapshotsBelow(const std::string& dir, std::uint64_t keep_lsn) {
  for (const auto& [lsn, path] : ListSnapshots(dir)) {
    if (lsn < keep_lsn) ::unlink(path.c_str());
  }
}

}  // namespace netbatch::persist

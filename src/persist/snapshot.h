// Atomic checkpoint files for netbatchd shard state.
//
// A snapshot is an opaque payload (the shard's serialized SchedulerCore
// state — this layer does not interpret it) stamped with the LSN of the
// last WAL record it covers. Files are named `snap-<016x lsn>.nbs` and
// written atomically: payload to a temp file, fsync, rename into place,
// fsync the directory — a crash mid-write leaves either the old snapshot
// set or the new one, never a half-written file that loads.
//
// File layout (little-endian):
//   u32 magic       'NBS1' (0x3153424e)
//   u32 version     (1)
//   u64 lsn
//   u64 payload_len
//   u32 crc32c      over the payload
//   payload bytes
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace netbatch::persist {

inline constexpr std::uint32_t kSnapshotMagic = 0x3153424eu;  // "NBS1"
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::size_t kSnapshotHeaderBytes = 28;

struct SnapshotData {
  // LSN of the last WAL record the payload reflects (0 = empty log).
  std::uint64_t lsn = 0;
  std::vector<std::uint8_t> payload;
};

// Writes `snap` into `dir` atomically. Returns false and fills `error` on
// I/O failure (the temp file is cleaned up).
bool WriteSnapshot(const std::string& dir, const SnapshotData& snap,
                   std::string* error);

// Loads the newest snapshot whose header, length and checksum all verify.
// Corrupt or torn snapshot files are skipped (never loaded), falling back
// to the next-newest; nullopt when none survives.
std::optional<SnapshotData> LoadNewestSnapshot(const std::string& dir);

// Deletes every snapshot file with lsn < keep_lsn. Called after a new
// checkpoint lands so the directory holds one snapshot plus the WAL tail.
void DeleteSnapshotsBelow(const std::string& dir, std::uint64_t keep_lsn);

}  // namespace netbatch::persist

// Scenario presets: cluster topology + workload matching the paper's setup.
//
// The paper's simulator "is configured to emulate 20 physical pools, each of
// which contains hundreds to tens of thousands of machines with varying CPU
// speed and memory" (§3.1), replaying a trace whose overall utilization
// averages ~40% (§2.3) with bursty, pool-affine high-priority arrivals.
//
// Every preset takes a `scale` in (0, 1]: machine counts and arrival rates
// scale together, preserving utilization and burst structure while letting
// tests and CI run small. scale = 1 approximates the paper's one-week
// volume (~250k jobs).
#pragma once

#include <cstdint>

#include "cluster/config.h"
#include "workload/generator.h"

namespace netbatch::runner {

struct Scenario {
  cluster::ClusterConfig cluster;
  workload::GeneratorConfig workload;
};

// One busy week at ~40% average utilization (Tables 1, Fig. 3).
Scenario NormalLoadScenario(double scale = 1.0, std::uint64_t seed = 42);

// The same trace on half the cores — the paper's high-load setup
// (Tables 2-5): "reduce the number of compute cores available to each pool
// by half while keeping the submitted job trace unchanged".
Scenario HighLoadScenario(double scale = 1.0, std::uint64_t seed = 42);

// A trace engineered for a ~14% suspend rate (§3.2.1 "High Suspension
// Scenario"): heavier, longer, more concentrated high-priority bursts.
Scenario HighSuspensionScenario(double scale = 1.0, std::uint64_t seed = 42);

// A year-long (500k simulated minutes) trace for the Fig. 2 CDF and the
// Fig. 4 utilization/suspension series. Use a small scale; the default
// bench runs at YearLongDefaultScale().
Scenario YearLongScenario(double scale = 0.05, std::uint64_t seed = 42);

// Paper-scale pools ("tens of thousands of machines", §2.1): 4 pools of
// 10k machines each at scale 1, three busy hours at ~55% utilization with
// two owner burst streams forcing preemption on pools 0/1. This is the
// placement-engine stress preset (bench_placement, the CI placement
// determinism smoke): per-event cost is dominated by pool scheduling, so
// anything linear in machine count shows up immediately.
Scenario LargePoolScenario(double scale = 1.0, std::uint64_t seed = 42);

// Builds a runnable scenario around an arbitrary (typically calibrated —
// see calib/fit.h) workload config: `scale` multiplies the arrival rates,
// and the cluster is sized so the scaled offered load lands at
// `target_utilization` across `workload.num_pools` uniform 8-core pools.
// Pools targeted by a burst stream are owned by that stream's business
// group, mirroring the base presets' ownership story (paper §2.2).
Scenario ScenarioFromWorkload(workload::GeneratorConfig workload,
                              double scale = 1.0,
                              double target_utilization = 0.40);

// Scale knobs honoring the NB_SCALE environment variable so users can dial
// fidelity vs. runtime without recompiling (NB_SCALE=1 reproduces full
// paper volume).
double DefaultScale();          // week scenarios; default 0.25
double YearLongDefaultScale();  // year scenario;  default 0.08

// Builds a pool-to-pool transfer-delay matrix from the scenario's site
// structure (paper §5 inter-site rescheduling): moving a job between pools
// that share a site costs `local`, anything else costs `cross_site`
// (wide-area data/binary transfer).
std::vector<std::vector<Ticks>> BuildTransferMatrix(const Scenario& scenario,
                                                    Ticks local,
                                                    Ticks cross_site);

}  // namespace netbatch::runner

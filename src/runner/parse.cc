#include "runner/parse.h"

#include <fstream>
#include <utility>

#include "common/check.h"
#include "runner/config_file.h"

namespace netbatch::runner {

const char* ToString(InitialSchedulerKind kind) {
  switch (kind) {
    case InitialSchedulerKind::kRoundRobin:
      return "round-robin";
    case InitialSchedulerKind::kUtilization:
      return "utilization-based";
  }
  return "?";
}

const char* ToShortString(InitialSchedulerKind kind) {
  switch (kind) {
    case InitialSchedulerKind::kRoundRobin:
      return "rr";
    case InitialSchedulerKind::kUtilization:
      return "util";
  }
  return "?";
}

std::optional<InitialSchedulerKind> ParseInitialSchedulerKind(
    std::string_view name) {
  for (const InitialSchedulerKind kind :
       {InitialSchedulerKind::kRoundRobin,
        InitialSchedulerKind::kUtilization}) {
    if (name == ToString(kind) || name == ToShortString(kind)) return kind;
  }
  return std::nullopt;
}

Scenario ResolveScenario(const std::string& name, double scale,
                         std::uint64_t seed) {
  if (name == "normal") return NormalLoadScenario(scale, seed);
  if (name == "high") return HighLoadScenario(scale, seed);
  if (name == "highsusp") return HighSuspensionScenario(scale, seed);
  if (name == "year") return YearLongScenario(scale, seed);
  if (name == "bigpool") return LargePoolScenario(scale, seed);
  std::ifstream probe(name);
  NETBATCH_CHECK(static_cast<bool>(probe),
                 "unknown scenario '" + name +
                     "' (expected normal | high | highsusp | year | bigpool, "
                     "or a workload preset file path)");
  workload::GeneratorConfig workload = LoadWorkloadPreset(probe);
  workload.seed = seed;
  return ScenarioFromWorkload(std::move(workload), scale);
}

}  // namespace netbatch::runner

// The experiment API: specs and the parallel, deterministic sweep engine.
//
// A paper artifact is never one simulation — it is a *set* of runs
// (scenario x scheduler x policy x seed) whose results are compared or
// averaged. This header makes that set the unit of work:
//
//   * ExperimentSpec — one fully described run, with a fluent SpecBuilder
//     and a stable string label ("high/rr/ResSusUtil/s42");
//   * RunSweep — executes a set of specs on a fixed-size worker pool,
//     generating each distinct (scenario, seed) trace exactly once and
//     sharing it immutably across runs;
//   * SummarizeSweep — aggregates per-spec replications (same spec,
//     different seeds) into mean / stddev / 95%-CI summary rows, with
//     text-table, CSV and JSON export.
//
// Determinism is a hard requirement: every run draws its policy and outage
// randomness from splitmix-derived substreams keyed by its spec's label and
// seed, and results land in spec order regardless of which worker finishes
// first — a sweep at `jobs = 8` is bit-identical to the same sweep at
// `jobs = 1`.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/config.h"
#include "cluster/simulation.h"
#include "common/counters.h"
#include "common/stats.h"
#include "core/policies.h"
#include "metrics/collector.h"
#include "metrics/report.h"
#include "runner/parse.h"
#include "runner/scenarios.h"
#include "workload/trace.h"

namespace netbatch::runner {

// Everything measured from one run.
struct ExperimentResult {
  metrics::MetricsReport report;
  std::vector<metrics::Sample> samples;
  EmpiricalCdf suspension_cdf;  // per-job suspension minutes (Fig. 2)
  workload::TraceStats trace_stats;
  std::uint64_t fired_events = 0;
  // Profiling: this run's wall-clock execution time (simulation only, not
  // trace generation) and the end-of-run snapshot of the simulation's
  // counter registry (jobs.*, vpm.*, outages.*, audit.*, cluster.*).
  double wall_seconds = 0;
  CounterSnapshot counters;

  // Simulator throughput; 0 when the run was too fast to time.
  double EventsPerSecond() const {
    return wall_seconds > 0
               ? static_cast<double>(fired_events) / wall_seconds
               : 0.0;
  }
};

// A caller-built policy plus any observers it depends on (e.g. the
// PoolLoadPredictor a PredictorSelector reads). The sweep engine attaches
// the observers to the simulation and keeps everything alive for the run.
// `policy` is declared first so observers a policy points into outlive it
// during destruction.
struct PolicyInstance {
  std::unique_ptr<cluster::ReschedulingPolicy> policy;
  std::vector<std::unique_ptr<cluster::SimulationObserver>> observers;
};

// Builds one run's policy. Invoked once per run on the worker executing it
// (policies are stateful — RandomSelector owns an Rng — so instances are
// never shared across runs). `run_seed` is the run's splitmix-derived
// substream seed; factories needing randomness must seed from it, nothing
// else, or jobs=8 and jobs=1 sweeps diverge.
using PolicyFactory = std::function<PolicyInstance(std::uint64_t run_seed)>;

// One fully described run. Build with SpecBuilder; aggregate-initialize
// only in tests that need a pathological spec.
struct ExperimentSpec {
  std::string scenario_name = "custom";  // label + trace-dedup key
  Scenario scenario;
  // Replication seed: overrides scenario.workload.seed for trace
  // generation, and roots the run's policy/outage substreams. Two specs
  // with equal (scenario_name, seed) share one generated trace.
  std::uint64_t seed = 42;
  InitialSchedulerKind scheduler = InitialSchedulerKind::kRoundRobin;
  Ticks scheduler_staleness = 0;
  core::PolicyKind policy = core::PolicyKind::kNoRes;
  core::PolicyOptions policy_options;  // seed is superseded by RunSeed()
  std::string policy_label;   // names a custom policy; empty => ToString
  PolicyFactory policy_factory;  // overrides `policy` when set
  cluster::SimulationOptions sim_options;
  // Report-row label override (e.g. plain "ResSusUtil" in a paper table);
  // empty => Label().
  std::string display_label;

  std::string PolicyName() const;  // policy_label or ToString(policy)
  // Stable label without the seed — the replication-grouping key:
  //   "<scenario>/<rr|util>/<policy>"
  std::string GroupLabel() const;
  std::string Label() const;  // GroupLabel() + "/s<seed>"
  std::string DisplayLabel() const;
  // The run's substream root, splitmix-derived from (seed, GroupLabel()):
  // independent across specs, identical across executions.
  std::uint64_t RunSeed() const;
};

// Fluent spec construction:
//   SpecBuilder()
//       .Scenario("high", HighLoadScenario(scale))
//       .Scheduler(InitialSchedulerKind::kUtilization)
//       .Policy(core::PolicyKind::kResSusWaitUtil)
//       .Seed(7)
//       .Build()
class SpecBuilder {
 public:
  SpecBuilder& Scenario(std::string name, runner::Scenario scenario);
  SpecBuilder& Seed(std::uint64_t seed);
  SpecBuilder& Scheduler(InitialSchedulerKind kind, Ticks staleness = 0);
  SpecBuilder& Policy(core::PolicyKind kind);
  // A policy the factory cannot name; `label` becomes the spec's policy
  // name for labels and grouping.
  SpecBuilder& CustomPolicy(std::string label, PolicyFactory factory);
  // The §5 DupSusUtil extension (duplicate instead of restart).
  SpecBuilder& Duplication();
  SpecBuilder& WaitThreshold(Ticks threshold);
  SpecBuilder& SimOptions(cluster::SimulationOptions options);
  // Runs on the sharded engine with this many worker threads (>= 1);
  // 0 restores the classic single-domain engine. Any value >= 1 yields the
  // same bytes, so shards only changes wall-clock, never results — and the
  // shard count is deliberately absent from run labels.
  SpecBuilder& Shards(int shards);
  SpecBuilder& DisplayLabel(std::string label);
  ExperimentSpec Build() const { return spec_; }

 private:
  ExperimentSpec spec_;
};

// ---- single-run primitives ------------------------------------------------

// Generates the spec's trace: the scenario's workload with the spec's seed.
workload::Trace GenerateSpecTrace(const ExperimentSpec& spec);

// Executes one spec on a caller-provided (shared, immutable) trace.
ExperimentResult RunSpec(const ExperimentSpec& spec,
                         const workload::Trace& trace);

// Generates the spec's trace and runs it (the one-off convenience path).
ExperimentResult RunSingle(const ExperimentSpec& spec);

// Lowest-level primitive: run the spec's scenario / scheduler / sim options
// with a caller-owned policy instance. Prefer Policy/CustomPolicy specs —
// this exists for callers that must observe or reuse the policy object.
ExperimentResult RunSpecWithPolicy(
    const ExperimentSpec& spec, const workload::Trace& trace,
    cluster::ReschedulingPolicy& policy, std::string label,
    const std::vector<cluster::SimulationObserver*>& extra_observers = {});

// ---- the sweep runner -----------------------------------------------------

struct SweepOptions {
  // Worker threads; 0 = hardware concurrency. Any value yields the same
  // results, bit for bit.
  unsigned jobs = 0;
};

struct SweepResult {
  std::vector<ExperimentSpec> specs;       // as submitted
  std::vector<ExperimentResult> results;   // 1:1 with specs, in spec order
  std::size_t generated_trace_count = 0;   // distinct (scenario, seed) pairs
  double wall_seconds = 0;
};

// Runs every spec: deduplicates traces by (scenario_name, seed) — each
// generated once, shared read-only — and executes runs on a `jobs`-wide
// worker pool. scenario_name must identify the scenario's configuration
// within one sweep: two specs may share a name only if their scenarios are
// identical.
SweepResult RunSweep(std::vector<ExperimentSpec> specs,
                     const SweepOptions& options = {});

// As RunSweep, but every spec replays the caller's trace (no generation) —
// e.g. ablation grids over sim options on one fixed workload.
SweepResult RunSweepOnTrace(std::vector<ExperimentSpec> specs,
                            const workload::Trace& trace,
                            const SweepOptions& options = {});

// ---- replication aggregation ---------------------------------------------

// One spec group (same GroupLabel, different seeds) summarized over its
// replications: mean / sample stddev / normal-approximation 95% CI.
struct SweepSummaryRow {
  std::string label;  // the group label
  std::size_t replications = 0;
  SampleSummary suspend_rate;
  SampleSummary avg_ct_all;
  SampleSummary avg_ct_suspended;
  SampleSummary avg_st;
  SampleSummary avg_wct;
  SampleSummary reschedules;
};

// Groups results by spec GroupLabel() in first-appearance order.
std::vector<SweepSummaryRow> SummarizeSweep(const SweepResult& sweep);

// "mean ± ci95" text table, one row per spec group.
std::string RenderSweepSummary(const std::vector<SweepSummaryRow>& rows);

// CSV: one row per group, mean/stddev/ci95 columns per metric.
void WriteSweepSummaryCsv(std::ostream& out,
                          const std::vector<SweepSummaryRow>& rows);

// JSON document with both per-run reports (spec order) and summary rows.
std::string SweepToJson(const SweepResult& sweep,
                        const std::vector<SweepSummaryRow>& rows);

}  // namespace netbatch::runner

#include "runner/experiment.h"

#include <utility>

namespace netbatch::runner {

ExperimentSpec SpecFromConfig(const ExperimentConfig& config,
                              std::string scenario_name) {
  ExperimentSpec spec;
  spec.scenario_name = std::move(scenario_name);
  spec.scenario = config.scenario;
  spec.seed = config.scenario.workload.seed;
  spec.scheduler = config.scheduler;
  spec.scheduler_staleness = config.scheduler_staleness;
  spec.policy = config.policy;
  spec.policy_options = config.policy_options;
  spec.sim_options = config.sim_options;
  return spec;
}

ExperimentResult RunExperimentWithPolicy(
    const ExperimentConfig& config, const workload::Trace& trace,
    cluster::ReschedulingPolicy& policy, std::string label,
    const std::vector<cluster::SimulationObserver*>& extra_observers) {
  return RunSpecWithPolicy(SpecFromConfig(config), trace, policy,
                           std::move(label), extra_observers);
}

ExperimentResult RunExperimentOnTrace(const ExperimentConfig& config,
                                      const workload::Trace& trace) {
  ExperimentSpec spec = SpecFromConfig(config);
  spec.display_label = core::ToString(config.policy);
  return RunSpec(spec, trace);
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  ExperimentSpec spec = SpecFromConfig(config);
  spec.display_label = core::ToString(config.policy);
  return RunSingle(spec);
}

std::vector<ExperimentResult> RunPolicyComparison(
    const ExperimentConfig& base,
    const std::vector<core::PolicyKind>& policies) {
  std::vector<ExperimentSpec> specs;
  specs.reserve(policies.size());
  for (const core::PolicyKind policy : policies) {
    ExperimentConfig config = base;
    config.policy = policy;
    ExperimentSpec spec = SpecFromConfig(config);
    spec.display_label = core::ToString(policy);
    specs.push_back(std::move(spec));
  }
  // One shared trace (equal scenario_name + seed) and parallel execution
  // come from the sweep engine for free.
  SweepResult sweep = RunSweep(std::move(specs));
  return std::move(sweep.results);
}

}  // namespace netbatch::runner

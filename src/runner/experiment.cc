#include "runner/experiment.h"

#include <memory>

#include "sched/round_robin.h"
#include "sched/utilization.h"
#include "workload/generator.h"

namespace netbatch::runner {

const char* ToString(InitialSchedulerKind kind) {
  switch (kind) {
    case InitialSchedulerKind::kRoundRobin:
      return "round-robin";
    case InitialSchedulerKind::kUtilization:
      return "utilization-based";
  }
  return "?";
}

namespace {

std::unique_ptr<cluster::InitialScheduler> MakeScheduler(
    const ExperimentConfig& config) {
  switch (config.scheduler) {
    case InitialSchedulerKind::kRoundRobin:
      return std::make_unique<sched::RoundRobinScheduler>();
    case InitialSchedulerKind::kUtilization:
      return std::make_unique<sched::UtilizationScheduler>(
          config.scheduler_staleness);
  }
  NETBATCH_CHECK(false, "unknown scheduler kind");
  return nullptr;
}

}  // namespace

ExperimentResult RunExperimentWithPolicy(
    const ExperimentConfig& config, const workload::Trace& trace,
    cluster::ReschedulingPolicy& policy, std::string label,
    const std::vector<cluster::SimulationObserver*>& extra_observers) {
  const std::unique_ptr<cluster::InitialScheduler> scheduler =
      MakeScheduler(config);

  cluster::NetBatchSimulation simulation(config.scenario.cluster, trace,
                                         *scheduler, policy,
                                         config.sim_options);
  metrics::MetricsCollector collector;
  simulation.AddObserver(&collector);
  for (cluster::SimulationObserver* observer : extra_observers) {
    simulation.AddObserver(observer);
  }
  simulation.Run();

  ExperimentResult result;
  result.report = collector.BuildReport(simulation, std::move(label));
  result.samples = collector.samples();
  result.suspension_cdf = collector.SuspensionTimeCdf();
  result.trace_stats = trace.Stats();
  result.fired_events = simulation.simulator().FiredEvents();
  return result;
}

ExperimentResult RunExperimentOnTrace(const ExperimentConfig& config,
                                      const workload::Trace& trace) {
  const std::unique_ptr<cluster::ReschedulingPolicy> policy =
      core::MakePolicy(config.policy, config.policy_options);
  return RunExperimentWithPolicy(config, trace, *policy,
                                 core::ToString(config.policy));
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  const workload::Trace trace = workload::GenerateTrace(config.scenario.workload);
  return RunExperimentOnTrace(config, trace);
}

std::vector<ExperimentResult> RunPolicyComparison(
    const ExperimentConfig& base,
    const std::vector<core::PolicyKind>& policies) {
  const workload::Trace trace = workload::GenerateTrace(base.scenario.workload);
  std::vector<ExperimentResult> results;
  results.reserve(policies.size());
  for (core::PolicyKind policy : policies) {
    ExperimentConfig config = base;
    config.policy = policy;
    results.push_back(RunExperimentOnTrace(config, trace));
  }
  return results;
}

}  // namespace netbatch::runner

#include "runner/sweep.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "cluster/sharded_simulation.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "metrics/report_json.h"
#include "sched/round_robin.h"
#include "sched/utilization.h"
#include "workload/generator.h"

namespace netbatch::runner {

// ---- ExperimentSpec -------------------------------------------------------

std::string ExperimentSpec::PolicyName() const {
  return policy_label.empty() ? core::ToString(policy) : policy_label;
}

std::string ExperimentSpec::GroupLabel() const {
  std::string label = scenario_name;
  label += '/';
  label += ToShortString(scheduler);
  label += '/';
  label += PolicyName();
  return label;
}

std::string ExperimentSpec::Label() const {
  return GroupLabel() + "/s" + std::to_string(seed);
}

std::string ExperimentSpec::DisplayLabel() const {
  return display_label.empty() ? Label() : display_label;
}

std::uint64_t ExperimentSpec::RunSeed() const {
  return DeriveSeed(seed, GroupLabel());
}

// ---- SpecBuilder ----------------------------------------------------------

SpecBuilder& SpecBuilder::Scenario(std::string name,
                                   runner::Scenario scenario) {
  spec_.scenario_name = std::move(name);
  spec_.scenario = std::move(scenario);
  // The preset's workload seed is the natural default replication seed.
  spec_.seed = spec_.scenario.workload.seed;
  return *this;
}

SpecBuilder& SpecBuilder::Seed(std::uint64_t seed) {
  spec_.seed = seed;
  return *this;
}

SpecBuilder& SpecBuilder::Scheduler(InitialSchedulerKind kind,
                                    Ticks staleness) {
  spec_.scheduler = kind;
  spec_.scheduler_staleness = staleness;
  return *this;
}

SpecBuilder& SpecBuilder::Policy(core::PolicyKind kind) {
  spec_.policy = kind;
  spec_.policy_label.clear();
  spec_.policy_factory = nullptr;
  return *this;
}

SpecBuilder& SpecBuilder::CustomPolicy(std::string label,
                                       PolicyFactory factory) {
  NETBATCH_CHECK(factory != nullptr, "CustomPolicy requires a factory");
  spec_.policy_label = std::move(label);
  spec_.policy_factory = std::move(factory);
  return *this;
}

SpecBuilder& SpecBuilder::Duplication() {
  const core::PolicyOptions options = spec_.policy_options;
  return CustomPolicy("DupSusUtil", [options](std::uint64_t run_seed) {
    core::PolicyOptions seeded = options;
    seeded.seed = run_seed;
    return PolicyInstance{core::MakeDuplicationPolicy(seeded), {}};
  });
}

SpecBuilder& SpecBuilder::WaitThreshold(Ticks threshold) {
  spec_.policy_options.wait_threshold = threshold;
  return *this;
}

SpecBuilder& SpecBuilder::SimOptions(cluster::SimulationOptions options) {
  spec_.sim_options = std::move(options);
  return *this;
}

SpecBuilder& SpecBuilder::Shards(int shards) {
  spec_.sim_options.shards = shards;
  return *this;
}

SpecBuilder& SpecBuilder::DisplayLabel(std::string label) {
  spec_.display_label = std::move(label);
  return *this;
}

// ---- single-run primitives ------------------------------------------------

namespace {

std::unique_ptr<cluster::InitialScheduler> MakeScheduler(
    const ExperimentSpec& spec) {
  switch (spec.scheduler) {
    case InitialSchedulerKind::kRoundRobin:
      return std::make_unique<sched::RoundRobinScheduler>();
    case InitialSchedulerKind::kUtilization:
      return std::make_unique<sched::UtilizationScheduler>(
          spec.scheduler_staleness);
  }
  NETBATCH_CHECK(false, "unknown scheduler kind");
  return nullptr;
}

// The sharded-engine run path (sim_options.shards >= 1): same substream
// derivations as the classic path, except the policy seed is per domain
// ("policy.pool<d>") — each domain owns an independent policy instance, so
// one shared stream would make results depend on cross-domain interleaving.
ExperimentResult RunSpecSharded(const ExperimentSpec& spec,
                                const workload::Trace& trace) {
  NETBATCH_CHECK(spec.policy_factory == nullptr,
                 "sharded runs do not support custom policy factories");
  const std::uint64_t run_seed = spec.RunSeed();
  const std::unique_ptr<cluster::InitialScheduler> router =
      MakeScheduler(spec);

  cluster::SimulationOptions options = spec.sim_options;
  options.outages.seed = DeriveSeed(run_seed, "outages");

  const cluster::ShardedSimulation::DomainPolicyFactory policy_factory =
      [&spec, run_seed](PoolId domain) {
        core::PolicyOptions policy_options = spec.policy_options;
        policy_options.seed = DeriveSeed(
            run_seed, "policy.pool" + std::to_string(domain.value()));
        return core::MakePolicy(spec.policy, policy_options);
      };

  cluster::ShardedSimulation simulation(spec.scenario.cluster, trace, *router,
                                        policy_factory, options);
  metrics::MetricsCollector collector;
  simulation.AddObserver(&collector);
  const auto run_start = std::chrono::steady_clock::now();
  simulation.Run();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    run_start)
          .count();

  ExperimentResult result;
  result.report = collector.BuildReport(simulation, spec.DisplayLabel());
  result.samples = collector.samples();
  result.suspension_cdf = collector.SuspensionTimeCdf();
  result.trace_stats = trace.Stats();
  result.fired_events = simulation.TotalFiredEvents();
  result.wall_seconds = wall_seconds;
  result.counters = simulation.MergedCounters();
  return result;
}

}  // namespace

workload::Trace GenerateSpecTrace(const ExperimentSpec& spec) {
  workload::GeneratorConfig config = spec.scenario.workload;
  config.seed = spec.seed;
  return workload::GenerateTrace(config);
}

ExperimentResult RunSpecWithPolicy(
    const ExperimentSpec& spec, const workload::Trace& trace,
    cluster::ReschedulingPolicy& policy, std::string label,
    const std::vector<cluster::SimulationObserver*>& extra_observers) {
  NETBATCH_CHECK(spec.sim_options.shards == 0,
                 "RunSpecWithPolicy requires the single-domain engine "
                 "(shards=0): sharded runs build one policy per domain");
  const std::unique_ptr<cluster::InitialScheduler> scheduler =
      MakeScheduler(spec);

  cluster::SimulationOptions options = spec.sim_options;
  // The failure injector draws from the run's own substream: replications
  // at different seeds see independent outage sequences, and the draw
  // depends only on the spec — never on worker scheduling.
  options.outages.seed = DeriveSeed(spec.RunSeed(), "outages");

  cluster::NetBatchSimulation simulation(spec.scenario.cluster, trace,
                                         *scheduler, policy, options);
  metrics::MetricsCollector collector;
  simulation.AddObserver(&collector);
  for (cluster::SimulationObserver* observer : extra_observers) {
    simulation.AddObserver(observer);
  }
  const auto run_start = std::chrono::steady_clock::now();
  simulation.Run();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    run_start)
          .count();

  ExperimentResult result;
  result.report = collector.BuildReport(simulation, std::move(label));
  result.samples = collector.samples();
  result.suspension_cdf = collector.SuspensionTimeCdf();
  result.trace_stats = trace.Stats();
  result.fired_events = simulation.simulator().FiredEvents();
  result.wall_seconds = wall_seconds;
  result.counters = simulation.counters().TakeSnapshot();
  return result;
}

ExperimentResult RunSpec(const ExperimentSpec& spec,
                         const workload::Trace& trace) {
  if (spec.sim_options.shards > 0) return RunSpecSharded(spec, trace);
  const std::uint64_t run_seed = spec.RunSeed();
  PolicyInstance instance;
  if (spec.policy_factory != nullptr) {
    instance = spec.policy_factory(run_seed);
    NETBATCH_CHECK(instance.policy != nullptr,
                   "policy factory returned no policy");
  } else {
    core::PolicyOptions options = spec.policy_options;
    options.seed = DeriveSeed(run_seed, "policy");
    instance.policy = core::MakePolicy(spec.policy, options);
  }
  std::vector<cluster::SimulationObserver*> observers;
  observers.reserve(instance.observers.size());
  for (const auto& observer : instance.observers) {
    observers.push_back(observer.get());
  }
  return RunSpecWithPolicy(spec, trace, *instance.policy, spec.DisplayLabel(),
                           observers);
}

ExperimentResult RunSingle(const ExperimentSpec& spec) {
  const workload::Trace trace = GenerateSpecTrace(spec);
  return RunSpec(spec, trace);
}

// ---- the sweep runner -----------------------------------------------------

namespace {

// Executes all specs on `pool`; results land in spec order regardless of
// completion order, which is what makes jobs=N bit-identical to jobs=1.
void ExecuteRuns(const std::vector<ExperimentSpec>& specs,
                 const std::function<const workload::Trace&(std::size_t)>&
                     trace_for_spec,
                 ThreadPool& pool, std::vector<ExperimentResult>& results) {
  results.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    pool.Submit([&specs, &trace_for_spec, &results, i] {
      results[i] = RunSpec(specs[i], trace_for_spec(i));
    });
  }
  pool.Wait();
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

unsigned WorkerCount(const SweepOptions& options) {
  return options.jobs == 0 ? ThreadPool::DefaultThreadCount() : options.jobs;
}

}  // namespace

SweepResult RunSweep(std::vector<ExperimentSpec> specs,
                     const SweepOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(WorkerCount(options));

  // Trace dedup: one generation per distinct (scenario_name, seed), shared
  // read-only by every run that references it.
  std::map<std::pair<std::string, std::uint64_t>, std::size_t> trace_index;
  std::vector<std::size_t> spec_trace(specs.size());
  std::vector<const ExperimentSpec*> generating_specs;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto key = std::make_pair(specs[i].scenario_name, specs[i].seed);
    const auto [it, inserted] =
        trace_index.try_emplace(key, generating_specs.size());
    if (inserted) generating_specs.push_back(&specs[i]);
    spec_trace[i] = it->second;
  }
  std::vector<workload::Trace> traces(generating_specs.size());
  for (std::size_t t = 0; t < traces.size(); ++t) {
    pool.Submit([&traces, &generating_specs, t] {
      traces[t] = GenerateSpecTrace(*generating_specs[t]);
    });
  }
  pool.Wait();

  SweepResult sweep;
  ExecuteRuns(
      specs,
      [&traces, &spec_trace](std::size_t i) -> const workload::Trace& {
        return traces[spec_trace[i]];
      },
      pool, sweep.results);
  sweep.specs = std::move(specs);
  sweep.generated_trace_count = traces.size();
  sweep.wall_seconds = SecondsSince(start);
  return sweep;
}

SweepResult RunSweepOnTrace(std::vector<ExperimentSpec> specs,
                            const workload::Trace& trace,
                            const SweepOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(WorkerCount(options));
  SweepResult sweep;
  ExecuteRuns(
      specs, [&trace](std::size_t) -> const workload::Trace& { return trace; },
      pool, sweep.results);
  sweep.specs = std::move(specs);
  sweep.wall_seconds = SecondsSince(start);
  return sweep;
}

// ---- replication aggregation ---------------------------------------------

std::vector<SweepSummaryRow> SummarizeSweep(const SweepResult& sweep) {
  NETBATCH_CHECK(sweep.specs.size() == sweep.results.size(),
                 "sweep specs/results mismatch");
  struct Group {
    std::vector<double> suspend_rate, avg_ct_all, avg_ct_suspended, avg_st,
        avg_wct, reschedules;
  };
  std::vector<std::string> order;
  std::map<std::string, Group> groups;
  for (std::size_t i = 0; i < sweep.specs.size(); ++i) {
    const std::string label = sweep.specs[i].GroupLabel();
    auto [it, inserted] = groups.try_emplace(label);
    if (inserted) order.push_back(label);
    const metrics::MetricsReport& report = sweep.results[i].report;
    it->second.suspend_rate.push_back(report.suspend_rate);
    it->second.avg_ct_all.push_back(report.avg_ct_all_minutes);
    it->second.avg_ct_suspended.push_back(report.avg_ct_suspended_minutes);
    it->second.avg_st.push_back(report.avg_st_minutes);
    it->second.avg_wct.push_back(report.avg_wct_minutes);
    it->second.reschedules.push_back(
        static_cast<double>(report.reschedule_count));
  }

  std::vector<SweepSummaryRow> rows;
  rows.reserve(order.size());
  for (const std::string& label : order) {
    const Group& group = groups.at(label);
    SweepSummaryRow row;
    row.label = label;
    row.replications = group.avg_ct_all.size();
    row.suspend_rate = SummarizeSamples(group.suspend_rate);
    row.avg_ct_all = SummarizeSamples(group.avg_ct_all);
    row.avg_ct_suspended = SummarizeSamples(group.avg_ct_suspended);
    row.avg_st = SummarizeSamples(group.avg_st);
    row.avg_wct = SummarizeSamples(group.avg_wct);
    row.reschedules = SummarizeSamples(group.reschedules);
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

std::string MeanCi(const SampleSummary& summary, int decimals) {
  std::string text = TextTable::Fixed(summary.mean, decimals);
  if (summary.n >= 2) {
    text += " ±";
    text += TextTable::Fixed(summary.ci95_half, decimals);
  }
  return text;
}

void AppendJsonEscaped(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void AppendJsonNumber(std::ostringstream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out << buf;
}

void AppendSummaryJson(std::ostringstream& out, const char* name,
                       const SampleSummary& summary) {
  out << '"' << name << "\":{\"mean\":";
  AppendJsonNumber(out, summary.mean);
  out << ",\"stddev\":";
  AppendJsonNumber(out, summary.stddev);
  out << ",\"ci95_half\":";
  AppendJsonNumber(out, summary.ci95_half);
  out << '}';
}

std::vector<std::string> CsvFields(const SampleSummary& summary) {
  const auto render = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };
  return {render(summary.mean), render(summary.stddev),
          render(summary.ci95_half)};
}

}  // namespace

std::string RenderSweepSummary(const std::vector<SweepSummaryRow>& rows) {
  TextTable table({"Spec", "Runs", "Suspend rate", "AvgCT Suspend",
                   "AvgCT All", "AvgST", "AvgWCT", "Restarts"});
  for (const SweepSummaryRow& row : rows) {
    table.AddRow({
        row.label,
        std::to_string(row.replications),
        MeanCi(row.suspend_rate, 4),
        MeanCi(row.avg_ct_suspended, 1),
        MeanCi(row.avg_ct_all, 1),
        MeanCi(row.avg_st, 1),
        MeanCi(row.avg_wct, 1),
        MeanCi(row.reschedules, 0),
    });
  }
  return table.Render();
}

void WriteSweepSummaryCsv(std::ostream& out,
                          const std::vector<SweepSummaryRow>& rows) {
  CsvWriter writer(out);
  std::vector<std::string> header = {"spec", "replications"};
  for (const char* metric :
       {"suspend_rate", "avg_ct_suspended", "avg_ct_all", "avg_st", "avg_wct",
        "reschedules"}) {
    header.push_back(std::string(metric) + "_mean");
    header.push_back(std::string(metric) + "_stddev");
    header.push_back(std::string(metric) + "_ci95");
  }
  writer.WriteRow(header);
  for (const SweepSummaryRow& row : rows) {
    std::vector<std::string> fields = {row.label,
                                       std::to_string(row.replications)};
    for (const SampleSummary* summary :
         {&row.suspend_rate, &row.avg_ct_suspended, &row.avg_ct_all,
          &row.avg_st, &row.avg_wct, &row.reschedules}) {
      for (std::string& field : CsvFields(*summary)) {
        fields.push_back(std::move(field));
      }
    }
    writer.WriteRow(fields);
  }
}

std::string SweepToJson(const SweepResult& sweep,
                        const std::vector<SweepSummaryRow>& rows) {
  std::ostringstream out;
  out << "{\"runs\":[";
  for (std::size_t i = 0; i < sweep.results.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"spec\":";
    AppendJsonEscaped(out, sweep.specs[i].Label());
    out << ",\"seed\":" << sweep.specs[i].seed << ",\"report\":"
        << metrics::ReportToJson(sweep.results[i].report) << '}';
  }
  out << "],\"summary\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepSummaryRow& row = rows[i];
    if (i > 0) out << ',';
    out << "{\"spec\":";
    AppendJsonEscaped(out, row.label);
    out << ",\"replications\":" << row.replications << ',';
    AppendSummaryJson(out, "suspend_rate", row.suspend_rate);
    out << ',';
    AppendSummaryJson(out, "avg_ct_suspended", row.avg_ct_suspended);
    out << ',';
    AppendSummaryJson(out, "avg_ct_all", row.avg_ct_all);
    out << ',';
    AppendSummaryJson(out, "avg_st", row.avg_st);
    out << ',';
    AppendSummaryJson(out, "avg_wct", row.avg_wct);
    out << ',';
    AppendSummaryJson(out, "reschedules", row.reschedules);
    out << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace netbatch::runner

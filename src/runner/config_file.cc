#include "runner/config_file.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <string_view>

#include "common/check.h"
#include "runner/parse.h"

namespace netbatch::runner {
namespace {

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

// Strips an inline comment introduced by " ;" or " #".
std::string_view StripInlineComment(std::string_view text) {
  for (std::size_t i = 1; i < text.size(); ++i) {
    if ((text[i] == ';' || text[i] == '#') &&
        (text[i - 1] == ' ' || text[i - 1] == '\t')) {
      return text.substr(0, i);
    }
  }
  return text;
}

double ParseDouble(std::string_view value) {
  const std::string copy(value);
  char* end = nullptr;
  const double parsed = std::strtod(copy.c_str(), &end);
  NETBATCH_CHECK(end == copy.c_str() + copy.size() && !copy.empty(),
                 "config value is not a number");
  return parsed;
}

std::int64_t ParseInt(std::string_view value) {
  std::int64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  NETBATCH_CHECK(ec == std::errc{} && ptr == value.data() + value.size(),
                 "config value is not an integer");
  return parsed;
}

}  // namespace

LoadedExperiment LoadExperiment(std::istream& in) {
  LoadedExperiment loaded;
  ExperimentConfig& config = loaded.config;

  std::string scenario = "normal";
  double scale = 0.25;
  std::uint64_t seed = 42;

  std::string section;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view view = Trim(line);
    if (view.empty() || view.front() == '#' || view.front() == ';') continue;
    if (view.front() == '[') {
      NETBATCH_CHECK(view.back() == ']', "unterminated section header");
      section = std::string(Trim(view.substr(1, view.size() - 2)));
      NETBATCH_CHECK(section == "experiment" || section == "outages",
                     "unknown config section");
      continue;
    }
    const std::size_t eq = view.find('=');
    NETBATCH_CHECK(eq != std::string_view::npos,
                   "config line is not key = value");
    const std::string key(Trim(view.substr(0, eq)));
    const std::string value(
        Trim(StripInlineComment(Trim(view.substr(eq + 1)))));
    NETBATCH_CHECK(!section.empty(), "key outside any [section]");

    if (section == "experiment") {
      if (key == "scenario") {
        scenario = value;
      } else if (key == "scale") {
        scale = ParseDouble(value);
      } else if (key == "seed") {
        seed = static_cast<std::uint64_t>(ParseInt(value));
      } else if (key == "scheduler") {
        NETBATCH_CHECK(value == "rr" || value == "util",
                       "scheduler must be rr or util");
        config.scheduler = value == "rr"
                               ? InitialSchedulerKind::kRoundRobin
                               : InitialSchedulerKind::kUtilization;
      } else if (key == "staleness_min") {
        config.scheduler_staleness = MinutesToTicks(ParseInt(value));
      } else if (key == "policy") {
        loaded.policy_name = value;
      } else if (key == "threshold_min") {
        config.policy_options.wait_threshold = MinutesToTicks(ParseInt(value));
      } else if (key == "overhead_min") {
        config.sim_options.restart_overhead = MinutesToTicks(ParseInt(value));
      } else if (key == "checkpoint_min") {
        config.sim_options.checkpoint_interval =
            MinutesToTicks(ParseInt(value));
      } else if (key == "shards") {
        config.sim_options.shards = static_cast<int>(ParseInt(value));
      } else {
        NETBATCH_CHECK(false, "unknown key in [experiment]: " + key);
      }
    } else {  // outages
      if (key == "mtbf_min") {
        config.sim_options.outages.mtbf_minutes = ParseDouble(value);
      } else if (key == "mttr_min") {
        config.sim_options.outages.mttr_minutes = ParseDouble(value);
      } else {
        NETBATCH_CHECK(false, "unknown key in [outages]: " + key);
      }
    }
  }

  config.scenario = ResolveScenario(scenario, scale, seed);
  return loaded;
}

LoadedExperiment LoadExperimentFile(const std::string& path) {
  std::ifstream in(path);
  NETBATCH_CHECK(static_cast<bool>(in), "cannot open config file: " + path);
  return LoadExperiment(in);
}

// ---- workload presets ------------------------------------------------------

namespace {

// Shortest decimal form that round-trips exactly through strtod.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

template <typename T>
std::string JoinInts(const std::vector<T>& values) {
  std::string out;
  for (const T& v : values) {
    if (!out.empty()) out += ",";
    out += std::to_string(v);
  }
  return out;
}

std::string JoinDoubles(const std::vector<double>& values) {
  std::string out;
  for (double v : values) {
    if (!out.empty()) out += ",";
    out += FormatDouble(v);
  }
  return out;
}

std::string JoinPools(const std::vector<PoolId>& pools) {
  std::string out;
  for (PoolId p : pools) {
    if (!out.empty()) out += ",";
    out += std::to_string(p.value());
  }
  return out;
}

// Splits a comma-separated list; an empty value yields an empty list.
std::vector<std::string_view> SplitList(std::string_view value) {
  std::vector<std::string_view> items;
  while (!value.empty()) {
    const std::size_t comma = value.find(',');
    items.push_back(Trim(value.substr(0, comma)));
    if (comma == std::string_view::npos) break;
    value.remove_prefix(comma + 1);
  }
  return items;
}

std::vector<double> ParseDoubleList(std::string_view value) {
  std::vector<double> parsed;
  for (std::string_view item : SplitList(value)) {
    parsed.push_back(ParseDouble(item));
  }
  return parsed;
}

std::vector<std::int32_t> ParseInt32List(std::string_view value) {
  std::vector<std::int32_t> parsed;
  for (std::string_view item : SplitList(value)) {
    parsed.push_back(static_cast<std::int32_t>(ParseInt(item)));
  }
  return parsed;
}

std::vector<PoolId> ParsePoolList(std::string_view value) {
  std::vector<PoolId> parsed;
  for (std::string_view item : SplitList(value)) {
    parsed.emplace_back(static_cast<PoolId::ValueType>(ParseInt(item)));
  }
  return parsed;
}

void WriteRuntimeModel(std::ostream& out, const char* section,
                       const workload::RuntimeModel& model) {
  out << "[" << section << "]\n"
      << "lognormal_mu = " << FormatDouble(model.lognormal_mu) << "\n"
      << "lognormal_sigma = " << FormatDouble(model.lognormal_sigma) << "\n"
      << "tail_probability = " << FormatDouble(model.tail_probability) << "\n"
      << "tail_alpha = " << FormatDouble(model.tail_alpha) << "\n"
      << "min_minutes = " << FormatDouble(model.min_minutes) << "\n"
      << "max_minutes = " << FormatDouble(model.max_minutes) << "\n";
}

void SetRuntimeKey(workload::RuntimeModel& model, const std::string& section,
                   const std::string& key, std::string_view value) {
  if (key == "lognormal_mu") {
    model.lognormal_mu = ParseDouble(value);
  } else if (key == "lognormal_sigma") {
    model.lognormal_sigma = ParseDouble(value);
  } else if (key == "tail_probability") {
    model.tail_probability = ParseDouble(value);
  } else if (key == "tail_alpha") {
    model.tail_alpha = ParseDouble(value);
  } else if (key == "min_minutes") {
    model.min_minutes = ParseDouble(value);
  } else if (key == "max_minutes") {
    model.max_minutes = ParseDouble(value);
  } else {
    NETBATCH_CHECK(false, "unknown key in [" + section + "]: " + key);
  }
}

}  // namespace

void WriteWorkloadPreset(std::ostream& out,
                         const workload::GeneratorConfig& config) {
  out << "# NetBatchSim workload preset (runner/config_file.h). Usable\n"
         "# anywhere a scenario name is accepted, e.g. --scenario=<this file>.\n"
         "[workload]\n"
      << "seed = " << config.seed << "\n"
      << "duration_ticks = " << config.duration << "\n"
      << "num_pools = " << config.num_pools << "\n"
      << "low_jobs_per_minute = " << FormatDouble(config.low_jobs_per_minute)
      << "\n"
      << "diurnal_amplitude = " << FormatDouble(config.diurnal_amplitude)
      << "\n"
      << "core_choices = " << JoinInts(config.core_choices) << "\n"
      << "core_weights = " << JoinDoubles(config.core_weights) << "\n"
      << "high_core_choices = " << JoinInts(config.high_core_choices) << "\n"
      << "high_core_weights = " << JoinDoubles(config.high_core_weights)
      << "\n"
      << "memory_per_core_mb_lo = " << config.memory_per_core_mb_lo << "\n"
      << "memory_per_core_mb_hi = " << config.memory_per_core_mb_hi << "\n"
      << "task_size = " << config.task_size << "\n\n";
  WriteRuntimeModel(out, "runtime.low", config.low_runtime);
  out << "\n";
  WriteRuntimeModel(out, "runtime.high", config.high_runtime);
  if (!config.sites.empty()) {
    out << "\n[sites]\n";
    for (const auto& site : config.sites) {
      out << "site = " << JoinPools(site) << "\n";
    }
  }
  for (const auto& burst : config.bursts) {
    out << "\n[burst]\n"
        << "priority = " << burst.priority << "\n"
        << "owner = " << burst.owner << "\n"
        << "jobs_per_minute_on = " << FormatDouble(burst.jobs_per_minute_on)
        << "\n"
        << "jobs_per_minute_off = " << FormatDouble(burst.jobs_per_minute_off)
        << "\n"
        << "mean_burst_minutes = " << FormatDouble(burst.mean_burst_minutes)
        << "\n"
        << "mean_gap_minutes = " << FormatDouble(burst.mean_gap_minutes)
        << "\n"
        << "target_pools = " << JoinPools(burst.target_pools) << "\n";
    for (const auto& window : burst.scheduled_bursts) {
      out << "window = " << FormatDouble(window.start_minute) << ","
          << FormatDouble(window.length_minutes) << "\n";
    }
  }
}

void WriteWorkloadPresetFile(const std::string& path,
                             const workload::GeneratorConfig& config) {
  std::ofstream out(path);
  NETBATCH_CHECK(static_cast<bool>(out),
                 "cannot open preset file for writing: " + path);
  WriteWorkloadPreset(out, config);
}

workload::GeneratorConfig LoadWorkloadPreset(std::istream& in) {
  workload::GeneratorConfig config;
  config.sites.clear();

  std::string section;
  std::string line;
  bool saw_workload = false;
  while (std::getline(in, line)) {
    std::string_view view = Trim(line);
    if (view.empty() || view.front() == '#' || view.front() == ';') continue;
    if (view.front() == '[') {
      NETBATCH_CHECK(view.back() == ']', "unterminated section header");
      section = std::string(Trim(view.substr(1, view.size() - 2)));
      if (section == "workload") {
        saw_workload = true;
      } else if (section == "burst") {
        config.bursts.emplace_back();
      } else {
        NETBATCH_CHECK(section == "runtime.low" || section == "runtime.high" ||
                           section == "sites",
                       "unknown preset section: " + section);
      }
      continue;
    }
    const std::size_t eq = view.find('=');
    NETBATCH_CHECK(eq != std::string_view::npos,
                   "preset line is not key = value");
    const std::string key(Trim(view.substr(0, eq)));
    const std::string value(
        Trim(StripInlineComment(Trim(view.substr(eq + 1)))));
    NETBATCH_CHECK(!section.empty(), "key outside any [section]");

    if (section == "workload") {
      if (key == "seed") {
        config.seed = static_cast<std::uint64_t>(ParseInt(value));
      } else if (key == "duration_ticks") {
        config.duration = ParseInt(value);
      } else if (key == "num_pools") {
        config.num_pools = static_cast<std::uint32_t>(ParseInt(value));
      } else if (key == "low_jobs_per_minute") {
        config.low_jobs_per_minute = ParseDouble(value);
      } else if (key == "diurnal_amplitude") {
        config.diurnal_amplitude = ParseDouble(value);
      } else if (key == "core_choices") {
        config.core_choices = ParseInt32List(value);
      } else if (key == "core_weights") {
        config.core_weights = ParseDoubleList(value);
      } else if (key == "high_core_choices") {
        config.high_core_choices = ParseInt32List(value);
      } else if (key == "high_core_weights") {
        config.high_core_weights = ParseDoubleList(value);
      } else if (key == "memory_per_core_mb_lo") {
        config.memory_per_core_mb_lo = ParseInt(value);
      } else if (key == "memory_per_core_mb_hi") {
        config.memory_per_core_mb_hi = ParseInt(value);
      } else if (key == "task_size") {
        config.task_size = static_cast<std::uint32_t>(ParseInt(value));
      } else {
        NETBATCH_CHECK(false, "unknown key in [workload]: " + key);
      }
    } else if (section == "runtime.low") {
      SetRuntimeKey(config.low_runtime, section, key, value);
    } else if (section == "runtime.high") {
      SetRuntimeKey(config.high_runtime, section, key, value);
    } else if (section == "sites") {
      NETBATCH_CHECK(key == "site", "unknown key in [sites]: " + key);
      config.sites.push_back(ParsePoolList(value));
    } else {  // burst
      workload::BurstStreamConfig& burst = config.bursts.back();
      if (key == "priority") {
        burst.priority = static_cast<workload::Priority>(ParseInt(value));
      } else if (key == "owner") {
        burst.owner = static_cast<workload::OwnerId>(ParseInt(value));
      } else if (key == "jobs_per_minute_on") {
        burst.jobs_per_minute_on = ParseDouble(value);
      } else if (key == "jobs_per_minute_off") {
        burst.jobs_per_minute_off = ParseDouble(value);
      } else if (key == "mean_burst_minutes") {
        burst.mean_burst_minutes = ParseDouble(value);
      } else if (key == "mean_gap_minutes") {
        burst.mean_gap_minutes = ParseDouble(value);
      } else if (key == "target_pools") {
        burst.target_pools = ParsePoolList(value);
      } else if (key == "window") {
        const std::vector<double> parts = ParseDoubleList(value);
        NETBATCH_CHECK(parts.size() == 2,
                       "burst window must be start_minute,length_minutes");
        burst.scheduled_bursts.push_back(
            {.start_minute = parts[0], .length_minutes = parts[1]});
      } else {
        NETBATCH_CHECK(false, "unknown key in [burst]: " + key);
      }
    }
  }
  NETBATCH_CHECK(saw_workload, "preset file has no [workload] section");
  return config;
}

workload::GeneratorConfig LoadWorkloadPresetFile(const std::string& path) {
  std::ifstream in(path);
  NETBATCH_CHECK(static_cast<bool>(in), "cannot open preset file: " + path);
  return LoadWorkloadPreset(in);
}

}  // namespace netbatch::runner

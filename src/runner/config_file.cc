#include "runner/config_file.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <string_view>

#include "common/check.h"

namespace netbatch::runner {
namespace {

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

// Strips an inline comment introduced by " ;" or " #".
std::string_view StripInlineComment(std::string_view text) {
  for (std::size_t i = 1; i < text.size(); ++i) {
    if ((text[i] == ';' || text[i] == '#') &&
        (text[i - 1] == ' ' || text[i - 1] == '\t')) {
      return text.substr(0, i);
    }
  }
  return text;
}

double ParseDouble(std::string_view value) {
  const std::string copy(value);
  char* end = nullptr;
  const double parsed = std::strtod(copy.c_str(), &end);
  NETBATCH_CHECK(end == copy.c_str() + copy.size() && !copy.empty(),
                 "config value is not a number");
  return parsed;
}

std::int64_t ParseInt(std::string_view value) {
  std::int64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  NETBATCH_CHECK(ec == std::errc{} && ptr == value.data() + value.size(),
                 "config value is not an integer");
  return parsed;
}

}  // namespace

LoadedExperiment LoadExperiment(std::istream& in) {
  LoadedExperiment loaded;
  ExperimentConfig& config = loaded.config;

  std::string scenario = "normal";
  double scale = 0.25;
  std::uint64_t seed = 42;

  std::string section;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view view = Trim(line);
    if (view.empty() || view.front() == '#' || view.front() == ';') continue;
    if (view.front() == '[') {
      NETBATCH_CHECK(view.back() == ']', "unterminated section header");
      section = std::string(Trim(view.substr(1, view.size() - 2)));
      NETBATCH_CHECK(section == "experiment" || section == "outages",
                     "unknown config section");
      continue;
    }
    const std::size_t eq = view.find('=');
    NETBATCH_CHECK(eq != std::string_view::npos,
                   "config line is not key = value");
    const std::string key(Trim(view.substr(0, eq)));
    const std::string value(
        Trim(StripInlineComment(Trim(view.substr(eq + 1)))));
    NETBATCH_CHECK(!section.empty(), "key outside any [section]");

    if (section == "experiment") {
      if (key == "scenario") {
        scenario = value;
      } else if (key == "scale") {
        scale = ParseDouble(value);
      } else if (key == "seed") {
        seed = static_cast<std::uint64_t>(ParseInt(value));
      } else if (key == "scheduler") {
        NETBATCH_CHECK(value == "rr" || value == "util",
                       "scheduler must be rr or util");
        config.scheduler = value == "rr"
                               ? InitialSchedulerKind::kRoundRobin
                               : InitialSchedulerKind::kUtilization;
      } else if (key == "staleness_min") {
        config.scheduler_staleness = MinutesToTicks(ParseInt(value));
      } else if (key == "policy") {
        loaded.policy_name = value;
      } else if (key == "threshold_min") {
        config.policy_options.wait_threshold = MinutesToTicks(ParseInt(value));
      } else if (key == "overhead_min") {
        config.sim_options.restart_overhead = MinutesToTicks(ParseInt(value));
      } else if (key == "checkpoint_min") {
        config.sim_options.checkpoint_interval =
            MinutesToTicks(ParseInt(value));
      } else {
        NETBATCH_CHECK(false, "unknown key in [experiment]: " + key);
      }
    } else {  // outages
      if (key == "mtbf_min") {
        config.sim_options.outages.mtbf_minutes = ParseDouble(value);
      } else if (key == "mttr_min") {
        config.sim_options.outages.mttr_minutes = ParseDouble(value);
      } else {
        NETBATCH_CHECK(false, "unknown key in [outages]: " + key);
      }
    }
  }

  if (scenario == "normal") {
    config.scenario = NormalLoadScenario(scale, seed);
  } else if (scenario == "high") {
    config.scenario = HighLoadScenario(scale, seed);
  } else if (scenario == "highsusp") {
    config.scenario = HighSuspensionScenario(scale, seed);
  } else if (scenario == "year") {
    config.scenario = YearLongScenario(scale, seed);
  } else {
    NETBATCH_CHECK(false, "unknown scenario in config: " + scenario);
  }
  return loaded;
}

LoadedExperiment LoadExperimentFile(const std::string& path) {
  std::ifstream in(path);
  NETBATCH_CHECK(static_cast<bool>(in), "cannot open config file: " + path);
  return LoadExperiment(in);
}

}  // namespace netbatch::runner

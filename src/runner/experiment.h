// DEPRECATED single-run experiment wrappers.
//
// The experiment API lives in runner/sweep.h: describe runs as
// `ExperimentSpec`s (SpecBuilder) and execute them with RunSweep /
// RunSingle, which adds trace sharing, a worker pool, replication
// aggregation, and deterministic parallelism. These wrappers are thin shims
// kept only for the INI config-file loader (runner/config_file); they will
// be deleted once that path speaks specs natively. Do not add callers.
//
// Migration:
//   RunExperiment(config)            -> RunSingle(SpecFromConfig(config))
//   RunExperimentOnTrace(c, trace)   -> RunSpec(SpecFromConfig(c), trace)
//   RunExperimentWithPolicy(...)     -> RunSpecWithPolicy(...) or a
//                                       SpecBuilder().CustomPolicy(...)
//   RunPolicyComparison(c, policies) -> RunSweep(specs, ...) with one spec
//                                       per policy (shared trace is implied)
#pragma once

#include <string>
#include <vector>

#include "runner/sweep.h"

namespace netbatch::runner {

// The legacy flat run description, still produced by runner/config_file.
struct ExperimentConfig {
  Scenario scenario;
  InitialSchedulerKind scheduler = InitialSchedulerKind::kRoundRobin;
  // Staleness of the utilization snapshot used by the utilization-based
  // initial scheduler (0 = perfectly fresh information).
  Ticks scheduler_staleness = 0;
  core::PolicyKind policy = core::PolicyKind::kNoRes;
  core::PolicyOptions policy_options;
  cluster::SimulationOptions sim_options;
};

// Bridges an ExperimentConfig into the sweep API. The spec's replication
// seed is the scenario's workload seed, so trace generation matches the
// legacy behavior exactly.
ExperimentSpec SpecFromConfig(const ExperimentConfig& config,
                              std::string scenario_name = "custom");

// DEPRECATED: use RunSingle(SpecFromConfig(config)).
ExperimentResult RunExperiment(const ExperimentConfig& config);

// DEPRECATED: use RunSpec(SpecFromConfig(config), trace).
ExperimentResult RunExperimentOnTrace(const ExperimentConfig& config,
                                      const workload::Trace& trace);

// DEPRECATED: use RunSpecWithPolicy, or a spec with CustomPolicy.
ExperimentResult RunExperimentWithPolicy(
    const ExperimentConfig& config, const workload::Trace& trace,
    cluster::ReschedulingPolicy& policy, std::string label,
    const std::vector<cluster::SimulationObserver*>& extra_observers = {});

// DEPRECATED: use RunSweep with one spec per policy.
std::vector<ExperimentResult> RunPolicyComparison(
    const ExperimentConfig& base, const std::vector<core::PolicyKind>& policies);

}  // namespace netbatch::runner

// One-call experiment execution.
//
// RunExperiment wires generator -> simulator -> policy -> metrics for a
// single (scenario, scheduler, policy) triple; RunPolicyComparison reuses
// one generated trace across several policies, which is how every table in
// the paper is produced (same submissions, different rescheduling).
#pragma once

#include <string>
#include <vector>

#include "cluster/config.h"
#include "cluster/simulation.h"
#include "core/policies.h"
#include "metrics/collector.h"
#include "metrics/report.h"
#include "runner/scenarios.h"
#include "workload/trace.h"

namespace netbatch::runner {

enum class InitialSchedulerKind { kRoundRobin, kUtilization };

const char* ToString(InitialSchedulerKind kind);

struct ExperimentConfig {
  Scenario scenario;
  InitialSchedulerKind scheduler = InitialSchedulerKind::kRoundRobin;
  // Staleness of the utilization snapshot used by the utilization-based
  // initial scheduler (0 = perfectly fresh information).
  Ticks scheduler_staleness = 0;
  core::PolicyKind policy = core::PolicyKind::kNoRes;
  core::PolicyOptions policy_options;
  cluster::SimulationOptions sim_options;
};

struct ExperimentResult {
  metrics::MetricsReport report;
  std::vector<metrics::Sample> samples;
  EmpiricalCdf suspension_cdf;  // per-job suspension minutes (Fig. 2)
  workload::TraceStats trace_stats;
  std::uint64_t fired_events = 0;
};

// Generates the scenario's trace and runs it under the configured policy.
ExperimentResult RunExperiment(const ExperimentConfig& config);

// As RunExperiment, but with a caller-provided trace (shared across runs).
ExperimentResult RunExperimentOnTrace(const ExperimentConfig& config,
                                      const workload::Trace& trace);

// As RunExperimentOnTrace, but with a caller-provided policy instance
// (ablation benches compose policies the factory does not name);
// config.policy is ignored and `label` names the result row.
// `extra_observers` are attached to the simulation before the run — e.g. a
// PoolLoadPredictor the policy reads its telemetry from.
ExperimentResult RunExperimentWithPolicy(
    const ExperimentConfig& config, const workload::Trace& trace,
    cluster::ReschedulingPolicy& policy, std::string label,
    const std::vector<cluster::SimulationObserver*>& extra_observers = {});

// Runs the same scenario + scheduler for each policy on one shared trace;
// returns results in `policies` order, labelled with the policy names.
std::vector<ExperimentResult> RunPolicyComparison(
    const ExperimentConfig& base, const std::vector<core::PolicyKind>& policies);

}  // namespace netbatch::runner

// Name -> configuration parsing for the experiment surface.
//
// Everything a CLI flag or config-file value names lives here: initial
// scheduler kinds, rescheduling policy kinds (re-exported from
// core/policies.h), and scenario resolution (builtin name or preset file
// path). Tools and config loaders share these so a name means the same
// thing everywhere it can be spelled.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/policies.h"
#include "runner/scenarios.h"

namespace netbatch::runner {

enum class InitialSchedulerKind { kRoundRobin, kUtilization };

const char* ToString(InitialSchedulerKind kind);       // "round-robin" ...
const char* ToShortString(InitialSchedulerKind kind);  // "rr" / "util"

// Accepts both the ToString and ToShortString forms;
// ParseInitialSchedulerKind(ToString(k)) == k for every kind.
std::optional<InitialSchedulerKind> ParseInitialSchedulerKind(
    std::string_view name);

// Rescheduling policies parse in core/policies.h; re-exported so callers
// resolving "what did the user name?" need only this header.
using core::ParsePolicyKind;

// Maps a scenario name to its definition. Builtin names (normal | high |
// highsusp | year | bigpool) resolve to the paper scenarios; any other
// value must be the path of a workload preset file (calibration output),
// which is loaded with `seed` overriding the preset's. Aborts on an
// unknown name that is not a readable file.
Scenario ResolveScenario(const std::string& name, double scale,
                         std::uint64_t seed);

}  // namespace netbatch::runner

#include "runner/scenarios.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace netbatch::runner {
namespace {

std::int32_t Scaled(std::int32_t count, double scale) {
  return std::max<std::int32_t>(
      1, static_cast<std::int32_t>(std::llround(count * scale)));
}

// 20 strongly heterogeneous pools, as in NetBatch ("hundreds or thousands
// of multi-core machines" per pool, §2.1). Three tiers:
//   pools 0-11  - medium (the targets of high-priority bursts),
//   pools 12-15 - large,
//   pools 16-19 - small.
// The small tier is deliberately sized near its fair round-robin load
// share: NetBatch's capacity-blind round-robin chronically backs up such
// pools, producing the paper's "high wait time of jobs ... due to
// ineffective scheduling ... even when the overall system utilization is
// relatively low" (§1) — and it is those standing queues that make random
// rescheduling of suspended jobs backfire (Table 1's ResSusRand row).
// At scale 1 this yields ~24k cores across ~2.6k machines.
cluster::ClusterConfig BaseCluster(double scale) {
  NETBATCH_CHECK(scale > 0 && scale <= 1.0, "scale must be in (0, 1]");
  cluster::ClusterConfig config;
  constexpr int kPools = 20;
  config.pools.reserve(kPools);
  for (int p = 0; p < kPools; ++p) {
    cluster::PoolConfig pool;
    if (p < 12) {  // medium tier: ~1000-1300 cores
      // Owned by the business group whose bursts target this pool
      // (paper 2.2: ownership grants preemption rights on these hosts).
      pool.machine_groups.push_back({
          .count = Scaled(70 + 10 * (p % 3), scale),
          .cores = 8,
          .memory_mb = 64 * 1024,
          .speed = 1.0 + 0.1 * (p % 3),
          .owner = p / 4,
      });
      pool.machine_groups.push_back({
          .count = Scaled(30, scale),
          .cores = 16,
          .memory_mb = 128 * 1024,
          .speed = 1.2,
          .owner = p / 4,
      });
    } else if (p < 16) {  // large tier: ~2100 cores
      pool.machine_groups.push_back({
          .count = Scaled(170, scale),
          .cores = 8,
          .memory_mb = 64 * 1024,
          .speed = 1.1,
      });
      pool.machine_groups.push_back({
          .count = Scaled(45, scale),
          .cores = 16,
          .memory_mb = 128 * 1024,
          .speed = 1.2,
      });
    } else {  // small tier: ~390 cores, near its round-robin load share
      pool.machine_groups.push_back({
          .count = Scaled(42, scale),
          .cores = 8,
          .memory_mb = 64 * 1024,
          .speed = 0.9,
      });
      pool.machine_groups.push_back({
          .count = Scaled(4, scale),
          .cores = 16,
          .memory_mb = 128 * 1024,
          .speed = 1.0,
      });
    }
    config.pools.push_back(std::move(pool));
  }
  return config;
}

// High-priority burst streams: each stream is pinned to a small, distinct
// set of pools (§2.3's pool-affine latency-sensitive jobs). During a burst
// the offered load exceeds the target pools' combined capacity by ~50%, so
// those pools saturate, preempt their low-priority work, and build a
// high-priority backlog that keeps victims suspended well past the burst
// itself — the paper's hours-to-days suspensions.
std::vector<workload::BurstStreamConfig> BaseBursts(double scale) {
  std::vector<workload::BurstStreamConfig> bursts;
  for (int s = 0; s < 3; ++s) {
    workload::BurstStreamConfig burst;
    burst.owner = s;
    burst.jobs_per_minute_on = 11.0 * scale;
    burst.jobs_per_minute_off = 0.05 * scale;
    // The on/off process drives the year-long scenario; the week-long
    // evaluation scenarios override this with scheduled windows (the paper
    // evaluates a window chosen because it captures "a typical burst of
    // high-priority jobs", §3.1).
    burst.mean_burst_minutes = 36 * 60;
    burst.mean_gap_minutes = 4 * 24 * 60;
    for (int p = 0; p < 4; ++p) {
      burst.target_pools.emplace_back(
          static_cast<PoolId::ValueType>(s * 4 + p));
    }
    bursts.push_back(std::move(burst));
  }
  return bursts;
}

workload::GeneratorConfig BaseWorkload(double scale, std::uint64_t seed) {
  workload::GeneratorConfig config;
  config.seed = seed;
  config.duration = kTicksPerWeek;
  config.num_pools = 20;

  // ~40% average utilization at the base cluster size (low base ~31%,
  // bursty high-priority work adds the rest).
  config.low_jobs_per_minute = 14.0 * scale;
  config.low_runtime.lognormal_mu = std::log(100.0);  // 100-minute median
  config.low_runtime.lognormal_sigma = 1.2;
  config.low_runtime.tail_probability = 0.015;
  config.low_runtime.tail_alpha = 1.1;
  config.low_runtime.min_minutes = 2;
  config.low_runtime.max_minutes = 100000;

  // High-priority (owner) chip-simulation batches: wider, moderate length.
  config.high_runtime.lognormal_mu = std::log(120.0);
  config.high_runtime.lognormal_sigma = 0.8;
  config.high_runtime.tail_probability = 0.002;
  config.high_runtime.tail_alpha = 1.3;
  config.high_runtime.min_minutes = 5;
  config.high_runtime.max_minutes = 3000;

  // Sites: each virtual pool manager is connected to the four medium pools
  // its owner group's bursts target, one large pool, and one small pool
  // (plus a fourth site spanning the remaining large/small pools). The
  // burst-affine structure is what makes a *random* rescheduling choice
  // risky: most of a victim's alternate pools belong to the same burst.
  config.sites = {
      {PoolId(0), PoolId(1), PoolId(2), PoolId(3), PoolId(12), PoolId(16)},
      {PoolId(4), PoolId(5), PoolId(6), PoolId(7), PoolId(13), PoolId(17)},
      {PoolId(8), PoolId(9), PoolId(10), PoolId(11), PoolId(14), PoolId(18)},
      {PoolId(1), PoolId(5), PoolId(9), PoolId(15), PoolId(19)},
  };

  config.bursts = BaseBursts(scale);
  return config;
}

double EnvScale(const char* name, double fallback) {
  if (const char* value = std::getenv(name)) {
    const double parsed = std::atof(value);
    if (parsed > 0 && parsed <= 1.0) return parsed;
  }
  return fallback;
}

}  // namespace

Scenario NormalLoadScenario(double scale, std::uint64_t seed) {
  Scenario scenario{BaseCluster(scale), BaseWorkload(scale, seed)};
  // The evaluated week contains one staggered 36-hour burst per owner
  // group (deterministic windows; see BurstStreamConfig::scheduled_bursts).
  for (std::size_t s = 0; s < scenario.workload.bursts.size(); ++s) {
    scenario.workload.bursts[s].scheduled_bursts = {
        {.start_minute = 1000.0 + 2600.0 * static_cast<double>(s),
         .length_minutes = 24.0 * 60.0}};
  }
  return scenario;
}

Scenario HighLoadScenario(double scale, std::uint64_t seed) {
  Scenario scenario = NormalLoadScenario(scale, seed);
  scenario.cluster = scenario.cluster.WithHalvedCapacity();
  return scenario;
}

Scenario HighSuspensionScenario(double scale, std::uint64_t seed) {
  Scenario scenario = NormalLoadScenario(scale, seed);
  // Many short, sharp, staggered bursts, one stream per medium pool: each
  // burst preempts that pool's running low-priority population, so over the
  // week a large fraction of all low-priority jobs is suspended at least
  // once — without driving the system into a standing backlog.
  scenario.workload.bursts.clear();
  for (int p = 0; p < 12; ++p) {
    workload::BurstStreamConfig burst;
    burst.owner = p / 4;  // the group owning this pool's machines
    // ~2x a single medium pool's capacity during the burst.
    burst.jobs_per_minute_on = 5.0 * scale;
    burst.jobs_per_minute_off = 0.0;
    burst.target_pools = {PoolId(static_cast<PoolId::ValueType>(p))};
    // 4-hour bursts every 12 hours, staggered across pools.
    for (int k = 0; k < 14; ++k) {
      burst.scheduled_bursts.push_back(
          {.start_minute = 60.0 * p + 720.0 * k, .length_minutes = 240.0});
    }
    scenario.workload.bursts.push_back(std::move(burst));
  }
  return scenario;
}

Scenario YearLongScenario(double scale, std::uint64_t seed) {
  Scenario scenario = NormalLoadScenario(scale, seed);
  scenario.workload.duration = MinutesToTicks(500000);  // as in Fig. 4
  // Over a full year bursts arrive via the random on/off process (the
  // scheduled windows only describe the paper's chosen busy week), with
  // gaps sparse enough to keep annual average utilization near ~40%.
  for (auto& burst : scenario.workload.bursts) {
    burst.scheduled_bursts.clear();
    burst.mean_gap_minutes = 6 * 24 * 60;
  }
  // Submission follows the working day over long horizons.
  scenario.workload.diurnal_amplitude = 0.3;
  return scenario;
}

Scenario LargePoolScenario(double scale, std::uint64_t seed) {
  NETBATCH_CHECK(scale > 0 && scale <= 1.0, "scale must be in (0, 1]");
  Scenario scenario;
  constexpr int kPools = 4;
  scenario.cluster.pools.reserve(kPools);
  for (int p = 0; p < kPools; ++p) {
    cluster::PoolConfig pool;
    // 10k machines per pool at scale 1 (88k cores). Pools 0/1 are owned by
    // the groups whose bursts target them, so bursts preempt there.
    pool.machine_groups.push_back({
        .count = Scaled(9000, scale),
        .cores = 8,
        .memory_mb = 64 * 1024,
        .speed = 1.0,
        .owner = p < 2 ? p : -1,
    });
    pool.machine_groups.push_back({
        .count = Scaled(1000, scale),
        .cores = 16,
        .memory_mb = 128 * 1024,
        .speed = 1.2,
        .owner = p < 2 ? p : -1,
    });
    scenario.cluster.pools.push_back(std::move(pool));
  }

  workload::GeneratorConfig& w = scenario.workload;
  w.seed = seed;
  w.num_pools = kPools;
  w.duration = MinutesToTicks(180);
  // ~55% utilization across 352k cores at scale 1.
  w.low_jobs_per_minute = 930.0 * scale;
  w.low_runtime.lognormal_mu = std::log(60.0);
  w.low_runtime.lognormal_sigma = 1.0;
  w.low_runtime.tail_probability = 0.01;
  w.low_runtime.tail_alpha = 1.2;
  w.low_runtime.min_minutes = 2;
  w.low_runtime.max_minutes = 20000;
  w.high_runtime.lognormal_mu = std::log(30.0);
  w.high_runtime.lognormal_sigma = 0.8;
  w.high_runtime.tail_probability = 0.0;
  w.high_runtime.min_minutes = 5;
  w.high_runtime.max_minutes = 2000;
  // One hour-long burst per owner group, staggered so each lands on top of
  // the base load and saturates its single target pool (preemption + a
  // standing low-priority backlog — the placement engine's worst case).
  for (int s = 0; s < 2; ++s) {
    workload::BurstStreamConfig burst;
    burst.owner = s;
    burst.jobs_per_minute_on = 600.0 * scale;
    burst.jobs_per_minute_off = 0.0;
    burst.target_pools = {PoolId(static_cast<PoolId::ValueType>(s))};
    burst.scheduled_bursts = {
        {.start_minute = 30.0 + 60.0 * s, .length_minutes = 60.0}};
    w.bursts.push_back(std::move(burst));
  }
  return scenario;
}

Scenario ScenarioFromWorkload(workload::GeneratorConfig workload,
                              double scale, double target_utilization) {
  NETBATCH_CHECK(scale > 0, "scale must be positive");
  NETBATCH_CHECK(target_utilization > 0 && target_utilization <= 1.0,
                 "target utilization must be in (0, 1]");
  workload.low_jobs_per_minute *= scale;
  for (auto& burst : workload.bursts) {
    burst.jobs_per_minute_on *= scale;
    burst.jobs_per_minute_off *= scale;
  }

  // Size the cluster so offered load / total cores = target utilization.
  const double offered = workload::OfferedCoreMinutesPerMinute(workload);
  const auto pools = static_cast<std::int64_t>(workload.num_pools);
  constexpr std::int32_t kCoresPerMachine = 8;
  const std::int64_t total_cores = std::max<std::int64_t>(
      static_cast<std::int64_t>(std::llround(offered / target_utilization)),
      pools * kCoresPerMachine);
  const auto machines_per_pool = static_cast<std::int32_t>(std::max<std::int64_t>(
      1, (total_cores / kCoresPerMachine + pools - 1) / pools));

  Scenario scenario;
  scenario.cluster.pools.reserve(workload.num_pools);
  for (std::uint32_t p = 0; p < workload.num_pools; ++p) {
    cluster::PoolConfig pool;
    cluster::MachineGroupConfig group;
    group.count = machines_per_pool;
    group.cores = kCoresPerMachine;
    group.memory_mb = std::max<std::int64_t>(
        64 * 1024, workload.memory_per_core_mb_hi * kCoresPerMachine);
    group.speed = 1.0;
    // Burst-targeted pools belong to the submitting business group.
    for (const auto& burst : workload.bursts) {
      if (burst.owner == workload::kNoOwner) continue;
      if (std::find(burst.target_pools.begin(), burst.target_pools.end(),
                    PoolId(p)) != burst.target_pools.end()) {
        group.owner = burst.owner;
        break;
      }
    }
    pool.machine_groups.push_back(group);
    scenario.cluster.pools.push_back(std::move(pool));
  }
  scenario.workload = std::move(workload);
  return scenario;
}

std::vector<std::vector<Ticks>> BuildTransferMatrix(const Scenario& scenario,
                                                    Ticks local,
                                                    Ticks cross_site) {
  const std::size_t pools = scenario.cluster.pools.size();
  std::vector<std::vector<Ticks>> matrix(pools,
                                         std::vector<Ticks>(pools, cross_site));
  for (std::size_t p = 0; p < pools; ++p) matrix[p][p] = 0;
  for (const auto& site : scenario.workload.sites) {
    for (PoolId a : site) {
      for (PoolId b : site) {
        if (a != b) matrix[a.value()][b.value()] = local;
      }
    }
  }
  return matrix;
}

double DefaultScale() { return EnvScale("NB_SCALE", 0.25); }

double YearLongDefaultScale() { return EnvScale("NB_YEAR_SCALE", 0.08); }

}  // namespace netbatch::runner

// Experiment configuration files.
//
// A small INI-style format so experiment definitions can live in version
// control next to their results instead of in shell history:
//
//   # table2.ini
//   [experiment]
//   scenario   = high        ; normal | high | highsusp | year
//   scale      = 0.25
//   seed       = 42
//   scheduler  = rr          ; rr | util
//   staleness_min = 0
//   policy     = ResSusUtil  ; five paper names or DupSusUtil
//   threshold_min = 30
//   overhead_min  = 0
//   checkpoint_min = 0
//
//   [outages]
//   mtbf_min = 0
//   mttr_min = 240
//
// Unknown sections or keys abort (a typo must not silently fall back to a
// default mid-sweep). Lines starting with '#' or ';' are comments; inline
// comments after values are allowed with " ;".
#pragma once

#include <iosfwd>
#include <string>

#include "runner/experiment.h"

namespace netbatch::runner {

// The parsed experiment plus the policy name (which may be an extension
// name like DupSusUtil that ExperimentConfig::policy cannot express).
struct LoadedExperiment {
  ExperimentConfig config;
  std::string policy_name = "NoRes";
};

LoadedExperiment LoadExperiment(std::istream& in);
LoadedExperiment LoadExperimentFile(const std::string& path);

// ---- workload presets ------------------------------------------------------
//
// A *workload preset* is a GeneratorConfig serialized as INI — the output of
// `netbatch_cli calibrate --emit-preset` (calib/fit.h) and a first-class
// scenario source: anywhere a scenario name is accepted (`--scenario=`,
// `scenario =` in an experiment INI), a preset file path loads the fitted
// workload and sizes a matching cluster via ScenarioFromWorkload. Layout:
//
//   [workload]            ; rates, pools, cores/memory demands, task size
//   [runtime.low]         ; lognormal body + bounded-Pareto tail, bounds
//   [runtime.high]
//   [burst]               ; repeatable — one section per high-prio stream
//   [sites]               ; repeatable `site =` pool lists
//
// Round-trips exactly: Load(Write(config)) == config, field for field
// (doubles are written with max_digits10 precision). Unknown sections or
// keys abort, as with experiment files.

void WriteWorkloadPreset(std::ostream& out,
                         const workload::GeneratorConfig& config);
void WriteWorkloadPresetFile(const std::string& path,
                             const workload::GeneratorConfig& config);

workload::GeneratorConfig LoadWorkloadPreset(std::istream& in);
workload::GeneratorConfig LoadWorkloadPresetFile(const std::string& path);

// Scenario resolution (builtin name or preset file path) lives in
// runner/parse.h with the other name -> configuration helpers.

}  // namespace netbatch::runner

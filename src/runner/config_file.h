// Experiment configuration files.
//
// A small INI-style format so experiment definitions can live in version
// control next to their results instead of in shell history:
//
//   # table2.ini
//   [experiment]
//   scenario   = high        ; normal | high | highsusp | year
//   scale      = 0.25
//   seed       = 42
//   scheduler  = rr          ; rr | util
//   staleness_min = 0
//   policy     = ResSusUtil  ; five paper names or DupSusUtil
//   threshold_min = 30
//   overhead_min  = 0
//   checkpoint_min = 0
//
//   [outages]
//   mtbf_min = 0
//   mttr_min = 240
//
// Unknown sections or keys abort (a typo must not silently fall back to a
// default mid-sweep). Lines starting with '#' or ';' are comments; inline
// comments after values are allowed with " ;".
#pragma once

#include <iosfwd>
#include <string>

#include "runner/experiment.h"

namespace netbatch::runner {

// The parsed experiment plus the policy name (which may be an extension
// name like DupSusUtil that ExperimentConfig::policy cannot express).
struct LoadedExperiment {
  ExperimentConfig config;
  std::string policy_name = "NoRes";
};

LoadedExperiment LoadExperiment(std::istream& in);
LoadedExperiment LoadExperimentFile(const std::string& path);

}  // namespace netbatch::runner

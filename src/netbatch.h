// NetBatchSim: umbrella header.
//
// Pulls in the full public API: the cluster substrate, schedulers,
// rescheduling policies, workload generation, metrics, the experiment
// runner, and the serving layer (SchedulerCore, wire protocol, netbatchd).
// Include individual headers instead when compile time matters.
#pragma once

#include "analysis/pool_imbalance.h"   // IWYU pragma: export
#include "analysis/queueing.h"         // IWYU pragma: export
#include "analysis/suspension.h"       // IWYU pragma: export
#include "analysis/timeseries.h"       // IWYU pragma: export
#include "calib/fit.h"                 // IWYU pragma: export
#include "calib/goodness.h"            // IWYU pragma: export
#include "cluster/config.h"            // IWYU pragma: export
#include "cluster/simulation.h"        // IWYU pragma: export
#include "common/counters.h"           // IWYU pragma: export
#include "common/histogram.h"          // IWYU pragma: export
#include "common/table.h"              // IWYU pragma: export
#include "core/load_predictor.h"       // IWYU pragma: export
#include "core/policies.h"             // IWYU pragma: export
#include "core/pool_selector.h"        // IWYU pragma: export
#include "metrics/chrome_trace.h"      // IWYU pragma: export
#include "metrics/collector.h"         // IWYU pragma: export
#include "metrics/event_log.h"         // IWYU pragma: export
#include "metrics/report.h"            // IWYU pragma: export
#include "metrics/report_json.h"       // IWYU pragma: export
#include "runner/config_file.h"        // IWYU pragma: export
#include "runner/experiment.h"         // IWYU pragma: export
#include "runner/parse.h"              // IWYU pragma: export
#include "runner/scenarios.h"          // IWYU pragma: export
#include "runner/sweep.h"              // IWYU pragma: export
#include "sched/round_robin.h"         // IWYU pragma: export
#include "sched/utilization.h"         // IWYU pragma: export
#include "service/daemon.h"            // IWYU pragma: export
#include "service/protocol.h"          // IWYU pragma: export
#include "service/scheduler_core.h"    // IWYU pragma: export
#include "workload/generator.h"        // IWYU pragma: export
#include "workload/swf.h"              // IWYU pragma: export
#include "workload/trace_io.h"         // IWYU pragma: export
#include "workload/transform.h"        // IWYU pragma: export

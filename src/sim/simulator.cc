#include "sim/simulator.h"

#include <limits>
#include <utility>

namespace netbatch::sim {

EventSeq Simulator::ScheduleAt(Ticks at, std::function<void()> fn) {
  NETBATCH_CHECK(at >= now_, "cannot schedule an event in the past");
  return queue_.Schedule(at, std::move(fn));
}

EventSeq Simulator::ScheduleAfter(Ticks delay, std::function<void()> fn) {
  NETBATCH_CHECK(delay >= 0, "negative event delay");
  return queue_.Schedule(now_ + delay, std::move(fn));
}

Ticks Simulator::RunUntil(Ticks until) {
  stop_requested_ = false;
  while (!queue_.Empty() && !stop_requested_) {
    if (queue_.PeekTime() > until) break;
    auto fired = queue_.Pop();
    NETBATCH_CHECK(fired.time >= now_, "event queue time went backwards");
    now_ = fired.time;
    ++fired_events_;
    fired.fn();
  }
  return now_;
}

Ticks Simulator::RunToCompletion() {
  return RunUntil(std::numeric_limits<Ticks>::max());
}

}  // namespace netbatch::sim

#include "sim/simulator.h"

#include <limits>
#include <utility>

namespace netbatch::sim {

EventSeq Simulator::ScheduleAt(Ticks at, const Event& event) {
  NETBATCH_CHECK(at >= now_, "cannot schedule an event in the past");
  NETBATCH_CHECK(event.kind != kCallbackKind,
                 "kind 0xffff is reserved for callback events");
  return queue_.Schedule(at, event);
}

EventSeq Simulator::ScheduleAfter(Ticks delay, const Event& event) {
  NETBATCH_CHECK(delay >= 0, "negative event delay");
  return ScheduleAt(now_ + delay, event);
}

std::uint32_t Simulator::AcquireCallbackSlot(std::function<void()> fn) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    callbacks_[slot] = std::move(fn);
    return slot;
  }
  callbacks_.push_back(std::move(fn));
  return static_cast<std::uint32_t>(callbacks_.size() - 1);
}

void Simulator::ReleaseCallbackSlot(std::uint32_t slot) {
  callbacks_[slot] = nullptr;
  free_slots_.push_back(slot);
}

EventSeq Simulator::ScheduleAt(Ticks at, std::function<void()> fn) {
  NETBATCH_CHECK(at >= now_, "cannot schedule an event in the past");
  Event event;
  event.kind = kCallbackKind;
  event.aux = AcquireCallbackSlot(std::move(fn));
  return queue_.Schedule(at, event);
}

EventSeq Simulator::ScheduleAfter(Ticks delay, std::function<void()> fn) {
  NETBATCH_CHECK(delay >= 0, "negative event delay");
  return ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::Cancel(EventSeq seq) {
  const std::optional<Event> removed = queue_.Cancel(seq);
  if (removed.has_value() && removed->kind == kCallbackKind) {
    ReleaseCallbackSlot(removed->aux);
  }
}

Ticks Simulator::RunUntil(Ticks until) {
  stop_requested_ = false;
  while (!queue_.Empty() && !stop_requested_) {
    if (queue_.PeekTime() > until) break;
    const Event event = queue_.Pop();
    NETBATCH_CHECK(event.time >= now_, "event queue time went backwards");
    now_ = event.time;
    ++fired_events_;
    if (event.kind == kCallbackKind) {
      std::function<void()> fn = std::move(callbacks_[event.aux]);
      ReleaseCallbackSlot(event.aux);
      fn();
    } else {
      NETBATCH_CHECK(dispatcher_ != nullptr,
                     "typed event fired with no dispatcher attached");
      dispatcher_->Dispatch(event);
    }
  }
  return now_;
}

Ticks Simulator::RunToCompletion() {
  return RunUntil(std::numeric_limits<Ticks>::max());
}

}  // namespace netbatch::sim

// The simulation driver: a clock plus the event loop.
//
// Mirrors the role of ASCA's engine (paper §3.1): components schedule
// callbacks, the driver fires them in deterministic time order, and periodic
// samplers observe system state once per simulated minute.
#pragma once

#include <functional>

#include "common/check.h"
#include "common/time.h"
#include "sim/event_queue.h"

namespace netbatch::sim {

class Simulator {
 public:
  Ticks Now() const { return now_; }

  // Schedules `fn` at absolute time `at` (must be >= Now()).
  EventSeq ScheduleAt(Ticks at, std::function<void()> fn);

  // Schedules `fn` `delay` ticks from now (delay >= 0).
  EventSeq ScheduleAfter(Ticks delay, std::function<void()> fn);

  void Cancel(EventSeq seq) { queue_.Cancel(seq); }

  // Runs until the queue drains or the clock passes `until`
  // (events at exactly `until` still fire). Returns the final clock value.
  Ticks RunUntil(Ticks until);

  // Runs until the event queue is empty.
  Ticks RunToCompletion();

  // Stops the loop after the current event returns; used by samplers that
  // detect quiescence.
  void RequestStop() { stop_requested_ = true; }

  std::size_t PendingEvents() const { return queue_.LiveCount(); }
  std::uint64_t FiredEvents() const { return fired_events_; }

 private:
  Ticks now_ = 0;
  EventQueue queue_;
  bool stop_requested_ = false;
  std::uint64_t fired_events_ = 0;
};

}  // namespace netbatch::sim

// The simulation driver: a clock plus the event loop.
//
// Mirrors the role of ASCA's engine (paper §3.1): components schedule typed
// POD events, the driver pops them in deterministic (time, seq) order and
// hands each to the EventDispatcher, which switches on Event::kind. The hot
// path never allocates: an event is 48 bytes copied by value through a flat
// heap.
//
// For code that genuinely needs an ad-hoc closure (tests, periodic
// samplers), ScheduleAt/ScheduleAfter also accept a one-shot
// std::function<void()>; those are parked in a slot-recycled side table and
// never reach the dispatcher. The engine's per-event path does not use them.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/time.h"
#include "sim/event_queue.h"

namespace netbatch::sim {

// Receives every typed event the Simulator pops. Implemented by the
// simulation engine as a single switch over Event::kind.
class EventDispatcher {
 public:
  virtual void Dispatch(const Event& event) = 0;

 protected:
  ~EventDispatcher() = default;
};

class Simulator {
 public:
  // Reserved Event::kind marking a one-shot callback event; handled by the
  // Simulator itself and never passed to the dispatcher.
  static constexpr std::uint16_t kCallbackKind = 0xffffu;

  Ticks Now() const { return now_; }

  // The dispatcher receives every typed event; must outlive the simulator.
  // Required before the first typed event fires.
  void set_dispatcher(EventDispatcher* dispatcher) {
    dispatcher_ = dispatcher;
  }

  // Schedules a typed event at absolute time `at` (must be >= Now()).
  EventSeq ScheduleAt(Ticks at, const Event& event);

  // Schedules a typed event `delay` ticks from now (delay >= 0).
  EventSeq ScheduleAfter(Ticks delay, const Event& event);

  // One-shot callback convenience (tests, samplers): `fn` fires once at the
  // given time. The callback is stored in a recycled slot, so steady-state
  // use does not grow memory.
  EventSeq ScheduleAt(Ticks at, std::function<void()> fn);
  EventSeq ScheduleAfter(Ticks delay, std::function<void()> fn);

  void Cancel(EventSeq seq);

  // Runs until the queue drains or the clock passes `until`
  // (events at exactly `until` still fire). Returns the final clock value.
  Ticks RunUntil(Ticks until);

  // Runs until the event queue is empty.
  Ticks RunToCompletion();

  // Stops the loop after the current event returns; used when the engine
  // detects quiescence.
  void RequestStop() { stop_requested_ = true; }

  // Pre-sizes the event heap (e.g. for the trace size).
  void Reserve(std::size_t events) { queue_.Reserve(events); }

  // Time of the earliest live event, or nullopt when the queue is empty.
  // Non-const because peeking lazily drops cancelled heap tops. Used by the
  // sharded coordinator to size conservative sync windows.
  std::optional<Ticks> NextEventTime() {
    if (queue_.Empty()) return std::nullopt;
    return queue_.PeekTime();
  }

  std::size_t PendingEvents() const { return queue_.LiveCount(); }
  std::uint64_t FiredEvents() const { return fired_events_; }
  std::size_t QueueMemoryBytes() const {
    return queue_.MemoryFootprintBytes();
  }

 private:
  std::uint32_t AcquireCallbackSlot(std::function<void()> fn);
  void ReleaseCallbackSlot(std::uint32_t slot);

  Ticks now_ = 0;
  EventQueue queue_;
  EventDispatcher* dispatcher_ = nullptr;
  bool stop_requested_ = false;
  std::uint64_t fired_events_ = 0;

  // One-shot callback side table; slots are recycled after fire/cancel.
  std::vector<std::function<void()>> callbacks_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace netbatch::sim

// Periodic state sampling, ASCA-style.
//
// The paper's simulator "samples at each minute the current states of all
// NetBatch components ... and outputs the results as logs for post-analysis"
// (§3.1). PeriodicSampler re-creates that for library users and tests: it
// invokes a callback on a fixed period and stops itself once a
// stop-predicate holds. Each tick rides the simulator's one-shot callback
// path (a recycled slot, no steady-state allocation).
//
// The simulation engine itself does not use this class: its sampling and
// audit ticks are typed events handled in NetBatchSimulation::Dispatch so
// the hot loop stays a single switch.
#pragma once

#include <functional>

#include "common/time.h"
#include "sim/simulator.h"

namespace netbatch::sim {

class PeriodicSampler {
 public:
  // `on_sample(now)` fires every `period` ticks starting at `start`.
  PeriodicSampler(Simulator& sim, Ticks start, Ticks period,
                  std::function<void(Ticks)> on_sample);

  // Stops future samples (cancels the pending tick event).
  void Stop();

  // Stops automatically once `pred(now)` returns true (checked after each
  // sample). Used to end sampling when the last job completes.
  void StopWhen(std::function<bool(Ticks)> pred);

  std::int64_t samples_taken() const { return samples_taken_; }

 private:
  void Fire(Ticks now);
  void ScheduleNext(Ticks at);

  Simulator* sim_;
  Ticks period_;
  std::function<void(Ticks)> on_sample_;
  std::function<bool(Ticks)> stop_pred_;
  EventSeq pending_ = kNoEvent;
  bool active_ = true;
  std::int64_t samples_taken_ = 0;
};

}  // namespace netbatch::sim

// Deterministic discrete-event queue.
//
// Events are ordered by (time, insertion sequence): two events at the same
// tick always fire in the order they were scheduled, which makes every run
// bit-for-bit reproducible regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/time.h"

namespace netbatch::sim {

// An event handle; used to cancel pending events. Handles are never reused.
using EventSeq = std::uint64_t;

// Sentinel for "no event"; cancelling it is a no-op.
inline constexpr EventSeq kNoEvent = ~EventSeq{0};

// A min-heap of (time, seq) -> callback. Cancellation is lazy: cancelled
// events stay in the heap and are dropped when they reach the top, keeping
// Cancel() O(1) amortized.
class EventQueue {
 public:
  // Schedules `fn` at absolute time `at`; returns a handle for Cancel().
  EventSeq Schedule(Ticks at, std::function<void()> fn);

  // Marks a pending event as cancelled. Cancelling an already-fired or
  // unknown handle is a no-op.
  void Cancel(EventSeq seq);

  // True when no live (non-cancelled) events remain.
  bool Empty() const { return LiveCount() == 0; }
  std::size_t LiveCount() const { return pending_.size(); }

  // Time of the earliest live event; requires !Empty().
  Ticks PeekTime();

  // Removes and returns the earliest live event's (time, callback).
  // Requires !Empty().
  struct Fired {
    Ticks time;
    std::function<void()> fn;
  };
  Fired Pop();

 private:
  struct Entry {
    Ticks time;
    EventSeq seq;
    std::function<void()> fn;
  };

  // std::push_heap/pop_heap comparator: true when `a` fires after `b`.
  static bool Later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  // Drops cancelled entries off the top of the heap.
  void DropCancelledTop();

  std::vector<Entry> heap_;
  std::unordered_set<EventSeq> pending_;    // live events currently in heap_
  std::unordered_set<EventSeq> cancelled_;  // awaiting lazy removal
  EventSeq next_seq_ = 0;
};

}  // namespace netbatch::sim

// Deterministic discrete-event queue over typed, allocation-free events.
//
// Events are small POD payloads ordered by (time, insertion sequence): two
// events at the same tick always fire in the order they were scheduled,
// which makes every run bit-for-bit reproducible regardless of heap
// internals.
//
// There is no per-event heap allocation and no hash-set bookkeeping. The
// heap itself holds only 16-byte (time, seq, handle) keys while payloads
// sit still in a slot-recycled table; the root lives at index 3 so every
// 4-child sibling group is one 64-byte-aligned cache line, and sift-down
// prefetches the grandchild groups (4 contiguous lines) to hide the
// dependent-miss chain. Cancel() is an O(1) flag on the table entry;
// flagged keys are dropped when they surface, and the heap is compacted
// whenever cancelled entries outnumber live ones, so memory stays
// proportional to the high-water number of *live* events — not the total
// scheduled — even under heavy schedule/cancel churn.
#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace netbatch::sim {

// An event handle: (generation << 32 | table index), opaque to callers.
// Only values returned by Schedule() are valid arguments to Cancel().
using EventSeq = std::uint64_t;

// Sentinel for "no event"; cancelling it is a no-op.
inline constexpr EventSeq kNoEvent = ~EventSeq{0};

// One scheduled event. `time` and `seq` form the ordering key and are
// assigned by the queue; everything else is an opaque payload the dispatcher
// interprets. `kind` selects the dispatch case, `stamp` carries a generation
// stamp so a dispatcher can drop events invalidated after scheduling with a
// single integer compare, and the id operands name the entities involved.
struct Event {
  Ticks time = 0;             // absolute fire time (set by the queue)
  std::uint64_t seq = 0;      // insertion sequence (set by the queue)
  std::uint64_t stamp = 0;    // generation stamp checked at dispatch
  JobId job;
  PoolId pool;
  MachineId machine;
  std::uint32_t aux = 0;      // free-form operand (e.g. a callback slot)
  std::uint32_t handle = 0;   // payload-table index (set by the queue)
  std::uint16_t kind = 0;     // dispatcher-defined event type
};
static_assert(std::is_trivially_copyable_v<Event>,
              "Event must stay a POD payload");
static_assert(sizeof(Event) <= 48, "Event payload grew past a cache-ish 48B");

// Minimal 64-byte-aligned allocator so sibling groups line up with cache
// lines (std::allocator only guarantees alignof(T)).
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;
  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{64}));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t{64});
  }
  bool operator==(const CacheAlignedAllocator&) const { return true; }
};

// A flat 4-ary min-heap of event keys, keyed by (time, seq).
class EventQueue {
 public:
  // Schedules `ev` at absolute time `at`; returns a handle for Cancel().
  // `ev.time`, `ev.seq`, and `ev.handle` are overwritten by the queue.
  EventSeq Schedule(Ticks at, Event ev);

  // Logically removes a pending event and returns it. Cancelling an
  // already-fired, cancelled, or unknown handle is a no-op (nullopt).
  std::optional<Event> Cancel(EventSeq handle);

  bool Empty() const { return live_ == 0; }
  std::size_t LiveCount() const { return live_; }

  // Time of the earliest live event; requires !Empty(). Non-const because
  // it sheds cancelled keys that have surfaced at the top of the heap.
  Ticks PeekTime();

  // Removes and returns the earliest live event. Requires !Empty().
  Event Pop();

  // Pre-sizes internal storage for `events` simultaneously-live events.
  void Reserve(std::size_t events);

  // Bytes of internal storage currently held. Regression tests use this to
  // assert memory stays proportional to live events under cancel churn.
  std::size_t MemoryFootprintBytes() const;

 private:
  // Heap key: everything a sift needs to order and identify an event. The
  // payload stays put in payloads_[handle] while keys move. `rank` packs
  // (time << 32 | seq) so ordering is one native unsigned compare; that
  // caps event times at 2^32 ticks (~136 years of simulated time at 60
  // ticks/minute) and sequences at 2^32 scheduled events — both enforced
  // with a hard CHECK in Schedule(), far beyond any realistic run.
  struct Key {
    std::uint64_t rank;
    std::uint32_t handle;
    std::uint32_t pad = 0;
  };
  static_assert(sizeof(Key) == 16, "4 keys must fill one cache line");

  // The root's index: groups [4k, 4k+3] (k >= 1) are the sibling groups,
  // each exactly one 64-byte line; children of i are [4i-8, 4i-5] and the
  // parent of i is i/4 + 2. Slots 0-2 are never used.
  static constexpr std::size_t kRoot = 3;

  // meta_[handle] packs (generation << 1 | cancelled). The generation bumps
  // when the entry leaves the heap, so a stale EventSeq fails the compare
  // instead of aliasing the slot's next tenant; handles are only recycled
  // once their key has left the heap, so an in-heap key's handle is always
  // unambiguous.
  static constexpr std::uint32_t kCancelledBit = 1;


  bool Cancelled(std::uint32_t handle) const {
    return (meta_[handle] & kCancelledBit) != 0;
  }
  // Bumps the generation and returns the handle to the free list.
  void ReleaseHandle(std::uint32_t handle);
  // Appends a key past the current last slot and restores the heap.
  void PushKey(Key key);
  // Pops the heap top (the key only), refilling the hole from the bottom.
  Key PopTopKey();
  // Sheds cancelled keys that have reached the heap top.
  void DropCancelledTop();
  // Rebuilds the heap without the cancelled keys once they dominate.
  void MaybeCompact();
  void SiftUp(std::size_t slot);
  void SiftDown(std::size_t slot);

  // Keys at [kRoot, heap_.size()); heap_.size() - kRoot keys when non-empty.
  std::vector<Key, CacheAlignedAllocator<Key>> heap_;
  std::vector<Event> payloads_;      // indexed by handle; high-water sized
  std::vector<std::uint32_t> meta_;  // generation<<1 | cancelled
  std::vector<std::uint32_t> free_;  // recycled handle-table indices
  std::size_t live_ = 0;
  std::size_t cancelled_in_heap_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace netbatch::sim

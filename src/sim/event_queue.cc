#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace netbatch::sim {

EventSeq EventQueue::Schedule(Ticks at, std::function<void()> fn) {
  const EventSeq seq = next_seq_++;
  heap_.push_back(Entry{at, seq, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later);
  pending_.insert(seq);
  return seq;
}

void EventQueue::Cancel(EventSeq seq) {
  // Only events still in the heap can be cancelled; this makes cancelling an
  // already-fired handle a true no-op (no bookkeeping leak).
  if (pending_.erase(seq) > 0) cancelled_.insert(seq);
}

void EventQueue::DropCancelledTop() {
  while (!heap_.empty() && cancelled_.contains(heap_.front().seq)) {
    cancelled_.erase(heap_.front().seq);
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    heap_.pop_back();
  }
}

Ticks EventQueue::PeekTime() {
  DropCancelledTop();
  NETBATCH_CHECK(!heap_.empty(), "PeekTime() on empty event queue");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::Pop() {
  DropCancelledTop();
  NETBATCH_CHECK(!heap_.empty(), "Pop() on empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(entry.seq);
  return Fired{entry.time, std::move(entry.fn)};
}

}  // namespace netbatch::sim

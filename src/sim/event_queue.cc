#include "sim/event_queue.h"

#include <algorithm>

#include "common/check.h"

namespace netbatch::sim {

EventSeq EventQueue::Schedule(Ticks at, Event ev) {
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    NETBATCH_CHECK(payloads_.size() < 0xffffffffu,
                   "event handle table exhausted");
    idx = static_cast<std::uint32_t>(payloads_.size());
    payloads_.emplace_back();
    meta_.push_back(0);
  }
  NETBATCH_CHECK(at >= 0 && at <= 0xffffffff,
                 "event time outside the queue's 2^32-tick range");
  NETBATCH_CHECK(next_seq_ <= 0xffffffffu, "event sequence counter wrapped");
  ev.time = at;
  ev.seq = next_seq_++;
  ev.handle = idx;
  payloads_[idx] = ev;
  PushKey(Key{(static_cast<std::uint64_t>(at) << 32) |
                  static_cast<std::uint32_t>(ev.seq),
              idx});
  ++live_;
  return (static_cast<EventSeq>(meta_[idx] >> 1) << 32) | idx;
}

std::optional<Event> EventQueue::Cancel(EventSeq handle) {
  const std::uint32_t idx = static_cast<std::uint32_t>(handle);
  const std::uint32_t generation = static_cast<std::uint32_t>(handle >> 32);
  if (idx >= meta_.size()) return std::nullopt;  // unknown / kNoEvent
  if ((meta_[idx] >> 1) != generation || Cancelled(idx)) {
    return std::nullopt;  // already fired or cancelled
  }
  const Event removed = payloads_[idx];
  meta_[idx] |= kCancelledBit;
  --live_;
  ++cancelled_in_heap_;
  MaybeCompact();
  return removed;
}

Ticks EventQueue::PeekTime() {
  NETBATCH_CHECK(live_ > 0, "PeekTime() on empty event queue");
  if (cancelled_in_heap_ > 0) DropCancelledTop();
  return static_cast<Ticks>(heap_[kRoot].rank >> 32);
}

Event EventQueue::Pop() {
  NETBATCH_CHECK(live_ > 0, "Pop() on empty event queue");
  if (cancelled_in_heap_ > 0) DropCancelledTop();
  // Overlap the payload fetch with the sift-down the key pop is about to do.
  __builtin_prefetch(&payloads_[heap_[kRoot].handle]);
  const Key top = PopTopKey();
  const Event out = payloads_[top.handle];
  ReleaseHandle(top.handle);
  --live_;
  return out;
}

void EventQueue::PushKey(Key key) {
  if (heap_.empty()) heap_.resize(kRoot);  // burn the pre-root slots once
  heap_.push_back(key);
  SiftUp(heap_.size() - 1);
}

EventQueue::Key EventQueue::PopTopKey() {
  const Key top = heap_[kRoot];
  const std::size_t last = heap_.size() - 1;
  if (last > kRoot) {
    heap_[kRoot] = heap_[last];
    heap_.pop_back();
    SiftDown(kRoot);
  } else {
    heap_.pop_back();
  }
  return top;
}

void EventQueue::DropCancelledTop() {
  while (Cancelled(heap_[kRoot].handle)) {
    ReleaseHandle(PopTopKey().handle);
    --cancelled_in_heap_;
  }
}

void EventQueue::ReleaseHandle(std::uint32_t handle) {
  // Bump the generation, clearing the cancelled bit.
  meta_[handle] = (meta_[handle] | kCancelledBit) + 1;
  free_.push_back(handle);
}

void EventQueue::MaybeCompact() {
  if (cancelled_in_heap_ <= live_ || heap_.size() - kRoot < 64) return;
  std::size_t kept = kRoot;
  for (std::size_t slot = kRoot; slot < heap_.size(); ++slot) {
    const Key key = heap_[slot];
    if (Cancelled(key.handle)) {
      ReleaseHandle(key.handle);
    } else {
      heap_[kept++] = key;
    }
  }
  heap_.resize(kept);
  cancelled_in_heap_ = 0;
  // Rebuild the heap property bottom-up (Floyd), starting at the parent of
  // the last key; pop order stays deterministic because the rank packs the
  // (time, seq) total order.
  if (kept > kRoot + 1) {
    for (std::size_t slot = (kept - 1) / 4 + 3; slot-- > kRoot;) {
      SiftDown(slot);
    }
  }
  if (heap_.capacity() > 4 * (heap_.size() + 64)) heap_.shrink_to_fit();
}

void EventQueue::Reserve(std::size_t events) {
  heap_.reserve(events + kRoot);
  payloads_.reserve(events);
  meta_.reserve(events);
  free_.reserve(events);
}

std::size_t EventQueue::MemoryFootprintBytes() const {
  return heap_.capacity() * sizeof(Key) +
         payloads_.capacity() * sizeof(Event) +
         meta_.capacity() * sizeof(std::uint32_t) +
         free_.capacity() * sizeof(std::uint32_t);
}

void EventQueue::SiftUp(std::size_t slot) {
  const Key moving = heap_[slot];
  while (slot > kRoot) {
    const std::size_t parent = slot / 4 + 2;
    if (moving.rank >= heap_[parent].rank) break;
    heap_[slot] = heap_[parent];
    slot = parent;
  }
  heap_[slot] = moving;
}

void EventQueue::SiftDown(std::size_t slot) {
  const std::size_t n = heap_.size();
  const Key moving = heap_[slot];
  while (true) {
    const std::size_t first = 4 * slot - 8;  // children of `slot`
    if (first >= n) break;
    // The grandchildren of `slot` are 16 contiguous keys (4 aligned cache
    // lines); pull them in while we scan the children.
    const std::size_t grand = 4 * first - 8;
    if (grand < n) {
      const char* g = reinterpret_cast<const char*>(&heap_[grand]);
      __builtin_prefetch(g);
      __builtin_prefetch(g + 64);
      __builtin_prefetch(g + 128);
      __builtin_prefetch(g + 192);
    }
    // Branchless best-child scan: random keys make "is this child smaller"
    // a coin flip, so a branchy scan eats mispredicts; single-word rank
    // compares let the compiler emit conditional moves.
    std::size_t best = first;
    std::uint64_t best_rank = heap_[first].rank;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      const std::uint64_t rank = heap_[c].rank;
      const bool smaller = rank < best_rank;
      best = smaller ? c : best;
      best_rank = smaller ? rank : best_rank;
    }
    if (best_rank >= moving.rank) break;
    heap_[slot] = heap_[best];
    slot = best;
  }
  heap_[slot] = moving;
}

}  // namespace netbatch::sim

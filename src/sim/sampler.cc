#include "sim/sampler.h"

#include <utility>

#include "common/check.h"

namespace netbatch::sim {

PeriodicSampler::PeriodicSampler(Simulator& sim, Ticks start, Ticks period,
                                 std::function<void(Ticks)> on_sample)
    : sim_(&sim), period_(period), on_sample_(std::move(on_sample)) {
  NETBATCH_CHECK(period_ > 0, "sampler period must be positive");
  ScheduleNext(start);
}

void PeriodicSampler::Stop() {
  // Idempotent: cancels the pending tick if one is armed (it never is after
  // a predicate-triggered stop — Fire clears its handle before the predicate
  // runs, so there is no stale handle to cancel by mistake).
  if (pending_ != kNoEvent) {
    sim_->Cancel(pending_);
    pending_ = kNoEvent;
  }
  active_ = false;
}

void PeriodicSampler::StopWhen(std::function<bool(Ticks)> pred) {
  // Re-arming a stopped sampler would silently do nothing (Fire never runs
  // again) — make that a loud lifecycle error instead.
  NETBATCH_CHECK(active_, "StopWhen on a stopped PeriodicSampler");
  stop_pred_ = std::move(pred);
}

void PeriodicSampler::ScheduleNext(Ticks at) {
  pending_ = sim_->ScheduleAt(at, [this, at] { Fire(at); });
}

void PeriodicSampler::Fire(Ticks now) {
  // This tick just fired; its handle must not outlive it, or a later Stop()
  // would cancel whatever event recycled the slot.
  pending_ = kNoEvent;
  if (!active_) return;
  on_sample_(now);
  ++samples_taken_;
  if (stop_pred_ && stop_pred_(now)) {
    active_ = false;
    return;
  }
  ScheduleNext(now + period_);
}

}  // namespace netbatch::sim

#include "sim/sampler.h"

#include <utility>

#include "common/check.h"

namespace netbatch::sim {

PeriodicSampler::PeriodicSampler(Simulator& sim, Ticks start, Ticks period,
                                 std::function<void(Ticks)> on_sample)
    : sim_(&sim), period_(period), on_sample_(std::move(on_sample)) {
  NETBATCH_CHECK(period_ > 0, "sampler period must be positive");
  ScheduleNext(start);
}

void PeriodicSampler::Stop() {
  if (active_) {
    sim_->Cancel(pending_);
    active_ = false;
  }
}

void PeriodicSampler::StopWhen(std::function<bool(Ticks)> pred) {
  stop_pred_ = std::move(pred);
}

void PeriodicSampler::ScheduleNext(Ticks at) {
  pending_ = sim_->ScheduleAt(at, [this, at] { Fire(at); });
}

void PeriodicSampler::Fire(Ticks now) {
  if (!active_) return;
  on_sample_(now);
  ++samples_taken_;
  if (stop_pred_ && stop_pred_(now)) {
    active_ = false;
    return;
  }
  ScheduleNext(now + period_);
}

}  // namespace netbatch::sim

// A NetBatch physical pool and its pool manager logic.
//
// Implements the placement semantics of paper §2.1:
//   1. first eligible machine with free resources runs the job;
//   2. otherwise, if an eligible machine runs lower-priority work, preempt
//      (suspend) enough of it to make room;
//   3. otherwise the job waits in the pool's queue;
//   4. if no machine in the pool could *ever* run the job, the pool refuses
//      it and the virtual pool manager tries the next pool.
// Plus the resume logic: when resources free on a machine, the best of
// {suspended jobs parked on that machine, waiting jobs in the pool queue}
// is scheduled, highest priority first (suspended wins ties).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "cluster/invariants.h"
#include "cluster/job_table.h"
#include "cluster/machine.h"
#include "cluster/placement_index.h"

namespace netbatch::cluster {

// Hooks fired by a pool whenever it transitions a job (start / resume /
// enqueue / preemption suspension). Completion is driven by the simulation
// engine, which already sees it; these transitions happen deep inside pool
// scheduling (backfill, preemption) and would otherwise be invisible. Each
// hook fires *after* the pool's bookkeeping settled, so the pool is
// audit-consistent inside the callback.
class PoolObserver {
 public:
  virtual ~PoolObserver() = default;
  virtual void OnJobStarted(const Job& job) { (void)job; }
  virtual void OnJobResumed(const Job& job) { (void)job; }
  virtual void OnJobEnqueued(const Job& job) { (void)job; }
  // Fired per preemption victim, after the victim released its resources
  // and moved to the machine's suspended registry (but before the
  // preempting job starts — victims settle first).
  virtual void OnJobSuspended(const Job& job) { (void)job; }
};

enum class PlaceOutcome {
  kStarted,     // running on a machine (possibly after preempting others)
  kQueued,      // parked in the pool's wait queue
  kNotEligible  // no machine in this pool can ever run the job
};

struct PlaceResult {
  PlaceOutcome outcome = PlaceOutcome::kNotEligible;
  MachineId machine;            // valid when outcome == kStarted
  std::vector<JobId> suspended; // victims preempted to make room
};

class PhysicalPool {
 public:
  // `suspended_holds_memory` / `local_resume_first`: host-level suspension
  // semantics (see ClusterConfig). `observer` (optional, must outlive the
  // pool) sees every start/resume/enqueue transition.
  PhysicalPool(PoolId id, MachineArena machines, JobTable& jobs,
               bool suspended_holds_memory, bool local_resume_first = true,
               PoolObserver* observer = nullptr);

  PoolId id() const { return id_; }
  const MachineArena& machines() const { return machines_; }
  std::int64_t total_cores() const { return total_cores_; }
  std::int64_t busy_cores() const { return busy_cores_; }
  double Utilization() const {
    return total_cores_ == 0
               ? 0.0
               : static_cast<double>(busy_cores_) /
                     static_cast<double>(total_cores_);
  }
  std::size_t QueueLength() const { return waiting_.size(); }
  std::size_t SuspendedCount() const { return suspended_count_; }

  // Capacity check: can some machine here ever run this job? With
  // require_online, the machine must additionally be up right now — the
  // virtual pool manager uses that form so a job whose only capacity-fit
  // machines are all down bounces to the next candidate pool instead of
  // waiting behind an outage (its commit pass falls back to the capacity-only
  // form only when *no* candidate pool has an online eligible machine, which
  // keeps rejection a pure capacity decision).
  bool HasEligibleMachine(const workload::JobSpec& spec,
                          bool require_online = false) const;

  // Attempts to place `job` (paper §2.1 steps 1-3). Performs all job/machine
  // state transitions; the caller wires events (completion scheduling,
  // victim notification). With allow_queue = false, step 3 is skipped and
  // kNotEligible is returned instead of queueing — used by the virtual pool
  // manager's availability-aware dispatch pass (§2.1: jobs are distributed
  // "according to resource availability"). With require_online, the step-0
  // eligibility gate also demands an online machine (see above).
  PlaceResult TryPlace(Job job, Ticks now, bool allow_queue = true,
                       bool require_online = false);

  // Suspends a running job in place without a preempting job — host-level /
  // operator-initiated suspension (the serving layer's kSuspend op). The
  // resource bookkeeping is identical to a preemption victim's: cores are
  // released, memory per the suspension model, and the job parks in its
  // machine's suspended registry. The machine is NOT backfilled: under
  // local_resume_first the freed cores would immediately resume the job
  // that was just suspended, so the hole persists until the job resumes,
  // is rescheduled away, or its machine turns over. The caller cancels the
  // job's completion timer.
  void SuspendRunning(Job job, Ticks now);

  // Resumes a suspended job on its own machine if its demand fits right
  // now; returns false (no state change) otherwise. The caller re-arms the
  // completion timer on success.
  bool TryResume(Job job, Ticks now);

  // Removes a job from this pool's wait queue (wait-timeout rescheduling).
  void RemoveFromQueue(JobId job);

  // Detaches a suspended job from its machine (suspended-job rescheduling),
  // releasing any memory it still held. Returns the machine it was on.
  MachineId DetachSuspended(Job job);

  // Releases `job`'s resources after completion and backfills the machine:
  // resumes/starts whatever now fits. Returns the jobs that (re)started,
  // in scheduling order; the caller schedules their completion events.
  std::vector<JobId> OnJobCompleted(Job job, Ticks now);

  // Backfills one machine (used after DetachSuspended frees memory).
  std::vector<JobId> Backfill(MachineId machine, Ticks now);

  // Removes a job from this pool in whatever state it is parked (running /
  // waiting / suspended) without running it to completion — the duplication
  // extension's twin-race resolution. Performs OnKilled (default) or, when
  // `complete_by_twin` is set, OnCompletedByTwin (the original finishes
  // with its duplicate's result). Returns any jobs started/resumed by the
  // freed resources.
  std::vector<JobId> KillJob(Job job, Ticks now,
                             bool complete_by_twin = false);

  // Machine outage support: takes the machine offline and detaches every
  // job parked on it (running and suspended), releasing their resources.
  // Returns the evicted job ids; the caller transitions and resubmits them.
  std::vector<JobId> EvictMachine(MachineId machine, Ticks now);

  // Brings a repaired machine back online and backfills it; returns the
  // jobs started/resumed.
  std::vector<JobId> RepairMachine(MachineId machine, Ticks now);

  // --- checkpoint/restore (service layer) -----------------------------------
  // Re-registers a job whose arena columns were already imported (state,
  // machine, accounting) into this pool's bookkeeping: resource claims,
  // registries, indexes and counters — WITHOUT firing observers or job
  // transitions. Callers invoke these in the snapshot's canonical order
  // (running then suspended per machine, then the wait queue in key order)
  // and finish with CheckInvariants().
  void RestoreRunning(Job job);
  void RestoreSuspended(Job job);
  void RestoreWaiting(Job job);
  // Marks a machine offline (it was down at checkpoint time) and drops it
  // from the placement indexes. Must run before any job restores touch the
  // machine's neighbors — index updates consult the online bit.
  void RestoreOffline(MachineId machine);

  // Checkpoint export: every job parked in this pool, in the canonical
  // restore order — per machine (id order) its running registry then its
  // suspended registry, both in arrival order, then the wait queue in key
  // order — plus the offline machines in id order.
  void AppendJobsInRestoreOrder(std::vector<JobId>& out) const;
  void AppendOfflineMachines(std::vector<MachineId>& out) const;

  // Walks this pool's resource-conservation invariants (free counters match
  // registered job demands; queue/suspended registries consistent) and
  // reports every violated one to `sink` instead of aborting.
  void AuditInvariants(Ticks now, InvariantSink& sink) const;

  // Fail-fast form: aborts on the first violated invariant.
  void CheckInvariants() const;

  // Machine lookup by id. The returned view is mutable — outage wiring and
  // corruption tests use it to desync a machine's accounting and prove the
  // auditor fires.
  Machine MachineById(MachineId id) const;

 private:
  // Ordered wait-queue key: highest priority first, then FIFO.
  struct WaitKey {
    workload::Priority neg_priority;  // negated so smaller = higher priority
    std::uint64_t seq;
    friend auto operator<=>(const WaitKey&, const WaitKey&) = default;
  };
  // Queue entry carries the job's demand so the backfill walk doesn't
  // dereference the job table per scanned waiter.
  struct WaitEntry {
    JobId id;
    std::int32_t cores = 0;
    std::int64_t memory_mb = 0;
  };

  void StartOn(Job job, Machine machine, Ticks now);
  void ResumeOn(Job job, Machine machine, Ticks now);
  void Enqueue(Job job, Ticks now);

  // Index maintenance. ReindexFree re-syncs a machine's free-capacity entry
  // after any Claim/Release/online flip. The running-registry wrappers keep
  // the machine's running-class summary and the pool's preemptible registry
  // in lockstep with the job lists.
  void ReindexFree(const Machine& machine) { free_index_.Update(machine); }
  void AddRunningIndexed(Machine machine, const Job& job);
  void RemoveRunningIndexed(Machine machine, const Job& job);
  void ReindexPreemptible(const Machine& machine, std::int32_t before);

  // Step-2 candidate filter: exact feasibility of a preemption plan for
  // `spec` at `priority` on `machine` (ownership + capacity + reclaimable
  // resources), without touching the machine's job lists.
  bool CouldPreemptFor(const Machine& machine, const workload::JobSpec& spec,
                       workload::Priority priority) const;

  // Picks and schedules the best candidate for `machine`; returns the job
  // started/resumed, or an invalid id when nothing fits.
  JobId ScheduleNextOn(Machine machine, Ticks now);

  // True when suspending lower-priority running work on `machine` could make
  // `spec` fit; fills `victims` with the chosen jobs (lowest priority first).
  bool PreemptionPlan(const Machine& machine, const workload::JobSpec& spec,
                      workload::Priority priority,
                      std::vector<JobId>& victims) const;

  PoolId id_;
  MachineArena machines_;
  JobTable* jobs_;
  bool suspended_holds_memory_;
  bool local_resume_first_;
  PoolObserver* observer_;

  std::int64_t total_cores_ = 0;
  std::int64_t busy_cores_ = 0;
  std::size_t suspended_count_ = 0;

  std::map<WaitKey, WaitEntry> waiting_;
  std::unordered_map<JobId, WaitKey> waiting_index_;
  std::uint64_t next_wait_seq_ = 0;
  // Demand summaries of waiting jobs; let Backfill skip queue scans when a
  // machine has fewer free cores than any waiting job needs — or,
  // symmetrically, less free memory (a machine with idle cores but
  // exhausted memory used to walk the entire queue on every backfill).
  // Cores are counted exactly per demand value; memory is counted in
  // power-of-two buckets, so its minimum is a conservative floor — the
  // gate only prunes machines that certainly cannot start anything.
  void AddWaitingDemand(std::int32_t cores, std::int64_t memory_mb);
  void RemoveWaitingDemand(std::int32_t cores, std::int64_t memory_mb);
  std::int32_t MinWaitingCores() const;
  std::int64_t MinWaitingMemoryFloor() const;
  std::vector<std::int32_t> waiting_cores_count_;
  std::vector<std::int32_t> waiting_memory_count_ =
      std::vector<std::int32_t>(65, 0);

  // Placement indexes (see placement_index.h): pure caches over machine
  // state, audited against a from-scratch rebuild by AuditInvariants.
  FreeCapacityIndex free_index_;
  CapacityClassIndex capacity_classes_;
  // Machines keyed by the priority of their lowest-priority running job —
  // the machines a preemption at a higher priority could harvest. Stored
  // as id-ordered bitmaps (bit flips per transition, no node churn);
  // TryPlace step 2 merges the bitmaps below the job's priority word by
  // word to recover exact machine-id scan order. Classes for priorities
  // that empty out stay allocated — distinct priorities are few.
  struct PriorityBitmap {
    std::vector<std::uint64_t> bits;
    std::size_t count = 0;
  };
  std::map<std::int32_t, PriorityBitmap> preemptible_;
  std::size_t machine_words_ = 0;  // ceil(machines / 64)
  // Reused step-2 scratch (the classes below the job's priority) so the
  // merge never allocates once its capacity warms up.
  std::vector<const PriorityBitmap*> preempt_scratch_;
};

}  // namespace netbatch::cluster

// Continuous invariant auditing over a running simulation.
//
// InvariantAuditor attaches as a SimulationObserver and re-audits the whole
// cluster — every pool's resource conservation plus cluster-wide job-state
// conservation (NetBatchSimulation::AuditInvariants) — every `period` of
// simulated time, collecting violations instead of aborting. Tests attach
// one to a scenario run and assert violations().empty(); corruption tests
// desync state on purpose and assert the auditor notices. For the
// abort-on-violation engine-internal flavor, see
// SimulationOptions::audit_period / audit_on_transitions.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/invariants.h"
#include "cluster/simulation.h"

namespace netbatch::cluster {

class InvariantAuditor final : public SimulationObserver,
                               public InvariantSink {
 public:
  struct Options {
    // Minimum simulated time between OnSample-driven audits. The observer
    // is sampled every SimulationOptions::sample_period; audits run on the
    // first sample at or after each period boundary.
    Ticks period = kTicksPerMinute;
    // Abort (NETBATCH_CHECK-style) on the first violation instead of
    // collecting it.
    bool fail_fast = false;
  };

  // `simulation` must outlive the auditor.
  explicit InvariantAuditor(const NetBatchSimulation& simulation);
  InvariantAuditor(const NetBatchSimulation& simulation, Options options);

  // SimulationObserver: audits on the sampling cadence.
  void OnSample(Ticks now, const ClusterView& view) override;

  // InvariantSink: records (or aborts on) one violation.
  void Report(const InvariantViolation& violation) override;

  // Runs one full audit immediately.
  void Audit();

  std::uint64_t audits_run() const { return audits_run_; }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }

 private:
  const NetBatchSimulation* simulation_;
  Options options_;
  Ticks next_audit_ = 0;
  std::uint64_t audits_run_ = 0;
  std::vector<InvariantViolation> violations_;
};

}  // namespace netbatch::cluster

// Extension points of the simulation engine.
//
// The cluster layer defines the interfaces; `sched` implements the initial
// (virtual-pool-manager) schedulers and `core` implements the paper's
// dynamic rescheduling policies on top of them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/job.h"
#include "cluster/view.h"

namespace netbatch::cluster {

// Chooses the order in which the virtual pool manager offers a submission
// to physical pools (paper §3.2.1: round-robin or utilization-based).
class InitialScheduler {
 public:
  virtual ~InitialScheduler() = default;

  // Returns the pools to try, best first. Must be a permutation of the
  // job's candidate pools (all pools when the candidate list is empty).
  virtual std::vector<PoolId> PoolOrder(const workload::JobSpec& spec,
                                        const ClusterView& view) = 0;

  // Opaque decision-state capture for daemon checkpoint/restore. Stateless
  // implementations keep the defaults (export nothing, accept only an
  // empty blob); stateful ones override both so a restored daemon resumes
  // the exact decision stream (RNG positions, cursors, caches).
  virtual void ExportState(std::vector<std::uint8_t>& out) const {
    (void)out;
  }
  virtual bool ImportState(const std::uint8_t* data, std::size_t size) {
    (void)data;
    return size == 0;
  }
};

// A dynamic rescheduling policy (the paper's contribution, §3).
class ReschedulingPolicy {
 public:
  virtual ~ReschedulingPolicy() = default;

  // Called immediately after `job` was suspended by a preemption. Returning
  // a pool restarts the job from scratch there ("ResSus*" schemes);
  // std::nullopt leaves it suspended in place ("NoRes", or ResSusUtil's
  // retain-if-current-pool-is-best rule).
  virtual std::optional<PoolId> OnSuspended(const Job& job,
                                            const ClusterView& view) = 0;

  // Wait-queue rescheduling (paper §3.3): when set, a job that has waited
  // this long in one pool queue triggers OnWaitTimeout; std::nullopt
  // disables wait rescheduling.
  virtual std::optional<Ticks> WaitRescheduleThreshold() const {
    return std::nullopt;
  }

  // Called when `job` exceeded the wait threshold. Returning a pool moves
  // the job there; std::nullopt keeps it waiting (the timer re-arms, so a
  // job can get "multiple second chances", §3.3.1).
  virtual std::optional<PoolId> OnWaitTimeout(const Job& job,
                                              const ClusterView& view) {
    (void)job;
    (void)view;
    return std::nullopt;
  }

  // Duplication extension (paper §5 future work: "job duplication
  // techniques"): when true, a suspended job selected for rescheduling is
  // not restarted; a duplicate copy is launched in the alternate pool while
  // the original stays suspended, and the first of the pair to finish wins
  // (the loser is killed and its execution counted as rescheduling waste).
  virtual bool DuplicateInsteadOfRestart() const { return false; }

  // Opaque decision-state capture, mirroring InitialScheduler's pair.
  virtual void ExportState(std::vector<std::uint8_t>& out) const {
    (void)out;
  }
  virtual bool ImportState(const std::uint8_t* data, std::size_t size) {
    (void)data;
    return size == 0;
  }
};

// Why a job was moved between pools.
enum class RescheduleReason { kSuspension, kWaitTimeout };

// Passive observer of simulation progress; the metrics layer implements
// this. All hooks default to no-ops so observers override only what they
// need.
class SimulationObserver {
 public:
  virtual ~SimulationObserver() = default;

  // Lifecycle transitions the engine forwards from the pools (the job's
  // last_transition_time() is the event timestamp).
  virtual void OnJobEnqueued(const Job& job) { (void)job; }
  virtual void OnJobStarted(const Job& job) { (void)job; }
  virtual void OnJobResumed(const Job& job) { (void)job; }
  virtual void OnJobSuspended(const Job& job) { (void)job; }
  virtual void OnJobRescheduled(const Job& job, PoolId from, PoolId to,
                                RescheduleReason reason) {
    (void)job; (void)from; (void)to; (void)reason;
  }
  virtual void OnJobCompleted(const Job& job) { (void)job; }
  virtual void OnJobRejected(const Job& job) { (void)job; }
  // A machine failure threw the job off its host (it loses un-checkpointed
  // progress and is resubmitted; a placement hook fires next for it).
  virtual void OnJobEvicted(const Job& job) { (void)job; }
  // The job lost a twin race and was terminated (duplication extension).
  virtual void OnJobKilled(const Job& job) { (void)job; }
  // Fired once per sampling period (one simulated minute by default),
  // mirroring ASCA's per-minute state logs (§3.1).
  virtual void OnSample(Ticks now, const ClusterView& view) {
    (void)now; (void)view;
  }
};

}  // namespace netbatch::cluster

#include "cluster/pool.h"

#include <algorithm>

namespace netbatch::cluster {

PhysicalPool::PhysicalPool(PoolId id, std::vector<Machine> machines,
                           JobTable& jobs, bool suspended_holds_memory,
                           bool local_resume_first, PoolObserver* observer)
    : id_(id),
      machines_(std::move(machines)),
      jobs_(&jobs),
      suspended_holds_memory_(suspended_holds_memory),
      local_resume_first_(local_resume_first),
      observer_(observer) {
  for (const Machine& machine : machines_) {
    NETBATCH_CHECK(machine.pool() == id_, "machine assigned to wrong pool");
    total_cores_ += machine.cores_total();
  }
}

Machine& PhysicalPool::MachineById(MachineId id) {
  NETBATCH_CHECK(id.valid() && id.value() < machines_.size(),
                 "machine id out of range");
  return machines_[id.value()];
}

bool PhysicalPool::HasEligibleMachine(const workload::JobSpec& spec,
                                      bool require_online) const {
  return std::any_of(machines_.begin(), machines_.end(),
                     [&](const Machine& machine) {
                       return (!require_online || machine.online()) &&
                              machine.Eligible(spec.cores, spec.memory_mb);
                     });
}

void PhysicalPool::StartOn(Job& job, Machine& machine, Ticks now) {
  machine.Claim(job.spec().cores, job.spec().memory_mb);
  machine.AddRunning(job.id());
  job.set_pool(id_);
  job.OnStarted(now, machine.id(), machine.speed());
  busy_cores_ += job.spec().cores;
  if (observer_ != nullptr) observer_->OnJobStarted(job);
}

void PhysicalPool::ResumeOn(Job& job, Machine& machine, Ticks now) {
  // A suspended job's memory may still be claimed from its suspension.
  machine.Claim(job.spec().cores,
                suspended_holds_memory_ ? 0 : job.spec().memory_mb);
  machine.RemoveSuspended(job.id());
  machine.AddRunning(job.id());
  --suspended_count_;
  job.OnResumed(now);
  busy_cores_ += job.spec().cores;
  if (observer_ != nullptr) observer_->OnJobResumed(job);
}

void PhysicalPool::Enqueue(Job& job, Ticks now) {
  const WaitKey key{-job.priority(), next_wait_seq_++};
  waiting_.emplace(key, job.id());
  waiting_index_.emplace(job.id(), key);
  waiting_cores_.insert(job.spec().cores);
  job.OnEnqueued(now, id_);
  if (observer_ != nullptr) observer_->OnJobEnqueued(job);
}

bool PhysicalPool::PreemptionPlan(const Machine& machine,
                                  const workload::JobSpec& spec,
                                  workload::Priority priority,
                                  std::vector<JobId>& victims) const {
  if (!machine.online() || !machine.Eligible(spec.cores, spec.memory_mb)) {
    return false;
  }
  // Ownership gate (paper §2.2): on an owned machine, only the owning
  // group's jobs may preempt.
  if (machine.owner() != workload::kNoOwner &&
      machine.owner() != spec.owner) {
    return false;
  }

  // Memory freed by suspension depends on the suspension model.
  std::int64_t memory_gain = 0;
  std::int32_t core_gain = 0;

  // Candidate victims: running jobs with strictly lower priority. Among
  // equals, suspend the job with the least accumulated progress first —
  // NetBatch hosts pick victims to minimize the work at risk, which is also
  // what keeps the "wasted time by rescheduling" component small (Fig. 3).
  std::vector<JobId> candidates;
  for (JobId id : machine.running()) {
    if (jobs_->at(id).priority() < priority) candidates.push_back(id);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](JobId a, JobId b) {
                     const Job& ja = jobs_->at(a);
                     const Job& jb = jobs_->at(b);
                     if (ja.priority() != jb.priority()) {
                       return ja.priority() < jb.priority();
                     }
                     return ja.attempt_executed_ticks() <
                            jb.attempt_executed_ticks();
                   });

  victims.clear();
  for (JobId id : candidates) {
    if (machine.cores_free() + core_gain >= spec.cores &&
        machine.memory_free_mb() + memory_gain >= spec.memory_mb) {
      break;
    }
    const Job& victim = jobs_->at(id);
    victims.push_back(id);
    core_gain += victim.spec().cores;
    if (!suspended_holds_memory_) memory_gain += victim.spec().memory_mb;
  }
  return machine.cores_free() + core_gain >= spec.cores &&
         machine.memory_free_mb() + memory_gain >= spec.memory_mb;
}

PlaceResult PhysicalPool::TryPlace(Job& job, Ticks now, bool allow_queue,
                                   bool require_online) {
  PlaceResult result;
  const workload::JobSpec& spec = job.spec();

  // Step 0 (paper §2.1 last clause): refuse jobs no machine could ever run
  // (with require_online: no machine could run *while the outage lasts*).
  if (!HasEligibleMachine(spec, require_online)) {
    result.outcome = PlaceOutcome::kNotEligible;
    return result;
  }

  // Step 1: first eligible machine with free resources.
  for (Machine& machine : machines_) {
    if (!machine.online()) continue;
    if (machine.Fits(spec.cores, spec.memory_mb)) {
      StartOn(job, machine, now);
      result.outcome = PlaceOutcome::kStarted;
      result.machine = machine.id();
      return result;
    }
  }

  // Step 2: preempt lower-priority work on the first machine where that
  // creates room.
  std::vector<JobId> victims;
  for (Machine& machine : machines_) {
    if (!PreemptionPlan(machine, spec, job.priority(), victims)) continue;
    for (JobId victim_id : victims) {
      Job& victim = jobs_->at(victim_id);
      machine.RemoveRunning(victim_id);
      machine.Release(victim.spec().cores,
                      suspended_holds_memory_ ? 0 : victim.spec().memory_mb);
      machine.AddSuspended(victim_id);
      ++suspended_count_;
      busy_cores_ -= victim.spec().cores;
      victim.OnSuspended(now);
    }
    StartOn(job, machine, now);
    result.outcome = PlaceOutcome::kStarted;
    result.machine = machine.id();
    result.suspended = std::move(victims);
    return result;
  }

  // Step 3: wait in the pool queue (unless the caller is probing for an
  // immediate start).
  if (!allow_queue) {
    result.outcome = PlaceOutcome::kNotEligible;
    return result;
  }
  Enqueue(job, now);
  result.outcome = PlaceOutcome::kQueued;
  return result;
}

void PhysicalPool::RemoveFromQueue(JobId job) {
  const auto it = waiting_index_.find(job);
  NETBATCH_CHECK(it != waiting_index_.end(), "job not in this wait queue");
  waiting_.erase(it->second);
  const auto cores_it =
      waiting_cores_.find(jobs_->at(job).spec().cores);
  NETBATCH_CHECK(cores_it != waiting_cores_.end(),
                 "wait-queue core index out of sync");
  waiting_cores_.erase(cores_it);
  waiting_index_.erase(it);
}

MachineId PhysicalPool::DetachSuspended(Job& job) {
  NETBATCH_CHECK(job.state() == JobState::kSuspended,
                 "detaching a non-suspended job");
  Machine& machine = MachineById(job.machine());
  machine.RemoveSuspended(job.id());
  --suspended_count_;
  if (suspended_holds_memory_) {
    machine.Release(0, job.spec().memory_mb);
  }
  return machine.id();
}

JobId PhysicalPool::ScheduleNextOn(Machine& machine, Ticks now) {
  // Best suspended job parked on this machine that fits again. Equal
  // priorities resume the longest-suspended job first (total accumulated
  // suspension, settled spells plus the current one) — breaking ties by
  // registry order would make the suspension-time tail (Fig. 2) an artifact
  // of insertion order and starve repeatedly-preempted jobs.
  JobId best_suspended;
  workload::Priority best_suspended_prio = 0;
  Ticks best_suspended_for = -1;
  for (JobId id : machine.suspended()) {
    const Job& job = jobs_->at(id);
    const std::int32_t need_cores = job.spec().cores;
    const std::int64_t need_mem =
        suspended_holds_memory_ ? 0 : job.spec().memory_mb;
    if (!machine.Fits(need_cores, need_mem)) continue;
    // suspend_ticks() settles only on resume; the current spell runs from
    // the suspension transition to now.
    const Ticks suspended_for =
        job.suspend_ticks() + (now - job.last_transition_time());
    if (!best_suspended.valid() || job.priority() > best_suspended_prio ||
        (job.priority() == best_suspended_prio &&
         suspended_for > best_suspended_for)) {
      best_suspended = id;
      best_suspended_prio = job.priority();
      best_suspended_for = suspended_for;
    }
  }

  // Best waiting job in the pool queue that fits this machine. Entries are
  // ordered (priority desc, FIFO), so the first fit is the best fit.
  JobId best_waiting;
  workload::Priority best_waiting_prio = 0;
  if (!waiting_.empty() && !waiting_cores_.empty() &&
      machine.cores_free() >= *waiting_cores_.begin()) {
    for (const auto& [key, id] : waiting_) {
      const Job& job = jobs_->at(id);
      if (machine.Fits(job.spec().cores, job.spec().memory_mb)) {
        best_waiting = id;
        best_waiting_prio = -key.neg_priority;
        break;
      }
    }
  }

  // With host-level resumption, the machine's own suspended work resumes
  // before anything is dispatched from the pool queue; otherwise strict
  // priority order applies (suspended wins ties: resuming loses no work).
  if (best_suspended.valid() &&
      (local_resume_first_ || !best_waiting.valid() ||
       best_suspended_prio >= best_waiting_prio)) {
    ResumeOn(jobs_->at(best_suspended), machine, now);
    return best_suspended;
  }
  if (best_waiting.valid()) {
    Job& job = jobs_->at(best_waiting);
    RemoveFromQueue(best_waiting);
    StartOn(job, machine, now);
    return best_waiting;
  }
  return JobId();
}

std::vector<JobId> PhysicalPool::Backfill(MachineId machine_id, Ticks now) {
  Machine& machine = MachineById(machine_id);
  if (!machine.online()) return {};
  std::vector<JobId> scheduled;
  while (true) {
    const JobId job = ScheduleNextOn(machine, now);
    if (!job.valid()) break;
    scheduled.push_back(job);
  }
  return scheduled;
}

std::vector<JobId> PhysicalPool::EvictMachine(MachineId machine_id,
                                              Ticks now) {
  (void)now;
  Machine& machine = MachineById(machine_id);
  NETBATCH_CHECK(machine.online(), "evicting an already-offline machine");
  std::vector<JobId> evicted;
  while (!machine.running().empty()) {
    const JobId id = machine.running().front();
    Job& job = jobs_->at(id);
    machine.RemoveRunning(id);
    machine.Release(job.spec().cores, job.spec().memory_mb);
    busy_cores_ -= job.spec().cores;
    evicted.push_back(id);
  }
  while (!machine.suspended().empty()) {
    const JobId id = machine.suspended().front();
    Job& job = jobs_->at(id);
    machine.RemoveSuspended(id);
    --suspended_count_;
    if (suspended_holds_memory_) machine.Release(0, job.spec().memory_mb);
    evicted.push_back(id);
  }
  machine.set_online(false);
  return evicted;
}

std::vector<JobId> PhysicalPool::RepairMachine(MachineId machine_id,
                                               Ticks now) {
  Machine& machine = MachineById(machine_id);
  NETBATCH_CHECK(!machine.online(), "repairing an online machine");
  machine.set_online(true);
  return Backfill(machine_id, now);
}

std::vector<JobId> PhysicalPool::KillJob(Job& job, Ticks now,
                                         bool complete_by_twin) {
  NETBATCH_CHECK(job.pool() == id_, "killing a job parked in another pool");
  const auto finish = [&](Job& victim) {
    if (complete_by_twin) {
      victim.OnCompletedByTwin(now);
    } else {
      victim.OnKilled(now);
    }
  };
  std::vector<JobId> scheduled;
  switch (job.state()) {
    case JobState::kRunning: {
      Machine& machine = MachineById(job.machine());
      machine.RemoveRunning(job.id());
      machine.Release(job.spec().cores, job.spec().memory_mb);
      busy_cores_ -= job.spec().cores;
      finish(job);
      scheduled = Backfill(machine.id(), now);
      break;
    }
    case JobState::kWaiting:
      RemoveFromQueue(job.id());
      finish(job);
      break;
    case JobState::kSuspended: {
      const MachineId machine = DetachSuspended(job);
      finish(job);
      scheduled = Backfill(machine, now);
      break;
    }
    default:
      NETBATCH_CHECK(false, "killing a job in a terminal or transit state");
  }
  return scheduled;
}

std::vector<JobId> PhysicalPool::OnJobCompleted(Job& job, Ticks now) {
  NETBATCH_CHECK(job.state() == JobState::kRunning,
                 "completing a non-running job");
  Machine& machine = MachineById(job.machine());
  machine.RemoveRunning(job.id());
  machine.Release(job.spec().cores, job.spec().memory_mb);
  busy_cores_ -= job.spec().cores;
  job.OnCompleted(now);
  return Backfill(machine.id(), now);
}

void PhysicalPool::AuditInvariants(Ticks now, InvariantSink& sink) const {
  const auto check = [&](bool ok, const std::string& what) {
    if (!ok) sink.Report(InvariantViolation{now, id_, what});
  };
  std::int64_t busy = 0;
  std::size_t suspended = 0;
  for (const Machine& machine : machines_) {
    std::int32_t cores_claimed = 0;
    std::int64_t memory_claimed = 0;
    for (JobId id : machine.running()) {
      const Job& job = jobs_->at(id);
      check(job.state() == JobState::kRunning,
            "running registry holds non-running job");
      check(job.machine() == machine.id(), "machine mismatch");
      cores_claimed += job.spec().cores;
      memory_claimed += job.spec().memory_mb;
    }
    for (JobId id : machine.suspended()) {
      const Job& job = jobs_->at(id);
      check(job.state() == JobState::kSuspended,
            "suspended registry holds non-suspended job");
      if (suspended_holds_memory_) memory_claimed += job.spec().memory_mb;
    }
    check(machine.cores_free() == machine.cores_total() - cores_claimed,
          "core accounting out of sync");
    check(machine.memory_free_mb() ==
              machine.memory_total_mb() - memory_claimed,
          "memory accounting out of sync");
    busy += cores_claimed;
    suspended += machine.suspended().size();
  }
  check(busy == busy_cores_, "pool busy-core counter out of sync");
  check(suspended == suspended_count_, "pool suspended counter out of sync");
  check(waiting_.size() == waiting_index_.size() &&
            waiting_.size() == waiting_cores_.size(),
        "wait queue indexes out of sync");
  for (const auto& [key, id] : waiting_) {
    const Job& job = jobs_->at(id);
    check(job.state() == JobState::kWaiting,
          "wait queue holds non-waiting job");
    check(job.pool() == id_, "wait queue holds foreign job");
    const auto index_it = waiting_index_.find(id);
    check(index_it != waiting_index_.end() && index_it->second == key,
          "wait queue index disagrees with queue entry");
  }
}

void PhysicalPool::CheckInvariants() const {
  FailFastSink sink;
  AuditInvariants(0, sink);
}

}  // namespace netbatch::cluster

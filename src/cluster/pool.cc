#include "cluster/pool.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace netbatch::cluster {

PhysicalPool::PhysicalPool(PoolId id, MachineArena machines,
                           JobTable& jobs, bool suspended_holds_memory,
                           bool local_resume_first, PoolObserver* observer)
    : id_(id),
      machines_(std::move(machines)),
      jobs_(&jobs),
      suspended_holds_memory_(suspended_holds_memory),
      local_resume_first_(local_resume_first),
      observer_(observer) {
  NETBATCH_CHECK(machines_.empty() || machines_.pool() == id_,
                 "machine assigned to wrong pool");
  NETBATCH_CHECK(&machines_.jobs() == jobs_,
                 "machine arena bound to a different job table");
  for (const Machine& machine : machines_) {
    total_cores_ += machine.cores_total();
  }
  machine_words_ = (machines_.size() + 63) / 64;
  free_index_.Rebuild(machines_);
  capacity_classes_.Rebuild(machines_);
}

void PhysicalPool::AddRunningIndexed(Machine machine, const Job& job) {
  const std::int32_t before = machine.lowest_running_priority();
  machine.AddRunning(job.id(), job.priority(), job.spec().cores,
                     job.spec().memory_mb);
  ReindexPreemptible(machine, before);
}

void PhysicalPool::RemoveRunningIndexed(Machine machine, const Job& job) {
  const std::int32_t before = machine.lowest_running_priority();
  machine.RemoveRunning(job.id(), job.priority(), job.spec().cores,
                        job.spec().memory_mb);
  ReindexPreemptible(machine, before);
}

void PhysicalPool::ReindexPreemptible(const Machine& machine,
                                      std::int32_t before) {
  const std::int32_t after = machine.lowest_running_priority();
  if (before == after) return;
  const MachineId::ValueType id = machine.id().value();
  const std::size_t word = id / 64;
  const std::uint64_t bit = std::uint64_t{1} << (id % 64);
  if (before != Machine::kNoRunningPriority) {
    const auto it = preemptible_.find(before);
    NETBATCH_CHECK(
        it != preemptible_.end() && (it->second.bits[word] & bit) != 0,
        "preemptible registry out of sync");
    it->second.bits[word] &= ~bit;
    --it->second.count;
  }
  if (after != Machine::kNoRunningPriority) {
    PriorityBitmap& bitmap = preemptible_[after];
    if (bitmap.bits.empty()) bitmap.bits.assign(machine_words_, 0);
    bitmap.bits[word] |= bit;
    ++bitmap.count;
  }
}

Machine PhysicalPool::MachineById(MachineId id) const {
  return machines_.at(id);
}

bool PhysicalPool::HasEligibleMachine(const workload::JobSpec& spec,
                                      bool require_online) const {
  return capacity_classes_.AnyEligible(spec.cores, spec.memory_mb,
                                       require_online);
}

void PhysicalPool::StartOn(Job job, Machine machine, Ticks now) {
  machine.Claim(job.spec().cores, job.spec().memory_mb);
  AddRunningIndexed(machine, job);
  ReindexFree(machine);
  job.set_pool(id_);
  job.OnStarted(now, machine.id(), machine.speed());
  busy_cores_ += job.spec().cores;
  if (observer_ != nullptr) observer_->OnJobStarted(job);
}

void PhysicalPool::ResumeOn(Job job, Machine machine, Ticks now) {
  // A suspended job's memory may still be claimed from its suspension.
  machine.Claim(job.spec().cores,
                suspended_holds_memory_ ? 0 : job.spec().memory_mb);
  machine.RemoveSuspended(job.id());
  AddRunningIndexed(machine, job);
  ReindexFree(machine);
  --suspended_count_;
  job.OnResumed(now);
  busy_cores_ += job.spec().cores;
  if (observer_ != nullptr) observer_->OnJobResumed(job);
}

// Memory demands are summarized in power-of-two buckets: bucket b >= 1
// covers [2^(b-1), 2^b); its floor 2^(b-1) under-estimates every member,
// which keeps the backfill gate conservative.
namespace {
std::size_t MemoryBucket(std::int64_t memory_mb) {
  return static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(memory_mb)));
}
}  // namespace

void PhysicalPool::AddWaitingDemand(std::int32_t cores,
                                    std::int64_t memory_mb) {
  const std::size_t slot = static_cast<std::size_t>(cores);
  if (slot >= waiting_cores_count_.size()) {
    waiting_cores_count_.resize(slot + 1, 0);
  }
  ++waiting_cores_count_[slot];
  ++waiting_memory_count_[MemoryBucket(memory_mb)];
}

void PhysicalPool::RemoveWaitingDemand(std::int32_t cores,
                                       std::int64_t memory_mb) {
  const std::size_t slot = static_cast<std::size_t>(cores);
  NETBATCH_CHECK(slot < waiting_cores_count_.size() &&
                     waiting_cores_count_[slot] > 0,
                 "wait-queue core index out of sync");
  --waiting_cores_count_[slot];
  const std::size_t bucket = MemoryBucket(memory_mb);
  NETBATCH_CHECK(waiting_memory_count_[bucket] > 0,
                 "wait-queue memory index out of sync");
  --waiting_memory_count_[bucket];
}

std::int32_t PhysicalPool::MinWaitingCores() const {
  for (std::size_t c = 0; c < waiting_cores_count_.size(); ++c) {
    if (waiting_cores_count_[c] > 0) return static_cast<std::int32_t>(c);
  }
  return std::numeric_limits<std::int32_t>::max();
}

std::int64_t PhysicalPool::MinWaitingMemoryFloor() const {
  for (std::size_t b = 0; b < waiting_memory_count_.size(); ++b) {
    if (waiting_memory_count_[b] > 0) {
      return b == 0 ? 0 : std::int64_t{1} << (b - 1);
    }
  }
  return std::numeric_limits<std::int64_t>::max();
}

void PhysicalPool::Enqueue(Job job, Ticks now) {
  const WaitKey key{-job.priority(), next_wait_seq_++};
  waiting_.emplace(key,
                   WaitEntry{job.id(), job.spec().cores, job.spec().memory_mb});
  waiting_index_.emplace(job.id(), key);
  AddWaitingDemand(job.spec().cores, job.spec().memory_mb);
  job.OnEnqueued(now, id_);
  if (observer_ != nullptr) observer_->OnJobEnqueued(job);
}

bool PhysicalPool::CouldPreemptFor(const Machine& machine,
                                   const workload::JobSpec& spec,
                                   workload::Priority priority) const {
  if (!machine.online() || !machine.Eligible(spec.cores, spec.memory_mb)) {
    return false;
  }
  if (machine.owner() != workload::kNoOwner &&
      machine.owner() != spec.owner) {
    return false;
  }
  // Suspending every lower-priority running job reclaims exactly the
  // running-class totals below `priority`, so this is precise feasibility
  // of PreemptionPlan — not a heuristic prefilter.
  std::int32_t reclaim_cores = 0;
  std::int64_t reclaim_memory = 0;
  machine.ReclaimableBelow(priority, reclaim_cores, reclaim_memory);
  if (suspended_holds_memory_) reclaim_memory = 0;
  return machine.cores_free() + reclaim_cores >= spec.cores &&
         machine.memory_free_mb() + reclaim_memory >= spec.memory_mb;
}

bool PhysicalPool::PreemptionPlan(const Machine& machine,
                                  const workload::JobSpec& spec,
                                  workload::Priority priority,
                                  std::vector<JobId>& victims) const {
  if (!machine.online() || !machine.Eligible(spec.cores, spec.memory_mb)) {
    return false;
  }
  // Ownership gate (paper §2.2): on an owned machine, only the owning
  // group's jobs may preempt.
  if (machine.owner() != workload::kNoOwner &&
      machine.owner() != spec.owner) {
    return false;
  }

  // Memory freed by suspension depends on the suspension model.
  std::int64_t memory_gain = 0;
  std::int32_t core_gain = 0;

  // Candidate victims: running jobs with strictly lower priority. Among
  // equals, suspend the job with the least accumulated progress first —
  // NetBatch hosts pick victims to minimize the work at risk, which is also
  // what keeps the "wasted time by rescheduling" component small (Fig. 3).
  std::vector<JobId> candidates;
  for (JobId id : machine.running()) {
    if (jobs_->at(id).priority() < priority) candidates.push_back(id);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](JobId a, JobId b) {
                     const Job& ja = jobs_->at(a);
                     const Job& jb = jobs_->at(b);
                     if (ja.priority() != jb.priority()) {
                       return ja.priority() < jb.priority();
                     }
                     return ja.attempt_executed_ticks() <
                            jb.attempt_executed_ticks();
                   });

  victims.clear();
  for (JobId id : candidates) {
    if (machine.cores_free() + core_gain >= spec.cores &&
        machine.memory_free_mb() + memory_gain >= spec.memory_mb) {
      break;
    }
    const Job& victim = jobs_->at(id);
    victims.push_back(id);
    core_gain += victim.spec().cores;
    if (!suspended_holds_memory_) memory_gain += victim.spec().memory_mb;
  }
  return machine.cores_free() + core_gain >= spec.cores &&
         machine.memory_free_mb() + memory_gain >= spec.memory_mb;
}

PlaceResult PhysicalPool::TryPlace(Job job, Ticks now, bool allow_queue,
                                   bool require_online) {
  PlaceResult result;
  const workload::JobSpec& spec = job.spec();

  // Step 0 (paper §2.1 last clause): refuse jobs no machine could ever run
  // (with require_online: no machine could run *while the outage lasts*).
  if (!HasEligibleMachine(spec, require_online)) {
    result.outcome = PlaceOutcome::kNotEligible;
    return result;
  }

  // Step 1: first eligible machine with free resources — the smallest-id
  // online machine the job fits, straight from the free-capacity index.
  const MachineId fit = free_index_.FirstFit(spec.cores, spec.memory_mb);
  if (fit.valid()) {
    const Machine machine = machines_[fit.value()];
    StartOn(job, machine, now);
    result.outcome = PlaceOutcome::kStarted;
    result.machine = machine.id();
    return result;
  }

  // Step 2: preempt lower-priority work on the first machine where that
  // creates room. Only machines whose lowest running priority is below the
  // job's can yield anything (step 1 already proved nothing fits for free),
  // so OR the id-ordered preemptible bitmaps below the job's priority word
  // by word — visiting exactly the viable machines, in the original scan
  // order. The target is located read-only first: suspensions mutate the
  // registry the merge iterates.
  MachineId target;
  {
    preempt_scratch_.clear();
    for (auto it = preemptible_.begin();
         it != preemptible_.end() && it->first < job.priority(); ++it) {
      if (it->second.count > 0) preempt_scratch_.push_back(&it->second);
    }
    for (std::size_t word = 0;
         word < machine_words_ && !target.valid() &&
         !preempt_scratch_.empty();
         ++word) {
      std::uint64_t merged = 0;
      for (const PriorityBitmap* bitmap : preempt_scratch_) {
        merged |= bitmap->bits[word];
      }
      for (std::uint64_t rest = merged; rest != 0; rest &= rest - 1) {
        const MachineId::ValueType id =
            static_cast<MachineId::ValueType>(word * 64) +
            static_cast<MachineId::ValueType>(std::countr_zero(rest));
        const Machine machine = machines_[id];
        if (CouldPreemptFor(machine, spec, job.priority())) {
          target = machine.id();
          break;
        }
      }
    }
  }
  if (target.valid()) {
    Machine machine = machines_[target.value()];
    std::vector<JobId> victims;
    NETBATCH_CHECK(
        PreemptionPlan(machine, spec, job.priority(), victims) &&
            !victims.empty(),
        "preemption feasibility filter disagreed with the plan");
    for (JobId victim_id : victims) {
      Job victim = jobs_->at(victim_id);
      RemoveRunningIndexed(machine, victim);
      machine.Release(victim.spec().cores,
                      suspended_holds_memory_ ? 0 : victim.spec().memory_mb);
      machine.AddSuspended(victim_id);
      ++suspended_count_;
      busy_cores_ -= victim.spec().cores;
      victim.OnSuspended(now);
      ReindexFree(machine);
      if (observer_ != nullptr) observer_->OnJobSuspended(victim);
    }
    StartOn(job, machine, now);
    result.outcome = PlaceOutcome::kStarted;
    result.machine = machine.id();
    result.suspended = std::move(victims);
    return result;
  }

  // Step 3: wait in the pool queue (unless the caller is probing for an
  // immediate start).
  if (!allow_queue) {
    result.outcome = PlaceOutcome::kNotEligible;
    return result;
  }
  Enqueue(job, now);
  result.outcome = PlaceOutcome::kQueued;
  return result;
}

void PhysicalPool::SuspendRunning(Job job, Ticks now) {
  NETBATCH_CHECK(job.state() == JobState::kRunning && job.pool() == id_,
                 "suspending a job not running in this pool");
  Machine machine = MachineById(job.machine());
  RemoveRunningIndexed(machine, job);
  machine.Release(job.spec().cores,
                  suspended_holds_memory_ ? 0 : job.spec().memory_mb);
  machine.AddSuspended(job.id());
  ++suspended_count_;
  busy_cores_ -= job.spec().cores;
  job.OnSuspended(now);
  ReindexFree(machine);
  if (observer_ != nullptr) observer_->OnJobSuspended(job);
}

bool PhysicalPool::TryResume(Job job, Ticks now) {
  NETBATCH_CHECK(job.state() == JobState::kSuspended && job.pool() == id_,
                 "resuming a job not suspended in this pool");
  Machine machine = MachineById(job.machine());
  if (!machine.online()) return false;
  if (!machine.Fits(job.spec().cores,
                    suspended_holds_memory_ ? 0 : job.spec().memory_mb)) {
    return false;
  }
  ResumeOn(job, machine, now);
  return true;
}

void PhysicalPool::RemoveFromQueue(JobId job) {
  const auto it = waiting_index_.find(job);
  NETBATCH_CHECK(it != waiting_index_.end(), "job not in this wait queue");
  waiting_.erase(it->second);
  const workload::JobSpec& spec = jobs_->at(job).spec();
  RemoveWaitingDemand(spec.cores, spec.memory_mb);
  waiting_index_.erase(it);
}

MachineId PhysicalPool::DetachSuspended(Job job) {
  NETBATCH_CHECK(job.state() == JobState::kSuspended,
                 "detaching a non-suspended job");
  Machine machine = MachineById(job.machine());
  machine.RemoveSuspended(job.id());
  --suspended_count_;
  if (suspended_holds_memory_) {
    machine.Release(0, job.spec().memory_mb);
    ReindexFree(machine);
  }
  return machine.id();
}

JobId PhysicalPool::ScheduleNextOn(Machine machine, Ticks now) {
  // Best suspended job parked on this machine that fits again. Equal
  // priorities resume the longest-suspended job first (total accumulated
  // suspension, settled spells plus the current one) — breaking ties by
  // registry order would make the suspension-time tail (Fig. 2) an artifact
  // of insertion order and starve repeatedly-preempted jobs.
  JobId best_suspended;
  workload::Priority best_suspended_prio = 0;
  Ticks best_suspended_for = -1;
  for (JobId id : machine.suspended()) {
    const Job& job = jobs_->at(id);
    const std::int32_t need_cores = job.spec().cores;
    const std::int64_t need_mem =
        suspended_holds_memory_ ? 0 : job.spec().memory_mb;
    if (!machine.Fits(need_cores, need_mem)) continue;
    // suspend_ticks() settles only on resume; the current spell runs from
    // the suspension transition to now.
    const Ticks suspended_for =
        job.suspend_ticks() + (now - job.last_transition_time());
    if (!best_suspended.valid() || job.priority() > best_suspended_prio ||
        (job.priority() == best_suspended_prio &&
         suspended_for > best_suspended_for)) {
      best_suspended = id;
      best_suspended_prio = job.priority();
      best_suspended_for = suspended_for;
    }
  }

  // Best waiting job in the pool queue that fits this machine. Entries are
  // ordered (priority desc, FIFO), so the first fit is the best fit.
  JobId best_waiting;
  workload::Priority best_waiting_prio = 0;
  // Gate on both demand minima: a machine with idle cores but exhausted
  // memory (or vice versa) cannot start any waiting job, so don't walk the
  // queue for it. The minima come from different jobs, so passing the gate
  // doesn't guarantee a fit — it only prunes certain misses.
  if (!waiting_.empty() && machine.cores_free() >= MinWaitingCores() &&
      machine.memory_free_mb() >= MinWaitingMemoryFloor()) {
    for (const auto& [key, entry] : waiting_) {
      if (machine.Fits(entry.cores, entry.memory_mb)) {
        best_waiting = entry.id;
        best_waiting_prio = -key.neg_priority;
        break;
      }
    }
  }

  // With host-level resumption, the machine's own suspended work resumes
  // before anything is dispatched from the pool queue; otherwise strict
  // priority order applies (suspended wins ties: resuming loses no work).
  if (best_suspended.valid() &&
      (local_resume_first_ || !best_waiting.valid() ||
       best_suspended_prio >= best_waiting_prio)) {
    ResumeOn(jobs_->at(best_suspended), machine, now);
    return best_suspended;
  }
  if (best_waiting.valid()) {
    const Job job = jobs_->at(best_waiting);
    RemoveFromQueue(best_waiting);
    StartOn(job, machine, now);
    return best_waiting;
  }
  return JobId();
}

std::vector<JobId> PhysicalPool::Backfill(MachineId machine_id, Ticks now) {
  Machine machine = MachineById(machine_id);
  if (!machine.online()) return {};
  std::vector<JobId> scheduled;
  while (true) {
    const JobId job = ScheduleNextOn(machine, now);
    if (!job.valid()) break;
    scheduled.push_back(job);
  }
  return scheduled;
}

std::vector<JobId> PhysicalPool::EvictMachine(MachineId machine_id,
                                              Ticks now) {
  (void)now;
  Machine machine = MachineById(machine_id);
  NETBATCH_CHECK(machine.online(), "evicting an already-offline machine");
  std::vector<JobId> evicted;
  while (!machine.running().empty()) {
    const JobId id = machine.running().front();
    const Job job = jobs_->at(id);
    RemoveRunningIndexed(machine, job);
    machine.Release(job.spec().cores, job.spec().memory_mb);
    busy_cores_ -= job.spec().cores;
    evicted.push_back(id);
  }
  while (!machine.suspended().empty()) {
    const JobId id = machine.suspended().front();
    const Job job = jobs_->at(id);
    machine.RemoveSuspended(id);
    --suspended_count_;
    if (suspended_holds_memory_) machine.Release(0, job.spec().memory_mb);
    evicted.push_back(id);
  }
  machine.set_online(false);
  capacity_classes_.OnOnlineChanged(machine, false);
  ReindexFree(machine);  // offline: drops out of the free-capacity index
  return evicted;
}

std::vector<JobId> PhysicalPool::RepairMachine(MachineId machine_id,
                                               Ticks now) {
  Machine machine = MachineById(machine_id);
  NETBATCH_CHECK(!machine.online(), "repairing an online machine");
  machine.set_online(true);
  capacity_classes_.OnOnlineChanged(machine, true);
  ReindexFree(machine);
  return Backfill(machine_id, now);
}

std::vector<JobId> PhysicalPool::KillJob(Job job, Ticks now,
                                         bool complete_by_twin) {
  NETBATCH_CHECK(job.pool() == id_, "killing a job parked in another pool");
  const auto finish = [&](Job victim) {
    if (complete_by_twin) {
      victim.OnCompletedByTwin(now);
    } else {
      victim.OnKilled(now);
    }
  };
  std::vector<JobId> scheduled;
  switch (job.state()) {
    case JobState::kRunning: {
      Machine machine = MachineById(job.machine());
      RemoveRunningIndexed(machine, job);
      machine.Release(job.spec().cores, job.spec().memory_mb);
      busy_cores_ -= job.spec().cores;
      ReindexFree(machine);
      finish(job);
      scheduled = Backfill(machine.id(), now);
      break;
    }
    case JobState::kWaiting:
      RemoveFromQueue(job.id());
      finish(job);
      break;
    case JobState::kSuspended: {
      const MachineId machine = DetachSuspended(job);
      finish(job);
      scheduled = Backfill(machine, now);
      break;
    }
    default:
      NETBATCH_CHECK(false, "killing a job in a terminal or transit state");
  }
  return scheduled;
}

std::vector<JobId> PhysicalPool::OnJobCompleted(Job job, Ticks now) {
  NETBATCH_CHECK(job.state() == JobState::kRunning,
                 "completing a non-running job");
  Machine machine = MachineById(job.machine());
  RemoveRunningIndexed(machine, job);
  machine.Release(job.spec().cores, job.spec().memory_mb);
  busy_cores_ -= job.spec().cores;
  ReindexFree(machine);
  job.OnCompleted(now);
  return Backfill(machine.id(), now);
}

void PhysicalPool::RestoreRunning(Job job) {
  NETBATCH_CHECK(job.state() == JobState::kRunning && job.pool() == id_,
                 "restore-running job is not running in this pool");
  Machine machine = MachineById(job.machine());
  machine.Claim(job.spec().cores, job.spec().memory_mb);
  AddRunningIndexed(machine, job);
  ReindexFree(machine);
  busy_cores_ += job.spec().cores;
}

void PhysicalPool::RestoreSuspended(Job job) {
  NETBATCH_CHECK(job.state() == JobState::kSuspended && job.pool() == id_,
                 "restore-suspended job is not suspended in this pool");
  Machine machine = MachineById(job.machine());
  if (suspended_holds_memory_) {
    machine.Claim(0, job.spec().memory_mb);
  }
  machine.AddSuspended(job.id());
  ++suspended_count_;
  ReindexFree(machine);
}

void PhysicalPool::RestoreWaiting(Job job) {
  NETBATCH_CHECK(job.state() == JobState::kWaiting && job.pool() == id_,
                 "restore-waiting job is not waiting in this pool");
  // Fresh seqs, assigned in snapshot order (the snapshot emits the queue in
  // key order), preserve the exact relative FIFO order within a priority.
  const WaitKey key{-job.priority(), next_wait_seq_++};
  waiting_.emplace(key,
                   WaitEntry{job.id(), job.spec().cores, job.spec().memory_mb});
  waiting_index_.emplace(job.id(), key);
  AddWaitingDemand(job.spec().cores, job.spec().memory_mb);
}

void PhysicalPool::RestoreOffline(MachineId machine_id) {
  Machine machine = MachineById(machine_id);
  NETBATCH_CHECK(machine.online(), "machine restored offline twice");
  machine.set_online(false);
  capacity_classes_.OnOnlineChanged(machine, false);
  ReindexFree(machine);
}

void PhysicalPool::AppendJobsInRestoreOrder(std::vector<JobId>& out) const {
  for (const Machine machine : machines_) {
    for (const JobId id : machine.running()) out.push_back(id);
    for (const JobId id : machine.suspended()) out.push_back(id);
  }
  for (const auto& [key, entry] : waiting_) out.push_back(entry.id);
}

void PhysicalPool::AppendOfflineMachines(std::vector<MachineId>& out) const {
  for (const Machine machine : machines_) {
    if (!machine.online()) out.push_back(machine.id());
  }
}

void PhysicalPool::AuditInvariants(Ticks now, InvariantSink& sink) const {
  const auto check = [&](bool ok, const std::string& what) {
    if (!ok) sink.Report(InvariantViolation{now, id_, what, MachineId()});
  };
  const auto check_machine = [&](bool ok, const std::string& what,
                                 MachineId machine) {
    if (!ok) sink.Report(InvariantViolation{now, id_, what, machine});
  };
  std::int64_t busy = 0;
  std::size_t suspended = 0;
  std::size_t with_running = 0;
  for (const Machine& machine : machines_) {
    std::int32_t cores_claimed = 0;
    std::int64_t memory_claimed = 0;
    std::int32_t lowest_priority = Machine::kNoRunningPriority;
    for (JobId id : machine.running()) {
      const Job& job = jobs_->at(id);
      check(job.state() == JobState::kRunning,
            "running registry holds non-running job");
      check(job.machine() == machine.id(), "machine mismatch");
      cores_claimed += job.spec().cores;
      memory_claimed += job.spec().memory_mb;
      lowest_priority = std::min(lowest_priority, job.priority());
    }
    for (JobId id : machine.suspended()) {
      const Job& job = jobs_->at(id);
      check(job.state() == JobState::kSuspended,
            "suspended registry holds non-suspended job");
      if (suspended_holds_memory_) memory_claimed += job.spec().memory_mb;
    }
    check(machine.cores_free() == machine.cores_total() - cores_claimed,
          "core accounting out of sync");
    check(machine.memory_free_mb() ==
              machine.memory_total_mb() - memory_claimed,
          "memory accounting out of sync");
    // Running-class summary: lowest priority and total reclaimable cores
    // must match the running registry it aggregates.
    check_machine(machine.lowest_running_priority() == lowest_priority,
                  "running-class summary priority out of sync", machine.id());
    std::int32_t class_cores = 0;
    std::int64_t class_memory = 0;
    machine.ReclaimableBelow(Machine::kNoRunningPriority, class_cores,
                             class_memory);
    check_machine(class_cores == cores_claimed,
                  "running-class summary cores out of sync", machine.id());
    // Preemptible registry: a machine appears exactly under its lowest
    // running priority, and only when something runs on it.
    if (lowest_priority != Machine::kNoRunningPriority) {
      ++with_running;
      const auto it = preemptible_.find(lowest_priority);
      const std::size_t word = machine.id().value() / 64;
      const std::uint64_t bit = std::uint64_t{1}
                                << (machine.id().value() % 64);
      check_machine(it != preemptible_.end() && !it->second.bits.empty() &&
                        (it->second.bits[word] & bit) != 0,
                    "preemptible registry missing machine", machine.id());
    }
    busy += cores_claimed;
    suspended += machine.suspended().size();
  }
  std::size_t preemptible_entries = 0;
  for (const auto& [priority, bitmap] : preemptible_) {
    std::size_t members = 0;
    for (const std::uint64_t word : bitmap.bits) {
      members += static_cast<std::size_t>(std::popcount(word));
    }
    check(members == bitmap.count, "preemptible class count out of sync");
    preemptible_entries += members;
  }
  check(preemptible_entries == with_running,
        "preemptible registry holds stray machines");
  free_index_.Audit(machines_, [&](MachineId machine, const char* what) {
    check_machine(false, what, machine);
  });
  capacity_classes_.Audit(
      machines_, [&](const char* what) { check(false, what); });
  check(busy == busy_cores_, "pool busy-core counter out of sync");
  check(suspended == suspended_count_, "pool suspended counter out of sync");
  check(waiting_.size() == waiting_index_.size(),
        "wait queue indexes out of sync");
  std::vector<std::int32_t> cores_count(waiting_cores_count_.size(), 0);
  std::vector<std::int32_t> memory_count(waiting_memory_count_.size(), 0);
  for (const auto& [key, entry] : waiting_) {
    const Job& job = jobs_->at(entry.id);
    check(job.state() == JobState::kWaiting,
          "wait queue holds non-waiting job");
    check(job.pool() == id_, "wait queue holds foreign job");
    check(entry.cores == job.spec().cores &&
              entry.memory_mb == job.spec().memory_mb,
          "wait queue entry demand is stale");
    const auto index_it = waiting_index_.find(entry.id);
    check(index_it != waiting_index_.end() && index_it->second == key,
          "wait queue index disagrees with queue entry");
    const std::size_t slot = static_cast<std::size_t>(entry.cores);
    if (slot < cores_count.size()) ++cores_count[slot];
    ++memory_count[MemoryBucket(entry.memory_mb)];
  }
  check(cores_count == waiting_cores_count_ &&
            memory_count == waiting_memory_count_,
        "wait-queue demand summaries out of sync");
}

void PhysicalPool::CheckInvariants() const {
  FailFastSink sink;
  AuditInvariants(0, sink);
}

}  // namespace netbatch::cluster

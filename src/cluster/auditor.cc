#include "cluster/auditor.h"

namespace netbatch::cluster {

InvariantAuditor::InvariantAuditor(const NetBatchSimulation& simulation)
    : InvariantAuditor(simulation, Options{}) {}

InvariantAuditor::InvariantAuditor(const NetBatchSimulation& simulation,
                                   Options options)
    : simulation_(&simulation), options_(options) {
  NETBATCH_CHECK(options_.period > 0, "audit period must be positive");
}

void InvariantAuditor::OnSample(Ticks now, const ClusterView& view) {
  (void)view;
  if (now < next_audit_) return;
  next_audit_ = now + options_.period;
  Audit();
}

void InvariantAuditor::Report(const InvariantViolation& violation) {
  if (options_.fail_fast) {
    NETBATCH_CHECK(false, violation.what);
  }
  violations_.push_back(violation);
}

void InvariantAuditor::Audit() {
  ++audits_run_;
  simulation_->AuditInvariants(*this);
}

}  // namespace netbatch::cluster

// The NetBatch simulation engine.
//
// Plays the role of the paper's ASCA simulator (§3.1): it wires together
// the event core, the cluster substrate (virtual pool manager + physical
// pools + machines), an initial scheduler, a rescheduling policy, and any
// number of observers, then replays a trace until every job completes.
//
// Event flow:
//   submission --> VPM (initial scheduler picks pool order) --> pool
//     TryPlace: start / preempt victims / queue / bounce to next pool
//   suspension --> policy.OnSuspended --> optional restart at another pool
//   wait timeout --> policy.OnWaitTimeout --> optional move (re-arms)
//   completion --> machine backfill (resume suspended, start waiting)
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cluster/config.h"
#include "cluster/interfaces.h"
#include "cluster/invariants.h"
#include "cluster/job_table.h"
#include "cluster/pool.h"
#include "cluster/view.h"
#include "common/counters.h"
#include "common/rng.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace netbatch::cluster {

// Every event the engine schedules, as a typed kind. The simulator carries
// these as 48-byte POD payloads (sim::Event) — no per-event allocation —
// and NetBatchSimulation::Dispatch switches on the kind. Stale events
// (cancelled logically by a later transition) are dropped by comparing the
// event's generation stamp against the job's current generation.
enum class EventKind : std::uint16_t {
  kSubmit = 1,       // job: trace submission reaches the virtual pool manager
  kCompletion,       // job+stamp: a running job finishes
  kWaitTimeout,      // job+stamp: wait-queue rescheduling check (§3.3)
  kRestartDelivery,  // job+stamp+pool: rescheduled job arrives at its target
  kMachineFailure,   // pool+machine: outage injection
  kMachineRepair,    // pool+machine: repair after an outage
  kSampleTick,       // per-minute ASCA sampling (gauges + observers)
  kAuditTick,        // periodic invariant audit
};

// Machine failure injection: each machine independently fails with
// exponential(mtbf) uptime and recovers after exponential(mttr) downtime.
// A failing machine evicts everything on it (running and suspended); the
// evicted jobs lose un-checkpointed progress and are resubmitted through
// the virtual pool manager.
struct OutageModel {
  double mtbf_minutes = 0;   // mean time between failures; 0 disables
  double mttr_minutes = 240; // mean time to repair
  std::uint64_t seed = 0xfa11;
};

// How the virtual pool manager dispatches a new submission across its
// candidate pools (paper §2.1: jobs are distributed to connected pools
// "according to resource availability and NetBatch configurations").
enum class DispatchMode {
  // Availability-aware round: offer to pools in scheduler order, preferring
  // the first pool that can start the job immediately; only when every
  // candidate is busy does the job queue at the scheduler's first eligible
  // choice. This is the default — and it is exactly the check a
  // *rescheduled* job skips, since restarts are "sent to the alternate pool
  // directly" (§3.2), which is what makes a poor alternate-pool choice
  // expensive.
  kPreferImmediateStart,
  // Naive: commit to the scheduler's first eligible pool, queueing there
  // even if an idle pool exists further down the order.
  kQueueAtFirstEligible,
};

struct SimulationOptions {
  // Delivery delay applied when a job is rescheduled to another pool
  // (models data/binary transfer; the paper's future-work overhead).
  Ticks restart_overhead = 0;
  // Periodic checkpointing granularity in work units (0 = the paper's
  // baseline: restarts lose all progress). See Job::OnRestart.
  Ticks checkpoint_interval = 0;
  // Per-pool-pair transfer delay for rescheduled jobs (paper §5's network
  // delays / inter-site rescheduling): transfer_matrix[from][to] overrides
  // the scalar restart_overhead when non-empty. Must be square with one row
  // per pool.
  std::vector<std::vector<Ticks>> transfer_matrix;
  // Machine failure injection (disabled by default).
  OutageModel outages;
  // ASCA samples component state once per simulated minute.
  Ticks sample_period = kTicksPerMinute;
  bool sampling_enabled = true;
  DispatchMode dispatch_mode = DispatchMode::kPreferImmediateStart;
  // Continuous invariant auditing (opt-in; both abort on the first violated
  // invariant, like NETBATCH_CHECK). audit_period > 0 runs a full cluster
  // audit — every pool plus cluster-wide conservation — every that many
  // ticks; audit_on_transitions additionally audits the affected pool after
  // every pool-level job transition (start / resume / enqueue).
  Ticks audit_period = 0;
  bool audit_on_transitions = false;
};

class NetBatchSimulation final : public ClusterView,
                                 private PoolObserver,
                                 private sim::EventDispatcher {
 public:
  // `scheduler` and `policy` must outlive the simulation.
  NetBatchSimulation(const ClusterConfig& config,
                     const workload::Trace& trace,
                     InitialScheduler& scheduler, ReschedulingPolicy& policy,
                     SimulationOptions options = {});

  NetBatchSimulation(const NetBatchSimulation&) = delete;
  NetBatchSimulation& operator=(const NetBatchSimulation&) = delete;

  // Observers must outlive the simulation; call before Run().
  void AddObserver(SimulationObserver* observer);

  // Replays the whole trace and runs until every job completed (or was
  // rejected because no pool can ever run it).
  void Run();

  // --- results ------------------------------------------------------------
  const JobTable& jobs() const { return jobs_; }
  std::size_t completed_count() const { return completed_count_; }
  std::size_t rejected_count() const { return rejected_count_; }
  std::uint64_t preemption_count() const { return preemption_count_; }
  std::uint64_t reschedule_count() const { return reschedule_count_; }
  std::uint64_t duplicate_count() const { return duplicate_count_; }
  std::uint64_t outage_count() const { return outage_count_; }
  std::uint64_t eviction_count() const { return eviction_count_; }

  const PhysicalPool& pool(PoolId id) const { return *pools_[id.value()]; }
  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }

  // The per-simulation observability registry. Counters (jobs.*, vpm.*,
  // outages.*, audit.*) are maintained on every engine transition; gauges
  // (cluster.*, sim.*) are refreshed each sampling period and once at the
  // end of Run(). Per-instance by design: sweeps run simulations in
  // parallel, so a process-global registry would race.
  const CounterRegistry& counters() const { return counters_; }
  CounterRegistry& counters() { return counters_; }

  // Audits every pool's resource invariants plus cluster-wide conservation
  // (job states vs pool registries, busy cores vs running jobs, terminal
  // counters vs terminal states), reporting violations to `sink`.
  void AuditInvariants(InvariantSink& sink) const;

  // Fail-fast form of AuditInvariants: aborts on the first violation.
  void CheckInvariants() const;

  // Test support: mutable pool access, for corruption tests that desync
  // pool/machine accounting to prove the auditor fires.
  PhysicalPool& mutable_pool(PoolId id) { return *pools_[id.value()]; }

  // --- ClusterView ----------------------------------------------------------
  Ticks Now() const override { return sim_.Now(); }
  std::size_t PoolCount() const override { return pools_.size(); }
  double PoolUtilization(PoolId pool) const override;
  std::size_t PoolQueueLength(PoolId pool) const override;
  std::int64_t PoolTotalCores(PoolId pool) const override;
  bool PoolEligible(PoolId pool, const workload::JobSpec& spec) const override;
  double ClusterUtilization() const override;
  std::size_t SuspendedJobCount() const override;
  std::size_t PendingEventCount() const override {
    return sim_.PendingEvents();
  }
  std::uint64_t FiredEventCount() const override {
    return sim_.FiredEvents();
  }

 private:
  // sim::EventDispatcher: the single switch every typed event goes through.
  void Dispatch(const sim::Event& event) override;

  // PoolObserver: pools report job transitions here; the engine bumps
  // counters, forwards to SimulationObservers, and (when enabled) audits.
  void OnJobStarted(const Job& job) override;
  void OnJobResumed(const Job& job) override;
  void OnJobEnqueued(const Job& job) override;
  void OnJobSuspended(const Job& job) override;
  void AuditTransition(PoolId pool);
  void RunPeriodicAudit();
  void SampleGauges(Ticks now);
  void OnSampleTick();
  void OnAuditTick();
  bool AllJobsFinished() const {
    return completed_count_ + rejected_count_ == total_jobs_;
  }

  void SubmitJob(JobId id);
  // Offers the job to pools in `order`; returns false if every pool refused.
  bool OfferToPools(Job& job, const std::vector<PoolId>& order);
  void HandlePlaceResult(Job& job, PoolId pool, const PlaceResult& result);
  void HandleStarted(Job& job);
  void HandleVictims(const std::vector<JobId>& victims);
  void ScheduleCompletion(Job& job);
  void OnCompletionEvent(const sim::Event& event);
  void ArmWaitTimeout(Job& job);
  void OnWaitTimeoutEvent(const sim::Event& event);
  void RestartJob(Job& job, PoolId target, RescheduleReason reason);
  void DeliverRestartedJob(JobId id, std::uint64_t generation, PoolId target);
  // Duplication extension: launch a copy of `original` in `target`; the
  // first of the pair to complete wins (ResolveTwinRace).
  void SpawnDuplicate(Job& original, PoolId target);
  void ResolveTwinRace(Job& winner);
  // Failure injection.
  void ScheduleNextFailure(PoolId pool, MachineId machine);
  void OnMachineFailure(PoolId pool, MachineId machine);
  void OnMachineRepair(PoolId pool, MachineId machine);
  void FinishJobsScheduledBy(const std::vector<JobId>& scheduled);
  void MarkJobDone();

  sim::Simulator sim_;
  JobTable jobs_;
  std::vector<std::unique_ptr<PhysicalPool>> pools_;
  InitialScheduler* scheduler_;
  ReschedulingPolicy* policy_;
  SimulationOptions options_;
  std::vector<SimulationObserver*> observers_;

  CounterRegistry counters_;
  // Hot-path handles into counters_, resolved once at construction.
  struct HotCounters {
    Counter* submitted = nullptr;
    Counter* enqueued = nullptr;
    Counter* started = nullptr;
    Counter* resumed = nullptr;
    Counter* preempted = nullptr;
    Counter* completed = nullptr;
    Counter* rejected = nullptr;
    Counter* rescheduled = nullptr;
    Counter* duplicated = nullptr;
    Counter* evicted = nullptr;
    Counter* bounced = nullptr;
    Counter* failures = nullptr;
    Counter* repairs = nullptr;
    Counter* audits = nullptr;
    Gauge* busy_cores = nullptr;
    Gauge* suspended_jobs = nullptr;
    Gauge* waiting_jobs = nullptr;
    Gauge* pending_events = nullptr;
    Gauge* fired_events = nullptr;
  };
  HotCounters hot_;

  std::int64_t total_cores_ = 0;
  std::size_t total_jobs_ = 0;
  std::size_t completed_count_ = 0;
  std::size_t rejected_count_ = 0;
  std::uint64_t preemption_count_ = 0;
  std::uint64_t reschedule_count_ = 0;
  std::uint64_t duplicate_count_ = 0;
  std::uint64_t outage_count_ = 0;
  std::uint64_t eviction_count_ = 0;
  JobId::ValueType next_duplicate_id_;
  Rng outage_rng_;
};

}  // namespace netbatch::cluster

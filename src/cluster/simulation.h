// The NetBatch simulation engine.
//
// Plays the role of the paper's ASCA simulator (§3.1): it wires the event
// core to the simulator-independent scheduling core (sched::SchedulerCore,
// which owns the virtual pool manager + physical pools + machines and the
// initial-scheduler / rescheduling-policy stack), then replays a trace
// until every job completes. The engine itself is a thin shell: it admits
// the trace, turns the core's deferred-work hooks (sched::CoreHost) into
// typed events on the simulator heap, and routes fired events back into
// the core with the simulated clock. Every scheduling decision lives in
// the core — the same code netbatchd drives under wall-clock time.
//
// Event flow:
//   submission --> VPM (initial scheduler picks pool order) --> pool
//     TryPlace: start / preempt victims / queue / bounce to next pool
//   suspension --> policy.OnSuspended --> optional restart at another pool
//   wait timeout --> policy.OnWaitTimeout --> optional move (re-arms)
//   completion --> machine backfill (resume suspended, start waiting)
#pragma once

#include <optional>
#include <vector>

#include "cluster/config.h"
#include "cluster/interfaces.h"
#include "cluster/invariants.h"
#include "cluster/job_table.h"
#include "cluster/pool.h"
#include "cluster/view.h"
#include "common/counters.h"
#include "common/rng.h"
#include "service/scheduler_core.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace netbatch::cluster {

// Every event the engine schedules, as a typed kind. The simulator carries
// these as 48-byte POD payloads (sim::Event) — no per-event allocation —
// and NetBatchSimulation::Dispatch switches on the kind. Stale events
// (cancelled logically by a later transition) are dropped by comparing the
// event's generation stamp against the job's current generation.
enum class EventKind : std::uint16_t {
  kSubmit = 1,       // job: trace submission reaches the virtual pool manager
  kCompletion,       // job+stamp: a running job finishes
  kWaitTimeout,      // job+stamp: wait-queue rescheduling check (§3.3)
  kRestartDelivery,  // job+stamp+pool: rescheduled job arrives at its target
  kMachineFailure,   // pool+machine: outage injection
  kMachineRepair,    // pool+machine: repair after an outage
  kSampleTick,       // per-minute ASCA sampling (gauges + observers)
  kAuditTick,        // periodic invariant audit
};

// Machine failure injection: each machine independently fails with
// exponential(mtbf) uptime and recovers after exponential(mttr) downtime.
// A failing machine evicts everything on it (running and suspended); the
// evicted jobs lose un-checkpointed progress and are resubmitted through
// the virtual pool manager.
struct OutageModel {
  double mtbf_minutes = 0;   // mean time between failures; 0 disables
  double mttr_minutes = 240; // mean time to repair
  std::uint64_t seed = 0xfa11;
};

struct SimulationOptions {
  // Delivery delay applied when a job is rescheduled to another pool
  // (models data/binary transfer; the paper's future-work overhead).
  Ticks restart_overhead = 0;
  // Periodic checkpointing granularity in work units (0 = the paper's
  // baseline: restarts lose all progress). See Job::OnRestart.
  Ticks checkpoint_interval = 0;
  // Per-pool-pair transfer delay for rescheduled jobs (paper §5's network
  // delays / inter-site rescheduling): transfer_matrix[from][to] overrides
  // the scalar restart_overhead when non-empty. Must be square with one row
  // per pool.
  std::vector<std::vector<Ticks>> transfer_matrix;
  // Machine failure injection (disabled by default).
  OutageModel outages;
  // ASCA samples component state once per simulated minute.
  Ticks sample_period = kTicksPerMinute;
  bool sampling_enabled = true;
  DispatchMode dispatch_mode = DispatchMode::kPreferImmediateStart;
  // Continuous invariant auditing (opt-in; both abort on the first violated
  // invariant, like NETBATCH_CHECK). audit_period > 0 runs a full cluster
  // audit — every pool plus cluster-wide conservation — every that many
  // ticks; audit_on_transitions additionally audits the affected pool after
  // every pool-level job transition (start / resume / enqueue).
  Ticks audit_period = 0;
  bool audit_on_transitions = false;
  // 0 = the classic single-domain engine (NetBatchSimulation). >= 1 selects
  // the sharded engine (ShardedSimulation) with that many worker threads;
  // results are bit-identical across every value >= 1, so shards=1 is the
  // reference execution and larger values only buy wall-clock.
  int shards = 0;
};

class NetBatchSimulation final : public ClusterView,
                                 private sched::CoreHost,
                                 private sim::EventDispatcher {
 public:
  // `scheduler` and `policy` must outlive the simulation.
  NetBatchSimulation(const ClusterConfig& config,
                     const workload::Trace& trace,
                     InitialScheduler& scheduler, ReschedulingPolicy& policy,
                     SimulationOptions options = {});

  NetBatchSimulation(const NetBatchSimulation&) = delete;
  NetBatchSimulation& operator=(const NetBatchSimulation&) = delete;

  // Observers must outlive the simulation; call before Run().
  void AddObserver(SimulationObserver* observer) {
    core_.AddObserver(observer);
  }

  // Replays the whole trace and runs until every job completed (or was
  // rejected because no pool can ever run it).
  void Run();

  // The scheduling core this engine drives. Exposed for callers that want
  // the simulator-independent facade (snapshots, direct suspend/resume).
  sched::SchedulerCore& core() { return core_; }
  const sched::SchedulerCore& core() const { return core_; }

  // --- results ------------------------------------------------------------
  const JobTable& jobs() const { return core_.jobs(); }
  std::size_t completed_count() const { return core_.completed_count(); }
  std::size_t rejected_count() const { return core_.rejected_count(); }
  std::uint64_t preemption_count() const { return core_.preemption_count(); }
  std::uint64_t reschedule_count() const { return core_.reschedule_count(); }
  std::uint64_t duplicate_count() const { return core_.duplicate_count(); }
  std::uint64_t outage_count() const { return core_.outage_count(); }
  std::uint64_t eviction_count() const { return core_.eviction_count(); }

  const PhysicalPool& pool(PoolId id) const { return core_.pool(id); }
  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }

  // The per-simulation observability registry (owned by the core). Counters
  // (jobs.*, vpm.*, outages.*, audit.*) are maintained on every transition;
  // gauges (cluster.*, sim.*) are refreshed each sampling period and once at
  // the end of Run(). Per-instance by design: sweeps run simulations in
  // parallel, so a process-global registry would race.
  const CounterRegistry& counters() const { return core_.counters(); }
  CounterRegistry& counters() { return core_.counters(); }

  // Audits every pool's resource invariants plus cluster-wide conservation
  // (job states vs pool registries, busy cores vs running jobs, terminal
  // counters vs terminal states), reporting violations to `sink`.
  void AuditInvariants(InvariantSink& sink) const;

  // Fail-fast form of AuditInvariants: aborts on the first violation.
  void CheckInvariants() const;

  // Test support: mutable pool access, for corruption tests that desync
  // pool/machine accounting to prove the auditor fires.
  PhysicalPool& mutable_pool(PoolId id) { return core_.mutable_pool(id); }

  // --- ClusterView ----------------------------------------------------------
  Ticks Now() const override { return sim_.Now(); }
  std::size_t PoolCount() const override { return core_.PoolCount(); }
  double PoolUtilization(PoolId pool) const override {
    return core_.PoolUtilization(pool);
  }
  std::size_t PoolQueueLength(PoolId pool) const override {
    return core_.PoolQueueLength(pool);
  }
  std::int64_t PoolTotalCores(PoolId pool) const override {
    return core_.PoolTotalCores(pool);
  }
  bool PoolEligible(PoolId pool,
                    const workload::JobSpec& spec) const override {
    return core_.PoolEligible(pool, spec);
  }
  double ClusterUtilization() const override {
    return core_.ClusterUtilization();
  }
  std::size_t SuspendedJobCount() const override {
    return core_.SuspendedJobCount();
  }
  std::size_t PendingEventCount() const override {
    return sim_.PendingEvents();
  }
  std::uint64_t FiredEventCount() const override {
    return sim_.FiredEvents();
  }

 private:
  // sim::EventDispatcher: the single switch every typed event goes through.
  void Dispatch(const sim::Event& event) override;

  // sched::CoreHost: deferred work the core requests mid-decision becomes
  // a typed event on the simulator heap. The hook call sites inside the
  // core fix the event insertion sequence (and thus tie-breaking), so the
  // extraction preserves decisions bit for bit.
  void ArmCompletion(Job job, Ticks duration) override;
  void CancelCompletion(Job job) override;
  void ArmWaitTimeout(Job job, Ticks threshold) override;
  void ScheduleRestartDelivery(Job job, PoolId target,
                               Ticks overhead) override;
  void OnJobTerminal(const Job& job) override;

  void RunPeriodicAudit();
  void SampleGauges(Ticks now);
  void OnSampleTick();
  void OnAuditTick();
  bool AllJobsFinished() const {
    return core_.completed_count() + core_.rejected_count() == total_jobs_;
  }

  // Failure injection.
  void ScheduleNextFailure(PoolId pool, MachineId machine);
  void OnMachineFailure(PoolId pool, MachineId machine);
  void OnMachineRepair(PoolId pool, MachineId machine);

  static sched::CoreOptions CoreOptionsFrom(const SimulationOptions& options);

  sim::Simulator sim_;
  SimulationOptions options_;
  sched::SchedulerCore core_;
  // Engine-owned gauges in the core's registry (registered after the core's
  // own, preserving the pre-extraction snapshot order).
  Gauge* pending_events_ = nullptr;
  Gauge* fired_events_ = nullptr;
  std::size_t total_jobs_ = 0;
  Rng outage_rng_;
};

}  // namespace netbatch::cluster

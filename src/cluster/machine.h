// A single compute host, stored column-wise in a MachineArena.
//
// Machines track their free cores/memory and the sets of running and
// suspended jobs. Suspension at the host level is the paper's core
// mechanism: a preempted job stays bound to its machine (optionally holding
// memory) until it is resumed there or rescheduled away (§2.2).
//
// Like Job (cluster/job.h), `Machine` is a 16-byte view over parallel
// columns — totals, free resources, speed, owner, online bit — indexed by
// the machine's id, which doubles as its slot (pool machine ids are dense
// by construction). The running/suspended registries are intrusive doubly-
// linked lists threaded through JobArena's link columns: a job is on at
// most one machine list, so membership costs two uint32 links and one tag
// byte per job, with zero allocation per add/remove. Appends go to the
// tail and unlinks preserve order, so iteration yields exactly the
// arrival-order sequence the old per-machine vectors held — placement
// decisions (victim order, eviction order) stay bit-identical.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/job.h"
#include "common/check.h"
#include "common/ids.h"

namespace netbatch::cluster {

class MachineArena;

// Read-only range over one machine's running or suspended registry,
// yielding JobIds in arrival order (head to tail).
class MachineJobList {
 public:
  MachineJobList(const JobArena* jobs, std::uint32_t head, std::size_t count)
      : jobs_(jobs), head_(head), count_(count) {}

  class const_iterator {
   public:
    const_iterator(const JobArena* jobs, std::uint32_t slot)
        : jobs_(jobs), slot_(slot) {}
    JobId operator*() const { return jobs_->spec_[slot_].id; }
    const_iterator& operator++() {
      slot_ = jobs_->link_next_[slot_];
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return slot_ == other.slot_;
    }
    bool operator!=(const const_iterator& other) const {
      return slot_ != other.slot_;
    }

   private:
    const JobArena* jobs_;
    std::uint32_t slot_;
  };
  const_iterator begin() const { return const_iterator(jobs_, head_); }
  const_iterator end() const {
    return const_iterator(jobs_, JobArena::kNoSlot);
  }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  JobId front() const {
    NETBATCH_CHECK(head_ != JobArena::kNoSlot, "front() of empty registry");
    return jobs_->spec_[head_].id;
  }

 private:
  const JobArena* jobs_;
  std::uint32_t head_;
  std::size_t count_;
};

class Machine {
 public:
  Machine(MachineArena* arena, std::uint32_t slot)
      : arena_(arena), slot_(slot) {}

  MachineId id() const { return MachineId(slot_); }
  PoolId pool() const;
  // Owning business group (paper §2.2); -1 = unowned.
  std::int32_t owner() const;
  std::int32_t cores_total() const;
  std::int64_t memory_total_mb() const;
  double speed() const;

  std::int32_t cores_free() const;
  std::int64_t memory_free_mb() const;
  std::int32_t cores_busy() const { return cores_total() - cores_free(); }

  // Outage state: an offline machine accepts no placements (its jobs were
  // evicted when it failed) until repair brings it back.
  bool online() const;
  void set_online(bool online);

  // Whether this machine could ever run the job (capacity, not availability).
  bool Eligible(std::int32_t cores, std::int64_t memory_mb) const {
    return cores_total() >= cores && memory_total_mb() >= memory_mb;
  }

  // Whether the job fits right now.
  bool Fits(std::int32_t cores, std::int64_t memory_mb) const {
    return cores_free() >= cores && memory_free_mb() >= memory_mb;
  }

  // Resource claim/release. `Claim` aborts if resources are unavailable
  // (placement logic must check Fits() first).
  void Claim(std::int32_t cores, std::int64_t memory_mb);
  void Release(std::int32_t cores, std::int64_t memory_mb);

  // Running/suspended job registries (order = arrival order on host).
  // AddRunning/RemoveRunning also maintain the per-priority running-class
  // summary below, so callers pass the job's priority and resource demand.
  MachineJobList running() const;
  MachineJobList suspended() const;
  void AddRunning(JobId job, std::int32_t priority, std::int32_t cores,
                  std::int64_t memory_mb);
  void RemoveRunning(JobId job, std::int32_t priority, std::int32_t cores,
                     std::int64_t memory_mb);
  void AddSuspended(JobId job);
  void RemoveSuspended(JobId job);

  // --- preemptible-priority summary ---------------------------------------
  // Aggregates the running jobs by priority so the pool's preemption step
  // can skip machines that cannot yield without touching their job lists.

  // Sentinel "no running work" priority — above every real priority.
  static constexpr std::int32_t kNoRunningPriority =
      std::numeric_limits<std::int32_t>::max();

  // Priority of the machine's lowest-priority running job (the best victim
  // class); kNoRunningPriority when nothing runs here.
  std::int32_t lowest_running_priority() const;

  // Total cores/memory held by running jobs with priority strictly below
  // `priority` — exactly what a preemption at that priority could reclaim.
  void ReclaimableBelow(std::int32_t priority, std::int32_t& cores,
                        std::int64_t& memory_mb) const;

 private:
  MachineArena* arena_;
  std::uint32_t slot_;
};

// Struct-of-arrays storage for one pool's machines. Machine ids are dense
// (assigned by Add in order), so id == slot. The per-priority running-class
// summaries live as pooled singly-linked nodes (sorted ascending by
// priority, a handful per machine) in a shared node vector with a free
// list — no allocation per class churn once the pool warms up.
class MachineArena {
 public:
  MachineArena(PoolId pool, JobArena& jobs) : pool_(pool), jobs_(&jobs) {}

  PoolId pool() const { return pool_; }
  const JobArena& jobs() const { return *jobs_; }

  void Reserve(std::size_t n) {
    owner_.reserve(n);
    cores_total_.reserve(n);
    memory_total_mb_.reserve(n);
    speed_.reserve(n);
    cores_free_.reserve(n);
    memory_free_mb_.reserve(n);
    online_.reserve(n);
    run_head_.reserve(n);
    run_tail_.reserve(n);
    run_count_.reserve(n);
    susp_head_.reserve(n);
    susp_tail_.reserve(n);
    susp_count_.reserve(n);
    class_head_.reserve(n);
  }

  // Appends a machine; its id is the next dense slot.
  MachineId Add(std::int32_t cores, std::int64_t memory_mb, double speed,
                std::int32_t owner = -1 /* workload::kNoOwner */);

  std::size_t size() const { return cores_total_.size(); }
  bool empty() const { return cores_total_.empty(); }

  // Views are values; read-only use binds `const Machine&` at the call
  // site (see JobArena::at for the rationale).
  Machine at(MachineId id) const {
    NETBATCH_CHECK(id.valid() && id.value() < size(),
                   "machine id out of range");
    return Machine(const_cast<MachineArena*>(this), id.value());
  }
  Machine operator[](std::size_t slot) const {
    return Machine(const_cast<MachineArena*>(this),
                   static_cast<std::uint32_t>(slot));
  }

  class const_iterator {
   public:
    const_iterator(const MachineArena* arena, std::uint32_t slot)
        : arena_(arena), slot_(slot) {}
    Machine operator*() const {
      return Machine(const_cast<MachineArena*>(arena_), slot_);
    }
    const_iterator& operator++() {
      ++slot_;
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return slot_ == other.slot_;
    }
    bool operator!=(const const_iterator& other) const {
      return slot_ != other.slot_;
    }

   private:
    const MachineArena* arena_;
    std::uint32_t slot_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    return const_iterator(this, static_cast<std::uint32_t>(size()));
  }

  // Resident bytes of every column plus the class-node pool (capacity, not
  // size — reserved slots are charged too).
  std::size_t MemoryBytes() const {
    return ColumnBytes(owner_) + ColumnBytes(cores_total_) +
           ColumnBytes(memory_total_mb_) + ColumnBytes(speed_) +
           ColumnBytes(cores_free_) + ColumnBytes(memory_free_mb_) +
           ColumnBytes(online_) + ColumnBytes(run_head_) +
           ColumnBytes(run_tail_) + ColumnBytes(run_count_) +
           ColumnBytes(susp_head_) + ColumnBytes(susp_tail_) +
           ColumnBytes(susp_count_) + ColumnBytes(class_head_) +
           ColumnBytes(class_nodes_) + ColumnBytes(class_free_);
  }

 private:
  friend class Machine;

  static constexpr std::uint32_t kNoNode = 0xffffffffu;

  struct ClassNode {
    std::int32_t priority = 0;
    std::int32_t jobs = 0;
    std::int32_t cores = 0;
    std::int64_t memory_mb = 0;
    std::uint32_t next = kNoNode;
  };

  template <typename T>
  static std::size_t ColumnBytes(const std::vector<T>& column) {
    return column.capacity() * sizeof(T);
  }

  // Running-class summary maintenance (sorted ascending by priority).
  void AddRunningClass(std::uint32_t machine, std::int32_t priority,
                       std::int32_t cores, std::int64_t memory_mb);
  void RemoveRunningClass(std::uint32_t machine, std::int32_t priority,
                          std::int32_t cores, std::int64_t memory_mb);

  // Intrusive-list surgery on the job arena's link columns. `running`
  // selects the registry; appends go to the tail (old push_back order).
  void LinkJob(std::uint32_t machine, JobId job, bool running);
  void UnlinkJob(std::uint32_t machine, JobId job, bool running);

  PoolId pool_;
  JobArena* jobs_;

  std::vector<std::int32_t> owner_;
  std::vector<std::int32_t> cores_total_;
  std::vector<std::int64_t> memory_total_mb_;
  std::vector<double> speed_;
  std::vector<std::int32_t> cores_free_;
  std::vector<std::int64_t> memory_free_mb_;
  std::vector<std::uint8_t> online_;
  // Running/suspended registries: head/tail job slots + member count.
  std::vector<std::uint32_t> run_head_;
  std::vector<std::uint32_t> run_tail_;
  std::vector<std::uint32_t> run_count_;
  std::vector<std::uint32_t> susp_head_;
  std::vector<std::uint32_t> susp_tail_;
  std::vector<std::uint32_t> susp_count_;
  // Per-machine head of its running-class list in the pooled nodes below.
  std::vector<std::uint32_t> class_head_;
  std::vector<ClassNode> class_nodes_;
  std::vector<std::uint32_t> class_free_;
};

// --- Machine view accessors (one indexed column load each) ------------------

inline PoolId Machine::pool() const { return arena_->pool_; }
inline std::int32_t Machine::owner() const { return arena_->owner_[slot_]; }
inline std::int32_t Machine::cores_total() const {
  return arena_->cores_total_[slot_];
}
inline std::int64_t Machine::memory_total_mb() const {
  return arena_->memory_total_mb_[slot_];
}
inline double Machine::speed() const { return arena_->speed_[slot_]; }
inline std::int32_t Machine::cores_free() const {
  return arena_->cores_free_[slot_];
}
inline std::int64_t Machine::memory_free_mb() const {
  return arena_->memory_free_mb_[slot_];
}
inline bool Machine::online() const { return arena_->online_[slot_] != 0; }
inline void Machine::set_online(bool online) {
  arena_->online_[slot_] = online ? 1 : 0;
}
inline MachineJobList Machine::running() const {
  return MachineJobList(arena_->jobs_, arena_->run_head_[slot_],
                        arena_->run_count_[slot_]);
}
inline MachineJobList Machine::suspended() const {
  return MachineJobList(arena_->jobs_, arena_->susp_head_[slot_],
                        arena_->susp_count_[slot_]);
}
inline std::int32_t Machine::lowest_running_priority() const {
  const std::uint32_t head = arena_->class_head_[slot_];
  return head == MachineArena::kNoNode ? kNoRunningPriority
                                       : arena_->class_nodes_[head].priority;
}
inline void Machine::ReclaimableBelow(std::int32_t priority,
                                      std::int32_t& cores,
                                      std::int64_t& memory_mb) const {
  cores = 0;
  memory_mb = 0;
  for (std::uint32_t node = arena_->class_head_[slot_];
       node != MachineArena::kNoNode;
       node = arena_->class_nodes_[node].next) {
    const MachineArena::ClassNode& cls = arena_->class_nodes_[node];
    if (cls.priority >= priority) break;
    cores += cls.cores;
    memory_mb += cls.memory_mb;
  }
}

}  // namespace netbatch::cluster

// A single compute host.
//
// Machines track their free cores/memory and the sets of running and
// suspended jobs. Suspension at the host level is the paper's core
// mechanism: a preempted job stays bound to its machine (optionally holding
// memory) until it is resumed there or rescheduled away (§2.2).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace netbatch::cluster {

class Machine {
 public:
  Machine(MachineId id, PoolId pool, std::int32_t cores,
          std::int64_t memory_mb, double speed,
          std::int32_t owner = -1 /* workload::kNoOwner */);

  MachineId id() const { return id_; }
  PoolId pool() const { return pool_; }
  // Owning business group (paper §2.2); -1 = unowned.
  std::int32_t owner() const { return owner_; }
  std::int32_t cores_total() const { return cores_total_; }
  std::int64_t memory_total_mb() const { return memory_total_mb_; }
  double speed() const { return speed_; }

  std::int32_t cores_free() const { return cores_free_; }
  std::int64_t memory_free_mb() const { return memory_free_mb_; }
  std::int32_t cores_busy() const { return cores_total_ - cores_free_; }

  // Outage state: an offline machine accepts no placements (its jobs were
  // evicted when it failed) until repair brings it back.
  bool online() const { return online_; }
  void set_online(bool online) { online_ = online; }

  // Whether this machine could ever run the job (capacity, not availability).
  bool Eligible(std::int32_t cores, std::int64_t memory_mb) const {
    return cores_total_ >= cores && memory_total_mb_ >= memory_mb;
  }

  // Whether the job fits right now.
  bool Fits(std::int32_t cores, std::int64_t memory_mb) const {
    return cores_free_ >= cores && memory_free_mb_ >= memory_mb;
  }

  // Resource claim/release. `Claim` aborts if resources are unavailable
  // (placement logic must check Fits() first).
  void Claim(std::int32_t cores, std::int64_t memory_mb);
  void Release(std::int32_t cores, std::int64_t memory_mb);

  // Running/suspended job registries (order = arrival order on host).
  // AddRunning/RemoveRunning also maintain the per-priority running-class
  // summary below, so callers pass the job's priority and resource demand.
  const std::vector<JobId>& running() const { return running_; }
  const std::vector<JobId>& suspended() const { return suspended_; }
  void AddRunning(JobId job, std::int32_t priority, std::int32_t cores,
                  std::int64_t memory_mb);
  void RemoveRunning(JobId job, std::int32_t priority, std::int32_t cores,
                     std::int64_t memory_mb);
  void AddSuspended(JobId job) { suspended_.push_back(job); }
  void RemoveSuspended(JobId job);

  // --- preemptible-priority summary ---------------------------------------
  // Aggregates the running jobs by priority so the pool's preemption step
  // can skip machines that cannot yield without touching their job lists.

  // Sentinel "no running work" priority — above every real priority.
  static constexpr std::int32_t kNoRunningPriority =
      std::numeric_limits<std::int32_t>::max();

  // Priority of the machine's lowest-priority running job (the best victim
  // class); kNoRunningPriority when nothing runs here.
  std::int32_t lowest_running_priority() const {
    return running_classes_.empty() ? kNoRunningPriority
                                    : running_classes_.front().priority;
  }

  // Total cores/memory held by running jobs with priority strictly below
  // `priority` — exactly what a preemption at that priority could reclaim.
  void ReclaimableBelow(std::int32_t priority, std::int32_t& cores,
                        std::int64_t& memory_mb) const {
    cores = 0;
    memory_mb = 0;
    for (const RunningClass& cls : running_classes_) {
      if (cls.priority >= priority) break;
      cores += cls.cores;
      memory_mb += cls.memory_mb;
    }
  }

 private:
  struct RunningClass {
    std::int32_t priority = 0;
    std::int32_t jobs = 0;
    std::int32_t cores = 0;
    std::int64_t memory_mb = 0;
  };

  MachineId id_;
  PoolId pool_;
  std::int32_t owner_;
  std::int32_t cores_total_;
  std::int64_t memory_total_mb_;
  double speed_;
  std::int32_t cores_free_;
  std::int64_t memory_free_mb_;
  bool online_ = true;
  std::vector<JobId> running_;
  std::vector<JobId> suspended_;
  // Sorted by priority ascending; a handful of entries (one per distinct
  // running priority on this host).
  std::vector<RunningClass> running_classes_;
};

}  // namespace netbatch::cluster

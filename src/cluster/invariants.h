// Invariant-audit plumbing shared by the pool and simulation layers.
//
// Audits walk cluster state and *report* violations to a sink instead of
// aborting, so the same checks serve three masters: NETBATCH_CHECK-style
// fail-fast validation (FailFastSink), the periodic InvariantAuditor that
// counts violations across a run, and tests that deliberately corrupt state
// and assert the audit notices.
#pragma once

#include <string>

#include "common/check.h"
#include "common/ids.h"
#include "common/time.h"

namespace netbatch::cluster {

struct InvariantViolation {
  Ticks time = 0;
  PoolId pool;        // invalid for cluster-wide (cross-pool) checks
  std::string what;
  MachineId machine;  // set for per-machine checks (index consistency)
};

class InvariantSink {
 public:
  virtual ~InvariantSink() = default;
  virtual void Report(const InvariantViolation& violation) = 0;
};

// Aborts on the first violation — the behavior of the original
// PhysicalPool::CheckInvariants, preserved for tests and debug use.
class FailFastSink final : public InvariantSink {
 public:
  void Report(const InvariantViolation& violation) override {
    NETBATCH_CHECK(false, violation.what);
  }
};

}  // namespace netbatch::cluster

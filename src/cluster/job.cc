#include "cluster/job.h"

#include <algorithm>

namespace netbatch::cluster {

const char* ToString(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kWaiting:
      return "waiting";
    case JobState::kRunning:
      return "running";
    case JobState::kSuspended:
      return "suspended";
    case JobState::kInTransit:
      return "in-transit";
    case JobState::kCompleted:
      return "completed";
    case JobState::kRejected:
      return "rejected";
    case JobState::kKilled:
      return "killed";
  }
  return "?";
}

void Job::Transition(JobState next) {
  arena_->state_[slot_] = next;
  ++arena_->generation_[slot_];
}

void Job::SettleWaitingTime(Ticks now) {
  JobArena& a = *arena_;
  const Ticks elapsed = now - a.state_since_[slot_];
  NETBATCH_CHECK(elapsed >= 0, "time went backwards in job accounting");
  switch (a.state_[slot_]) {
    case JobState::kPending:
    case JobState::kWaiting:
      a.wait_ticks_[slot_] += elapsed;
      break;
    case JobState::kInTransit:
      a.transit_ticks_[slot_] += elapsed;
      break;
    default:
      NETBATCH_CHECK(false, "SettleWaitingTime from a non-queued state");
  }
}

void Job::SettleRunProgress(Ticks now) {
  JobArena& a = *arena_;
  NETBATCH_CHECK(a.state_[slot_] == JobState::kRunning,
                 "SettleRunProgress outside running state");
  const Ticks elapsed = now - a.state_since_[slot_];
  NETBATCH_CHECK(elapsed >= 0, "time went backwards in job accounting");
  a.executed_ticks_[slot_] += elapsed;
  a.attempt_executed_[slot_] += elapsed;
  const auto consumed = std::min(
      a.remaining_work_[slot_],
      static_cast<Ticks>(std::floor(static_cast<double>(elapsed) *
                                    a.run_speed_[slot_])));
  a.remaining_work_[slot_] -= consumed;
  a.attempt_work_[slot_] += consumed;
}

void Job::OnSubmitted(Ticks now) {
  JobArena& a = *arena_;
  NETBATCH_CHECK(a.state_[slot_] == JobState::kPending, "double submission");
  a.state_since_[slot_] = now;
  ++a.generation_[slot_];
}

void Job::OnEnqueued(Ticks now, PoolId pool) {
  JobArena& a = *arena_;
  NETBATCH_CHECK(a.state_[slot_] == JobState::kPending ||
                     a.state_[slot_] == JobState::kInTransit,
                 "enqueue from illegal state");
  SettleWaitingTime(now);
  a.pool_[slot_] = pool;
  a.machine_[slot_] = MachineId();
  Transition(JobState::kWaiting);
  a.state_since_[slot_] = now;
}

void Job::OnStarted(Ticks now, MachineId machine, double speed) {
  JobArena& a = *arena_;
  NETBATCH_CHECK(a.state_[slot_] == JobState::kPending ||
                     a.state_[slot_] == JobState::kWaiting ||
                     a.state_[slot_] == JobState::kInTransit,
                 "start from illegal state");
  SettleWaitingTime(now);
  a.machine_[slot_] = machine;
  a.run_speed_[slot_] = speed;
  Transition(JobState::kRunning);
  a.state_since_[slot_] = now;
}

void Job::OnSuspended(Ticks now) {
  JobArena& a = *arena_;
  NETBATCH_CHECK(a.state_[slot_] == JobState::kRunning,
                 "suspend of non-running job");
  SettleRunProgress(now);
  ++a.suspend_count_[slot_];
  Transition(JobState::kSuspended);
  a.state_since_[slot_] = now;
}

void Job::OnResumed(Ticks now) {
  JobArena& a = *arena_;
  NETBATCH_CHECK(a.state_[slot_] == JobState::kSuspended,
                 "resume of non-suspended job");
  a.suspend_ticks_[slot_] += now - a.state_since_[slot_];
  Transition(JobState::kRunning);
  a.state_since_[slot_] = now;
}

void Job::OnCompleted(Ticks now) {
  JobArena& a = *arena_;
  NETBATCH_CHECK(a.state_[slot_] == JobState::kRunning,
                 "completion of non-running job");
  const Ticks elapsed = now - a.state_since_[slot_];
  a.executed_ticks_[slot_] += elapsed;
  a.attempt_executed_[slot_] += elapsed;
  a.remaining_work_[slot_] = 0;
  a.completion_time_[slot_] = now;
  Transition(JobState::kCompleted);
  a.state_since_[slot_] = now;
}

void Job::OnRejected(Ticks now) {
  JobArena& a = *arena_;
  NETBATCH_CHECK(a.state_[slot_] == JobState::kPending,
                 "rejection of accepted job");
  a.completion_time_[slot_] = -1;
  Transition(JobState::kRejected);
  a.state_since_[slot_] = now;
}

// Settles the accounting of whatever non-terminal state the job is in at
// `now` (used by the twin-race terminal transitions).
void Job::SettleAnyState(Ticks now) {
  JobArena& a = *arena_;
  switch (a.state_[slot_]) {
    case JobState::kRunning:
      SettleRunProgress(now);
      break;
    case JobState::kSuspended:
      a.suspend_ticks_[slot_] += now - a.state_since_[slot_];
      break;
    case JobState::kPending:
    case JobState::kWaiting:
    case JobState::kInTransit:
      SettleWaitingTime(now);
      break;
    default:
      NETBATCH_CHECK(false, "settling a terminal state");
  }
}

void Job::OnKilled(Ticks now) {
  SettleAnyState(now);
  Transition(JobState::kKilled);
  arena_->state_since_[slot_] = now;
}

void Job::OnCompletedByTwin(Ticks now) {
  JobArena& a = *arena_;
  SettleAnyState(now);
  // Whatever this attempt executed is now discarded work.
  a.resched_waste_ticks_[slot_] += a.attempt_executed_[slot_];
  a.attempt_executed_[slot_] = 0;
  a.completion_time_[slot_] = now;
  Transition(JobState::kCompleted);
  a.state_since_[slot_] = now;
}

void Job::OnRestart(Ticks now, PoolId target, Ticks checkpoint_interval) {
  JobArena& a = *arena_;
  switch (a.state_[slot_]) {
    case JobState::kSuspended:
      a.suspend_ticks_[slot_] += now - a.state_since_[slot_];
      break;
    case JobState::kWaiting:
      a.wait_ticks_[slot_] += now - a.state_since_[slot_];
      break;
    case JobState::kRunning:
      // Eviction by a machine outage: the run ends here and the job is
      // resubmitted.
      SettleRunProgress(now);
      break;
    default:
      NETBATCH_CHECK(false, "restart from illegal state");
  }
  // Progress kept across the restart: nothing in the paper's baseline
  // ("restarted from the beginning", §3.2), or the last checkpoint with a
  // positive interval. Any earlier restart left total progress at a
  // checkpoint multiple, so the discarded work always belongs to the
  // current attempt.
  const Ticks total_done = a.spec_[slot_].runtime - a.remaining_work_[slot_];
  const Ticks kept =
      checkpoint_interval > 0
          ? (total_done / checkpoint_interval) * checkpoint_interval
          : Ticks{0};
  const Ticks discarded_work = total_done - kept;
  NETBATCH_CHECK(discarded_work <= a.attempt_work_[slot_],
                 "restart discarding work from a previous checkpoint");
  // The discarded execution — pro-rated wall-clock of this attempt — is the
  // paper's "wasted time by rescheduling".
  const Ticks wasted_wall =
      a.attempt_work_[slot_] == 0
          ? a.attempt_executed_[slot_]
          : static_cast<Ticks>(std::llround(
                static_cast<double>(a.attempt_executed_[slot_]) *
                static_cast<double>(discarded_work) /
                static_cast<double>(a.attempt_work_[slot_])));
  a.resched_waste_ticks_[slot_] += wasted_wall;
  a.attempt_executed_[slot_] = 0;
  a.attempt_work_[slot_] = 0;
  a.remaining_work_[slot_] = a.spec_[slot_].runtime - kept;
  ++a.restart_count_[slot_];
  a.pool_[slot_] = target;
  a.machine_[slot_] = MachineId();
  Transition(JobState::kInTransit);
  a.state_since_[slot_] = now;
}

}  // namespace netbatch::cluster

#include "cluster/job.h"

#include <algorithm>

namespace netbatch::cluster {

const char* ToString(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kWaiting:
      return "waiting";
    case JobState::kRunning:
      return "running";
    case JobState::kSuspended:
      return "suspended";
    case JobState::kInTransit:
      return "in-transit";
    case JobState::kCompleted:
      return "completed";
    case JobState::kRejected:
      return "rejected";
    case JobState::kKilled:
      return "killed";
  }
  return "?";
}

Job::Job(workload::JobSpec spec)
    : spec_(std::move(spec)), remaining_work_(spec_.runtime) {}

void Job::Transition(JobState next) {
  state_ = next;
  ++generation_;
}

void Job::SettleWaitingTime(Ticks now) {
  const Ticks elapsed = now - state_since_;
  NETBATCH_CHECK(elapsed >= 0, "time went backwards in job accounting");
  switch (state_) {
    case JobState::kPending:
    case JobState::kWaiting:
      wait_ticks_ += elapsed;
      break;
    case JobState::kInTransit:
      transit_ticks_ += elapsed;
      break;
    default:
      NETBATCH_CHECK(false, "SettleWaitingTime from a non-queued state");
  }
}

void Job::SettleRunProgress(Ticks now) {
  NETBATCH_CHECK(state_ == JobState::kRunning,
                 "SettleRunProgress outside running state");
  const Ticks elapsed = now - state_since_;
  NETBATCH_CHECK(elapsed >= 0, "time went backwards in job accounting");
  executed_ticks_ += elapsed;
  attempt_executed_ += elapsed;
  const auto consumed = std::min(
      remaining_work_, static_cast<Ticks>(std::floor(
                           static_cast<double>(elapsed) * run_speed_)));
  remaining_work_ -= consumed;
  attempt_work_ += consumed;
}

void Job::OnSubmitted(Ticks now) {
  NETBATCH_CHECK(state_ == JobState::kPending, "double submission");
  state_since_ = now;
  ++generation_;
}

void Job::OnEnqueued(Ticks now, PoolId pool) {
  NETBATCH_CHECK(state_ == JobState::kPending ||
                     state_ == JobState::kInTransit,
                 "enqueue from illegal state");
  SettleWaitingTime(now);
  pool_ = pool;
  machine_ = MachineId();
  Transition(JobState::kWaiting);
  state_since_ = now;
}

void Job::OnStarted(Ticks now, MachineId machine, double speed) {
  NETBATCH_CHECK(state_ == JobState::kPending ||
                     state_ == JobState::kWaiting ||
                     state_ == JobState::kInTransit,
                 "start from illegal state");
  SettleWaitingTime(now);
  machine_ = machine;
  run_speed_ = speed;
  Transition(JobState::kRunning);
  state_since_ = now;
}

void Job::OnSuspended(Ticks now) {
  NETBATCH_CHECK(state_ == JobState::kRunning, "suspend of non-running job");
  SettleRunProgress(now);
  ++suspend_count_;
  Transition(JobState::kSuspended);
  state_since_ = now;
}

void Job::OnResumed(Ticks now) {
  NETBATCH_CHECK(state_ == JobState::kSuspended, "resume of non-suspended job");
  suspend_ticks_ += now - state_since_;
  Transition(JobState::kRunning);
  state_since_ = now;
}

void Job::OnCompleted(Ticks now) {
  NETBATCH_CHECK(state_ == JobState::kRunning, "completion of non-running job");
  const Ticks elapsed = now - state_since_;
  executed_ticks_ += elapsed;
  attempt_executed_ += elapsed;
  remaining_work_ = 0;
  completion_time_ = now;
  Transition(JobState::kCompleted);
  state_since_ = now;
}

void Job::OnRejected(Ticks now) {
  NETBATCH_CHECK(state_ == JobState::kPending, "rejection of accepted job");
  completion_time_ = -1;
  Transition(JobState::kRejected);
  state_since_ = now;
}

// Settles the accounting of whatever non-terminal state the job is in at
// `now` (used by the twin-race terminal transitions).
void Job::SettleAnyState(Ticks now) {
  switch (state_) {
    case JobState::kRunning:
      SettleRunProgress(now);
      break;
    case JobState::kSuspended:
      suspend_ticks_ += now - state_since_;
      break;
    case JobState::kPending:
    case JobState::kWaiting:
    case JobState::kInTransit:
      SettleWaitingTime(now);
      break;
    default:
      NETBATCH_CHECK(false, "settling a terminal state");
  }
}

void Job::OnKilled(Ticks now) {
  SettleAnyState(now);
  Transition(JobState::kKilled);
  state_since_ = now;
}

void Job::OnCompletedByTwin(Ticks now) {
  SettleAnyState(now);
  // Whatever this attempt executed is now discarded work.
  resched_waste_ticks_ += attempt_executed_;
  attempt_executed_ = 0;
  completion_time_ = now;
  Transition(JobState::kCompleted);
  state_since_ = now;
}

void Job::OnRestart(Ticks now, PoolId target, Ticks checkpoint_interval) {
  switch (state_) {
    case JobState::kSuspended:
      suspend_ticks_ += now - state_since_;
      break;
    case JobState::kWaiting:
      wait_ticks_ += now - state_since_;
      break;
    case JobState::kRunning:
      // Eviction by a machine outage: the run ends here and the job is
      // resubmitted.
      SettleRunProgress(now);
      break;
    default:
      NETBATCH_CHECK(false, "restart from illegal state");
  }
  // Progress kept across the restart: nothing in the paper's baseline
  // ("restarted from the beginning", §3.2), or the last checkpoint with a
  // positive interval. Any earlier restart left total progress at a
  // checkpoint multiple, so the discarded work always belongs to the
  // current attempt.
  const Ticks total_done = spec_.runtime - remaining_work_;
  const Ticks kept =
      checkpoint_interval > 0
          ? (total_done / checkpoint_interval) * checkpoint_interval
          : Ticks{0};
  const Ticks discarded_work = total_done - kept;
  NETBATCH_CHECK(discarded_work <= attempt_work_,
                 "restart discarding work from a previous checkpoint");
  // The discarded execution — pro-rated wall-clock of this attempt — is the
  // paper's "wasted time by rescheduling".
  const Ticks wasted_wall =
      attempt_work_ == 0
          ? attempt_executed_
          : static_cast<Ticks>(std::llround(
                static_cast<double>(attempt_executed_) *
                static_cast<double>(discarded_work) /
                static_cast<double>(attempt_work_)));
  resched_waste_ticks_ += wasted_wall;
  attempt_executed_ = 0;
  attempt_work_ = 0;
  remaining_work_ = spec_.runtime - kept;
  ++restart_count_;
  pool_ = target;
  machine_ = MachineId();
  Transition(JobState::kInTransit);
  state_since_ = now;
}

}  // namespace netbatch::cluster

#include "cluster/simulation.h"

#include <algorithm>

#include "common/distributions.h"
#include "common/log.h"

namespace netbatch::cluster {

namespace {

// Builders for the typed POD events the engine schedules. The stamp is the
// job's generation at scheduling time; Dispatch drops the event when the
// generations no longer match (the job transitioned meanwhile).
sim::Event JobEvent(EventKind kind, const Job& job) {
  sim::Event event;
  event.kind = static_cast<std::uint16_t>(kind);
  event.job = job.id();
  event.stamp = job.generation();
  return event;
}

sim::Event MachineEvent(EventKind kind, PoolId pool, MachineId machine) {
  sim::Event event;
  event.kind = static_cast<std::uint16_t>(kind);
  event.pool = pool;
  event.machine = machine;
  return event;
}

sim::Event TickEvent(EventKind kind) {
  sim::Event event;
  event.kind = static_cast<std::uint16_t>(kind);
  return event;
}

}  // namespace

NetBatchSimulation::NetBatchSimulation(const ClusterConfig& config,
                                       const workload::Trace& trace,
                                       InitialScheduler& scheduler,
                                       ReschedulingPolicy& policy,
                                       SimulationOptions options)
    : scheduler_(&scheduler),
      policy_(&policy),
      options_(options),
      outage_rng_(options.outages.seed) {
  NETBATCH_CHECK(!config.pools.empty(), "cluster needs at least one pool");
  sim_.set_dispatcher(this);
  // Size the job index and the event heap for the trace up front so neither
  // reallocates mid-run (duplicates spill past this; that growth is rare).
  jobs_.Reserve(trace.size());
  sim_.Reserve(trace.size());
  pools_.reserve(config.pools.size());
  for (std::size_t p = 0; p < config.pools.size(); ++p) {
    const PoolId pool_id(static_cast<PoolId::ValueType>(p));
    std::vector<Machine> machines;
    MachineId::ValueType next_machine = 0;
    for (const MachineGroupConfig& group : config.pools[p].machine_groups) {
      for (std::int32_t i = 0; i < group.count; ++i) {
        machines.emplace_back(MachineId(next_machine++), pool_id, group.cores,
                              group.memory_mb, group.speed, group.owner);
      }
    }
    NETBATCH_CHECK(!machines.empty(), "pool without machines");
    pools_.push_back(std::make_unique<PhysicalPool>(
        pool_id, std::move(machines), jobs_, config.suspended_holds_memory,
        config.local_resume_first,
        /*observer=*/static_cast<PoolObserver*>(this)));
    total_cores_ += pools_.back()->total_cores();
  }

  // Resolve the hot-path counter handles once; every engine transition then
  // costs a single integer add.
  hot_.submitted = &counters_.GetCounter("jobs.submitted");
  hot_.enqueued = &counters_.GetCounter("jobs.enqueued");
  hot_.started = &counters_.GetCounter("jobs.started");
  hot_.resumed = &counters_.GetCounter("jobs.resumed");
  hot_.preempted = &counters_.GetCounter("jobs.preempted");
  hot_.completed = &counters_.GetCounter("jobs.completed");
  hot_.rejected = &counters_.GetCounter("jobs.rejected");
  hot_.rescheduled = &counters_.GetCounter("jobs.rescheduled");
  hot_.duplicated = &counters_.GetCounter("jobs.duplicated");
  hot_.evicted = &counters_.GetCounter("jobs.evicted");
  hot_.bounced = &counters_.GetCounter("vpm.bounces");
  hot_.failures = &counters_.GetCounter("outages.failures");
  hot_.repairs = &counters_.GetCounter("outages.repairs");
  hot_.audits = &counters_.GetCounter("audit.runs");
  hot_.busy_cores = &counters_.GetGauge("cluster.busy_cores");
  hot_.suspended_jobs = &counters_.GetGauge("cluster.suspended_jobs");
  hot_.waiting_jobs = &counters_.GetGauge("cluster.waiting_jobs");
  hot_.pending_events = &counters_.GetGauge("sim.pending_events");
  hot_.fired_events = &counters_.GetGauge("sim.fired_events");

  JobId::ValueType max_id = 0;
  for (const workload::JobSpec& spec : trace.jobs()) {
    for (PoolId pool : spec.candidate_pools) {
      NETBATCH_CHECK(pool.value() < pools_.size(),
                     "trace references unknown pool");
    }
    max_id = std::max(max_id, spec.id.value());
    jobs_.Create(spec);
  }
  total_jobs_ = trace.size();
  // Duplicates get ids above every trace id.
  next_duplicate_id_ = max_id + 1;

  if (!options_.transfer_matrix.empty()) {
    NETBATCH_CHECK(options_.transfer_matrix.size() == pools_.size(),
                   "transfer matrix must have one row per pool");
    for (const auto& row : options_.transfer_matrix) {
      NETBATCH_CHECK(row.size() == pools_.size(),
                     "transfer matrix must be square");
      for (Ticks delay : row) {
        NETBATCH_CHECK(delay >= 0, "negative transfer delay");
      }
    }
  }
}

void NetBatchSimulation::AddObserver(SimulationObserver* observer) {
  NETBATCH_CHECK(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

void NetBatchSimulation::Run() {
  for (const Job& job : jobs_) {
    sim_.ScheduleAt(job.submit_time(), JobEvent(EventKind::kSubmit, job));
  }
  if (options_.outages.mtbf_minutes > 0) {
    NETBATCH_CHECK(options_.outages.mttr_minutes > 0,
                   "outage repair time must be positive");
    for (const auto& pool : pools_) {
      for (const Machine& machine : pool->machines()) {
        ScheduleNextFailure(pool->id(), machine.id());
      }
    }
  }
  if (options_.sampling_enabled && !observers_.empty()) {
    sim_.ScheduleAt(Ticks{0}, TickEvent(EventKind::kSampleTick));
  }
  if (options_.audit_period > 0) {
    sim_.ScheduleAt(Ticks{0}, TickEvent(EventKind::kAuditTick));
  }
  sim_.RunToCompletion();
  NETBATCH_CHECK(AllJobsFinished(),
                 "simulation ended with unfinished jobs");
  // Leave the gauges describing the end-of-run state even when no sampler
  // ran (sampling disabled or no observers attached).
  SampleGauges(sim_.Now());
}

void NetBatchSimulation::Dispatch(const sim::Event& event) {
  switch (static_cast<EventKind>(event.kind)) {
    case EventKind::kSubmit:
      SubmitJob(event.job);
      break;
    case EventKind::kCompletion:
      OnCompletionEvent(event);
      break;
    case EventKind::kWaitTimeout:
      OnWaitTimeoutEvent(event);
      break;
    case EventKind::kRestartDelivery:
      DeliverRestartedJob(event.job, event.stamp, event.pool);
      break;
    case EventKind::kMachineFailure:
      OnMachineFailure(event.pool, event.machine);
      break;
    case EventKind::kMachineRepair:
      OnMachineRepair(event.pool, event.machine);
      break;
    case EventKind::kSampleTick:
      OnSampleTick();
      break;
    case EventKind::kAuditTick:
      OnAuditTick();
      break;
    default:
      NETBATCH_CHECK(false, "unknown event kind");
  }
}

void NetBatchSimulation::OnSampleTick() {
  const Ticks now = sim_.Now();
  SampleGauges(now);
  for (SimulationObserver* obs : observers_) obs->OnSample(now, *this);
  // Stop sampling once the last job settled (the loop is about to stop).
  if (AllJobsFinished()) return;
  sim_.ScheduleAfter(options_.sample_period,
                     TickEvent(EventKind::kSampleTick));
}

void NetBatchSimulation::OnAuditTick() {
  RunPeriodicAudit();
  if (AllJobsFinished()) return;
  sim_.ScheduleAfter(options_.audit_period, TickEvent(EventKind::kAuditTick));
}

void NetBatchSimulation::MarkJobDone() {
  if (AllJobsFinished()) {
    // Everything is finished; any residual events are generation-guarded
    // no-ops, so the loop can stop immediately.
    sim_.RequestStop();
  }
}

void NetBatchSimulation::SubmitJob(JobId id) {
  Job& job = jobs_.at(id);
  job.OnSubmitted(sim_.Now());
  hot_.submitted->Increment();
  const std::vector<PoolId> order = scheduler_->PoolOrder(job.spec(), *this);
  if (!OfferToPools(job, order)) {
    job.OnRejected(sim_.Now());
    ++rejected_count_;
    hot_.rejected->Increment();
    for (SimulationObserver* obs : observers_) obs->OnJobRejected(job);
    NETBATCH_LOG(kWarn) << "job " << id.value()
                        << " rejected: no eligible machine in any pool";
    MarkJobDone();
  }
}

bool NetBatchSimulation::OfferToPools(Job& job,
                                      const std::vector<PoolId>& order) {
  if (options_.dispatch_mode == DispatchMode::kPreferImmediateStart) {
    // First pass: any pool that can start (or preempt for) the job now.
    for (PoolId pool_id : order) {
      NETBATCH_CHECK(pool_id.value() < pools_.size(),
                     "scheduler chose unknown pool");
      const PlaceResult result =
          pools_[pool_id.value()]->TryPlace(job, sim_.Now(),
                                            /*allow_queue=*/false);
      if (result.outcome == PlaceOutcome::kNotEligible) continue;
      HandlePlaceResult(job, pool_id, result);
      return true;
    }
  }
  // Commit pass: queue at the first pool with an *online* eligible machine.
  // A pool whose only capacity-fit machines are down would strand the job
  // behind the outage, so it bounces to the next candidate instead.
  for (PoolId pool_id : order) {
    NETBATCH_CHECK(pool_id.value() < pools_.size(),
                   "scheduler chose unknown pool");
    const PlaceResult result = pools_[pool_id.value()]->TryPlace(
        job, sim_.Now(), /*allow_queue=*/true, /*require_online=*/true);
    if (result.outcome == PlaceOutcome::kNotEligible) {
      // Only an availability refusal is a bounce: the pool has the capacity
      // but its eligible machines are down. Capacity refusals are the
      // ordinary §2.1 step-4 path, not outage fallout.
      if (pools_[pool_id.value()]->HasEligibleMachine(job.spec())) {
        hot_.bounced->Increment();
      }
      continue;
    }
    HandlePlaceResult(job, pool_id, result);
    return true;
  }
  // Fallback: every candidate pool's eligible machines are offline right
  // now. Queue at the first capacity-eligible pool and wait for repair —
  // rejection stays a pure capacity decision, never an availability one.
  for (PoolId pool_id : order) {
    const PlaceResult result =
        pools_[pool_id.value()]->TryPlace(job, sim_.Now());
    if (result.outcome == PlaceOutcome::kNotEligible) continue;
    HandlePlaceResult(job, pool_id, result);
    return true;
  }
  return false;
}

void NetBatchSimulation::HandlePlaceResult(Job& job, PoolId pool,
                                           const PlaceResult& result) {
  (void)pool;
  switch (result.outcome) {
    case PlaceOutcome::kStarted:
      HandleStarted(job);
      HandleVictims(result.suspended);
      break;
    case PlaceOutcome::kQueued:
      ArmWaitTimeout(job);
      break;
    case PlaceOutcome::kNotEligible:
      NETBATCH_CHECK(false, "HandlePlaceResult on a refused placement");
  }
}

void NetBatchSimulation::HandleStarted(Job& job) { ScheduleCompletion(job); }

void NetBatchSimulation::ScheduleCompletion(Job& job) {
  NETBATCH_CHECK(job.state() == JobState::kRunning,
                 "scheduling completion of a non-running job");
  const Ticks duration = job.TicksToCompletion(job.run_speed());
  const sim::EventSeq seq =
      sim_.ScheduleAfter(duration, JobEvent(EventKind::kCompletion, job));
  job.set_pending_event(seq);
}

void NetBatchSimulation::HandleVictims(const std::vector<JobId>& victims) {
  // First settle the bookkeeping for every victim, then consult the policy.
  // The two passes matter: rescheduling victim A away can free enough of
  // its machine to resume victim B immediately, and B must not be treated
  // as suspended (or have its new completion event cancelled) afterwards.
  // Counters and observer notification fired from the pool's per-victim
  // OnJobSuspended hook, inside TryPlace; only the event plumbing the pool
  // cannot see (cancelling the victim's completion event) remains here.
  for (JobId victim_id : victims) {
    Job& victim = jobs_.at(victim_id);
    sim_.Cancel(victim.pending_event());
    victim.set_pending_event(sim::kNoEvent);
  }
  for (JobId victim_id : victims) {
    Job& victim = jobs_.at(victim_id);
    if (victim.state() != JobState::kSuspended) continue;  // already resumed
    // Duplicates never spawn further copies or restart: their race with the
    // original resolves on whichever side finishes first.
    if (victim.is_duplicate()) continue;
    const std::optional<PoolId> target = policy_->OnSuspended(victim, *this);
    if (target.has_value() && *target != victim.pool()) {
      if (policy_->DuplicateInsteadOfRestart()) {
        SpawnDuplicate(victim, *target);
      } else {
        RestartJob(victim, *target, RescheduleReason::kSuspension);
      }
    }
  }
}

void NetBatchSimulation::OnCompletionEvent(const sim::Event& event) {
  Job& job = jobs_.at(event.job);
  if (!job.GenerationIs(event.stamp)) {
    return;  // stale event: the job was preempted or rescheduled meanwhile
  }
  NETBATCH_CHECK(job.state() == JobState::kRunning,
                 "completion event matched generation of a non-running job");
  PhysicalPool& pool = *pools_[job.pool().value()];
  const std::vector<JobId> scheduled = pool.OnJobCompleted(job, sim_.Now());
  if (job.twin().valid()) ResolveTwinRace(job);
  if (!job.is_duplicate()) {
    ++completed_count_;
    hot_.completed->Increment();
    for (SimulationObserver* obs : observers_) obs->OnJobCompleted(job);
    MarkJobDone();
  }
  FinishJobsScheduledBy(scheduled);
}

void NetBatchSimulation::SpawnDuplicate(Job& original, PoolId target) {
  NETBATCH_CHECK(!original.is_duplicate(), "duplicating a duplicate");
  if (original.twin().valid()) return;  // a race is already in flight

  workload::JobSpec spec = original.spec();
  spec.id = JobId(next_duplicate_id_++);
  spec.candidate_pools = {target};
  Job& duplicate = jobs_.Create(std::move(spec));
  duplicate.MarkDuplicateOf(original.id());
  original.set_twin(duplicate.id());
  ++duplicate_count_;
  ++reschedule_count_;
  hot_.duplicated->Increment();
  hot_.rescheduled->Increment();
  for (SimulationObserver* obs : observers_) {
    obs->OnJobRescheduled(original, original.pool(), target,
                          RescheduleReason::kSuspension);
  }

  duplicate.OnSubmitted(sim_.Now());
  const PlaceResult result =
      pools_[target.value()]->TryPlace(duplicate, sim_.Now());
  NETBATCH_CHECK(result.outcome != PlaceOutcome::kNotEligible,
                 "policy duplicated a job into an ineligible pool");
  HandlePlaceResult(duplicate, target, result);
}

void NetBatchSimulation::ResolveTwinRace(Job& winner) {
  Job& loser = jobs_.at(winner.twin());
  winner.set_twin(JobId());
  loser.set_twin(JobId());
  Job& original = winner.is_duplicate() ? loser : winner;

  sim_.Cancel(loser.pending_event());
  loser.set_pending_event(sim::kNoEvent);

  // Remove the loser from wherever it is parked. A loser that is mid-
  // transit (restart overhead) holds no pool resources; its delivery event
  // is invalidated by the generation bump of the terminal transition.
  const bool complete_by_twin = winner.is_duplicate();
  std::vector<JobId> scheduled;
  if (loser.state() == JobState::kInTransit ||
      loser.state() == JobState::kPending) {
    if (complete_by_twin) {
      loser.OnCompletedByTwin(sim_.Now());
    } else {
      loser.OnKilled(sim_.Now());
    }
  } else {
    PhysicalPool& pool = *pools_[loser.pool().value()];
    scheduled = pool.KillJob(loser, sim_.Now(), complete_by_twin);
  }
  if (!complete_by_twin) {
    // Registered lazily so runs without twin races (every run outside the
    // duplication extension) keep their counter snapshot unchanged.
    counters_.GetCounter("jobs.killed").Increment();
    for (SimulationObserver* obs : observers_) obs->OnJobKilled(loser);
  }
  FinishJobsScheduledBy(scheduled);

  if (winner.is_duplicate()) {
    // The original finishes with its duplicate's result. Its own partial
    // progress was folded into rescheduling waste by OnCompletedByTwin; the
    // duplicate's (useful) run is credited through the original's
    // completion time.
    NETBATCH_CHECK(original.state() == JobState::kCompleted,
                   "twin completion did not complete the original");
    ++completed_count_;
    hot_.completed->Increment();
    for (SimulationObserver* obs : observers_) obs->OnJobCompleted(original);
    MarkJobDone();
  } else {
    // The original won; the duplicate's entire execution is waste.
    original.AddExtraWaste(loser.executed_ticks());
  }
}

void NetBatchSimulation::FinishJobsScheduledBy(
    const std::vector<JobId>& scheduled) {
  for (JobId id : scheduled) {
    ScheduleCompletion(jobs_.at(id));
  }
}

void NetBatchSimulation::ArmWaitTimeout(Job& job) {
  const std::optional<Ticks> threshold = policy_->WaitRescheduleThreshold();
  if (!threshold.has_value()) return;
  NETBATCH_CHECK(*threshold > 0, "wait-reschedule threshold must be positive");
  NETBATCH_CHECK(job.state() == JobState::kWaiting,
                 "arming wait timeout for a non-waiting job");
  sim_.ScheduleAfter(*threshold, JobEvent(EventKind::kWaitTimeout, job));
}

void NetBatchSimulation::OnWaitTimeoutEvent(const sim::Event& event) {
  Job& job = jobs_.at(event.job);
  if (!job.GenerationIs(event.stamp)) {
    return;  // the job started, was moved, or completed meanwhile
  }
  NETBATCH_CHECK(job.state() == JobState::kWaiting,
                 "wait-timeout event matched generation of a non-waiting job");
  const std::optional<PoolId> target = policy_->OnWaitTimeout(job, *this);
  if (target.has_value() && *target != job.pool()) {
    RestartJob(job, *target, RescheduleReason::kWaitTimeout);
  } else {
    // Keep waiting here, but give the job another chance later ("the
    // rescheduled job can gain multiple second chances", §3.3.1).
    ArmWaitTimeout(job);
  }
}

void NetBatchSimulation::RestartJob(Job& job, PoolId target,
                                    RescheduleReason reason) {
  NETBATCH_CHECK(target.value() < pools_.size(), "restart to unknown pool");
  const PoolId from = job.pool();
  PhysicalPool& from_pool = *pools_[from.value()];

  MachineId freed_machine;
  if (job.state() == JobState::kSuspended) {
    freed_machine = from_pool.DetachSuspended(job);
  } else {
    from_pool.RemoveFromQueue(job.id());
  }
  job.OnRestart(sim_.Now(), target, options_.checkpoint_interval);
  ++reschedule_count_;
  hot_.rescheduled->Increment();
  for (SimulationObserver* obs : observers_) {
    obs->OnJobRescheduled(job, from, target, reason);
  }

  // Detaching a suspended job may have freed memory another parked job was
  // waiting for; let the machine backfill before the restart is delivered.
  if (freed_machine.valid()) {
    FinishJobsScheduledBy(from_pool.Backfill(freed_machine, sim_.Now()));
  }

  const Ticks overhead =
      options_.transfer_matrix.empty()
          ? options_.restart_overhead
          : options_.transfer_matrix[from.value()][target.value()];
  if (overhead == 0) {
    DeliverRestartedJob(job.id(), job.generation(), target);
  } else {
    sim::Event event = JobEvent(EventKind::kRestartDelivery, job);
    event.pool = target;
    sim_.ScheduleAfter(overhead, event);
  }
}

void NetBatchSimulation::DeliverRestartedJob(JobId id,
                                             std::uint64_t generation,
                                             PoolId target) {
  Job& job = jobs_.at(id);
  if (!job.GenerationIs(generation)) {
    return;  // the transit was superseded (e.g. the job's twin resolved)
  }
  NETBATCH_CHECK(job.state() == JobState::kInTransit,
                 "restart delivery matched generation of a non-transit job");
  const PlaceResult result =
      pools_[target.value()]->TryPlace(job, sim_.Now());
  // Policies must pick pools the job is eligible for; the engine exposes
  // PoolEligible() exactly for that check.
  NETBATCH_CHECK(result.outcome != PlaceOutcome::kNotEligible,
                 "policy rescheduled a job to an ineligible pool");
  HandlePlaceResult(job, target, result);
}

void NetBatchSimulation::ScheduleNextFailure(PoolId pool, MachineId machine) {
  const double uptime_minutes =
      SampleExponential(outage_rng_, 1.0 / options_.outages.mtbf_minutes);
  sim_.ScheduleAfter(
      std::max<Ticks>(1, static_cast<Ticks>(uptime_minutes * kTicksPerMinute)),
      MachineEvent(EventKind::kMachineFailure, pool, machine));
}

void NetBatchSimulation::OnMachineFailure(PoolId pool_id, MachineId machine) {
  PhysicalPool& pool = *pools_[pool_id.value()];
  ++outage_count_;
  hot_.failures->Increment();
  const std::vector<JobId> evicted = pool.EvictMachine(machine, sim_.Now());

  // Evicted jobs lose their (un-checkpointed) progress and are resubmitted
  // through the virtual pool manager, like a rescheduling restart without a
  // chosen target.
  for (JobId id : evicted) {
    Job& job = jobs_.at(id);
    sim_.Cancel(job.pending_event());
    job.set_pending_event(sim::kNoEvent);
    job.OnRestart(sim_.Now(), job.pool(), options_.checkpoint_interval);
    ++eviction_count_;
    hot_.evicted->Increment();
    for (SimulationObserver* obs : observers_) obs->OnJobEvicted(job);
    const bool placed =
        OfferToPools(job, scheduler_->PoolOrder(job.spec(), *this));
    NETBATCH_CHECK(placed, "evicted job no longer placeable anywhere");
  }

  const double downtime_minutes =
      SampleExponential(outage_rng_, 1.0 / options_.outages.mttr_minutes);
  sim_.ScheduleAfter(
      std::max<Ticks>(1,
                      static_cast<Ticks>(downtime_minutes * kTicksPerMinute)),
      MachineEvent(EventKind::kMachineRepair, pool_id, machine));
}

void NetBatchSimulation::OnMachineRepair(PoolId pool_id, MachineId machine) {
  PhysicalPool& pool = *pools_[pool_id.value()];
  hot_.repairs->Increment();
  FinishJobsScheduledBy(pool.RepairMachine(machine, sim_.Now()));
  ScheduleNextFailure(pool_id, machine);
}

// ---- observability --------------------------------------------------------

void NetBatchSimulation::OnJobStarted(const Job& job) {
  hot_.started->Increment();
  for (SimulationObserver* obs : observers_) obs->OnJobStarted(job);
  AuditTransition(job.pool());
}

void NetBatchSimulation::OnJobResumed(const Job& job) {
  hot_.resumed->Increment();
  for (SimulationObserver* obs : observers_) obs->OnJobResumed(job);
  AuditTransition(job.pool());
}

void NetBatchSimulation::OnJobEnqueued(const Job& job) {
  hot_.enqueued->Increment();
  for (SimulationObserver* obs : observers_) obs->OnJobEnqueued(job);
  AuditTransition(job.pool());
}

void NetBatchSimulation::OnJobSuspended(const Job& job) {
  ++preemption_count_;
  hot_.preempted->Increment();
  for (SimulationObserver* obs : observers_) obs->OnJobSuspended(job);
  AuditTransition(job.pool());
}

void NetBatchSimulation::AuditTransition(PoolId pool) {
  if (!options_.audit_on_transitions) return;
  hot_.audits->Increment();
  FailFastSink sink;
  pools_[pool.value()]->AuditInvariants(sim_.Now(), sink);
}

void NetBatchSimulation::RunPeriodicAudit() {
  hot_.audits->Increment();
  FailFastSink sink;
  AuditInvariants(sink);
}

void NetBatchSimulation::SampleGauges(Ticks now) {
  (void)now;
  std::int64_t busy = 0;
  std::size_t waiting = 0;
  for (const auto& pool : pools_) {
    busy += pool->busy_cores();
    waiting += pool->QueueLength();
  }
  hot_.busy_cores->Set(busy);
  hot_.suspended_jobs->Set(static_cast<std::int64_t>(SuspendedJobCount()));
  hot_.waiting_jobs->Set(static_cast<std::int64_t>(waiting));
  hot_.pending_events->Set(
      static_cast<std::int64_t>(sim_.PendingEvents()));
  hot_.fired_events->Set(static_cast<std::int64_t>(sim_.FiredEvents()));
}

void NetBatchSimulation::AuditInvariants(InvariantSink& sink) const {
  const Ticks now = sim_.Now();
  for (const auto& pool : pools_) pool->AuditInvariants(now, sink);

  // Cluster-wide conservation. Pools audited their own registries above;
  // this pass cross-checks job states (the other side of the ledger)
  // against the pool aggregates and the engine's terminal counters.
  const auto check = [&](bool ok, const char* what) {
    if (!ok) sink.Report(InvariantViolation{now, PoolId(), what, MachineId()});
  };
  std::size_t running = 0;
  std::size_t waiting = 0;
  std::size_t suspended = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::int64_t running_cores = 0;
  for (const Job& job : jobs_) {
    switch (job.state()) {
      case JobState::kRunning:
        ++running;
        running_cores += job.spec().cores;
        break;
      case JobState::kWaiting:
        ++waiting;
        break;
      case JobState::kSuspended:
        ++suspended;
        break;
      case JobState::kCompleted:
        // Duplicates are credited to their original, never to the engine's
        // completion counter.
        if (!job.is_duplicate()) ++completed;
        break;
      case JobState::kRejected:
        ++rejected;
        break;
      default:
        break;
    }
  }
  std::int64_t busy = 0;
  std::size_t pool_suspended = 0;
  std::size_t pool_waiting = 0;
  std::size_t pool_running = 0;
  for (const auto& pool : pools_) {
    busy += pool->busy_cores();
    pool_suspended += pool->SuspendedCount();
    pool_waiting += pool->QueueLength();
    for (const Machine& machine : pool->machines()) {
      pool_running += machine.running().size();
    }
  }
  check(busy == running_cores,
        "cluster busy cores != sum of running job core demands");
  check(pool_running == running,
        "machine running registries != jobs in running state");
  check(pool_suspended == suspended,
        "pool suspended counts != jobs in suspended state");
  check(pool_waiting == waiting,
        "pool wait queues != jobs in waiting state");
  check(completed == completed_count_,
        "completion counter != completed (non-duplicate) jobs");
  check(rejected == rejected_count_,
        "rejection counter != rejected jobs");
  check(completed_count_ + rejected_count_ <= total_jobs_,
        "terminal counters exceed total trace jobs");
}

void NetBatchSimulation::CheckInvariants() const {
  FailFastSink sink;
  AuditInvariants(sink);
}

double NetBatchSimulation::PoolUtilization(PoolId pool) const {
  return pools_[pool.value()]->Utilization();
}

std::size_t NetBatchSimulation::PoolQueueLength(PoolId pool) const {
  return pools_[pool.value()]->QueueLength();
}

std::int64_t NetBatchSimulation::PoolTotalCores(PoolId pool) const {
  return pools_[pool.value()]->total_cores();
}

bool NetBatchSimulation::PoolEligible(PoolId pool,
                                      const workload::JobSpec& spec) const {
  return pools_[pool.value()]->HasEligibleMachine(spec);
}

double NetBatchSimulation::ClusterUtilization() const {
  if (total_cores_ == 0) return 0.0;
  std::int64_t busy = 0;
  for (const auto& pool : pools_) busy += pool->busy_cores();
  return static_cast<double>(busy) / static_cast<double>(total_cores_);
}

std::size_t NetBatchSimulation::SuspendedJobCount() const {
  std::size_t suspended = 0;
  for (const auto& pool : pools_) suspended += pool->SuspendedCount();
  return suspended;
}

}  // namespace netbatch::cluster

#include "cluster/simulation.h"

#include <algorithm>

#include "common/distributions.h"

namespace netbatch::cluster {

namespace {

// Builders for the typed POD events the engine schedules. The stamp is the
// job's generation at scheduling time; Dispatch drops the event when the
// generations no longer match (the job transitioned meanwhile).
sim::Event JobEvent(EventKind kind, const Job& job) {
  sim::Event event;
  event.kind = static_cast<std::uint16_t>(kind);
  event.job = job.id();
  event.stamp = job.generation();
  return event;
}

sim::Event MachineEvent(EventKind kind, PoolId pool, MachineId machine) {
  sim::Event event;
  event.kind = static_cast<std::uint16_t>(kind);
  event.pool = pool;
  event.machine = machine;
  return event;
}

sim::Event TickEvent(EventKind kind) {
  sim::Event event;
  event.kind = static_cast<std::uint16_t>(kind);
  return event;
}

}  // namespace

sched::CoreOptions NetBatchSimulation::CoreOptionsFrom(
    const SimulationOptions& options) {
  sched::CoreOptions core_options;
  core_options.restart_overhead = options.restart_overhead;
  core_options.checkpoint_interval = options.checkpoint_interval;
  core_options.transfer_matrix = options.transfer_matrix;
  core_options.dispatch_mode = options.dispatch_mode;
  core_options.audit_on_transitions = options.audit_on_transitions;
  return core_options;
}

NetBatchSimulation::NetBatchSimulation(const ClusterConfig& config,
                                       const workload::Trace& trace,
                                       InitialScheduler& scheduler,
                                       ReschedulingPolicy& policy,
                                       SimulationOptions options)
    : options_(std::move(options)),
      core_(config, scheduler, policy, /*host=*/*this,
            CoreOptionsFrom(options_)),
      outage_rng_(options_.outages.seed) {
  sim_.set_dispatcher(this);
  // Size the job index and the event heap for the trace up front so neither
  // reallocates mid-run (duplicates spill past this; that growth is rare).
  core_.ReserveJobs(trace.size());
  sim_.Reserve(trace.size());
  // The core registered the cluster gauges in its constructor; adding the
  // sim gauges here keeps the registry's snapshot order unchanged.
  pending_events_ = &core_.counters().GetGauge("sim.pending_events");
  fired_events_ = &core_.counters().GetGauge("sim.fired_events");
  for (const workload::JobSpec& spec : trace.jobs()) {
    core_.AdmitJob(spec);
  }
  total_jobs_ = trace.size();
}

void NetBatchSimulation::Run() {
  for (const Job& job : core_.jobs()) {
    sim_.ScheduleAt(job.submit_time(), JobEvent(EventKind::kSubmit, job));
  }
  if (options_.outages.mtbf_minutes > 0) {
    NETBATCH_CHECK(options_.outages.mttr_minutes > 0,
                   "outage repair time must be positive");
    for (std::size_t p = 0; p < core_.PoolCount(); ++p) {
      const PoolId pool_id(static_cast<PoolId::ValueType>(p));
      for (const Machine& machine : core_.pool(pool_id).machines()) {
        ScheduleNextFailure(pool_id, machine.id());
      }
    }
  }
  if (options_.sampling_enabled && !core_.observers().empty()) {
    sim_.ScheduleAt(Ticks{0}, TickEvent(EventKind::kSampleTick));
  }
  if (options_.audit_period > 0) {
    sim_.ScheduleAt(Ticks{0}, TickEvent(EventKind::kAuditTick));
  }
  sim_.RunToCompletion();
  NETBATCH_CHECK(AllJobsFinished(),
                 "simulation ended with unfinished jobs");
  // Leave the gauges describing the end-of-run state even when no sampler
  // ran (sampling disabled or no observers attached).
  SampleGauges(sim_.Now());
}

void NetBatchSimulation::Dispatch(const sim::Event& event) {
  switch (static_cast<EventKind>(event.kind)) {
    case EventKind::kSubmit:
      core_.Submit(event.job, sim_.Now());
      break;
    case EventKind::kCompletion:
      core_.Complete(event.job, event.stamp, sim_.Now());
      break;
    case EventKind::kWaitTimeout:
      core_.OnWaitTimeout(event.job, event.stamp, sim_.Now());
      break;
    case EventKind::kRestartDelivery:
      core_.DeliverRestart(event.job, event.stamp, event.pool, sim_.Now());
      break;
    case EventKind::kMachineFailure:
      OnMachineFailure(event.pool, event.machine);
      break;
    case EventKind::kMachineRepair:
      OnMachineRepair(event.pool, event.machine);
      break;
    case EventKind::kSampleTick:
      OnSampleTick();
      break;
    case EventKind::kAuditTick:
      OnAuditTick();
      break;
    default:
      NETBATCH_CHECK(false, "unknown event kind");
  }
}

// ---- sched::CoreHost ------------------------------------------------------

void NetBatchSimulation::ArmCompletion(Job job, Ticks duration) {
  const sim::EventSeq seq =
      sim_.ScheduleAfter(duration, JobEvent(EventKind::kCompletion, job));
  job.set_pending_event(seq);
}

void NetBatchSimulation::CancelCompletion(Job job) {
  sim_.Cancel(job.pending_event());
  job.set_pending_event(sim::kNoEvent);
}

void NetBatchSimulation::ArmWaitTimeout(Job job, Ticks threshold) {
  sim_.ScheduleAfter(threshold, JobEvent(EventKind::kWaitTimeout, job));
}

void NetBatchSimulation::ScheduleRestartDelivery(Job job, PoolId target,
                                                 Ticks overhead) {
  sim::Event event = JobEvent(EventKind::kRestartDelivery, job);
  event.pool = target;
  sim_.ScheduleAfter(overhead, event);
}

void NetBatchSimulation::OnJobTerminal(const Job& job) {
  (void)job;
  if (AllJobsFinished()) {
    // Everything is finished; any residual events are generation-guarded
    // no-ops, so the loop can stop immediately.
    sim_.RequestStop();
  }
}

// ---- engine-owned periodic work -------------------------------------------

void NetBatchSimulation::OnSampleTick() {
  const Ticks now = sim_.Now();
  SampleGauges(now);
  for (SimulationObserver* obs : core_.observers()) obs->OnSample(now, *this);
  // Stop sampling once the last job settled (the loop is about to stop).
  if (AllJobsFinished()) return;
  sim_.ScheduleAfter(options_.sample_period,
                     TickEvent(EventKind::kSampleTick));
}

void NetBatchSimulation::OnAuditTick() {
  RunPeriodicAudit();
  if (AllJobsFinished()) return;
  sim_.ScheduleAfter(options_.audit_period, TickEvent(EventKind::kAuditTick));
}

void NetBatchSimulation::RunPeriodicAudit() {
  core_.counters().GetCounter("audit.runs").Increment();
  FailFastSink sink;
  AuditInvariants(sink);
}

void NetBatchSimulation::SampleGauges(Ticks now) {
  core_.RefreshGauges(now);
  pending_events_->Set(static_cast<std::int64_t>(sim_.PendingEvents()));
  fired_events_->Set(static_cast<std::int64_t>(sim_.FiredEvents()));
}

// ---- failure injection ----------------------------------------------------

void NetBatchSimulation::ScheduleNextFailure(PoolId pool, MachineId machine) {
  const double uptime_minutes =
      SampleExponential(outage_rng_, 1.0 / options_.outages.mtbf_minutes);
  sim_.ScheduleAfter(
      std::max<Ticks>(1, static_cast<Ticks>(uptime_minutes * kTicksPerMinute)),
      MachineEvent(EventKind::kMachineFailure, pool, machine));
}

void NetBatchSimulation::OnMachineFailure(PoolId pool_id, MachineId machine) {
  core_.FailMachine(pool_id, machine, sim_.Now());
  const double downtime_minutes =
      SampleExponential(outage_rng_, 1.0 / options_.outages.mttr_minutes);
  sim_.ScheduleAfter(
      std::max<Ticks>(1,
                      static_cast<Ticks>(downtime_minutes * kTicksPerMinute)),
      MachineEvent(EventKind::kMachineRepair, pool_id, machine));
}

void NetBatchSimulation::OnMachineRepair(PoolId pool_id, MachineId machine) {
  core_.RepairMachine(pool_id, machine, sim_.Now());
  ScheduleNextFailure(pool_id, machine);
}

// ---- invariants -----------------------------------------------------------

void NetBatchSimulation::AuditInvariants(InvariantSink& sink) const {
  const Ticks now = sim_.Now();
  core_.AuditInvariants(sink, now);
  // The trace-total bound is engine knowledge: the core admits jobs one at a
  // time and never learns how many the trace holds.
  if (!(core_.completed_count() + core_.rejected_count() <= total_jobs_)) {
    sink.Report(InvariantViolation{
        now, PoolId(), "terminal counters exceed total trace jobs",
        MachineId()});
  }
}

void NetBatchSimulation::CheckInvariants() const {
  FailFastSink sink;
  AuditInvariants(sink);
}

}  // namespace netbatch::cluster

// The runtime state of one job inside the simulation.
//
// Job owns the lifecycle accounting behind every paper metric:
//   completion time  = completion - submit
//   wait time        = total time in (virtual or physical) queues   (c1)
//   suspend time     = total time in suspended state                (c2)
//   resched waste    = execution progress discarded by restarts     (c3)
// and the identity  completion - submit = wait + suspend + executed
// (+ in-transit restart overhead), which tests assert.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "common/time.h"
#include "sim/event_queue.h"
#include "workload/job_spec.h"

namespace netbatch::cluster {

enum class JobState {
  kPending,    // submitted, not yet accepted by any pool queue/machine
  kWaiting,    // in a physical pool's wait queue
  kRunning,    // executing on a machine
  kSuspended,  // preempted, parked on its machine
  kInTransit,  // being moved to another pool (restart overhead)
  kCompleted,
  kRejected,   // no candidate pool has an eligible machine
  kKilled,     // duplicate cancelled because its twin finished first
};

const char* ToString(JobState state);

class Job {
 public:
  explicit Job(workload::JobSpec spec);

  const workload::JobSpec& spec() const { return spec_; }
  JobId id() const { return spec_.id; }
  workload::Priority priority() const { return spec_.priority; }
  JobState state() const { return state_; }

  // --- location ---------------------------------------------------------
  PoolId pool() const { return pool_; }
  MachineId machine() const { return machine_; }
  void set_pool(PoolId pool) { pool_ = pool; }

  // --- lifecycle transitions (engine calls these) ------------------------
  // Every transition takes the current simulated time and keeps the
  // accounting identity intact.
  void OnSubmitted(Ticks now);
  void OnEnqueued(Ticks now, PoolId pool);
  void OnStarted(Ticks now, MachineId machine, double speed);
  void OnSuspended(Ticks now);
  void OnResumed(Ticks now);
  void OnCompleted(Ticks now);
  void OnRejected(Ticks now);
  // Restart: discards un-checkpointed progress (counted as rescheduling
  // waste) and leaves the job in transit to `target` pool. The paper's
  // baseline restarts "from the beginning" (checkpoint_interval = 0);
  // a positive interval models periodic checkpointing (cf. Condor in the
  // paper's related work): progress is kept in multiples of the interval,
  // in work units at unit speed.
  void OnRestart(Ticks now, PoolId target, Ticks checkpoint_interval = 0);
  // Duplication extension (paper §5): terminal transitions for the
  // twin-race. OnKilled cancels this job because its twin won; valid from
  // any non-terminal state. OnCompletedByTwin finishes this job using its
  // twin's result, settling whatever state it was parked in.
  void OnKilled(Ticks now);
  void OnCompletedByTwin(Ticks now);

  // --- execution progress -------------------------------------------------
  // Work left, in ticks at unit speed.
  Ticks remaining_work() const { return remaining_work_; }
  // Speed of the machine the job is (or was last) running on.
  double run_speed() const { return run_speed_; }
  // Ticks of wall-clock needed to finish on a machine with `speed`.
  Ticks TicksToCompletion(double speed) const {
    const auto ticks = static_cast<Ticks>(
        std::ceil(static_cast<double>(remaining_work_) / speed));
    return ticks > 0 ? ticks : 1;
  }

  // --- accounting ---------------------------------------------------------
  Ticks submit_time() const { return spec_.submit_time; }
  Ticks completion_time() const { return completion_time_; }
  Ticks wait_ticks() const { return wait_ticks_; }
  Ticks suspend_ticks() const { return suspend_ticks_; }
  Ticks executed_ticks() const { return executed_ticks_; }
  // Wall-clock run time of the current attempt (the progress a restart
  // would discard); used by least-waste preemption-victim selection.
  Ticks attempt_executed_ticks() const { return attempt_executed_; }
  Ticks resched_waste_ticks() const { return resched_waste_ticks_; }
  Ticks transit_ticks() const { return transit_ticks_; }
  std::int32_t suspend_count() const { return suspend_count_; }
  std::int32_t restart_count() const { return restart_count_; }
  bool ever_suspended() const { return suspend_count_ > 0; }

  // --- duplication extension ----------------------------------------------
  // A duplicate is a shadow copy racing its original in another pool; it is
  // excluded from job-level metrics (its outcome is credited to the
  // original, its discarded execution to the original's rescheduling waste).
  bool is_duplicate() const { return is_duplicate_; }
  void MarkDuplicateOf(JobId original) {
    is_duplicate_ = true;
    twin_ = original;
  }
  JobId twin() const { return twin_; }
  void set_twin(JobId twin) { twin_ = twin; }
  // Wall-clock execution discarded when this job's race (or a killed twin)
  // resolved; the metrics layer folds it into rescheduling waste.
  Ticks extra_waste_ticks() const { return extra_waste_ticks_; }
  void AddExtraWaste(Ticks waste) { extra_waste_ticks_ += waste; }

  // When the current state was entered (observers use this as the event
  // timestamp, since observer hooks carry no clock).
  Ticks last_transition_time() const { return state_since_; }

  // --- event bookkeeping ----------------------------------------------------
  // Generation guard: every transition bumps it. Typed events carry the
  // generation current when they were scheduled as their stamp, so the
  // dispatcher invalidates stale completion / timeout / delivery events
  // with the single integer compare below — an unchanged generation also
  // implies an unchanged state, since no transition leaves it untouched.
  std::uint64_t generation() const { return generation_; }
  bool GenerationIs(std::uint64_t stamp) const { return generation_ == stamp; }
  // Slot-reuse guard (JobTable reclamation): a freshly constructed job
  // occupying a reclaimed slot starts its generation above every stamp the
  // slot's previous occupant ever handed out, so a stale timer for the old
  // job can never match the new one.
  void EnsureGenerationAtLeast(std::uint64_t floor) {
    if (generation_ < floor) generation_ = floor;
  }
  // Handle of the in-flight completion event, kept so preemption/eviction/
  // twin-resolution can remove it from the heap eagerly (memory stays
  // proportional to live events; staleness would be caught anyway).
  sim::EventSeq pending_event() const { return pending_event_; }
  void set_pending_event(sim::EventSeq seq) { pending_event_ = seq; }

 private:
  void SettleWaitingTime(Ticks now);
  void SettleRunProgress(Ticks now);
  void SettleAnyState(Ticks now);
  void Transition(JobState next);

  workload::JobSpec spec_;
  JobState state_ = JobState::kPending;
  PoolId pool_;
  MachineId machine_;
  double run_speed_ = 1.0;

  Ticks remaining_work_;
  Ticks state_since_ = 0;  // when the current state was entered

  Ticks completion_time_ = -1;
  Ticks attempt_executed_ = 0;  // wall-clock run time of the current attempt
  Ticks attempt_work_ = 0;      // work units completed by the current attempt
  Ticks wait_ticks_ = 0;
  Ticks suspend_ticks_ = 0;
  Ticks executed_ticks_ = 0;
  Ticks resched_waste_ticks_ = 0;
  Ticks transit_ticks_ = 0;
  std::int32_t suspend_count_ = 0;
  std::int32_t restart_count_ = 0;
  bool is_duplicate_ = false;
  JobId twin_;
  Ticks extra_waste_ticks_ = 0;

  std::uint64_t generation_ = 0;
  sim::EventSeq pending_event_ = sim::kNoEvent;
};

}  // namespace netbatch::cluster

// The runtime state of one job inside the simulation, stored column-wise.
//
// Job state lives in a JobArena: one parallel vector ("column") per field,
// indexed by a dense slot. `Job` is a 16-byte view — {arena, slot} — with
// the exact accessor/transition API the old fat object had, so scheduling
// code reads naturally while audits, sampling, and metrics stream cache-line
//-packed columns instead of chasing per-object pointers. Views are values:
// copying one aliases the same slot, and binding `const Job&` to an arena
// lookup gives the usual read-only discipline (mutators are non-const).
//
// Job owns the lifecycle accounting behind every paper metric:
//   completion time  = completion - submit
//   wait time        = total time in (virtual or physical) queues   (c1)
//   suspend time     = total time in suspended state                (c2)
//   resched waste    = execution progress discarded by restarts     (c3)
// and the identity  completion - submit = wait + suspend + executed
// (+ in-transit restart overhead), which tests assert.
//
// The arena also owns the id index (dense vector for small ids, hash map
// for sparse ids past the dense cap), the guarded reclamation free-list
// shared by both id ranges, and the intrusive next/prev links that thread
// each machine's running/suspended registries through job slots — so after
// Reserve() there is no per-job or per-membership allocation at all.
#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/time.h"
#include "sim/event_queue.h"
#include "workload/job_spec.h"

namespace netbatch::cluster {

enum class JobState {
  kPending,    // submitted, not yet accepted by any pool queue/machine
  kWaiting,    // in a physical pool's wait queue
  kRunning,    // executing on a machine
  kSuspended,  // preempted, parked on its machine
  kInTransit,  // being moved to another pool (restart overhead)
  kCompleted,
  kRejected,   // no candidate pool has an eligible machine
  kKilled,     // duplicate cancelled because its twin finished first
};

const char* ToString(JobState state);

class JobArena;
class MachineArena;
class MachineJobList;

class Job {
 public:
  Job(JobArena* arena, std::uint32_t slot) : arena_(arena), slot_(slot) {}

  const workload::JobSpec& spec() const;
  JobId id() const;
  workload::Priority priority() const;
  JobState state() const;

  // --- location ---------------------------------------------------------
  PoolId pool() const;
  MachineId machine() const;
  void set_pool(PoolId pool);

  // --- lifecycle transitions (engine calls these) ------------------------
  // Every transition takes the current simulated time and keeps the
  // accounting identity intact.
  void OnSubmitted(Ticks now);
  void OnEnqueued(Ticks now, PoolId pool);
  void OnStarted(Ticks now, MachineId machine, double speed);
  void OnSuspended(Ticks now);
  void OnResumed(Ticks now);
  void OnCompleted(Ticks now);
  void OnRejected(Ticks now);
  // Restart: discards un-checkpointed progress (counted as rescheduling
  // waste) and leaves the job in transit to `target` pool. The paper's
  // baseline restarts "from the beginning" (checkpoint_interval = 0);
  // a positive interval models periodic checkpointing (cf. Condor in the
  // paper's related work): progress is kept in multiples of the interval,
  // in work units at unit speed.
  void OnRestart(Ticks now, PoolId target, Ticks checkpoint_interval = 0);
  // Duplication extension (paper §5): terminal transitions for the
  // twin-race. OnKilled cancels this job because its twin won; valid from
  // any non-terminal state. OnCompletedByTwin finishes this job using its
  // twin's result, settling whatever state it was parked in.
  void OnKilled(Ticks now);
  void OnCompletedByTwin(Ticks now);

  // --- execution progress -------------------------------------------------
  // Work left, in ticks at unit speed.
  Ticks remaining_work() const;
  // Speed of the machine the job is (or was last) running on.
  double run_speed() const;
  // Ticks of wall-clock needed to finish on a machine with `speed`.
  Ticks TicksToCompletion(double speed) const {
    const auto ticks = static_cast<Ticks>(
        std::ceil(static_cast<double>(remaining_work()) / speed));
    return ticks > 0 ? ticks : 1;
  }

  // --- accounting ---------------------------------------------------------
  Ticks submit_time() const { return spec().submit_time; }
  Ticks completion_time() const;
  Ticks wait_ticks() const;
  Ticks suspend_ticks() const;
  Ticks executed_ticks() const;
  // Wall-clock run time of the current attempt (the progress a restart
  // would discard); used by least-waste preemption-victim selection.
  Ticks attempt_executed_ticks() const;
  Ticks resched_waste_ticks() const;
  Ticks transit_ticks() const;
  std::int32_t suspend_count() const;
  std::int32_t restart_count() const;
  bool ever_suspended() const { return suspend_count() > 0; }

  // --- duplication extension ----------------------------------------------
  // A duplicate is a shadow copy racing its original in another pool; it is
  // excluded from job-level metrics (its outcome is credited to the
  // original, its discarded execution to the original's rescheduling waste).
  bool is_duplicate() const;
  void MarkDuplicateOf(JobId original);
  JobId twin() const;
  void set_twin(JobId twin);
  // Wall-clock execution discarded when this job's race (or a killed twin)
  // resolved; the metrics layer folds it into rescheduling waste.
  Ticks extra_waste_ticks() const;
  void AddExtraWaste(Ticks waste);

  // When the current state was entered (observers use this as the event
  // timestamp, since observer hooks carry no clock).
  Ticks last_transition_time() const;

  // --- event bookkeeping ----------------------------------------------------
  // Generation guard: every transition bumps it. Typed events carry the
  // generation current when they were scheduled as their stamp, so the
  // dispatcher invalidates stale completion / timeout / delivery events
  // with the single integer compare below — an unchanged generation also
  // implies an unchanged state, since no transition leaves it untouched.
  std::uint64_t generation() const;
  bool GenerationIs(std::uint64_t stamp) const { return generation() == stamp; }
  // Slot-reuse guard (JobArena reclamation): a freshly constructed job
  // occupying a reclaimed slot starts its generation above every stamp the
  // slot's previous occupant ever handed out, so a stale timer for the old
  // job can never match the new one.
  void EnsureGenerationAtLeast(std::uint64_t floor);
  // Handle of the in-flight completion event, kept so preemption/eviction/
  // twin-resolution can remove it from the heap eagerly (memory stays
  // proportional to live events; staleness would be caught anyway).
  sim::EventSeq pending_event() const;
  void set_pending_event(sim::EventSeq seq);

  // Arena plumbing (benchmarks and column-walking audits).
  std::uint32_t slot() const { return slot_; }

 private:
  void SettleWaitingTime(Ticks now);
  void SettleRunProgress(Ticks now);
  void SettleAnyState(Ticks now);
  void Transition(JobState next);

  JobArena* arena_;
  std::uint32_t slot_;
};

// Struct-of-arrays storage for every job in a simulation or serving core.
//
// Reclamation (daemon path only): a simulation retains every job until the
// run ends — metrics walk the full table — but a long-running daemon must
// reclaim terminal jobs or grow without bound. EnableReclamation() turns on
// guarded slot reuse: Erase(id) frees the id's index entry (dense or
// sparse — both ranges feed the same free list) and parks the slot; the
// next Create reuses it, seeding the new job's generation above every stamp
// the old occupant handed out so stale timers can never match the reused
// slot. The simulator never enables this, so sweep artifacts are untouched.
// With reclamation on, iteration may still visit erased-but-not-yet-reused
// slots (stale terminal jobs); the cluster-wide terminal-ledger audit is
// skipped in that mode.
class JobArena {
 public:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  Job Create(workload::JobSpec spec) {
    const JobId id = spec.id;
    if (reclaim_enabled_ && !free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      const std::uint64_t generation_floor = generation_[slot] + 1;
      ResetSlot(slot, std::move(spec));
      if (generation_[slot] < generation_floor) {
        generation_[slot] = generation_floor;
      }
      IndexSlot(id, slot);
      return Job(this, slot);
    }
    const auto slot = static_cast<std::uint32_t>(spec_.size());
    IndexSlot(id, slot);
    AppendSlot(std::move(spec));
    return Job(this, slot);
  }

  // Views are values, so the const overload hands out the same (mutable)
  // view type; read-only use is expressed by binding `const Job&` at the
  // call site, exactly as with the old object table.
  Job at(JobId id) const {
    return Job(const_cast<JobArena*>(this), SlotOf(id));
  }

  // Whether `id` names a job in this arena. The serving layer uses this to
  // turn bad client ids into error responses instead of at()'s abort.
  bool Contains(JobId id) const {
    const JobId::ValueType v = id.value();
    if (v < kDenseCap) return v < dense_.size() && dense_[v] != kNoSlot;
    return sparse_.contains(id);
  }

  // Pre-sizes the id index AND every column for `n` jobs with ids 0..n-1
  // (the common trace shape), so nothing — columns included — reallocates
  // mid-run: after Reserve(n), creating up to n jobs performs no heap
  // allocation at all (specs with candidate-pool lists aside). Safe to call
  // with jobs already present.
  void Reserve(std::size_t n) {
    if (n < kDenseCap && n > dense_.size()) dense_.resize(n, kNoSlot);
    spec_.reserve(n);
    state_.reserve(n);
    pool_.reserve(n);
    machine_.reserve(n);
    run_speed_.reserve(n);
    remaining_work_.reserve(n);
    state_since_.reserve(n);
    completion_time_.reserve(n);
    attempt_executed_.reserve(n);
    attempt_work_.reserve(n);
    wait_ticks_.reserve(n);
    suspend_ticks_.reserve(n);
    executed_ticks_.reserve(n);
    resched_waste_ticks_.reserve(n);
    transit_ticks_.reserve(n);
    suspend_count_.reserve(n);
    restart_count_.reserve(n);
    is_duplicate_.reserve(n);
    twin_.reserve(n);
    extra_waste_ticks_.reserve(n);
    generation_.reserve(n);
    pending_event_.reserve(n);
    link_next_.reserve(n);
    link_prev_.reserve(n);
    link_list_.reserve(n);
  }

  // --- reclamation (daemon path only; see class comment) --------------------

  void EnableReclamation() { reclaim_enabled_ = true; }
  bool reclaim_enabled() const { return reclaim_enabled_; }

  // Frees `id`'s slot for reuse by a later Create. The slot's columns stay
  // intact (views live in the current dispatch remain readable) until the
  // slot is actually reused; callers must only erase terminal jobs after
  // the dispatch that retired them has fully unwound.
  void Erase(JobId id) {
    NETBATCH_CHECK(reclaim_enabled_, "Erase without EnableReclamation");
    std::uint32_t slot = kNoSlot;
    const JobId::ValueType v = id.value();
    if (v < dense_.size()) {
      slot = dense_[v];
      NETBATCH_CHECK(slot != kNoSlot, "erasing unknown job id");
      dense_[v] = kNoSlot;
    } else {
      slot = SparseSlot(id);
      sparse_.erase(id);
    }
    free_slots_.push_back(slot);
    ++reclaimed_count_;
  }

  // Generation floors of the parked free slots, bottom of the reuse stack
  // first — the serializable form of the free list. Slot indices mean
  // nothing across processes; only the floors and their LIFO order must
  // survive a snapshot, so that a WAL-replayed Create reuses a slot at
  // exactly the generation the live run's Create handed out (stale-timer
  // stamps in replayed records would otherwise never match).
  void AppendFreeSlotGenerations(std::vector<std::uint64_t>& out) const {
    for (const std::uint32_t slot : free_slots_) {
      out.push_back(generation_[slot]);
    }
  }

  // Re-creates one parked slot carrying only its generation floor, in the
  // same order AppendFreeSlotGenerations emitted (bottom first) so the
  // restored stack pops in the live order. The slot is unreachable by id
  // (its spec holds the invalid sentinel) until a Create reuses it.
  void RestoreFreeSlot(std::uint64_t generation) {
    NETBATCH_CHECK(reclaim_enabled_,
                   "RestoreFreeSlot without EnableReclamation");
    const auto slot = static_cast<std::uint32_t>(spec_.size());
    AppendSlot(workload::JobSpec{});
    state_[slot] = JobState::kKilled;  // shaped like a genuinely erased slot
    generation_[slot] = generation;
    free_slots_.push_back(slot);
  }

  // Jobs currently reachable by id (size() minus free slots).
  std::size_t live_size() const { return spec_.size() - free_slots_.size(); }
  std::uint64_t reclaimed_count() const { return reclaimed_count_; }
  std::size_t free_slot_count() const { return free_slots_.size(); }

  std::size_t size() const { return spec_.size(); }

  // Iteration yields views over every slot in creation order — with
  // reclamation on this includes erased-but-not-reused slots, matching the
  // old deque semantics.
  class const_iterator {
   public:
    const_iterator(const JobArena* arena, std::uint32_t slot)
        : arena_(arena), slot_(slot) {}
    Job operator*() const {
      return Job(const_cast<JobArena*>(arena_), slot_);
    }
    const_iterator& operator++() {
      ++slot_;
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return slot_ == other.slot_;
    }
    bool operator!=(const const_iterator& other) const {
      return slot_ != other.slot_;
    }

   private:
    const JobArena* arena_;
    std::uint32_t slot_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    return const_iterator(this, static_cast<std::uint32_t>(spec_.size()));
  }

  // --- checkpoint/restore (service layer) -----------------------------------
  // Column image of one job: everything AppendSlot initializes except the
  // spec (carried separately), the pending simulator event (the daemon uses
  // timers, not the event heap) and the intrusive machine-list links (the
  // pool restore rebuilds those via AddRunning/AddSuspended).
  struct RestoreImage {
    JobState state = JobState::kPending;
    PoolId pool;
    MachineId machine;
    double run_speed = 1.0;
    Ticks remaining_work = 0;
    Ticks state_since = 0;
    Ticks completion_time = -1;
    Ticks attempt_executed = 0;
    Ticks attempt_work = 0;
    Ticks wait_ticks = 0;
    Ticks suspend_ticks = 0;
    Ticks executed_ticks = 0;
    Ticks resched_waste_ticks = 0;
    Ticks transit_ticks = 0;
    std::int32_t suspend_count = 0;
    std::int32_t restart_count = 0;
    std::uint8_t is_duplicate = 0;
    JobId twin;
    Ticks extra_waste_ticks = 0;
    std::uint64_t generation = 0;
  };

  RestoreImage CaptureImage(JobId id) const {
    const std::uint32_t slot = SlotOf(id);
    RestoreImage image;
    image.state = state_[slot];
    image.pool = pool_[slot];
    image.machine = machine_[slot];
    image.run_speed = run_speed_[slot];
    image.remaining_work = remaining_work_[slot];
    image.state_since = state_since_[slot];
    image.completion_time = completion_time_[slot];
    image.attempt_executed = attempt_executed_[slot];
    image.attempt_work = attempt_work_[slot];
    image.wait_ticks = wait_ticks_[slot];
    image.suspend_ticks = suspend_ticks_[slot];
    image.executed_ticks = executed_ticks_[slot];
    image.resched_waste_ticks = resched_waste_ticks_[slot];
    image.transit_ticks = transit_ticks_[slot];
    image.suspend_count = suspend_count_[slot];
    image.restart_count = restart_count_[slot];
    image.is_duplicate = is_duplicate_[slot];
    image.twin = twin_[slot];
    image.extra_waste_ticks = extra_waste_ticks_[slot];
    image.generation = generation_[slot];
    return image;
  }

  // Re-materializes a job from a captured image into a fresh arena slot.
  // The generation is written verbatim — recovery runs in a new process,
  // so no stale timer stamps from a previous occupant can exist — keeping
  // WAL-replayed timer records matchable against the restored job.
  Job RestoreJob(workload::JobSpec spec, const RestoreImage& image) {
    Job job = Create(std::move(spec));
    const std::uint32_t slot = job.slot();
    state_[slot] = image.state;
    pool_[slot] = image.pool;
    machine_[slot] = image.machine;
    run_speed_[slot] = image.run_speed;
    remaining_work_[slot] = image.remaining_work;
    state_since_[slot] = image.state_since;
    completion_time_[slot] = image.completion_time;
    attempt_executed_[slot] = image.attempt_executed;
    attempt_work_[slot] = image.attempt_work;
    wait_ticks_[slot] = image.wait_ticks;
    suspend_ticks_[slot] = image.suspend_ticks;
    executed_ticks_[slot] = image.executed_ticks;
    resched_waste_ticks_[slot] = image.resched_waste_ticks;
    transit_ticks_[slot] = image.transit_ticks;
    suspend_count_[slot] = image.suspend_count;
    restart_count_[slot] = image.restart_count;
    is_duplicate_[slot] = image.is_duplicate;
    twin_[slot] = image.twin;
    extra_waste_ticks_[slot] = image.extra_waste_ticks;
    generation_[slot] = image.generation;
    return job;
  }

  // Resident bytes of every column plus the id index and free list —
  // capacity, not size, so reserved-but-unused slots are charged too.
  // Shallow: a spec's candidate-pool vector is not followed.
  std::size_t MemoryBytes() const {
    return ColumnBytes(spec_) + ColumnBytes(state_) + ColumnBytes(pool_) +
           ColumnBytes(machine_) + ColumnBytes(run_speed_) +
           ColumnBytes(remaining_work_) + ColumnBytes(state_since_) +
           ColumnBytes(completion_time_) + ColumnBytes(attempt_executed_) +
           ColumnBytes(attempt_work_) + ColumnBytes(wait_ticks_) +
           ColumnBytes(suspend_ticks_) + ColumnBytes(executed_ticks_) +
           ColumnBytes(resched_waste_ticks_) + ColumnBytes(transit_ticks_) +
           ColumnBytes(suspend_count_) + ColumnBytes(restart_count_) +
           ColumnBytes(is_duplicate_) + ColumnBytes(twin_) +
           ColumnBytes(extra_waste_ticks_) + ColumnBytes(generation_) +
           ColumnBytes(pending_event_) + ColumnBytes(link_next_) +
           ColumnBytes(link_prev_) + ColumnBytes(link_list_) +
           ColumnBytes(dense_) + ColumnBytes(free_slots_) +
           sparse_.size() * (sizeof(std::pair<JobId, std::uint32_t>) +
                             2 * sizeof(void*));
  }

 private:
  friend class Job;
  friend class MachineArena;
  friend class MachineJobList;

  // Ids below this resolve through the dense vector (worst case 64 MiB of
  // index, covering a Reserve(10M) run with room to spare); anything above
  // falls back to the hash map.
  static constexpr JobId::ValueType kDenseCap = 1u << 24;

  // Which machine registry a slot's intrusive link is threaded on.
  static constexpr std::uint8_t kNoList = 0;
  static constexpr std::uint8_t kRunningList = 1;
  static constexpr std::uint8_t kSuspendedList = 2;

  template <typename T>
  static std::size_t ColumnBytes(const std::vector<T>& column) {
    return column.capacity() * sizeof(T);
  }

  std::uint32_t SlotOf(JobId id) const {
    const JobId::ValueType v = id.value();
    if (v < dense_.size()) {
      const std::uint32_t slot = dense_[v];
      NETBATCH_CHECK(slot != kNoSlot, "unknown job id");
      return slot;
    }
    return SparseSlot(id);
  }

  void IndexSlot(JobId id, std::uint32_t slot) {
    const JobId::ValueType v = id.value();
    if (v < kDenseCap) {
      if (v >= dense_.size()) dense_.resize(v + 1, kNoSlot);
      NETBATCH_CHECK(dense_[v] == kNoSlot, "duplicate job id");
      dense_[v] = slot;
    } else {
      NETBATCH_CHECK(!sparse_.contains(id), "duplicate job id");
      sparse_.emplace(id, slot);
    }
  }

  std::uint32_t SparseSlot(JobId id) const {
    const auto it = sparse_.find(id);
    NETBATCH_CHECK(it != sparse_.end(), "unknown job id");
    return it->second;
  }

  void AppendSlot(workload::JobSpec spec) {
    const Ticks runtime = spec.runtime;
    spec_.push_back(std::move(spec));
    state_.push_back(JobState::kPending);
    pool_.emplace_back();
    machine_.emplace_back();
    run_speed_.push_back(1.0);
    remaining_work_.push_back(runtime);
    state_since_.push_back(0);
    completion_time_.push_back(-1);
    attempt_executed_.push_back(0);
    attempt_work_.push_back(0);
    wait_ticks_.push_back(0);
    suspend_ticks_.push_back(0);
    executed_ticks_.push_back(0);
    resched_waste_ticks_.push_back(0);
    transit_ticks_.push_back(0);
    suspend_count_.push_back(0);
    restart_count_.push_back(0);
    is_duplicate_.push_back(0);
    twin_.emplace_back();
    extra_waste_ticks_.push_back(0);
    generation_.push_back(0);
    pending_event_.push_back(sim::kNoEvent);
    link_next_.push_back(kNoSlot);
    link_prev_.push_back(kNoSlot);
    link_list_.push_back(kNoList);
  }

  // Reinitializes a reclaimed slot to a fresh job's state — everything
  // AppendSlot writes except the generation, which Create floors above the
  // previous occupant's.
  void ResetSlot(std::uint32_t slot, workload::JobSpec spec) {
    const Ticks runtime = spec.runtime;
    spec_[slot] = std::move(spec);
    state_[slot] = JobState::kPending;
    pool_[slot] = PoolId();
    machine_[slot] = MachineId();
    run_speed_[slot] = 1.0;
    remaining_work_[slot] = runtime;
    state_since_[slot] = 0;
    completion_time_[slot] = -1;
    attempt_executed_[slot] = 0;
    attempt_work_[slot] = 0;
    wait_ticks_[slot] = 0;
    suspend_ticks_[slot] = 0;
    executed_ticks_[slot] = 0;
    resched_waste_ticks_[slot] = 0;
    transit_ticks_[slot] = 0;
    suspend_count_[slot] = 0;
    restart_count_[slot] = 0;
    is_duplicate_[slot] = 0;
    twin_[slot] = JobId();
    extra_waste_ticks_[slot] = 0;
    generation_[slot] = 0;
    pending_event_[slot] = sim::kNoEvent;
    link_next_[slot] = kNoSlot;
    link_prev_[slot] = kNoSlot;
    link_list_[slot] = kNoList;
  }

  // One vector per Job field; all share slot indexing.
  std::vector<workload::JobSpec> spec_;
  std::vector<JobState> state_;
  std::vector<PoolId> pool_;
  std::vector<MachineId> machine_;
  std::vector<double> run_speed_;
  std::vector<Ticks> remaining_work_;
  std::vector<Ticks> state_since_;  // when the current state was entered
  std::vector<Ticks> completion_time_;
  std::vector<Ticks> attempt_executed_;  // wall-clock of the current attempt
  std::vector<Ticks> attempt_work_;      // work units of the current attempt
  std::vector<Ticks> wait_ticks_;
  std::vector<Ticks> suspend_ticks_;
  std::vector<Ticks> executed_ticks_;
  std::vector<Ticks> resched_waste_ticks_;
  std::vector<Ticks> transit_ticks_;
  std::vector<std::int32_t> suspend_count_;
  std::vector<std::int32_t> restart_count_;
  std::vector<std::uint8_t> is_duplicate_;
  std::vector<JobId> twin_;
  std::vector<Ticks> extra_waste_ticks_;
  std::vector<std::uint64_t> generation_;
  std::vector<sim::EventSeq> pending_event_;
  // Intrusive links for the machine running/suspended registries
  // (maintained by MachineArena; see machine.h).
  std::vector<std::uint32_t> link_next_;
  std::vector<std::uint32_t> link_prev_;
  std::vector<std::uint8_t> link_list_;

  std::vector<std::uint32_t> dense_;  // id.value() -> slot, kNoSlot if absent
  std::unordered_map<JobId, std::uint32_t> sparse_;  // ids >= kDenseCap
  bool reclaim_enabled_ = false;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t reclaimed_count_ = 0;
};

// --- Job view accessors (one indexed column load each) ----------------------

inline const workload::JobSpec& Job::spec() const {
  return arena_->spec_[slot_];
}
inline JobId Job::id() const { return arena_->spec_[slot_].id; }
inline workload::Priority Job::priority() const {
  return arena_->spec_[slot_].priority;
}
inline JobState Job::state() const { return arena_->state_[slot_]; }
inline PoolId Job::pool() const { return arena_->pool_[slot_]; }
inline MachineId Job::machine() const { return arena_->machine_[slot_]; }
inline void Job::set_pool(PoolId pool) { arena_->pool_[slot_] = pool; }
inline Ticks Job::remaining_work() const {
  return arena_->remaining_work_[slot_];
}
inline double Job::run_speed() const { return arena_->run_speed_[slot_]; }
inline Ticks Job::completion_time() const {
  return arena_->completion_time_[slot_];
}
inline Ticks Job::wait_ticks() const { return arena_->wait_ticks_[slot_]; }
inline Ticks Job::suspend_ticks() const {
  return arena_->suspend_ticks_[slot_];
}
inline Ticks Job::executed_ticks() const {
  return arena_->executed_ticks_[slot_];
}
inline Ticks Job::attempt_executed_ticks() const {
  return arena_->attempt_executed_[slot_];
}
inline Ticks Job::resched_waste_ticks() const {
  return arena_->resched_waste_ticks_[slot_];
}
inline Ticks Job::transit_ticks() const {
  return arena_->transit_ticks_[slot_];
}
inline std::int32_t Job::suspend_count() const {
  return arena_->suspend_count_[slot_];
}
inline std::int32_t Job::restart_count() const {
  return arena_->restart_count_[slot_];
}
inline bool Job::is_duplicate() const {
  return arena_->is_duplicate_[slot_] != 0;
}
inline void Job::MarkDuplicateOf(JobId original) {
  arena_->is_duplicate_[slot_] = 1;
  arena_->twin_[slot_] = original;
}
inline JobId Job::twin() const { return arena_->twin_[slot_]; }
inline void Job::set_twin(JobId twin) { arena_->twin_[slot_] = twin; }
inline Ticks Job::extra_waste_ticks() const {
  return arena_->extra_waste_ticks_[slot_];
}
inline void Job::AddExtraWaste(Ticks waste) {
  arena_->extra_waste_ticks_[slot_] += waste;
}
inline Ticks Job::last_transition_time() const {
  return arena_->state_since_[slot_];
}
inline std::uint64_t Job::generation() const {
  return arena_->generation_[slot_];
}
inline void Job::EnsureGenerationAtLeast(std::uint64_t floor) {
  if (arena_->generation_[slot_] < floor) arena_->generation_[slot_] = floor;
}
inline sim::EventSeq Job::pending_event() const {
  return arena_->pending_event_[slot_];
}
inline void Job::set_pending_event(sim::EventSeq seq) {
  arena_->pending_event_[slot_] = seq;
}

}  // namespace netbatch::cluster

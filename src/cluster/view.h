// Read-only view of cluster state, handed to scheduling policies.
//
// The paper notes (§3.2.2) that utilization-based decisions "require the
// virtual pool manager to know the current situation in every physical pool
// at any time, which can be impractical". Policies therefore only see this
// narrow interface; the staleness ablation wraps it with a delayed snapshot.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/ids.h"
#include "common/time.h"
#include "workload/job_spec.h"

namespace netbatch::cluster {

class ClusterView {
 public:
  virtual ~ClusterView() = default;

  virtual Ticks Now() const = 0;
  virtual std::size_t PoolCount() const = 0;

  // Fraction of the pool's cores running jobs, in [0, 1].
  virtual double PoolUtilization(PoolId pool) const = 0;
  virtual std::size_t PoolQueueLength(PoolId pool) const = 0;
  virtual std::int64_t PoolTotalCores(PoolId pool) const = 0;

  // Whether some machine in `pool` could ever run `spec`.
  virtual bool PoolEligible(PoolId pool, const workload::JobSpec& spec)
      const = 0;

  // Cluster-wide running-core fraction and suspended-job count (Fig. 4's
  // two curves).
  virtual double ClusterUtilization() const = 0;
  virtual std::size_t SuspendedJobCount() const = 0;

  // Event-core observability: pending/fired counts of the typed event loop.
  // Defaults keep snapshot views and test fakes trivial — only the live
  // engine overrides these (exporters use them for counter tracks).
  virtual std::size_t PendingEventCount() const { return 0; }
  virtual std::uint64_t FiredEventCount() const { return 0; }
};

}  // namespace netbatch::cluster

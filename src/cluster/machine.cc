#include "cluster/machine.h"

#include <algorithm>

namespace netbatch::cluster {

Machine::Machine(MachineId id, PoolId pool, std::int32_t cores,
                 std::int64_t memory_mb, double speed, std::int32_t owner)
    : id_(id),
      pool_(pool),
      owner_(owner),
      cores_total_(cores),
      memory_total_mb_(memory_mb),
      speed_(speed),
      cores_free_(cores),
      memory_free_mb_(memory_mb) {
  NETBATCH_CHECK(cores > 0, "machine needs at least one core");
  NETBATCH_CHECK(memory_mb > 0, "machine needs memory");
  NETBATCH_CHECK(speed > 0, "machine speed must be positive");
}

void Machine::Claim(std::int32_t cores, std::int64_t memory_mb) {
  NETBATCH_CHECK(cores_free_ >= cores && memory_free_mb_ >= memory_mb,
                 "claiming more resources than free");
  cores_free_ -= cores;
  memory_free_mb_ -= memory_mb;
}

void Machine::Release(std::int32_t cores, std::int64_t memory_mb) {
  cores_free_ += cores;
  memory_free_mb_ += memory_mb;
  NETBATCH_CHECK(cores_free_ <= cores_total_ &&
                     memory_free_mb_ <= memory_total_mb_,
                 "released more resources than were claimed");
}

namespace {
void RemoveId(std::vector<JobId>& jobs, JobId job) {
  const auto it = std::find(jobs.begin(), jobs.end(), job);
  NETBATCH_CHECK(it != jobs.end(), "job not registered on machine");
  jobs.erase(it);
}
}  // namespace

void Machine::AddRunning(JobId job, std::int32_t priority, std::int32_t cores,
                         std::int64_t memory_mb) {
  running_.push_back(job);
  auto it = std::lower_bound(
      running_classes_.begin(), running_classes_.end(), priority,
      [](const RunningClass& cls, std::int32_t p) { return cls.priority < p; });
  if (it == running_classes_.end() || it->priority != priority) {
    it = running_classes_.insert(it, RunningClass{priority, 0, 0, 0});
  }
  ++it->jobs;
  it->cores += cores;
  it->memory_mb += memory_mb;
}

void Machine::RemoveRunning(JobId job, std::int32_t priority,
                            std::int32_t cores, std::int64_t memory_mb) {
  RemoveId(running_, job);
  const auto it = std::lower_bound(
      running_classes_.begin(), running_classes_.end(), priority,
      [](const RunningClass& cls, std::int32_t p) { return cls.priority < p; });
  NETBATCH_CHECK(it != running_classes_.end() && it->priority == priority,
                 "running-class summary missing the job's priority");
  --it->jobs;
  it->cores -= cores;
  it->memory_mb -= memory_mb;
  NETBATCH_CHECK(it->jobs >= 0 && it->cores >= 0 && it->memory_mb >= 0,
                 "running-class summary went negative");
  if (it->jobs == 0) running_classes_.erase(it);
}

void Machine::RemoveSuspended(JobId job) { RemoveId(suspended_, job); }

}  // namespace netbatch::cluster

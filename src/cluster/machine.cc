#include "cluster/machine.h"

namespace netbatch::cluster {

MachineId MachineArena::Add(std::int32_t cores, std::int64_t memory_mb,
                            double speed, std::int32_t owner) {
  NETBATCH_CHECK(cores > 0, "machine needs at least one core");
  NETBATCH_CHECK(memory_mb > 0, "machine needs memory");
  NETBATCH_CHECK(speed > 0, "machine speed must be positive");
  owner_.push_back(owner);
  cores_total_.push_back(cores);
  memory_total_mb_.push_back(memory_mb);
  speed_.push_back(speed);
  cores_free_.push_back(cores);
  memory_free_mb_.push_back(memory_mb);
  online_.push_back(1);
  run_head_.push_back(JobArena::kNoSlot);
  run_tail_.push_back(JobArena::kNoSlot);
  run_count_.push_back(0);
  susp_head_.push_back(JobArena::kNoSlot);
  susp_tail_.push_back(JobArena::kNoSlot);
  susp_count_.push_back(0);
  class_head_.push_back(kNoNode);
  return MachineId(static_cast<MachineId::ValueType>(size() - 1));
}

void MachineArena::LinkJob(std::uint32_t machine, JobId job, bool running) {
  JobArena& jobs = *jobs_;
  const std::uint32_t slot = jobs.SlotOf(job);
  NETBATCH_CHECK(jobs.link_list_[slot] == JobArena::kNoList,
                 "job already registered on a machine");
  std::uint32_t& head = running ? run_head_[machine] : susp_head_[machine];
  std::uint32_t& tail = running ? run_tail_[machine] : susp_tail_[machine];
  // Append at the tail — same arrival order the per-machine vectors kept.
  jobs.link_prev_[slot] = tail;
  jobs.link_next_[slot] = JobArena::kNoSlot;
  jobs.link_list_[slot] =
      running ? JobArena::kRunningList : JobArena::kSuspendedList;
  if (tail == JobArena::kNoSlot) {
    head = slot;
  } else {
    jobs.link_next_[tail] = slot;
  }
  tail = slot;
  ++(running ? run_count_ : susp_count_)[machine];
}

void MachineArena::UnlinkJob(std::uint32_t machine, JobId job, bool running) {
  JobArena& jobs = *jobs_;
  const std::uint32_t slot = jobs.SlotOf(job);
  std::uint32_t& head = running ? run_head_[machine] : susp_head_[machine];
  std::uint32_t& tail = running ? run_tail_[machine] : susp_tail_[machine];
  const std::uint8_t expected =
      running ? JobArena::kRunningList : JobArena::kSuspendedList;
  // On the right kind of list, and — when it claims to be a head — the head
  // of THIS machine's list. (A mid-list slot is only reachable from the head
  // that owns it, so this is the cheap whole-list membership guard.)
  NETBATCH_CHECK(
      jobs.link_list_[slot] == expected &&
          (jobs.link_prev_[slot] != JobArena::kNoSlot || head == slot),
      "job not registered on machine");
  const std::uint32_t prev = jobs.link_prev_[slot];
  const std::uint32_t next = jobs.link_next_[slot];
  if (prev == JobArena::kNoSlot) {
    head = next;
  } else {
    jobs.link_next_[prev] = next;
  }
  if (next == JobArena::kNoSlot) {
    tail = prev;
  } else {
    jobs.link_prev_[next] = prev;
  }
  jobs.link_next_[slot] = JobArena::kNoSlot;
  jobs.link_prev_[slot] = JobArena::kNoSlot;
  jobs.link_list_[slot] = JobArena::kNoList;
  --(running ? run_count_ : susp_count_)[machine];
}

void MachineArena::AddRunningClass(std::uint32_t machine, std::int32_t priority,
                                   std::int32_t cores,
                                   std::int64_t memory_mb) {
  // Walk the (short, ascending) class list to the insertion point. Indices,
  // not pointers: emplace_back below may reallocate class_nodes_.
  std::uint32_t prev = kNoNode;
  std::uint32_t cur = class_head_[machine];
  while (cur != kNoNode && class_nodes_[cur].priority < priority) {
    prev = cur;
    cur = class_nodes_[cur].next;
  }
  if (cur == kNoNode || class_nodes_[cur].priority != priority) {
    std::uint32_t node;
    if (!class_free_.empty()) {
      node = class_free_.back();
      class_free_.pop_back();
    } else {
      node = static_cast<std::uint32_t>(class_nodes_.size());
      class_nodes_.emplace_back();
    }
    class_nodes_[node] = ClassNode{priority, 0, 0, 0, cur};
    if (prev == kNoNode) {
      class_head_[machine] = node;
    } else {
      class_nodes_[prev].next = node;
    }
    cur = node;
  }
  ClassNode& cls = class_nodes_[cur];
  ++cls.jobs;
  cls.cores += cores;
  cls.memory_mb += memory_mb;
}

void MachineArena::RemoveRunningClass(std::uint32_t machine,
                                      std::int32_t priority,
                                      std::int32_t cores,
                                      std::int64_t memory_mb) {
  std::uint32_t* link = &class_head_[machine];
  while (*link != kNoNode && class_nodes_[*link].priority < priority) {
    link = &class_nodes_[*link].next;
  }
  NETBATCH_CHECK(*link != kNoNode && class_nodes_[*link].priority == priority,
                 "running-class summary missing the job's priority");
  ClassNode& cls = class_nodes_[*link];
  --cls.jobs;
  cls.cores -= cores;
  cls.memory_mb -= memory_mb;
  NETBATCH_CHECK(cls.jobs >= 0 && cls.cores >= 0 && cls.memory_mb >= 0,
                 "running-class summary went negative");
  if (cls.jobs == 0) {
    const std::uint32_t node = *link;
    *link = cls.next;
    class_free_.push_back(node);
  }
}

void Machine::Claim(std::int32_t cores, std::int64_t memory_mb) {
  MachineArena& a = *arena_;
  NETBATCH_CHECK(
      a.cores_free_[slot_] >= cores && a.memory_free_mb_[slot_] >= memory_mb,
      "claiming more resources than free");
  a.cores_free_[slot_] -= cores;
  a.memory_free_mb_[slot_] -= memory_mb;
}

void Machine::Release(std::int32_t cores, std::int64_t memory_mb) {
  MachineArena& a = *arena_;
  a.cores_free_[slot_] += cores;
  a.memory_free_mb_[slot_] += memory_mb;
  NETBATCH_CHECK(a.cores_free_[slot_] <= a.cores_total_[slot_] &&
                     a.memory_free_mb_[slot_] <= a.memory_total_mb_[slot_],
                 "released more resources than were claimed");
}

void Machine::AddRunning(JobId job, std::int32_t priority, std::int32_t cores,
                         std::int64_t memory_mb) {
  arena_->LinkJob(slot_, job, /*running=*/true);
  arena_->AddRunningClass(slot_, priority, cores, memory_mb);
}

void Machine::RemoveRunning(JobId job, std::int32_t priority,
                            std::int32_t cores, std::int64_t memory_mb) {
  arena_->UnlinkJob(slot_, job, /*running=*/true);
  arena_->RemoveRunningClass(slot_, priority, cores, memory_mb);
}

void Machine::AddSuspended(JobId job) {
  arena_->LinkJob(slot_, job, /*running=*/false);
}

void Machine::RemoveSuspended(JobId job) {
  arena_->UnlinkJob(slot_, job, /*running=*/false);
}

}  // namespace netbatch::cluster

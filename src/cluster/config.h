// Cluster topology configuration.
//
// NetBatch pools contain "hundreds or thousands of multi-core machines"
// with "varying CPU speed and memory" (paper §2.1, §3.1). A pool is
// described as groups of identical machines; heterogeneity comes from
// mixing groups.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"

namespace netbatch::cluster {

// A homogeneous group of machines within a pool.
struct MachineGroupConfig {
  std::int32_t count = 0;
  std::int32_t cores = 8;
  std::int64_t memory_mb = 32768;
  double speed = 1.0;  // execution rate relative to the reference machine
  // Business group that paid for these hosts (paper §2.2): only that
  // group's jobs may preempt here. kNoOwner machines are preemptible by any
  // higher-priority job.
  std::int32_t owner = -1;  // workload::kNoOwner
};

struct PoolConfig {
  std::vector<MachineGroupConfig> machine_groups;

  std::int64_t TotalCores() const {
    std::int64_t total = 0;
    for (const auto& group : machine_groups) {
      total += static_cast<std::int64_t>(group.count) * group.cores;
    }
    return total;
  }
};

// How the virtual pool manager dispatches a new submission across its
// candidate pools (paper §2.1: jobs are distributed to connected pools
// "according to resource availability and NetBatch configurations").
enum class DispatchMode {
  // Availability-aware round: offer to pools in scheduler order, preferring
  // the first pool that can start the job immediately; only when every
  // candidate is busy does the job queue at the scheduler's first eligible
  // choice. This is the default — and it is exactly the check a
  // *rescheduled* job skips, since restarts are "sent to the alternate pool
  // directly" (§3.2), which is what makes a poor alternate-pool choice
  // expensive.
  kPreferImmediateStart,
  // Naive: commit to the scheduler's first eligible pool, queueing there
  // even if an idle pool exists further down the order.
  kQueueAtFirstEligible,
};

struct ClusterConfig {
  std::vector<PoolConfig> pools;

  // NetBatch suspension keeps the preempted process resident (SIGSTOP-like),
  // so its memory remains claimed on the host; set to false to model
  // swap-to-disk suspension instead.
  bool suspended_holds_memory = true;

  // Host-level suspension also means host-level resumption: when capacity
  // frees on a machine, its own suspended processes resume before the pool
  // dispatches queued work to that host (even queued higher-priority work —
  // only a *new arrival's* preemption can displace them again). Set to
  // false for strict pool-wide priority order instead; the ablation bench
  // compares both.
  bool local_resume_first = true;

  std::int64_t TotalCores() const {
    std::int64_t total = 0;
    for (const auto& pool : pools) total += pool.TotalCores();
    return total;
  }

  // A copy of this config with every group's machine count halved (rounded
  // up to keep at least one machine). This is exactly how the paper builds
  // its high-load scenario: "we reduce the number of compute cores available
  // to each pool by half while keeping the submitted job trace unchanged".
  ClusterConfig WithHalvedCapacity() const {
    ClusterConfig halved = *this;
    for (auto& pool : halved.pools) {
      for (auto& group : pool.machine_groups) {
        group.count = (group.count + 1) / 2;
      }
    }
    return halved;
  }
};

}  // namespace netbatch::cluster

// Incremental placement index over a pool's machines.
//
// PhysicalPool's placement semantics are defined in terms of linear scans
// ("first eligible machine with free resources", paper §2.1) that cost
// O(machines) per decision — untenable for the pools the paper describes
// ("tens of thousands of machines"). The structures here answer the same
// queries from incrementally maintained summaries, in machine-id order, so
// placement results stay bit-identical to the scans they replace:
//
//   * FreeCapacityIndex — online machines bucketed by exact free-core
//     count, each bucket an id-ordered bitmap with a max-free-memory
//     summary per 64-machine word. FirstFit(c, m) replaces TryPlace
//     step 1's scan. Updates are allocation-free bit flips plus one
//     bounded word-summary refresh, because placement mutates the index
//     on every Claim/Release and a tree-node allocation per update costs
//     more than the scan it replaces on mid-sized pools.
//   * CapacityClassIndex — the distinct (cores_total, memory_total_mb)
//     machine shapes with machine/online counts, memoized at Rebuild into
//     a Pareto frontier (capacity totals are immutable, so the frontier
//     never invalidates). Replaces HasEligibleMachine's scan.
//
// The third summary (per-machine preemptible-priority classes, replacing
// TryPlace step 2's scan) lives on Machine itself plus an id-ordered
// registry in PhysicalPool; see Machine::lowest_running_priority().
//
// Both indexes are pure caches over Machine state: every query is
// answerable (slowly) from the machines alone, and PhysicalPool's
// AuditInvariants proves the caches match a from-scratch rebuild.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.h"

namespace netbatch::cluster {

class Machine;
class MachineArena;

class FreeCapacityIndex {
 public:
  // Registers every machine (capacity table sizing) and indexes the online
  // ones. Machine ids must equal their position in `machines`.
  void Rebuild(const MachineArena& machines);

  // Re-syncs one machine after any change to its free resources or online
  // state. Offline machines are absent from the index.
  void Update(const Machine& machine);

  // Smallest-id online machine with cores_free >= cores and
  // memory_free_mb >= memory_mb; invalid id when none qualifies.
  MachineId FirstFit(std::int32_t cores, std::int64_t memory_mb) const;

  // Reports every divergence between the index and the machines' actual
  // state to `report(machine, what)` — the pool audit's consistency check.
  void Audit(const MachineArena& machines,
             const std::function<void(MachineId, const char*)>& report) const;

 private:
  // Machines holding exactly `cores_free` free cores, as a bitmap over
  // machine ids (bit order = id order = the first-eligible-machine
  // placement order), plus the max free memory per 64-id word so FirstFit
  // can skip words that cannot satisfy the memory demand.
  struct Bucket {
    std::vector<std::uint64_t> bits;
    std::vector<std::int64_t> word_max_memory;
    std::size_t count = 0;
  };
  struct Entry {
    bool present = false;
    std::int32_t cores_free = 0;
    std::int64_t memory_free_mb = 0;
  };

  void Remove(MachineId::ValueType id);
  void Insert(MachineId::ValueType id, std::int32_t cores_free,
              std::int64_t memory_free_mb);

  // Indexed by exact free-core count (bounded by the largest machine's
  // core total), so bucket lookup is one array access.
  std::vector<Bucket> by_cores_;
  std::vector<Entry> entries_;  // mirror of what the index holds, by id
  std::size_t words_ = 0;       // ceil(machines / 64)
};

class CapacityClassIndex {
 public:
  void Rebuild(const MachineArena& machines);

  // Tracks online/offline flips (capacity totals never change).
  void OnOnlineChanged(const Machine& machine, bool now_online);

  // Whether any machine (with require_online: any *online* machine) has the
  // capacity to ever run a (cores, memory) demand. The capacity-only form
  // answers from the Pareto frontier precomputed at Rebuild — machine
  // capacity totals are immutable, so it is never invalidated.
  bool AnyEligible(std::int32_t cores, std::int64_t memory_mb,
                   bool require_online) const;

  void Audit(const MachineArena& machines,
             const std::function<void(const char*)>& report) const;

 private:
  struct Class {
    std::int32_t cores_total = 0;
    std::int64_t memory_total_mb = 0;
    std::int32_t machines = 0;
    std::int32_t online = 0;
  };
  // A handful of entries (distinct machine shapes in the pool).
  std::vector<Class> classes_;
  // Pareto-maximal (cores_total, memory_total_mb) pairs, cores ascending
  // and memory strictly descending: eligibility is "first frontier entry
  // with cores_total >= demand also has the memory".
  std::vector<std::pair<std::int32_t, std::int64_t>> frontier_;
};

}  // namespace netbatch::cluster

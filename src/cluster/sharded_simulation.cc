#include "cluster/sharded_simulation.h"

#include <algorithm>
#include <limits>
#include <string>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "common/distributions.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace netbatch::cluster {

namespace {

constexpr Ticks kNever = std::numeric_limits<Ticks>::max();

Ticks SaturatingAdd(Ticks a, Ticks b) {
  if (a >= kNever - b) return kNever;
  return a + b;
}

// The domain's InitialScheduler. Routing happened at the barrier, so by the
// time the core asks for a pool order the answer is already decided: a
// one-shot forced order armed from the submit event ({landing pool}, or {}
// for a routed reject). When unarmed — the core re-offering jobs evicted by
// a machine failure — it answers {own pool}: evicted jobs requeue locally, a
// documented v1 deviation (cross-pool failure rescheduling would need the
// job to leave the domain mid-window).
class ForcedOrderScheduler final : public InitialScheduler {
 public:
  explicit ForcedOrderScheduler(PoolId own) : own_(own) {}

  void ForceNext(PoolId pool) {
    armed_ = true;
    forced_ = pool;
  }

  std::vector<PoolId> PoolOrder(const workload::JobSpec& spec,
                                const ClusterView& view) override {
    (void)spec;
    (void)view;
    if (armed_) {
      armed_ = false;
      if (!forced_.valid()) return {};
      return {forced_};
    }
    return {own_};
  }

 private:
  PoolId own_;
  bool armed_ = false;
  PoolId forced_;
};

}  // namespace

// ---- StaticEligibility -----------------------------------------------------

StaticEligibility::StaticEligibility(const ClusterConfig& config) {
  shapes_.resize(config.pools.size());
  for (std::size_t p = 0; p < config.pools.size(); ++p) {
    for (const MachineGroupConfig& group : config.pools[p].machine_groups) {
      if (group.count <= 0) continue;
      shapes_[p].push_back(Shape{group.cores, group.memory_mb});
    }
  }
}

bool StaticEligibility::Eligible(PoolId pool,
                                 const workload::JobSpec& spec) const {
  if (!pool.valid() || pool.value() >= shapes_.size()) return false;
  for (const Shape& shape : shapes_[pool.value()]) {
    if (shape.cores >= spec.cores && shape.memory_mb >= spec.memory_mb) {
      return true;
    }
  }
  return false;
}

// ---- DomainSim -------------------------------------------------------------

// One pool's private simulation: event heap + SchedulerCore over the
// empty-remote-pools slice. Runs single-threaded within a window; the
// coordinator calls the "barrier-side" methods strictly between windows.
class ShardedSimulation::DomainSim final : private sched::CoreHost,
                                           private sim::EventDispatcher {
 public:
  // What the domain's rescheduling policy sees mid-window: the own pool
  // live, every remote pool frozen at the last barrier (plus the static
  // eligibility oracle, which never disagrees with the remote pool's own
  // capacity check).
  class HybridView final : public ClusterView {
   public:
    explicit HybridView(const DomainSim& domain) : domain_(&domain) {}

    Ticks Now() const override;
    std::size_t PoolCount() const override;
    double PoolUtilization(PoolId pool) const override;
    std::size_t PoolQueueLength(PoolId pool) const override;
    std::int64_t PoolTotalCores(PoolId pool) const override;
    bool PoolEligible(PoolId pool,
                      const workload::JobSpec& spec) const override;
    double ClusterUtilization() const override;
    std::size_t SuspendedJobCount() const override;

   private:
    const DomainSim* domain_;
  };

  // Swaps the view the real policy reasons over: the core passes itself,
  // whose remote pools are empty husks — the hybrid view is the whole point.
  class PolicyAdapter final : public ReschedulingPolicy {
   public:
    PolicyAdapter(ReschedulingPolicy& real, const ClusterView& hybrid)
        : real_(&real), hybrid_(&hybrid) {}

    std::optional<PoolId> OnSuspended(const Job& job,
                                      const ClusterView& view) override {
      (void)view;
      return real_->OnSuspended(job, *hybrid_);
    }
    std::optional<Ticks> WaitRescheduleThreshold() const override {
      return real_->WaitRescheduleThreshold();
    }
    std::optional<PoolId> OnWaitTimeout(const Job& job,
                                        const ClusterView& view) override {
      (void)view;
      return real_->OnWaitTimeout(job, *hybrid_);
    }
    bool DuplicateInsteadOfRestart() const override { return false; }

   private:
    ReschedulingPolicy* real_;
    const ClusterView* hybrid_;
  };

  DomainSim(ShardedSimulation& parent, PoolId own, const ClusterConfig& slice,
            sched::CoreOptions core_options, ReschedulingPolicy& policy,
            std::uint64_t outage_seed, std::size_t reserve_jobs)
      : parent_(&parent),
        own_(own),
        forced_sched_(own),
        hybrid_view_(*this),
        policy_adapter_(policy, hybrid_view_),
        core_(slice, forced_sched_, policy_adapter_, /*host=*/*this,
              std::move(core_options)),
        outage_rng_(outage_seed) {
    sim_.set_dispatcher(this);
    // Handed-off jobs are Erase()d from the losing domain's arena, so
    // reclamation must be on; the core's audit skips the terminal-counter
    // ledger accordingly.
    core_.jobs().EnableReclamation();
    core_.ReserveJobs(reserve_jobs);
    sim_.Reserve(reserve_jobs);
    pending_events_gauge_ = &core_.counters().GetGauge("sim.pending_events");
    fired_events_gauge_ = &core_.counters().GetGauge("sim.fired_events");
  }

  // --- barrier-side (coordinator thread only) ------------------------------

  void AdmitAndScheduleSubmit(const workload::JobSpec& spec, PoolId chosen) {
    const Ticks at = spec.submit_time;
    Job job = core_.AdmitJob(spec);
    sim::Event event;
    event.kind = static_cast<std::uint16_t>(EventKind::kSubmit);
    event.job = job.id();
    event.stamp = job.generation();
    event.pool = chosen;  // invalid() routes the core's reject path
    sim_.ScheduleAt(at, event);
  }

  void ReceiveHandoff(const RestartHandoff& handoff) {
    Job job = core_.jobs().RestoreJob(handoff.spec, handoff.image);
    sim::Event event;
    event.kind = static_cast<std::uint16_t>(EventKind::kRestartDelivery);
    event.job = job.id();
    // The image generation strictly exceeds every stamp armed during any
    // previous stay of this job here, so recycled-id events stay stale.
    event.stamp = handoff.image.generation;
    event.pool = handoff.target;
    sim_.ScheduleAt(handoff.deliver_time, event);
  }

  void ScheduleInitialFailures() {
    for (const Machine& machine : core_.pool(own_).machines()) {
      ScheduleNextFailure(machine.id());
    }
  }

  std::optional<Ticks> NextEventTime() { return sim_.NextEventTime(); }

  // Fires everything strictly before `barrier` (RunUntil is inclusive).
  void RunWindow(Ticks barrier) { window_end_ = sim_.RunUntil(barrier - 1); }
  Ticks window_end() const { return window_end_; }

  void DrainOutbox(std::vector<RestartHandoff>& into) {
    for (RestartHandoff& msg : outbox_) into.push_back(std::move(msg));
    outbox_.clear();
  }

  PoolSnap Snap() const {
    const PhysicalPool& pool = core_.pool(own_);
    PoolSnap snap;
    snap.busy_cores = pool.busy_cores();
    snap.total_cores = pool.total_cores();
    snap.queued = pool.QueueLength();
    snap.suspended = pool.SuspendedCount();
    return snap;
  }

  void SampleGauges(Ticks now) {
    core_.RefreshGauges(now);
    pending_events_gauge_->Set(
        static_cast<std::int64_t>(sim_.PendingEvents()));
    fired_events_gauge_->Set(static_cast<std::int64_t>(sim_.FiredEvents()));
  }

  void Audit(Ticks now) {
    core_.counters().GetCounter("audit.runs").Increment();
    FailFastSink sink;
    core_.AuditInvariants(sink, now);
  }

  const sched::SchedulerCore& core() const { return core_; }
  std::uint64_t event_hash() const { return event_hash_; }
  std::uint64_t fired_events() const { return sim_.FiredEvents(); }
  std::size_t pending_events() const { return sim_.PendingEvents(); }

 private:
  // A rescheduling restart the core armed this window; shipped as a
  // RestartHandoff once the triggering event finishes dispatching (the job
  // must not be erased out from under the core mid-decision).
  struct PendingHandoff {
    JobId job;
    PoolId target;
    Ticks deliver_time = 0;
  };

  // --- sim::EventDispatcher ------------------------------------------------

  void Dispatch(const sim::Event& event) override {
    HashEvent(event);
    const Ticks now = sim_.Now();
    switch (static_cast<EventKind>(event.kind)) {
      case EventKind::kSubmit:
        forced_sched_.ForceNext(event.pool);
        core_.Submit(event.job, now);
        break;
      case EventKind::kCompletion:
        // Contains() guards drop events for jobs handed off to another
        // domain (their slot was erased); the generation stamp then guards
        // events from a previous stay of a returned job.
        if (core_.jobs().Contains(event.job)) {
          core_.Complete(event.job, event.stamp, now);
        }
        break;
      case EventKind::kWaitTimeout:
        if (core_.jobs().Contains(event.job)) {
          core_.OnWaitTimeout(event.job, event.stamp, now);
        }
        break;
      case EventKind::kRestartDelivery:
        if (core_.jobs().Contains(event.job)) {
          core_.DeliverRestart(event.job, event.stamp, event.pool, now);
        }
        break;
      case EventKind::kMachineFailure:
        OnMachineFailure(event.machine);
        break;
      case EventKind::kMachineRepair:
        core_.RepairMachine(own_, event.machine, now);
        ScheduleNextFailure(event.machine);
        break;
      default:
        NETBATCH_CHECK(false, "unexpected event kind in sharded domain");
    }
    DrainPendingHandoffs();
  }

  // --- sched::CoreHost -----------------------------------------------------

  void ArmCompletion(Job job, Ticks duration) override {
    const sim::EventSeq seq =
        sim_.ScheduleAfter(duration, JobEvent(EventKind::kCompletion, job));
    job.set_pending_event(seq);
  }

  void CancelCompletion(Job job) override {
    sim_.Cancel(job.pending_event());
    job.set_pending_event(sim::kNoEvent);
  }

  void ArmWaitTimeout(Job job, Ticks threshold) override {
    sim_.ScheduleAfter(threshold, JobEvent(EventKind::kWaitTimeout, job));
  }

  void ScheduleRestartDelivery(Job job, PoolId target,
                               Ticks overhead) override {
    // Rescheduling restarts are cross-pool by construction (the core only
    // restarts when the policy picked a pool != job.pool()), and the
    // effective matrix floors overhead at one tick, so every restart
    // arrives here rather than delivering inline — the hand-off hook.
    NETBATCH_CHECK(target != own_, "sharded restart must cross pools");
    pending_handoffs_.push_back(
        PendingHandoff{job.id(), target, sim_.Now() + overhead});
  }

  void OnJobTerminal(const Job& job) override {
    // Quiescence is a cross-domain property; the coordinator checks the
    // summed terminal counts at each barrier instead.
    (void)job;
  }

  // --- internals -----------------------------------------------------------

  static sim::Event JobEvent(EventKind kind, const Job& job) {
    sim::Event event;
    event.kind = static_cast<std::uint16_t>(kind);
    event.job = job.id();
    event.stamp = job.generation();
    return event;
  }

  void HashEvent(const sim::Event& event) {
    const auto mix = [this](std::uint64_t v) {
      event_hash_ ^= v;
      event_hash_ *= 1099511628211ull;  // FNV-1a prime
    };
    mix(static_cast<std::uint64_t>(event.time));
    mix(event.kind);
    mix(event.job.value());
    mix(event.pool.value());
    mix(event.machine.value());
    mix(event.stamp);
  }

  void DrainPendingHandoffs() {
    for (const PendingHandoff& pending : pending_handoffs_) {
      RestartHandoff msg;
      msg.deliver_time = pending.deliver_time;
      msg.target = pending.target;
      msg.src_domain = own_.value();
      msg.src_seq = next_outbox_seq_++;
      msg.spec = core_.jobs().at(pending.job).spec();
      msg.image = core_.jobs().CaptureImage(pending.job);
      core_.jobs().Erase(pending.job);
      outbox_.push_back(std::move(msg));
    }
    pending_handoffs_.clear();
  }

  void ScheduleNextFailure(MachineId machine) {
    const double uptime_minutes = SampleExponential(
        outage_rng_, 1.0 / parent_->options_.outages.mtbf_minutes);
    sim::Event event;
    event.kind = static_cast<std::uint16_t>(EventKind::kMachineFailure);
    event.pool = own_;
    event.machine = machine;
    sim_.ScheduleAfter(
        std::max<Ticks>(
            1, static_cast<Ticks>(uptime_minutes * kTicksPerMinute)),
        event);
  }

  void OnMachineFailure(MachineId machine) {
    core_.FailMachine(own_, machine, sim_.Now());
    const double downtime_minutes = SampleExponential(
        outage_rng_, 1.0 / parent_->options_.outages.mttr_minutes);
    sim::Event event;
    event.kind = static_cast<std::uint16_t>(EventKind::kMachineRepair);
    event.pool = own_;
    event.machine = machine;
    sim_.ScheduleAfter(
        std::max<Ticks>(
            1, static_cast<Ticks>(downtime_minutes * kTicksPerMinute)),
        event);
  }

  ShardedSimulation* parent_;
  PoolId own_;
  sim::Simulator sim_;
  ForcedOrderScheduler forced_sched_;
  HybridView hybrid_view_;
  PolicyAdapter policy_adapter_;
  sched::SchedulerCore core_;
  Rng outage_rng_;
  Gauge* pending_events_gauge_ = nullptr;
  Gauge* fired_events_gauge_ = nullptr;
  std::uint64_t event_hash_ = 14695981039346656037ull;  // FNV offset basis
  Ticks window_end_ = 0;
  std::vector<PendingHandoff> pending_handoffs_;
  std::vector<RestartHandoff> outbox_;
  std::uint64_t next_outbox_seq_ = 0;
};

// ---- HybridView ------------------------------------------------------------

Ticks ShardedSimulation::DomainSim::HybridView::Now() const {
  return domain_->sim_.Now();
}

std::size_t ShardedSimulation::DomainSim::HybridView::PoolCount() const {
  return domain_->parent_->snapshots_.size();
}

double ShardedSimulation::DomainSim::HybridView::PoolUtilization(
    PoolId pool) const {
  if (pool == domain_->own_) {
    return domain_->core_.pool(pool).Utilization();
  }
  const PoolSnap& snap = domain_->parent_->snapshots_[pool.value()];
  if (snap.total_cores == 0) return 0.0;
  return static_cast<double>(snap.busy_cores) /
         static_cast<double>(snap.total_cores);
}

std::size_t ShardedSimulation::DomainSim::HybridView::PoolQueueLength(
    PoolId pool) const {
  if (pool == domain_->own_) {
    return domain_->core_.pool(pool).QueueLength();
  }
  return domain_->parent_->snapshots_[pool.value()].queued;
}

std::int64_t ShardedSimulation::DomainSim::HybridView::PoolTotalCores(
    PoolId pool) const {
  // Capacity is immutable, so the snapshot is exact for the own pool too.
  return domain_->parent_->snapshots_[pool.value()].total_cores;
}

bool ShardedSimulation::DomainSim::HybridView::PoolEligible(
    PoolId pool, const workload::JobSpec& spec) const {
  // The oracle matches the pools' own capacity-only check bit for bit, so
  // one code path serves the own pool and every frozen remote one.
  return domain_->parent_->eligibility_.Eligible(pool, spec);
}

double ShardedSimulation::DomainSim::HybridView::ClusterUtilization() const {
  std::int64_t busy = 0;
  std::int64_t total = 0;
  const auto& snapshots = domain_->parent_->snapshots_;
  for (std::size_t p = 0; p < snapshots.size(); ++p) {
    const PoolId pool_id(static_cast<PoolId::ValueType>(p));
    if (pool_id == domain_->own_) {
      busy += domain_->core_.pool(pool_id).busy_cores();
    } else {
      busy += snapshots[p].busy_cores;
    }
    total += snapshots[p].total_cores;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(busy) / static_cast<double>(total);
}

std::size_t ShardedSimulation::DomainSim::HybridView::SuspendedJobCount()
    const {
  std::size_t suspended = 0;
  const auto& snapshots = domain_->parent_->snapshots_;
  for (std::size_t p = 0; p < snapshots.size(); ++p) {
    const PoolId pool_id(static_cast<PoolId::ValueType>(p));
    if (pool_id == domain_->own_) {
      suspended += domain_->core_.pool(pool_id).SuspendedCount();
    } else {
      suspended += snapshots[p].suspended;
    }
  }
  return suspended;
}

// ---- ShardedSimulation -----------------------------------------------------

ShardedSimulation::ShardedSimulation(const ClusterConfig& config,
                                     const workload::Trace& trace,
                                     InitialScheduler& router,
                                     const DomainPolicyFactory& policy_factory,
                                     SimulationOptions options)
    : options_(std::move(options)),
      router_(&router),
      trace_(&trace),
      eligibility_(config),
      total_jobs_(trace.size()) {
  const std::size_t pool_count = config.pools.size();
  NETBATCH_CHECK(pool_count > 0, "sharded simulation needs at least one pool");
  NETBATCH_CHECK(options_.shards >= 1,
                 "sharded simulation needs shards >= 1");

  // The effective transfer matrix: the configured one (or the scalar
  // restart_overhead broadcast), with every off-diagonal entry floored at
  // one tick. The floor is what gives the conservative sync window a
  // positive width — a restart decided inside a window can only land at a
  // later barrier — and what keeps every restart on the hand-off hook
  // (zero-overhead restarts would deliver inline, into an empty pool).
  std::vector<std::vector<Ticks>> matrix(
      pool_count, std::vector<Ticks>(pool_count, options_.restart_overhead));
  if (!options_.transfer_matrix.empty()) {
    NETBATCH_CHECK(options_.transfer_matrix.size() == pool_count,
                   "transfer matrix must have one row per pool");
    for (std::size_t f = 0; f < pool_count; ++f) {
      NETBATCH_CHECK(options_.transfer_matrix[f].size() == pool_count,
                     "transfer matrix must be square");
      matrix[f] = options_.transfer_matrix[f];
    }
  }
  sync_window_ = kNever;  // saturates for single-pool clusters
  for (std::size_t f = 0; f < pool_count; ++f) {
    for (std::size_t t = 0; t < pool_count; ++t) {
      if (f == t) continue;
      matrix[f][t] = std::max<Ticks>(1, matrix[f][t]);
      sync_window_ = std::min(sync_window_, matrix[f][t]);
    }
  }

  sched::CoreOptions core_options;
  core_options.restart_overhead = options_.restart_overhead;
  core_options.checkpoint_interval = options_.checkpoint_interval;
  core_options.transfer_matrix = matrix;
  core_options.dispatch_mode = options_.dispatch_mode;
  core_options.audit_on_transitions = options_.audit_on_transitions;

  snapshots_.assign(pool_count, PoolSnap{});
  policies_.reserve(pool_count);
  domains_.reserve(pool_count);
  const std::size_t reserve_jobs = trace.size() / pool_count + 16;
  for (std::size_t d = 0; d < pool_count; ++d) {
    const PoolId domain_id(static_cast<PoolId::ValueType>(d));
    ClusterConfig slice = config;
    for (std::size_t p = 0; p < pool_count; ++p) {
      if (p != d) slice.pools[p].machine_groups.clear();
    }
    std::unique_ptr<ReschedulingPolicy> policy = policy_factory(domain_id);
    NETBATCH_CHECK(policy != nullptr, "domain policy factory returned null");
    NETBATCH_CHECK(!policy->DuplicateInsteadOfRestart(),
                   "sharded simulation does not support duplication policies");
    policies_.push_back(std::move(policy));
    domains_.push_back(std::make_unique<DomainSim>(
        *this, domain_id, slice, core_options, *policies_.back(),
        DeriveSeed(options_.outages.seed,
                   "shard.pool" + std::to_string(d)),
        reserve_jobs));
  }
  RefreshSnapshots();
}

ShardedSimulation::~ShardedSimulation() = default;

void ShardedSimulation::AddObserver(SimulationObserver* observer) {
  observers_.push_back(observer);
}

void ShardedSimulation::Run() {
  if (options_.outages.mtbf_minutes > 0) {
    NETBATCH_CHECK(options_.outages.mttr_minutes > 0,
                   "outage repair time must be positive");
    for (auto& domain : domains_) domain->ScheduleInitialFailures();
  }
  const bool sampling = options_.sampling_enabled && !observers_.empty();
  if (sampling) {
    NETBATCH_CHECK(options_.sample_period > 0,
                   "sample period must be positive");
  }
  Ticks next_sample = sampling ? Ticks{0} : kNever;
  Ticks next_audit = options_.audit_period > 0 ? Ticks{0} : kNever;
  std::size_t next_submit = 0;
  std::vector<RestartHandoff> inbox;
  const unsigned threads = static_cast<unsigned>(std::min<std::size_t>(
      static_cast<std::size_t>(options_.shards), domains_.size()));
  std::unique_ptr<ThreadPool> workers =
      threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
  const auto jobs = trace_->jobs();

  for (;;) {
    if (Finished() && next_submit == trace_->size() && inbox.empty()) break;

    if (now_ == next_sample) {
      DoSample(now_);
      next_sample += options_.sample_period;
    }
    if (now_ == next_audit) {
      DoAudit();
      next_audit += options_.audit_period;
    }

    // The conservative horizon: nothing anywhere can happen before t_min,
    // and nothing decided after t_min can cross domains in under W ticks.
    Ticks t_min = kNever;
    for (auto& domain : domains_) {
      if (auto t = domain->NextEventTime()) t_min = std::min(t_min, *t);
    }
    if (next_submit < trace_->size()) {
      t_min = std::min(t_min, jobs[next_submit].submit_time);
    }
    for (const RestartHandoff& handoff : inbox) {
      t_min = std::min(t_min, handoff.deliver_time);
    }
    NETBATCH_CHECK(t_min != kNever,
                   "sharded simulation stalled with unfinished jobs");

    Ticks barrier = SaturatingAdd(t_min, sync_window_);
    barrier = std::min(barrier, next_sample);
    barrier = std::min(barrier, next_audit);
    NETBATCH_CHECK(barrier > now_, "sync window failed to advance the clock");

    // Route every submission landing inside this window. The router runs
    // here, single-threaded, against the barrier's aggregate snapshots — in
    // trace order, so its internal state (rotation cursors, RNG) advances
    // identically for every shard count.
    while (next_submit < trace_->size() &&
           jobs[next_submit].submit_time < barrier) {
      RouteSubmit(jobs[next_submit]);
      ++next_submit;
    }

    // Deliver cross-domain restarts due inside this window, in the global
    // (deliver_time, src_domain, src_seq) order. All of them were sent at
    // least W ticks before their delivery, i.e. strictly before an earlier
    // barrier — every domain already reached its send time.
    if (!inbox.empty()) {
      std::sort(inbox.begin(), inbox.end(),
                [](const RestartHandoff& a, const RestartHandoff& b) {
                  return std::tie(a.deliver_time, a.src_domain, a.src_seq) <
                         std::tie(b.deliver_time, b.src_domain, b.src_seq);
                });
      std::size_t delivered = 0;
      while (delivered < inbox.size() &&
             inbox[delivered].deliver_time < barrier) {
        const RestartHandoff& handoff = inbox[delivered];
        domains_[handoff.target.value()]->ReceiveHandoff(handoff);
        ++delivered;
      }
      inbox.erase(inbox.begin(),
                  inbox.begin() + static_cast<std::ptrdiff_t>(delivered));
    }

    const Ticks reached = RunWindows(barrier, workers.get(), threads);

    for (auto& domain : domains_) domain->DrainOutbox(inbox);
    RefreshSnapshots();
    // An uncapped barrier (single pool, no sampling or audits) means the
    // window ran everything; land the clock on the last fired event.
    now_ = barrier == kNever ? std::max(now_, reached) : barrier;
  }

  NETBATCH_CHECK(completed_count() + rejected_count() == total_jobs_,
                 "sharded simulation ended with unfinished jobs");
  // Leave the gauges describing the end-of-run state even when no sampler
  // ran, mirroring the single-domain engine.
  for (auto& domain : domains_) domain->SampleGauges(now_);
}

bool ShardedSimulation::Finished() const {
  return completed_count() + rejected_count() == total_jobs_;
}

void ShardedSimulation::RouteSubmit(const workload::JobSpec& spec) {
  const std::vector<PoolId> order = router_->PoolOrder(spec, *this);
  PoolId chosen;
  // Mirror the dispatch passes the virtual pool manager would run, against
  // the snapshots: prefer a pool with free aggregate cores, else the first
  // that could ever fit the job. The landing pool re-runs its own passes
  // live at submit time, so a stale snapshot costs placement quality (the
  // paper's decentralized-knowledge trade-off), never correctness.
  if (options_.dispatch_mode == DispatchMode::kPreferImmediateStart) {
    for (const PoolId pool : order) {
      if (!eligibility_.Eligible(pool, spec)) continue;
      const PoolSnap& snap = snapshots_[pool.value()];
      if (snap.busy_cores + spec.cores <= snap.total_cores) {
        chosen = pool;
        break;
      }
    }
  }
  if (!chosen.valid()) {
    for (const PoolId pool : order) {
      if (eligibility_.Eligible(pool, spec)) {
        chosen = pool;
        break;
      }
    }
  }
  PoolId landing = chosen;
  if (!landing.valid()) {
    // No pool can ever run this job: park it in its first candidate domain
    // (any domain works) with the invalid sentinel, which forces an empty
    // offer order and the core's ordinary reject accounting.
    landing = spec.candidate_pools.empty() ? PoolId(0)
                                           : spec.candidate_pools.front();
  }
  domains_[landing.value()]->AdmitAndScheduleSubmit(spec, chosen);
}

Ticks ShardedSimulation::RunWindows(Ticks barrier, ThreadPool* workers,
                                    unsigned threads) {
  if (workers == nullptr || threads <= 1) {
    for (auto& domain : domains_) domain->RunWindow(barrier);
  } else {
    for (unsigned s = 0; s < threads; ++s) {
      workers->Submit([this, barrier, s, threads] {
        for (std::size_t d = s; d < domains_.size(); d += threads) {
          domains_[d]->RunWindow(barrier);
        }
      });
    }
    workers->Wait();
  }
  Ticks reached = 0;
  for (auto& domain : domains_) {
    reached = std::max(reached, domain->window_end());
  }
  return reached;
}

void ShardedSimulation::RefreshSnapshots() {
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    snapshots_[d] = domains_[d]->Snap();
  }
}

void ShardedSimulation::DoSample(Ticks now) {
  for (auto& domain : domains_) domain->SampleGauges(now);
  for (SimulationObserver* observer : observers_) {
    observer->OnSample(now, *this);
  }
}

void ShardedSimulation::DoAudit() {
  for (auto& domain : domains_) domain->Audit(now_);
  NETBATCH_CHECK(completed_count() + rejected_count() <= total_jobs_,
                 "terminal counters exceed total trace jobs");
}

// ---- results ----------------------------------------------------------------

std::size_t ShardedSimulation::completed_count() const {
  std::size_t total = 0;
  for (const auto& domain : domains_) total += domain->core().completed_count();
  return total;
}

std::size_t ShardedSimulation::rejected_count() const {
  std::size_t total = 0;
  for (const auto& domain : domains_) total += domain->core().rejected_count();
  return total;
}

std::uint64_t ShardedSimulation::preemption_count() const {
  std::uint64_t total = 0;
  for (const auto& domain : domains_) {
    total += domain->core().preemption_count();
  }
  return total;
}

std::uint64_t ShardedSimulation::reschedule_count() const {
  std::uint64_t total = 0;
  for (const auto& domain : domains_) {
    total += domain->core().reschedule_count();
  }
  return total;
}

std::uint64_t ShardedSimulation::outage_count() const {
  std::uint64_t total = 0;
  for (const auto& domain : domains_) total += domain->core().outage_count();
  return total;
}

std::uint64_t ShardedSimulation::eviction_count() const {
  std::uint64_t total = 0;
  for (const auto& domain : domains_) total += domain->core().eviction_count();
  return total;
}

std::uint64_t ShardedSimulation::TotalFiredEvents() const {
  std::uint64_t total = 0;
  for (const auto& domain : domains_) total += domain->fired_events();
  return total;
}

CounterSnapshot ShardedSimulation::MergedCounters() const {
  CounterSnapshot merged;
  for (const auto& domain : domains_) {
    MergeCounterSnapshots(merged, domain->core().counters().TakeSnapshot());
  }
  return merged;
}

std::size_t ShardedSimulation::DomainCount() const { return domains_.size(); }

const JobTable& ShardedSimulation::domain_jobs(std::size_t domain) const {
  return domains_[domain]->core().jobs();
}

std::uint64_t ShardedSimulation::domain_event_hash(std::size_t domain) const {
  return domains_[domain]->event_hash();
}

std::uint64_t ShardedSimulation::domain_fired_events(
    std::size_t domain) const {
  return domains_[domain]->fired_events();
}

void ShardedSimulation::CheckInvariants() const {
  for (const auto& domain : domains_) domain->core().CheckInvariants();
  NETBATCH_CHECK(completed_count() + rejected_count() <= total_jobs_,
                 "terminal counters exceed total trace jobs");
}

// ---- aggregate ClusterView --------------------------------------------------

double ShardedSimulation::PoolUtilization(PoolId pool) const {
  const PoolSnap& snap = snapshots_[pool.value()];
  if (snap.total_cores == 0) return 0.0;
  return static_cast<double>(snap.busy_cores) /
         static_cast<double>(snap.total_cores);
}

std::size_t ShardedSimulation::PoolQueueLength(PoolId pool) const {
  return snapshots_[pool.value()].queued;
}

std::int64_t ShardedSimulation::PoolTotalCores(PoolId pool) const {
  return snapshots_[pool.value()].total_cores;
}

double ShardedSimulation::ClusterUtilization() const {
  std::int64_t busy = 0;
  std::int64_t total = 0;
  for (const PoolSnap& snap : snapshots_) {
    busy += snap.busy_cores;
    total += snap.total_cores;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(busy) / static_cast<double>(total);
}

std::size_t ShardedSimulation::SuspendedJobCount() const {
  std::size_t suspended = 0;
  for (const PoolSnap& snap : snapshots_) suspended += snap.suspended;
  return suspended;
}

std::size_t ShardedSimulation::PendingEventCount() const {
  std::size_t pending = 0;
  for (const auto& domain : domains_) pending += domain->pending_events();
  return pending;
}

std::uint64_t ShardedSimulation::FiredEventCount() const {
  return TotalFiredEvents();
}

}  // namespace netbatch::cluster

// The sharded intra-run simulation engine (opt-in, SimulationOptions::shards).
//
// Partitions the cluster per pool: every pool becomes a *domain* owning its
// own event heap (sim::Simulator) and its own SchedulerCore over a cluster
// slice — the full pool list with every remote pool's machine groups
// emptied, so global pool ids (job.pool(), transfer-matrix indices,
// candidate-pool checks) keep meaning without translation. Domains advance
// in bulk-synchronous windows under a conservative sync bound derived from
// the minimum cross-pool transfer latency: within a window no domain can
// affect another, so windows run in parallel across `shards` worker threads
// and the result is bit-identical for every shard count (the only cross-
// domain traffic — submission routing and rescheduling restarts — is
// applied single-threaded at barriers, in a deterministic (time, source,
// sequence) order).
//
// Cross-domain interactions:
//   * submission routing — a barrier-time router (the configured
//     InitialScheduler) picks each job's landing pool against the barrier's
//     aggregate pool snapshots; the submit event is inserted into the
//     landing domain at the job's exact submit time, so landing-side
//     accounting (wait time, jobs.submitted) is identical to a
//     single-domain run. Jobs no pool could ever fit are routed to their
//     first candidate domain with an empty forced order, which drives the
//     core's ordinary reject bookkeeping.
//   * rescheduling restarts — always cross-pool by construction; the
//     losing domain captures the job's column image, erases it, and ships a
//     typed message that the owning domain re-materializes at the restart's
//     delivery time. The effective transfer matrix floors every off-
//     diagonal entry at one tick, which is what makes the sync window
//     positive (and delivery always land in a *later* window).
//
// Intra-window policy decisions see a hybrid view: the domain's own pool
// live, remote pools frozen at the last barrier — the paper's §3.2.2
// observation ("knowing the current situation in every physical pool at any
// time ... can be impractical") made literal.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/config.h"
#include "cluster/interfaces.h"
#include "cluster/job_table.h"
#include "cluster/simulation.h"
#include "common/counters.h"
#include "workload/trace.h"

namespace netbatch {
class ThreadPool;
}

namespace netbatch::cluster {

// Immutable per-pool machine-shape table answering "could some machine in
// pool P ever run this demand?" without touching any domain's live state.
// Mirrors PhysicalPool::HasEligibleMachine's capacity-only predicate
// (CapacityClassIndex::AnyEligible with require_online = false) exactly:
// both reduce to "any machine shape with cores and memory at or above the
// demand", so router decisions and in-pool step-0 checks can never
// disagree.
class StaticEligibility {
 public:
  explicit StaticEligibility(const ClusterConfig& config);

  bool Eligible(PoolId pool, const workload::JobSpec& spec) const;

 private:
  struct Shape {
    std::int32_t cores = 0;
    std::int64_t memory_mb = 0;
  };
  std::vector<std::vector<Shape>> shapes_;  // per pool, groups with count > 0
};

class ShardedSimulation final : public ClusterView {
 public:
  // Builds the rescheduling policy of one domain. Invoked once per pool at
  // construction; implementations needing randomness must seed from a
  // per-domain substream so results stay independent of the shard count.
  using DomainPolicyFactory =
      std::function<std::unique_ptr<ReschedulingPolicy>(PoolId domain)>;

  // `router` is consulted single-threaded at barriers for landing-pool
  // decisions and must outlive the simulation, as must the policies the
  // factory returns (the simulation keeps them alive itself).
  // options.shards >= 1 selects the worker-thread count; results are
  // identical for every value. Policies with DuplicateInsteadOfRestart are
  // rejected — twin races would span domains.
  ShardedSimulation(const ClusterConfig& config, const workload::Trace& trace,
                    InitialScheduler& router,
                    const DomainPolicyFactory& policy_factory,
                    SimulationOptions options);
  ~ShardedSimulation();

  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  // Observers see OnSample only (fired at sampling barriers with this
  // aggregate view); per-transition hooks would race across domains. Call
  // before Run(); observers must outlive the simulation.
  void AddObserver(SimulationObserver* observer);

  // Replays the whole trace until every job completed or was rejected.
  void Run();

  // --- results (summed across domains) -------------------------------------
  std::size_t completed_count() const;
  std::size_t rejected_count() const;
  std::uint64_t preemption_count() const;
  std::uint64_t reschedule_count() const;
  std::uint64_t outage_count() const;
  std::uint64_t eviction_count() const;
  std::uint64_t TotalFiredEvents() const;

  // Counter registries folded across domains with the shared per-gauge
  // merge policy (counters add, watermark gauges max).
  CounterSnapshot MergedCounters() const;

  std::size_t DomainCount() const;
  // Domain d's job table. Handed-off jobs leave stale reclaimed slots
  // behind; walk with the id-reverse-lookup filter (see
  // MetricsCollector::BuildReport's sharded overload).
  const JobTable& domain_jobs(std::size_t domain) const;
  // Order-sensitive FNV-1a digest of every event domain d dispatched
  // (time, kind, job, pool, machine, stamp) — the determinism torture
  // test's fingerprint.
  std::uint64_t domain_event_hash(std::size_t domain) const;
  std::uint64_t domain_fired_events(std::size_t domain) const;

  // The conservative sync window W: barriers advance to at most
  // min(next event) + W. Equals the minimum effective cross-pool transfer
  // latency (>= 1 tick by construction).
  Ticks sync_window() const { return sync_window_; }

  // Audits every domain core plus the cross-domain trace-total bound;
  // aborts on the first violation.
  void CheckInvariants() const;

  // --- ClusterView (the barrier-time aggregate view) ------------------------
  Ticks Now() const override { return now_; }
  std::size_t PoolCount() const override { return snapshots_.size(); }
  double PoolUtilization(PoolId pool) const override;
  std::size_t PoolQueueLength(PoolId pool) const override;
  std::int64_t PoolTotalCores(PoolId pool) const override;
  bool PoolEligible(PoolId pool,
                    const workload::JobSpec& spec) const override {
    return eligibility_.Eligible(pool, spec);
  }
  double ClusterUtilization() const override;
  std::size_t SuspendedJobCount() const override;
  std::size_t PendingEventCount() const override;
  std::uint64_t FiredEventCount() const override;

 private:
  class DomainSim;

  // Last-barrier state of one pool, read lock-free by every domain during a
  // window (refreshed only between windows, single-threaded).
  struct PoolSnap {
    std::int64_t busy_cores = 0;
    std::int64_t total_cores = 0;
    std::uint64_t queued = 0;
    std::uint64_t suspended = 0;
  };

  // A rescheduling restart crossing domains: the job's spec + column image,
  // re-materialized by the target domain at `deliver_time`. (src_domain,
  // src_seq) break delivery ties deterministically.
  struct RestartHandoff {
    Ticks deliver_time = 0;
    PoolId target;
    std::uint32_t src_domain = 0;
    std::uint64_t src_seq = 0;
    workload::JobSpec spec;
    JobArena::RestoreImage image;
  };

  bool Finished() const;
  void RouteSubmit(const workload::JobSpec& spec);
  // Runs every domain up to (exclusive) `barrier`; returns the latest clock
  // any domain actually reached (used for the final, uncapped window).
  Ticks RunWindows(Ticks barrier, ThreadPool* workers, unsigned threads);
  void RefreshSnapshots();
  void DoSample(Ticks now);
  void DoAudit();

  SimulationOptions options_;
  InitialScheduler* router_;
  const workload::Trace* trace_;
  StaticEligibility eligibility_;
  Ticks sync_window_ = 1;
  std::size_t total_jobs_ = 0;
  Ticks now_ = 0;

  std::vector<std::unique_ptr<ReschedulingPolicy>> policies_;
  std::vector<std::unique_ptr<DomainSim>> domains_;
  std::vector<PoolSnap> snapshots_;
  std::vector<SimulationObserver*> observers_;
};

}  // namespace netbatch::cluster

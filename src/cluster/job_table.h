// Storage for all job runtime objects in a simulation.
//
// Jobs live in a deque so references stay stable as jobs are added (the
// duplication extension creates clone jobs mid-run). Lookup is a dense
// JobId -> slot vector for ordinary (small, near-contiguous) ids — one
// indexed load on the event-dispatch hot path — with a hash-map fallback
// for traces that use sparse ids beyond the dense cap.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "cluster/job.h"

namespace netbatch::cluster {

class JobTable {
 public:
  Job& Create(workload::JobSpec spec) {
    const JobId id = spec.id;
    const JobId::ValueType v = id.value();
    if (v < kDenseCap) {
      if (v >= dense_.size()) dense_.resize(v + 1, kNoSlot);
      NETBATCH_CHECK(dense_[v] == kNoSlot, "duplicate job id");
      dense_[v] = static_cast<std::uint32_t>(jobs_.size());
    } else {
      NETBATCH_CHECK(!sparse_.contains(id), "duplicate job id");
      sparse_.emplace(id, jobs_.size());
    }
    jobs_.emplace_back(std::move(spec));
    return jobs_.back();
  }

  Job& at(JobId id) {
    const JobId::ValueType v = id.value();
    if (v < dense_.size()) {
      const std::uint32_t slot = dense_[v];
      NETBATCH_CHECK(slot != kNoSlot, "unknown job id");
      return jobs_[slot];
    }
    return jobs_[SparseSlot(id)];
  }
  const Job& at(JobId id) const {
    const JobId::ValueType v = id.value();
    if (v < dense_.size()) {
      const std::uint32_t slot = dense_[v];
      NETBATCH_CHECK(slot != kNoSlot, "unknown job id");
      return jobs_[slot];
    }
    return jobs_[SparseSlot(id)];
  }

  // Whether `id` names a job in this table. The serving layer uses this to
  // turn bad client ids into error responses instead of at()'s abort.
  bool Contains(JobId id) const {
    const JobId::ValueType v = id.value();
    if (v < kDenseCap) return v < dense_.size() && dense_[v] != kNoSlot;
    return sparse_.contains(id);
  }

  // Pre-sizes the id index for `n` jobs with ids 0..n-1 (the common trace
  // shape) so neither the dense vector nor the fallback map reallocates
  // mid-run. Safe to call with jobs already present.
  void Reserve(std::size_t n) {
    if (n < kDenseCap && n > dense_.size()) dense_.resize(n, kNoSlot);
  }

  std::size_t size() const { return jobs_.size(); }
  auto begin() const { return jobs_.begin(); }
  auto end() const { return jobs_.end(); }

 private:
  // Ids below this resolve through the dense vector (worst case 16 MiB of
  // index); anything above falls back to the hash map.
  static constexpr JobId::ValueType kDenseCap = 1u << 22;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  std::size_t SparseSlot(JobId id) const {
    const auto it = sparse_.find(id);
    NETBATCH_CHECK(it != sparse_.end(), "unknown job id");
    return it->second;
  }

  std::deque<Job> jobs_;
  std::vector<std::uint32_t> dense_;  // id.value() -> slot, kNoSlot if absent
  std::unordered_map<JobId, std::size_t> sparse_;  // ids >= kDenseCap
};

}  // namespace netbatch::cluster

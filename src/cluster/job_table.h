// Storage for all job runtime objects in a simulation.
//
// Jobs live in a deque so references stay stable as jobs are added (the
// duplication extension creates clone jobs mid-run). Lookup is a dense
// JobId -> slot vector for ordinary (small, near-contiguous) ids — one
// indexed load on the event-dispatch hot path — with a hash-map fallback
// for traces that use sparse ids beyond the dense cap.
//
// Reclamation (daemon path only): a simulation retains every job until the
// run ends — metrics walk the full table — but a long-running daemon must
// reclaim terminal jobs or grow without bound. EnableReclamation() turns on
// guarded slot reuse: Erase(id) frees the id's index entry and parks the
// slot on a free list; the next Create reuses it, seeding the new job's
// generation above every stamp the old occupant handed out so stale timers
// can never match the reused slot. The simulator never enables this, so
// sweep artifacts are untouched. With reclamation on, iteration may still
// visit erased-but-not-yet-reused slots (stale terminal jobs); the
// cluster-wide terminal-ledger audit is skipped in that mode.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "cluster/job.h"

namespace netbatch::cluster {

class JobTable {
 public:
  Job& Create(workload::JobSpec spec) {
    const JobId id = spec.id;
    if (reclaim_enabled_ && !free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      Job& reused = jobs_[slot];
      const std::uint64_t generation_floor = reused.generation() + 1;
      reused = Job(std::move(spec));
      reused.EnsureGenerationAtLeast(generation_floor);
      IndexSlot(id, slot);
      return reused;
    }
    IndexSlot(id, static_cast<std::uint32_t>(jobs_.size()));
    jobs_.emplace_back(std::move(spec));
    return jobs_.back();
  }

  Job& at(JobId id) {
    const JobId::ValueType v = id.value();
    if (v < dense_.size()) {
      const std::uint32_t slot = dense_[v];
      NETBATCH_CHECK(slot != kNoSlot, "unknown job id");
      return jobs_[slot];
    }
    return jobs_[SparseSlot(id)];
  }
  const Job& at(JobId id) const {
    const JobId::ValueType v = id.value();
    if (v < dense_.size()) {
      const std::uint32_t slot = dense_[v];
      NETBATCH_CHECK(slot != kNoSlot, "unknown job id");
      return jobs_[slot];
    }
    return jobs_[SparseSlot(id)];
  }

  // Whether `id` names a job in this table. The serving layer uses this to
  // turn bad client ids into error responses instead of at()'s abort.
  bool Contains(JobId id) const {
    const JobId::ValueType v = id.value();
    if (v < kDenseCap) return v < dense_.size() && dense_[v] != kNoSlot;
    return sparse_.contains(id);
  }

  // Pre-sizes the id index for `n` jobs with ids 0..n-1 (the common trace
  // shape) so neither the dense vector nor the fallback map reallocates
  // mid-run. Safe to call with jobs already present.
  void Reserve(std::size_t n) {
    if (n < kDenseCap && n > dense_.size()) dense_.resize(n, kNoSlot);
  }

  // --- reclamation (daemon path only; see file comment) ---------------------

  void EnableReclamation() { reclaim_enabled_ = true; }
  bool reclaim_enabled() const { return reclaim_enabled_; }

  // Frees `id`'s slot for reuse by a later Create. The Job object stays
  // constructed (references from the current dispatch remain valid) until
  // the slot is actually reused; callers must only erase terminal jobs
  // after the dispatch that retired them has fully unwound.
  void Erase(JobId id) {
    NETBATCH_CHECK(reclaim_enabled_, "Erase without EnableReclamation");
    std::uint32_t slot = kNoSlot;
    const JobId::ValueType v = id.value();
    if (v < dense_.size()) {
      slot = dense_[v];
      NETBATCH_CHECK(slot != kNoSlot, "erasing unknown job id");
      dense_[v] = kNoSlot;
    } else {
      slot = static_cast<std::uint32_t>(SparseSlot(id));
      sparse_.erase(id);
    }
    free_slots_.push_back(slot);
    ++reclaimed_count_;
  }

  // Jobs currently reachable by id (size() minus free slots).
  std::size_t live_size() const { return jobs_.size() - free_slots_.size(); }
  std::uint64_t reclaimed_count() const { return reclaimed_count_; }

  std::size_t size() const { return jobs_.size(); }
  auto begin() const { return jobs_.begin(); }
  auto end() const { return jobs_.end(); }

 private:
  // Ids below this resolve through the dense vector (worst case 16 MiB of
  // index); anything above falls back to the hash map.
  static constexpr JobId::ValueType kDenseCap = 1u << 22;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  void IndexSlot(JobId id, std::uint32_t slot) {
    const JobId::ValueType v = id.value();
    if (v < kDenseCap) {
      if (v >= dense_.size()) dense_.resize(v + 1, kNoSlot);
      NETBATCH_CHECK(dense_[v] == kNoSlot, "duplicate job id");
      dense_[v] = slot;
    } else {
      NETBATCH_CHECK(!sparse_.contains(id), "duplicate job id");
      sparse_.emplace(id, slot);
    }
  }

  std::size_t SparseSlot(JobId id) const {
    const auto it = sparse_.find(id);
    NETBATCH_CHECK(it != sparse_.end(), "unknown job id");
    return it->second;
  }

  std::deque<Job> jobs_;
  std::vector<std::uint32_t> dense_;  // id.value() -> slot, kNoSlot if absent
  std::unordered_map<JobId, std::size_t> sparse_;  // ids >= kDenseCap
  bool reclaim_enabled_ = false;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t reclaimed_count_ = 0;
};

}  // namespace netbatch::cluster

// Storage for all job runtime objects in a simulation.
//
// Jobs live in a deque so references stay stable as jobs are added (the
// duplication extension creates clone jobs mid-run).
#pragma once

#include <deque>
#include <unordered_map>

#include "common/check.h"
#include "cluster/job.h"

namespace netbatch::cluster {

class JobTable {
 public:
  Job& Create(workload::JobSpec spec) {
    const JobId id = spec.id;
    NETBATCH_CHECK(!index_.contains(id), "duplicate job id");
    jobs_.emplace_back(std::move(spec));
    index_.emplace(id, jobs_.size() - 1);
    return jobs_.back();
  }

  Job& at(JobId id) {
    const auto it = index_.find(id);
    NETBATCH_CHECK(it != index_.end(), "unknown job id");
    return jobs_[it->second];
  }
  const Job& at(JobId id) const {
    const auto it = index_.find(id);
    NETBATCH_CHECK(it != index_.end(), "unknown job id");
    return jobs_[it->second];
  }

  std::size_t size() const { return jobs_.size(); }
  auto begin() const { return jobs_.begin(); }
  auto end() const { return jobs_.end(); }

 private:
  std::deque<Job> jobs_;
  std::unordered_map<JobId, std::size_t> index_;
};

}  // namespace netbatch::cluster

// Storage for all job runtime objects in a simulation.
//
// The storage itself is the struct-of-arrays JobArena (see cluster/job.h):
// parallel columns indexed by dense slots, a dense/sparse id index, and the
// guarded reclamation free-list the daemon path uses. This header keeps the
// historical JobTable name for the many call sites that predate the arena.
#pragma once

#include "cluster/job.h"

namespace netbatch::cluster {

using JobTable = JobArena;

}  // namespace netbatch::cluster

#include "cluster/placement_index.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "cluster/machine.h"
#include "common/check.h"

namespace netbatch::cluster {
namespace {

constexpr std::int64_t kNoMemory = -1;

}  // namespace

void FreeCapacityIndex::Rebuild(const MachineArena& machines) {
  std::int32_t max_cores = 0;
  for (const Machine& machine : machines) {
    max_cores = std::max(max_cores, machine.cores_total());
  }
  words_ = (machines.size() + 63) / 64;
  by_cores_.assign(static_cast<std::size_t>(max_cores) + 1, Bucket{});
  for (Bucket& bucket : by_cores_) {
    bucket.bits.assign(words_, 0);
    bucket.word_max_memory.assign(words_, kNoMemory);
  }
  entries_.assign(machines.size(), Entry{});
  for (const Machine& machine : machines) {
    NETBATCH_CHECK(machine.id().value() < machines.size(),
                   "machine id out of index range");
    Update(machine);
  }
}

void FreeCapacityIndex::Remove(MachineId::ValueType id) {
  Entry& entry = entries_[id];
  if (!entry.present) return;
  Bucket& bucket = by_cores_[static_cast<std::size_t>(entry.cores_free)];
  const std::size_t word = id / 64;
  const std::uint64_t bit = std::uint64_t{1} << (id % 64);
  NETBATCH_CHECK((bucket.bits[word] & bit) != 0, "index bucket missing entry");
  bucket.bits[word] &= ~bit;
  --bucket.count;
  if (entry.memory_free_mb == bucket.word_max_memory[word]) {
    // The departing machine may have carried the word's max; recompute
    // from the <= 63 remaining members.
    std::int64_t max = kNoMemory;
    for (std::uint64_t rest = bucket.bits[word]; rest != 0; rest &= rest - 1) {
      const MachineId::ValueType other =
          static_cast<MachineId::ValueType>(word * 64) +
          static_cast<MachineId::ValueType>(std::countr_zero(rest));
      max = std::max(max, entries_[other].memory_free_mb);
    }
    bucket.word_max_memory[word] = max;
  }
  entry.present = false;
}

void FreeCapacityIndex::Insert(MachineId::ValueType id,
                               std::int32_t cores_free,
                               std::int64_t memory_free_mb) {
  Bucket& bucket = by_cores_[static_cast<std::size_t>(cores_free)];
  const std::size_t word = id / 64;
  bucket.bits[word] |= std::uint64_t{1} << (id % 64);
  ++bucket.count;
  bucket.word_max_memory[word] =
      std::max(bucket.word_max_memory[word], memory_free_mb);
  entries_[id] = Entry{true, cores_free, memory_free_mb};
}

void FreeCapacityIndex::Update(const Machine& machine) {
  const MachineId::ValueType id = machine.id().value();
  NETBATCH_CHECK(id < entries_.size(), "machine id out of index range");
  const Entry& entry = entries_[id];
  if (entry.present && machine.online() &&
      entry.cores_free == machine.cores_free() &&
      entry.memory_free_mb == machine.memory_free_mb()) {
    return;
  }
  Remove(id);
  if (machine.online()) {
    Insert(id, machine.cores_free(), machine.memory_free_mb());
  }
}

MachineId FreeCapacityIndex::FirstFit(std::int32_t cores,
                                      std::int64_t memory_mb) const {
  if (static_cast<std::size_t>(cores) >= by_cores_.size()) return MachineId();
  MachineId::ValueType best = std::numeric_limits<MachineId::ValueType>::max();
  std::size_t best_word = words_;  // words at/after this cannot improve
  for (std::size_t c = static_cast<std::size_t>(std::max(cores, 0));
       c < by_cores_.size(); ++c) {
    const Bucket& bucket = by_cores_[c];
    if (bucket.count == 0) continue;
    for (std::size_t word = 0; word <= best_word && word < words_; ++word) {
      if (bucket.word_max_memory[word] < memory_mb) continue;
      for (std::uint64_t rest = bucket.bits[word]; rest != 0;
           rest &= rest - 1) {
        const MachineId::ValueType id =
            static_cast<MachineId::ValueType>(word * 64) +
            static_cast<MachineId::ValueType>(std::countr_zero(rest));
        if (id >= best) break;
        if (entries_[id].memory_free_mb >= memory_mb) {
          best = id;
          best_word = word;
          break;
        }
      }
      break;  // only the first qualifying word can beat `best` in id order
    }
  }
  return best == std::numeric_limits<MachineId::ValueType>::max()
             ? MachineId()
             : MachineId(best);
}

void FreeCapacityIndex::Audit(
    const MachineArena& machines,
    const std::function<void(MachineId, const char*)>& report) const {
  if (entries_.size() != machines.size()) {
    report(MachineId(), "free-capacity index sized for wrong machine count");
    return;
  }
  std::size_t indexed = 0;
  for (const Machine& machine : machines) {
    const MachineId::ValueType id = machine.id().value();
    const Entry& entry = entries_[id];
    if (entry.present != machine.online()) {
      report(machine.id(),
             "free-capacity index presence disagrees with online state");
      continue;
    }
    if (!entry.present) continue;
    ++indexed;
    if (entry.cores_free != machine.cores_free() ||
        entry.memory_free_mb != machine.memory_free_mb()) {
      report(machine.id(), "free-capacity index entry is stale");
      continue;
    }
    const Bucket& bucket = by_cores_[static_cast<std::size_t>(entry.cores_free)];
    if ((bucket.bits[id / 64] & (std::uint64_t{1} << (id % 64))) == 0) {
      report(machine.id(), "free-capacity index bucket missing machine");
    }
  }
  std::size_t bucketed = 0;
  for (const Bucket& bucket : by_cores_) {
    std::size_t members = 0;
    for (std::size_t word = 0; word < words_; ++word) {
      members += static_cast<std::size_t>(std::popcount(bucket.bits[word]));
      // Word summary must equal the true max free memory of its members.
      std::int64_t max = kNoMemory;
      for (std::uint64_t rest = bucket.bits[word]; rest != 0;
           rest &= rest - 1) {
        const MachineId::ValueType id =
            static_cast<MachineId::ValueType>(word * 64) +
            static_cast<MachineId::ValueType>(std::countr_zero(rest));
        max = std::max(max, entries_[id].memory_free_mb);
      }
      if (max != bucket.word_max_memory[word]) {
        report(MachineId(), "free-capacity bucket memory summary out of sync");
      }
    }
    if (members != bucket.count) {
      report(MachineId(), "free-capacity bucket count out of sync");
    }
    bucketed += members;
  }
  if (bucketed != indexed) {
    report(MachineId(), "free-capacity index holds stray machines");
  }
}

void CapacityClassIndex::Rebuild(const MachineArena& machines) {
  classes_.clear();
  for (const Machine& machine : machines) {
    Class* found = nullptr;
    for (Class& cls : classes_) {
      if (cls.cores_total == machine.cores_total() &&
          cls.memory_total_mb == machine.memory_total_mb()) {
        found = &cls;
        break;
      }
    }
    if (found == nullptr) {
      classes_.push_back(Class{machine.cores_total(),
                               machine.memory_total_mb(), 0, 0});
      found = &classes_.back();
    }
    ++found->machines;
    if (machine.online()) ++found->online;
  }
  // Memoize the eligibility structure once: keep only Pareto-maximal
  // shapes, cores ascending / memory strictly descending.
  frontier_.clear();
  for (const Class& cls : classes_) {
    frontier_.emplace_back(cls.cores_total, cls.memory_total_mb);
  }
  std::sort(frontier_.begin(), frontier_.end());
  std::vector<std::pair<std::int32_t, std::int64_t>> pareto;
  for (auto it = frontier_.rbegin(); it != frontier_.rend(); ++it) {
    if (pareto.empty() || it->second > pareto.back().second) {
      pareto.push_back(*it);
    }
  }
  std::reverse(pareto.begin(), pareto.end());
  frontier_ = std::move(pareto);
}

void CapacityClassIndex::OnOnlineChanged(const Machine& machine,
                                         bool now_online) {
  for (Class& cls : classes_) {
    if (cls.cores_total == machine.cores_total() &&
        cls.memory_total_mb == machine.memory_total_mb()) {
      cls.online += now_online ? 1 : -1;
      NETBATCH_CHECK(cls.online >= 0 && cls.online <= cls.machines,
                     "capacity class online count out of range");
      return;
    }
  }
  NETBATCH_CHECK(false, "machine belongs to no capacity class");
}

bool CapacityClassIndex::AnyEligible(std::int32_t cores,
                                     std::int64_t memory_mb,
                                     bool require_online) const {
  if (require_online) {
    // Not frontier-answerable (online counts change), but the class list
    // is tiny.
    for (const Class& cls : classes_) {
      if (cls.online > 0 && cls.cores_total >= cores &&
          cls.memory_total_mb >= memory_mb) {
        return true;
      }
    }
    return false;
  }
  // First frontier shape with enough cores has the most memory of any
  // shape with enough cores.
  for (const auto& [frontier_cores, frontier_memory] : frontier_) {
    if (frontier_cores >= cores) return frontier_memory >= memory_mb;
  }
  return false;
}

void CapacityClassIndex::Audit(
    const MachineArena& machines,
    const std::function<void(const char*)>& report) const {
  std::int64_t total = 0;
  std::int64_t online = 0;
  for (const Class& cls : classes_) {
    total += cls.machines;
    online += cls.online;
  }
  std::int64_t actual_online = 0;
  for (const Machine& machine : machines) {
    if (machine.online()) ++actual_online;
  }
  if (total != static_cast<std::int64_t>(machines.size())) {
    report("capacity classes cover wrong machine count");
  }
  if (online != actual_online) {
    report("capacity class online counts out of sync");
  }
  // The frontier must answer exactly like a scan over the classes.
  for (const Class& cls : classes_) {
    bool frontier_says = false;
    for (const auto& [frontier_cores, frontier_memory] : frontier_) {
      if (frontier_cores >= cls.cores_total) {
        frontier_says = frontier_memory >= cls.memory_total_mb;
        break;
      }
    }
    if (!frontier_says) {
      report("capacity frontier disagrees with class list");
    }
  }
}

}  // namespace netbatch::cluster

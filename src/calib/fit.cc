#include "calib/fit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <sstream>
#include <tuple>

#include "common/check.h"
#include "common/table.h"

namespace netbatch::calib {
namespace {

using workload::BurstStreamConfig;
using workload::GeneratorConfig;
using workload::JobSpec;
using workload::RuntimeModel;
using workload::Trace;

// Interpolated empirical quantile of a sorted sample, q in [0, 1].
double Quantile(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double FractionAbove(const std::vector<double>& sorted, double x) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(sorted.end() - it) /
         static_cast<double>(sorted.size());
}

// z such that Phi(z) = 0.75; the interquartile spread of log-samples is
// 2 * z75 * sigma for a lognormal body.
constexpr double kZ75 = 0.6744897501960817;
// The generator starts tail draws at the body's p95 (exp(mu + 1.65 sigma));
// this is the body mass that naturally sits above that split point.
const double kBodyMassAboveTail = 0.5 * std::erfc(1.65 / std::numbers::sqrt2);

// Bounded-Pareto shape by maximum likelihood over exceedances of `lo`,
// upper-truncated at `hi`. The log-likelihood
//   l(a) = m log a + m a log lo - (a + 1) sum(log x) - m log(1 - (lo/hi)^a)
// is maximized by golden-section search; the truncation term is what a
// plain Hill estimator ignores.
double FitBoundedParetoAlpha(const std::vector<double>& exceedances,
                             double lo, double hi) {
  const auto m = static_cast<double>(exceedances.size());
  double sum_log = 0;
  for (const double x : exceedances) sum_log += std::log(x);
  const double log_ratio = std::log(lo / hi);  // < 0
  const auto neg_ll = [&](double a) {
    const double trunc = 1.0 - std::exp(a * log_ratio);
    return -(m * std::log(a) + m * a * std::log(lo) - (a + 1.0) * sum_log -
             m * std::log(trunc));
  };
  double a = 0.05, b = 20.0;
  constexpr double kGolden = 0.6180339887498949;
  double x1 = b - kGolden * (b - a), x2 = a + kGolden * (b - a);
  double f1 = neg_ll(x1), f2 = neg_ll(x2);
  for (int i = 0; i < 200 && b - a > 1e-6; ++i) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGolden * (b - a);
      f1 = neg_ll(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGolden * (b - a);
      f2 = neg_ll(x2);
    }
  }
  return 0.5 * (a + b);
}

// One burst stream's arrival-process fit: interarrival-threshold
// segmentation, on/off classification by segment rate, Markov dwell means
// from the on-segment spans and inter-burst gaps.
StreamFit FitArrivalProcess(const std::vector<double>& arrival_minutes,
                            double duration_minutes) {
  StreamFit fit;
  fit.jobs = arrival_minutes.size();
  const auto n = static_cast<double>(arrival_minutes.size());

  // Too sparse for burst structure: model as a steady trickle.
  if (arrival_minutes.size() < 8) {
    fit.bursts_detected = 0;
    fit.on_jobs_per_minute = fit.off_jobs_per_minute = n / duration_minutes;
    fit.mean_burst_minutes = duration_minutes / 2;
    fit.mean_gap_minutes = duration_minutes / 2;
    return fit;
  }

  std::vector<double> gaps;
  gaps.reserve(arrival_minutes.size() - 1);
  for (std::size_t i = 1; i < arrival_minutes.size(); ++i) {
    gaps.push_back(arrival_minutes[i] - arrival_minutes[i - 1]);
  }
  std::vector<double> sorted_gaps = gaps;
  std::sort(sorted_gaps.begin(), sorted_gaps.end());
  const double median_gap = Quantile(sorted_gaps, 0.5);
  // A gap an order of magnitude beyond the in-burst interarrival separates
  // bursts; the 30-minute floor keeps sparse trickle arrivals from being
  // split into single-job "bursts".
  const double threshold = std::max(30.0, 10.0 * median_gap);

  struct Segment {
    double first, last;
    std::size_t count;
    double Span(double pad) const { return (last - first) + pad; }
  };
  std::vector<Segment> segments;
  segments.push_back({arrival_minutes[0], arrival_minutes[0], 1});
  for (std::size_t i = 1; i < arrival_minutes.size(); ++i) {
    if (gaps[i - 1] > threshold) {
      segments.push_back({arrival_minutes[i], arrival_minutes[i], 1});
    } else {
      segments.back().last = arrival_minutes[i];
      ++segments.back().count;
    }
  }

  // Pad each segment by one typical interarrival so single-minute bursts
  // don't divide by a zero span.
  const double pad = std::max(median_gap, 1.0);
  double max_rate = 0;
  for (const Segment& segment : segments) {
    if (segment.count >= 3) {
      max_rate = std::max(
          max_rate, static_cast<double>(segment.count) / segment.Span(pad));
    }
  }
  // A segment is a burst if it carries real volume at a rate comparable to
  // the densest one; everything else is between-burst trickle.
  double on_jobs = 0, on_time = 0;
  std::vector<const Segment*> on_segments;
  for (const Segment& segment : segments) {
    const double rate = static_cast<double>(segment.count) / segment.Span(pad);
    if (segment.count >= 5 && rate >= max_rate / 4) {
      on_jobs += static_cast<double>(segment.count);
      on_time += segment.Span(pad);
      on_segments.push_back(&segment);
    }
  }

  if (on_segments.empty() || on_time <= 0) {
    fit.bursts_detected = 0;
    fit.on_jobs_per_minute = fit.off_jobs_per_minute = n / duration_minutes;
    fit.mean_burst_minutes = duration_minutes / 2;
    fit.mean_gap_minutes = duration_minutes / 2;
    return fit;
  }

  fit.bursts_detected = on_segments.size();
  fit.on_jobs_per_minute = on_jobs / on_time;
  const double off_time = std::max(duration_minutes - on_time, 1.0);
  fit.off_jobs_per_minute = (n - on_jobs) / off_time;
  fit.mean_burst_minutes = on_time / static_cast<double>(on_segments.size());
  if (on_segments.size() >= 2) {
    double gap_sum = 0;
    for (std::size_t i = 1; i < on_segments.size(); ++i) {
      gap_sum += on_segments[i]->first - on_segments[i - 1]->last;
    }
    fit.mean_gap_minutes =
        gap_sum / static_cast<double>(on_segments.size() - 1);
  } else {
    // One burst observed: size the quiet dwell so the duty cycle matches.
    const double duty = std::min(on_time / duration_minutes, 0.99);
    fit.mean_gap_minutes = fit.mean_burst_minutes * (1.0 - duty) / duty;
  }
  return fit;
}

// First diurnal Fourier coefficient of the arrival process: for a rate
// lambda * (1 + A sin(2 pi t / day)), E[sin(w t)] over arrivals is A / 2
// (over whole days). The window-average of sin is subtracted so traces that
// do not span whole days stay unbiased to first order.
double FitDiurnalAmplitude(const std::vector<double>& arrival_minutes,
                           double duration_minutes) {
  constexpr double kMinutesPerDay = 24.0 * 60.0;
  if (arrival_minutes.size() < 1000 ||
      duration_minutes < 2 * kMinutesPerDay) {
    return 0;  // too little data to separate a daily ripple from noise
  }
  const double omega = 2.0 * std::numbers::pi / kMinutesPerDay;
  double mean_sin = 0;
  for (const double t : arrival_minutes) mean_sin += std::sin(omega * t);
  mean_sin /= static_cast<double>(arrival_minutes.size());
  const double baseline =
      (1.0 - std::cos(omega * duration_minutes)) / (omega * duration_minutes);
  const double amplitude = std::clamp(2.0 * (mean_sin - baseline), 0.0, 0.95);
  return amplitude < 0.02 ? 0.0 : amplitude;  // below noise: call it flat
}

// Empirical discrete distribution of core counts.
void FitCores(const std::map<std::int32_t, std::size_t>& histogram,
              std::vector<std::int32_t>* choices,
              std::vector<double>* weights) {
  if (histogram.empty()) return;  // keep the config defaults
  choices->clear();
  weights->clear();
  double total = 0;
  for (const auto& [cores, count] : histogram) {
    total += static_cast<double>(count);
  }
  for (const auto& [cores, count] : histogram) {
    choices->push_back(cores);
    weights->push_back(static_cast<double>(count) / total);
  }
}

}  // namespace

RuntimeModel FitRuntimeModel(std::vector<double> minutes) {
  NETBATCH_CHECK(!minutes.empty(), "cannot fit a runtime model to no jobs");
  RuntimeModel model;
  std::sort(minutes.begin(), minutes.end());
  model.min_minutes = minutes.front();
  model.max_minutes = std::max(minutes.back(), model.min_minutes + 1e-6);

  if (minutes.size() < 20) {
    // Too small for quantile matching or tail structure: moment fit on the
    // logs, no tail.
    double mean = 0;
    for (const double m : minutes) mean += std::log(m);
    mean /= static_cast<double>(minutes.size());
    double var = 0;
    for (const double m : minutes) {
      var += (std::log(m) - mean) * (std::log(m) - mean);
    }
    var /= static_cast<double>(minutes.size());
    model.lognormal_mu = mean;
    model.lognormal_sigma = std::max(std::sqrt(var), 1e-3);
    model.tail_probability = 0;
    return model;
  }

  // Below the tail threshold the mixture CDF is (1 - p) * Body, so the
  // body's quantile q sits at mixture quantile q * (1 - p). Iterate: the
  // threshold depends on (mu, sigma), the mass correction on p.
  double p = 0, mu = 0, sigma = 0, tail_lo = 0;
  for (int iter = 0; iter < 4; ++iter) {
    const double body_mass = 1.0 - p;
    mu = std::log(Quantile(minutes, 0.50 * body_mass));
    const double q25 = Quantile(minutes, 0.25 * body_mass);
    const double q75 = Quantile(minutes, 0.75 * body_mass);
    sigma = std::max((std::log(q75) - std::log(q25)) / (2.0 * kZ75), 1e-3);
    tail_lo = std::max(std::exp(mu + 1.65 * sigma), model.min_minutes);
    const double above = FractionAbove(minutes, tail_lo);
    p = std::clamp((above - kBodyMassAboveTail) / (1.0 - kBodyMassAboveTail),
                   0.0, 0.5);
  }
  model.lognormal_mu = mu;
  model.lognormal_sigma = sigma;
  model.tail_probability = p < 1e-4 ? 0.0 : p;

  std::vector<double> exceedances;
  for (auto it = std::upper_bound(minutes.begin(), minutes.end(), tail_lo);
       it != minutes.end(); ++it) {
    exceedances.push_back(*it);
  }
  if (model.tail_probability > 0 && exceedances.size() >= 10 &&
      model.max_minutes > tail_lo * 1.01) {
    model.tail_alpha =
        FitBoundedParetoAlpha(exceedances, tail_lo, model.max_minutes);
  }
  return model;
}

FittedWorkloadModel FitWorkloadModel(const Trace& trace) {
  NETBATCH_CHECK(!trace.empty(), "cannot fit an empty trace");
  FittedWorkloadModel fitted;
  GeneratorConfig& config = fitted.config;
  FitDiagnostics& diag = fitted.diagnostics;

  const workload::TraceStats stats = trace.Stats();
  const double duration_minutes =
      std::max(1.0, std::ceil(TicksToMinutes(stats.last_submit + 1)));
  diag.duration_minutes = duration_minutes;
  config = GeneratorConfig{};
  config.seed = 1;
  config.duration = MinutesToTicks(static_cast<std::int64_t>(duration_minutes));

  // ---- partition jobs and collect empirical distributions ----------------
  std::vector<double> low_runtimes, high_runtimes, low_arrivals;
  std::map<std::int32_t, std::size_t> low_cores, high_cores;
  std::map<std::vector<PoolId::ValueType>, std::size_t> site_sets;
  // (priority, owner, pool set) -> arrival minutes; sorted keys make the
  // fitted stream order deterministic.
  std::map<std::tuple<workload::Priority, workload::OwnerId,
                      std::vector<PoolId::ValueType>>,
           std::vector<double>>
      streams;
  std::map<TaskId, std::size_t> task_sizes;
  std::int64_t per_core_lo = 0, per_core_hi = 0;
  PoolId::ValueType max_pool = 0;
  bool any_pool_seen = false;

  for (const JobSpec& job : trace.jobs()) {
    const double minutes = TicksToMinutes(job.submit_time);
    const double runtime = std::max(TicksToMinutes(job.runtime), 1e-3);
    std::vector<PoolId::ValueType> pools;
    pools.reserve(job.candidate_pools.size());
    for (const PoolId pool : job.candidate_pools) {
      pools.push_back(pool.value());
      max_pool = std::max(max_pool, pool.value());
      any_pool_seen = true;
    }
    std::sort(pools.begin(), pools.end());

    const std::int64_t per_core =
        job.memory_mb / std::max<std::int64_t>(job.cores, 1);
    if (per_core_lo == 0 || per_core < per_core_lo) {
      per_core_lo = std::max<std::int64_t>(per_core, 1);
    }
    per_core_hi = std::max(per_core_hi, per_core);

    if (job.priority > workload::kLowPriority) {
      high_runtimes.push_back(runtime);
      ++high_cores[job.cores];
      streams[{job.priority, job.owner, std::move(pools)}].push_back(minutes);
    } else {
      low_runtimes.push_back(runtime);
      low_arrivals.push_back(minutes);
      ++low_cores[job.cores];
      if (!pools.empty()) ++site_sets[std::move(pools)];
      if (job.task.valid()) ++task_sizes[job.task];
    }
  }
  diag.low_jobs = low_runtimes.size();
  diag.high_jobs = high_runtimes.size();

  // num_pools: tight bound on the ids the trace references. A trace where
  // every job may run anywhere carries no pool structure; keep the default.
  if (any_pool_seen) config.num_pools = max_pool + 1;

  // ---- low-priority base load --------------------------------------------
  // Poisson rate MLE: arrivals per observed minute.
  config.low_jobs_per_minute =
      static_cast<double>(diag.low_jobs) / duration_minutes;
  if (!low_runtimes.empty()) {
    config.low_runtime = FitRuntimeModel(low_runtimes);
    diag.low_tail_threshold_minutes =
        std::max(std::exp(config.low_runtime.lognormal_mu +
                          1.65 * config.low_runtime.lognormal_sigma),
                 config.low_runtime.min_minutes);
    diag.low_tail_samples = static_cast<std::size_t>(std::count_if(
        low_runtimes.begin(), low_runtimes.end(),
        [&](double m) { return m > diag.low_tail_threshold_minutes; }));
  }
  config.diurnal_amplitude =
      FitDiurnalAmplitude(low_arrivals, duration_minutes);

  // Sites: the distinct candidate-pool sets low-priority jobs arrive with.
  config.sites.clear();
  for (const auto& [pools, count] : site_sets) {
    std::vector<PoolId> site;
    site.reserve(pools.size());
    for (const PoolId::ValueType pool : pools) site.emplace_back(pool);
    config.sites.push_back(std::move(site));
  }

  // Task grouping: the modal complete-task population.
  config.task_size = 0;
  if (!task_sizes.empty()) {
    std::map<std::size_t, std::size_t> size_counts;
    for (const auto& [task, size] : task_sizes) ++size_counts[size];
    std::size_t best_size = 0, best_count = 0;
    for (const auto& [size, count] : size_counts) {
      if (count > best_count) {
        best_count = count;
        best_size = size;
      }
    }
    config.task_size = static_cast<std::uint32_t>(best_size);
  }

  // ---- resource demands --------------------------------------------------
  FitCores(low_cores, &config.core_choices, &config.core_weights);
  FitCores(high_cores, &config.high_core_choices, &config.high_core_weights);
  if (per_core_hi > 0) {
    config.memory_per_core_mb_lo = per_core_lo;
    config.memory_per_core_mb_hi = std::max(per_core_hi, per_core_lo);
  }

  // ---- high-priority burst streams ---------------------------------------
  config.bursts.clear();
  if (!high_runtimes.empty()) {
    config.high_runtime = FitRuntimeModel(high_runtimes);
    diag.high_tail_threshold_minutes =
        std::max(std::exp(config.high_runtime.lognormal_mu +
                          1.65 * config.high_runtime.lognormal_sigma),
                 config.high_runtime.min_minutes);
    diag.high_tail_samples = static_cast<std::size_t>(std::count_if(
        high_runtimes.begin(), high_runtimes.end(),
        [&](double m) { return m > diag.high_tail_threshold_minutes; }));
  }
  for (const auto& [key, arrivals] : streams) {
    const auto& [priority, owner, pools] = key;
    StreamFit stream_fit = FitArrivalProcess(arrivals, duration_minutes);
    stream_fit.owner = owner;
    diag.streams.push_back(stream_fit);

    BurstStreamConfig burst;
    burst.priority = priority;
    burst.owner = owner;
    burst.jobs_per_minute_on = stream_fit.on_jobs_per_minute;
    burst.jobs_per_minute_off = stream_fit.off_jobs_per_minute;
    burst.mean_burst_minutes = std::max(stream_fit.mean_burst_minutes, 1.0);
    burst.mean_gap_minutes = std::max(stream_fit.mean_gap_minutes, 1.0);
    if (pools.empty()) {
      // The generator requires explicit targets; "anywhere" means all pools.
      for (PoolId::ValueType pool = 0; pool < config.num_pools; ++pool) {
        burst.target_pools.emplace_back(pool);
      }
    } else {
      for (const PoolId::ValueType pool : pools) {
        burst.target_pools.emplace_back(pool);
      }
    }
    config.bursts.push_back(std::move(burst));
  }

  return fitted;
}

std::string RenderFitSummary(const FittedWorkloadModel& model) {
  const GeneratorConfig& config = model.config;
  const FitDiagnostics& diag = model.diagnostics;
  std::ostringstream out;

  TextTable table({"Parameter", "Fitted value"});
  table.AddRow({"jobs (low / high)", std::to_string(diag.low_jobs) + " / " +
                                         std::to_string(diag.high_jobs)});
  table.AddRow({"duration (min)", TextTable::Fixed(diag.duration_minutes, 0)});
  table.AddRow({"low arrivals/min",
                TextTable::Fixed(config.low_jobs_per_minute, 4)});
  table.AddRow(
      {"diurnal amplitude", TextTable::Fixed(config.diurnal_amplitude, 3)});
  table.AddRow({"low runtime mu / sigma",
                TextTable::Fixed(config.low_runtime.lognormal_mu, 4) + " / " +
                    TextTable::Fixed(config.low_runtime.lognormal_sigma, 4)});
  table.AddRow(
      {"low tail p / alpha",
       TextTable::Fixed(config.low_runtime.tail_probability, 4) + " / " +
           TextTable::Fixed(config.low_runtime.tail_alpha, 3)});
  table.AddRow({"low tail threshold (min)",
                TextTable::Fixed(diag.low_tail_threshold_minutes, 1) + " (" +
                    std::to_string(diag.low_tail_samples) + " samples)"});
  table.AddRow({"runtime bounds (min)",
                TextTable::Fixed(config.low_runtime.min_minutes, 2) + " .. " +
                    TextTable::Fixed(config.low_runtime.max_minutes, 0)});
  if (diag.high_jobs > 0) {
    table.AddRow(
        {"high runtime mu / sigma",
         TextTable::Fixed(config.high_runtime.lognormal_mu, 4) + " / " +
             TextTable::Fixed(config.high_runtime.lognormal_sigma, 4)});
  }
  table.AddRow({"pools / sites / streams",
                std::to_string(config.num_pools) + " / " +
                    std::to_string(config.sites.size()) + " / " +
                    std::to_string(config.bursts.size())});
  table.AddRow({"task size", std::to_string(config.task_size)});
  table.AddRow({"memory MB/core",
                std::to_string(config.memory_per_core_mb_lo) + " .. " +
                    std::to_string(config.memory_per_core_mb_hi)});
  out << table.Render();

  if (!diag.streams.empty()) {
    TextTable streams({"Stream", "jobs", "bursts", "on/min", "off/min",
                       "burst min", "gap min"});
    for (std::size_t i = 0; i < diag.streams.size(); ++i) {
      const StreamFit& stream = diag.streams[i];
      streams.AddRow({"owner " + std::to_string(stream.owner),
                      std::to_string(stream.jobs),
                      std::to_string(stream.bursts_detected),
                      TextTable::Fixed(stream.on_jobs_per_minute, 3),
                      TextTable::Fixed(stream.off_jobs_per_minute, 4),
                      TextTable::Fixed(stream.mean_burst_minutes, 0),
                      TextTable::Fixed(stream.mean_gap_minutes, 0)});
    }
    out << '\n' << streams.Render();
  }
  return out.str();
}

}  // namespace netbatch::calib

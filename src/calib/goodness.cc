#include "calib/goodness.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace netbatch::calib {
namespace {

using workload::JobSpec;
using workload::Trace;

constexpr double kQuantiles[] = {0.10, 0.25, 0.50, 0.75, 0.90, 0.99};

double Quantile(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

DistributionComparison Compare(std::vector<double> source,
                               std::vector<double> regenerated) {
  DistributionComparison comparison;
  comparison.source_count = source.size();
  comparison.regenerated_count = regenerated.size();
  if (source.empty() || regenerated.empty()) return comparison;
  std::sort(source.begin(), source.end());
  std::sort(regenerated.begin(), regenerated.end());
  // Inline KS on the already-sorted copies.
  const auto n = static_cast<double>(source.size());
  const auto m = static_cast<double>(regenerated.size());
  std::size_t i = 0, j = 0;
  double ks = 0;
  while (i < source.size() && j < regenerated.size()) {
    const double x = std::min(source[i], regenerated[j]);
    while (i < source.size() && source[i] <= x) ++i;
    while (j < regenerated.size() && regenerated[j] <= x) ++j;
    ks = std::max(ks, std::abs(static_cast<double>(i) / n -
                               static_cast<double>(j) / m));
  }
  comparison.ks = ks;
  for (const double q : kQuantiles) {
    comparison.quantiles.push_back(
        {q, Quantile(source, q), Quantile(regenerated, q)});
  }
  return comparison;
}

std::vector<double> RuntimesMinutes(const Trace& trace) {
  std::vector<double> minutes;
  minutes.reserve(trace.size());
  for (const JobSpec& job : trace.jobs()) {
    minutes.push_back(TicksToMinutes(job.runtime));
  }
  return minutes;
}

std::vector<double> InterarrivalsMinutes(const Trace& trace) {
  std::vector<double> minutes;
  if (trace.size() < 2) return minutes;
  minutes.reserve(trace.size() - 1);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    minutes.push_back(
        TicksToMinutes(trace[i].submit_time - trace[i - 1].submit_time));
  }
  return minutes;
}

}  // namespace

double TwoSampleKs(std::vector<double> a, std::vector<double> b) {
  NETBATCH_CHECK(!a.empty() && !b.empty(),
                 "two-sample KS needs non-empty samples");
  return Compare(std::move(a), std::move(b)).ks;
}

GoodnessReport EvaluateFit(const Trace& source, const Trace& regenerated) {
  GoodnessReport report;
  report.runtime_minutes =
      Compare(RuntimesMinutes(source), RuntimesMinutes(regenerated));
  report.interarrival_minutes =
      Compare(InterarrivalsMinutes(source), InterarrivalsMinutes(regenerated));

  const workload::TraceStats source_stats = source.Stats();
  const workload::TraceStats regen_stats = regenerated.Stats();
  const auto rate = [](const workload::TraceStats& stats) {
    const double span =
        TicksToMinutes(stats.last_submit - stats.first_submit);
    return span > 0 ? static_cast<double>(stats.job_count) / span : 0.0;
  };
  report.source_jobs_per_minute = rate(source_stats);
  report.regenerated_jobs_per_minute = rate(regen_stats);
  const auto high_fraction = [](const workload::TraceStats& stats) {
    return stats.job_count == 0
               ? 0.0
               : static_cast<double>(stats.high_priority_count) /
                     static_cast<double>(stats.job_count);
  };
  report.source_high_fraction = high_fraction(source_stats);
  report.regenerated_high_fraction = high_fraction(regen_stats);
  report.source_mean_cores = source_stats.mean_cores;
  report.regenerated_mean_cores = regen_stats.mean_cores;
  return report;
}

std::string RenderGoodnessReport(const GoodnessReport& report) {
  std::ostringstream out;

  TextTable scalars({"Metric", "Source", "Regenerated"});
  scalars.AddRow({"jobs/min",
                  TextTable::Fixed(report.source_jobs_per_minute, 3),
                  TextTable::Fixed(report.regenerated_jobs_per_minute, 3)});
  scalars.AddRow({"high-priority share",
                  TextTable::Percent(report.source_high_fraction, 1),
                  TextTable::Percent(report.regenerated_high_fraction, 1)});
  scalars.AddRow({"mean cores", TextTable::Fixed(report.source_mean_cores, 2),
                  TextTable::Fixed(report.regenerated_mean_cores, 2)});
  out << scalars.Render();

  const auto render_distribution = [&out](const char* name,
                                          const DistributionComparison& d) {
    out << '\n'
        << name << ": KS = " << TextTable::Fixed(d.ks, 4) << " ("
        << d.source_count << " vs " << d.regenerated_count << " samples)\n";
    TextTable table({"Quantile", "Source (min)", "Regenerated (min)"});
    for (const QuantilePoint& point : d.quantiles) {
      table.AddRow({TextTable::Percent(point.q, 0),
                    TextTable::Fixed(point.source, 2),
                    TextTable::Fixed(point.regenerated, 2)});
    }
    out << table.Render();
  };
  render_distribution("runtime", report.runtime_minutes);
  render_distribution("interarrival", report.interarrival_minutes);
  return out.str();
}

}  // namespace netbatch::calib

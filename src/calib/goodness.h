// Goodness-of-fit reporting for calibrated workload models.
//
// After FitWorkloadModel produces a GeneratorConfig, the natural check is:
// regenerate a trace from the fitted config and compare it against the
// source, distribution by distribution. This module computes two-sample
// Kolmogorov-Smirnov statistics and side-by-side quantile tables for the
// quantities the scheduler actually feels — runtimes, interarrival times,
// core demands — plus scalar rate/mix comparisons.
//
// KS here is a *distance*, not a hypothesis test: with 10^5-job traces even
// excellent fits "reject" at classical significance levels, so we report
// the statistic itself (0 = identical, 1 = disjoint) and let calibration
// quality gates assert a ceiling on it (tests use 0.05).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "workload/trace.h"

namespace netbatch::calib {

struct QuantilePoint {
  double q = 0;            // quantile level, e.g. 0.50
  double source = 0;       // source-trace value
  double regenerated = 0;  // regenerated-trace value
};

struct DistributionComparison {
  std::size_t source_count = 0;
  std::size_t regenerated_count = 0;
  double ks = 0;  // two-sample KS statistic, in [0, 1]
  std::vector<QuantilePoint> quantiles;
};

struct GoodnessReport {
  DistributionComparison runtime_minutes;       // all jobs
  DistributionComparison interarrival_minutes;  // consecutive submissions
  double source_jobs_per_minute = 0;
  double regenerated_jobs_per_minute = 0;
  double source_high_fraction = 0;
  double regenerated_high_fraction = 0;
  double source_mean_cores = 0;
  double regenerated_mean_cores = 0;
};

// Two-sample KS statistic: sup_x |F_a(x) - F_b(x)| over the empirical CDFs.
// Both samples must be non-empty.
double TwoSampleKs(std::vector<double> a, std::vector<double> b);

// Compares `source` against a trace regenerated from its fitted config.
GoodnessReport EvaluateFit(const workload::Trace& source,
                           const workload::Trace& regenerated);

// Text tables: KS + quantile rows per distribution, scalar comparisons.
std::string RenderGoodnessReport(const GoodnessReport& report);

}  // namespace netbatch::calib

// Workload-model calibration: fit a GeneratorConfig to an observed trace.
//
// The synthetic generator (workload/generator.h) regenerates the *structure*
// of the paper's proprietary trace from hand-picked parameters (DESIGN.md
// §2). This module closes the loop for real workloads: given any Trace —
// replayed from a previous run, or imported from a Parallel Workloads
// Archive SWF log (workload/swf.h) — it estimates every generator parameter
// so the fitted config regenerates a statistically matching workload and can
// be saved as a named scenario preset (runner/config_file).
//
// Estimators, per parameter family:
//
//   * base arrival rate — Poisson MLE on low-priority arrivals
//     (count / span), plus the first diurnal Fourier coefficient for the
//     sinusoidal day modulation;
//   * runtime body — lognormal (mu, sigma) by quantile matching on
//     log-runtimes (median and interquartile spread), with the quantile
//     positions corrected for the tail mixture mass. Quantile estimators
//     are robust against the few-percent Pareto tail that would bias a
//     plain MLE;
//   * runtime tail — the tail threshold is the body's p95 (the generator's
//     own split point); tail_probability from the observed exceedance mass
//     above it, and tail_alpha by maximum likelihood for the bounded Pareto
//     over the exceedances (a Hill-style fit that accounts for the upper
//     truncation);
//   * burst streams — high-priority jobs grouped by (priority, owner,
//     candidate-pool set); each stream's arrivals are segmented at
//     interarrival gaps above a threshold, segments classified on/off by
//     rate, yielding the Markov on/off rates and dwell means;
//   * structure — sites from the distinct low-priority candidate-pool sets,
//     per-stream pool affinities from observed placement eligibility, core
//     choices/weights and the per-core memory range from their empirical
//     distributions, task_size from the modal task population.
//
// Fitting is deterministic: the same trace always yields the identical
// config (there is no randomness anywhere in the fit).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "workload/generator.h"
#include "workload/trace.h"

namespace netbatch::calib {

// Per-stream fit diagnostics (one per fitted BurstStreamConfig, same order).
struct StreamFit {
  workload::OwnerId owner = workload::kNoOwner;
  std::size_t jobs = 0;
  std::size_t bursts_detected = 0;
  double on_jobs_per_minute = 0;
  double off_jobs_per_minute = 0;
  double mean_burst_minutes = 0;
  double mean_gap_minutes = 0;
};

struct FitDiagnostics {
  std::size_t low_jobs = 0;
  std::size_t high_jobs = 0;
  double duration_minutes = 0;
  // Body/tail split points (minutes) used by the runtime fits.
  double low_tail_threshold_minutes = 0;
  double high_tail_threshold_minutes = 0;
  std::size_t low_tail_samples = 0;
  std::size_t high_tail_samples = 0;
  std::vector<StreamFit> streams;
};

struct FittedWorkloadModel {
  workload::GeneratorConfig config;
  FitDiagnostics diagnostics;
};

// Fits every GeneratorConfig parameter to `trace`. The trace must be
// non-empty. The fitted config's seed is 1 (regeneration randomness is the
// caller's choice; the fit itself has none) and its duration covers the
// trace's submission span.
FittedWorkloadModel FitWorkloadModel(const workload::Trace& trace);

// Human-readable summary of the fitted parameters and diagnostics.
std::string RenderFitSummary(const FittedWorkloadModel& model);

// Fits just the lognormal-body / bounded-Pareto-tail runtime model to a
// sample of runtimes in minutes. Exposed for tests and the goodness report;
// FitWorkloadModel uses it for both priority classes.
workload::RuntimeModel FitRuntimeModel(std::vector<double> minutes);

}  // namespace netbatch::calib

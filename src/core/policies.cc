#include "core/policies.h"

#include "common/check.h"

namespace netbatch::core {

CompositeReschedulingPolicy::CompositeReschedulingPolicy(
    std::unique_ptr<PoolSelector> suspend_selector,
    std::unique_ptr<PoolSelector> wait_selector, Ticks wait_threshold,
    bool duplicate)
    : suspend_selector_(std::move(suspend_selector)),
      wait_selector_(std::move(wait_selector)),
      wait_threshold_(wait_threshold),
      duplicate_(duplicate) {
  NETBATCH_CHECK(suspend_selector_ != nullptr || wait_selector_ != nullptr,
                 "composite policy with no selectors is just NoRes");
  NETBATCH_CHECK(wait_selector_ == nullptr || wait_threshold_ > 0,
                 "wait rescheduling needs a positive threshold");
}

std::optional<PoolId> CompositeReschedulingPolicy::OnSuspended(
    const cluster::Job& job, const cluster::ClusterView& view) {
  if (suspend_selector_ == nullptr) return std::nullopt;
  return suspend_selector_->Select(job, job.pool(), view);
}

std::optional<Ticks> CompositeReschedulingPolicy::WaitRescheduleThreshold()
    const {
  if (wait_selector_ == nullptr) return std::nullopt;
  return wait_threshold_;
}

std::optional<PoolId> CompositeReschedulingPolicy::OnWaitTimeout(
    const cluster::Job& job, const cluster::ClusterView& view) {
  if (wait_selector_ == nullptr) return std::nullopt;
  return wait_selector_->Select(job, job.pool(), view);
}

const char* ToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoRes:
      return "NoRes";
    case PolicyKind::kResSusUtil:
      return "ResSusUtil";
    case PolicyKind::kResSusRand:
      return "ResSusRand";
    case PolicyKind::kResSusWaitUtil:
      return "ResSusWaitUtil";
    case PolicyKind::kResSusWaitRand:
      return "ResSusWaitRand";
  }
  return "?";
}

std::optional<PolicyKind> ParsePolicyKind(std::string_view name) {
  for (const PolicyKind kind : kAllPolicyKinds) {
    if (name == ToString(kind)) return kind;
  }
  return std::nullopt;
}

std::unique_ptr<cluster::ReschedulingPolicy> MakePolicy(
    PolicyKind kind, const PolicyOptions& options) {
  switch (kind) {
    case PolicyKind::kNoRes:
      return std::make_unique<NoResPolicy>();
    case PolicyKind::kResSusUtil:
      return std::make_unique<CompositeReschedulingPolicy>(
          std::make_unique<LowestUtilizationSelector>(
              /*retain_if_current_best=*/true, options.cross_site),
          nullptr, Ticks{0});
    case PolicyKind::kResSusRand:
      return std::make_unique<CompositeReschedulingPolicy>(
          std::make_unique<RandomSelector>(options.seed, options.cross_site),
          nullptr, Ticks{0});
    case PolicyKind::kResSusWaitUtil:
      return std::make_unique<CompositeReschedulingPolicy>(
          std::make_unique<LowestUtilizationSelector>(
              /*retain_if_current_best=*/true, options.cross_site),
          std::make_unique<LowestUtilizationSelector>(
              /*retain_if_current_best=*/true, options.cross_site),
          options.wait_threshold);
    case PolicyKind::kResSusWaitRand:
      return std::make_unique<CompositeReschedulingPolicy>(
          std::make_unique<RandomSelector>(options.seed, options.cross_site),
          std::make_unique<RandomSelector>(options.seed + 1,
                                           options.cross_site),
          options.wait_threshold);
  }
  NETBATCH_CHECK(false, "unknown policy kind");
  return nullptr;
}

std::unique_ptr<cluster::ReschedulingPolicy> MakeDuplicationPolicy(
    const PolicyOptions& options) {
  return std::make_unique<CompositeReschedulingPolicy>(
      std::make_unique<LowestUtilizationSelector>(
          /*retain_if_current_best=*/true, options.cross_site),
      nullptr, Ticks{0},
      /*duplicate=*/true);
}

}  // namespace netbatch::core

#include "core/policies.h"

#include "common/check.h"

namespace netbatch::core {

CompositeReschedulingPolicy::CompositeReschedulingPolicy(
    std::unique_ptr<PoolSelector> suspend_selector,
    std::unique_ptr<PoolSelector> wait_selector, Ticks wait_threshold,
    bool duplicate)
    : suspend_selector_(std::move(suspend_selector)),
      wait_selector_(std::move(wait_selector)),
      wait_threshold_(wait_threshold),
      duplicate_(duplicate) {
  NETBATCH_CHECK(suspend_selector_ != nullptr || wait_selector_ != nullptr,
                 "composite policy with no selectors is just NoRes");
  NETBATCH_CHECK(wait_selector_ == nullptr || wait_threshold_ > 0,
                 "wait rescheduling needs a positive threshold");
}

std::optional<PoolId> CompositeReschedulingPolicy::OnSuspended(
    const cluster::Job& job, const cluster::ClusterView& view) {
  if (suspend_selector_ == nullptr) return std::nullopt;
  return suspend_selector_->Select(job, job.pool(), view);
}

std::optional<Ticks> CompositeReschedulingPolicy::WaitRescheduleThreshold()
    const {
  if (wait_selector_ == nullptr) return std::nullopt;
  return wait_threshold_;
}

std::optional<PoolId> CompositeReschedulingPolicy::OnWaitTimeout(
    const cluster::Job& job, const cluster::ClusterView& view) {
  if (wait_selector_ == nullptr) return std::nullopt;
  return wait_selector_->Select(job, job.pool(), view);
}

void CompositeReschedulingPolicy::ExportState(
    std::vector<std::uint8_t>& out) const {
  const auto append_selector = [&out](const PoolSelector* selector) {
    std::vector<std::uint8_t> blob;
    if (selector != nullptr) selector->ExportState(blob);
    const auto len = static_cast<std::uint32_t>(blob.size());
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    }
    out.insert(out.end(), blob.begin(), blob.end());
  };
  append_selector(suspend_selector_.get());
  append_selector(wait_selector_.get());
}

bool CompositeReschedulingPolicy::ImportState(const std::uint8_t* data,
                                              std::size_t size) {
  std::size_t at = 0;
  const auto read_selector = [&](PoolSelector* selector) {
    if (size - at < 4) return false;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(data[at + i]) << (8 * i);
    }
    at += 4;
    if (size - at < len) return false;
    const std::uint8_t* blob = data + at;
    at += len;
    if (selector == nullptr) return len == 0;
    return selector->ImportState(blob, len);
  };
  return read_selector(suspend_selector_.get()) &&
         read_selector(wait_selector_.get()) && at == size;
}

const char* ToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoRes:
      return "NoRes";
    case PolicyKind::kResSusUtil:
      return "ResSusUtil";
    case PolicyKind::kResSusRand:
      return "ResSusRand";
    case PolicyKind::kResSusWaitUtil:
      return "ResSusWaitUtil";
    case PolicyKind::kResSusWaitRand:
      return "ResSusWaitRand";
  }
  return "?";
}

std::optional<PolicyKind> ParsePolicyKind(std::string_view name) {
  for (const PolicyKind kind : kAllPolicyKinds) {
    if (name == ToString(kind)) return kind;
  }
  return std::nullopt;
}

std::unique_ptr<cluster::ReschedulingPolicy> MakePolicy(
    PolicyKind kind, const PolicyOptions& options) {
  switch (kind) {
    case PolicyKind::kNoRes:
      return std::make_unique<NoResPolicy>();
    case PolicyKind::kResSusUtil:
      return std::make_unique<CompositeReschedulingPolicy>(
          std::make_unique<LowestUtilizationSelector>(
              /*retain_if_current_best=*/true, options.cross_site),
          nullptr, Ticks{0});
    case PolicyKind::kResSusRand:
      return std::make_unique<CompositeReschedulingPolicy>(
          std::make_unique<RandomSelector>(options.seed, options.cross_site),
          nullptr, Ticks{0});
    case PolicyKind::kResSusWaitUtil:
      return std::make_unique<CompositeReschedulingPolicy>(
          std::make_unique<LowestUtilizationSelector>(
              /*retain_if_current_best=*/true, options.cross_site),
          std::make_unique<LowestUtilizationSelector>(
              /*retain_if_current_best=*/true, options.cross_site),
          options.wait_threshold);
    case PolicyKind::kResSusWaitRand:
      return std::make_unique<CompositeReschedulingPolicy>(
          std::make_unique<RandomSelector>(options.seed, options.cross_site),
          std::make_unique<RandomSelector>(options.seed + 1,
                                           options.cross_site),
          options.wait_threshold);
  }
  NETBATCH_CHECK(false, "unknown policy kind");
  return nullptr;
}

std::unique_ptr<cluster::ReschedulingPolicy> MakeDuplicationPolicy(
    const PolicyOptions& options) {
  return std::make_unique<CompositeReschedulingPolicy>(
      std::make_unique<LowestUtilizationSelector>(
          /*retain_if_current_best=*/true, options.cross_site),
      nullptr, Ticks{0},
      /*duplicate=*/true);
}

}  // namespace netbatch::core

#include "core/load_predictor.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace netbatch::core {

PoolLoadPredictor::PoolLoadPredictor(double smoothing)
    : smoothing_(smoothing) {
  NETBATCH_CHECK(smoothing > 0 && smoothing <= 1,
                 "EWMA smoothing must be in (0, 1]");
}

void PoolLoadPredictor::OnSample(Ticks now, const cluster::ClusterView& view) {
  (void)now;
  if (pools_.empty()) pools_.resize(view.PoolCount());
  for (std::size_t p = 0; p < pools_.size(); ++p) {
    const PoolId pool(static_cast<PoolId::ValueType>(p));
    PoolState& state = pools_[p];
    const double util = view.PoolUtilization(pool);
    const double queue = static_cast<double>(view.PoolQueueLength(pool));
    if (samples_seen_ == 0) {
      state.utilization = util;
      state.queue = queue;
      state.trend = 0;
    } else {
      state.utilization += smoothing_ * (util - state.utilization);
      state.queue += smoothing_ * (queue - state.queue);
      state.trend += smoothing_ * ((queue - state.last_queue) - state.trend);
    }
    state.last_queue = queue;
  }
  ++samples_seen_;
}

double PoolLoadPredictor::SmoothedUtilization(PoolId pool) const {
  if (pool.value() >= pools_.size()) return 0;
  return pools_[pool.value()].utilization;
}

double PoolLoadPredictor::SmoothedQueueLength(PoolId pool) const {
  if (pool.value() >= pools_.size()) return 0;
  return pools_[pool.value()].queue;
}

double PoolLoadPredictor::QueueTrend(PoolId pool) const {
  if (pool.value() >= pools_.size()) return 0;
  return pools_[pool.value()].trend;
}

double PoolLoadPredictor::PredictedDelayScore(PoolId pool) const {
  if (pool.value() >= pools_.size()) return 0;
  const PoolState& state = pools_[pool.value()];
  // Backlog is what a committed job waits behind; a growing backlog on a
  // saturated pool compounds. An idle pool scores near zero regardless of
  // residual smoothing.
  const double saturation = std::clamp(state.utilization, 0.0, 0.999);
  const double growth = std::max(0.0, state.trend);
  return (state.queue + 10.0 * growth + saturation) / (1.0 - saturation);
}

std::optional<PoolId> PredictorSelector::Select(
    const cluster::Job& job, PoolId current,
    const cluster::ClusterView& view) {
  if (!predictor_->ready()) return bootstrap_.Select(job, current, view);

  const std::vector<PoolId> pools = EligibleCandidatePools(job, view);
  if (pools.empty()) return std::nullopt;

  PoolId best;
  double best_score = std::numeric_limits<double>::infinity();
  for (PoolId pool : pools) {
    const double score = predictor_->PredictedDelayScore(pool);
    if (score < best_score || (score == best_score && pool < best)) {
      best = pool;
      best_score = score;
    }
  }
  // Retain rule on the same smoothed metric.
  if (best == current ||
      (current.valid() &&
       predictor_->PredictedDelayScore(current) <= best_score)) {
    return std::nullopt;
  }
  return best;
}

}  // namespace netbatch::core

// Telemetry-driven per-pool load prediction (paper §5).
//
// The paper's future work proposes rescheduling decisions based on
// "multiple metrics (e.g., utilization, queue lengths, prediction of job
// completion times within a pool) in combination". A real deployment cannot
// read instantaneous global state; it consumes *sampled, smoothed
// telemetry*. PoolLoadPredictor models that pipeline: it observes the
// simulation's per-minute sampling stream (exactly what ASCA logs) and
// maintains an EWMA view of every pool's utilization and queue backlog,
// including a trend estimate of each queue's drain rate.
//
// PredictorSelector then makes rescheduling decisions from that smoothed
// view only — a policy that could actually be built on NetBatch telemetry,
// unlike the idealized live-utilization selector.
#pragma once

#include <memory>
#include <vector>

#include "cluster/interfaces.h"
#include "core/pool_selector.h"

namespace netbatch::core {

class PoolLoadPredictor final : public cluster::SimulationObserver {
 public:
  // `smoothing` is the EWMA weight of the newest sample, in (0, 1].
  explicit PoolLoadPredictor(double smoothing = 0.2);

  void OnSample(Ticks now, const cluster::ClusterView& view) override;

  bool ready() const { return samples_seen_ > 0; }
  std::int64_t samples_seen() const { return samples_seen_; }

  // Smoothed pool state; 0 before the first sample.
  double SmoothedUtilization(PoolId pool) const;
  double SmoothedQueueLength(PoolId pool) const;

  // Smoothed queue growth in jobs per sample; positive = backlog building.
  double QueueTrend(PoolId pool) const;

  // A crude predicted start delay score for a newly queued job: the
  // smoothed backlog inflated when the queue is trending up and the pool is
  // saturated. Dimensionless — only comparisons between pools matter.
  double PredictedDelayScore(PoolId pool) const;

 private:
  struct PoolState {
    double utilization = 0;
    double queue = 0;
    double trend = 0;
    double last_queue = 0;
  };

  double smoothing_;
  std::int64_t samples_seen_ = 0;
  std::vector<PoolState> pools_;
};

// Chooses the candidate pool with the lowest predicted delay score based
// solely on the predictor's smoothed telemetry (with the §3.2.1 retain
// rule). Before the first sample arrives it falls back to live utilization.
class PredictorSelector final : public PoolSelector {
 public:
  // `predictor` must outlive the selector and be attached as an observer to
  // the same simulation.
  explicit PredictorSelector(const PoolLoadPredictor& predictor)
      : predictor_(&predictor) {}

  std::optional<PoolId> Select(const cluster::Job& job, PoolId current,
                               const cluster::ClusterView& view) override;

 private:
  const PoolLoadPredictor* predictor_;
  LowestUtilizationSelector bootstrap_;
};

}  // namespace netbatch::core

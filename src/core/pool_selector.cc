#include "core/pool_selector.h"

#include <algorithm>
#include <limits>

namespace netbatch::core {

std::vector<PoolId> EligibleCandidatePools(const cluster::Job& job,
                                           const cluster::ClusterView& view,
                                           bool ignore_candidate_restriction) {
  std::vector<PoolId> pools;
  const auto& spec = job.spec();
  if (ignore_candidate_restriction || spec.candidate_pools.empty()) {
    pools.reserve(view.PoolCount());
    for (std::size_t p = 0; p < view.PoolCount(); ++p) {
      pools.emplace_back(static_cast<PoolId::ValueType>(p));
    }
  } else {
    pools = spec.candidate_pools;
  }
  std::erase_if(pools, [&](PoolId pool) {
    return !view.PoolEligible(pool, spec);
  });
  return pools;
}

std::optional<PoolId> LowestUtilizationSelector::Select(
    const cluster::Job& job, PoolId current,
    const cluster::ClusterView& view) {
  std::vector<PoolId> pools = EligibleCandidatePools(job, view, cross_site_);
  if (!retain_if_current_best_) std::erase(pools, current);
  if (pools.empty()) return std::nullopt;

  PoolId best;
  double best_util = std::numeric_limits<double>::infinity();
  for (PoolId pool : pools) {
    const double util = view.PoolUtilization(pool);
    if (util < best_util || (util == best_util && pool < best)) {
      best = pool;
      best_util = util;
    }
  }
  if (!retain_if_current_best_) return best;
  // Retain rule: never move to a pool at least as loaded as the current one.
  // (A job without a current pool has nothing to retain in.)
  if (best == current ||
      (current.valid() && view.PoolUtilization(current) <= best_util)) {
    return std::nullopt;
  }
  return best;
}

std::optional<PoolId> RandomSelector::Select(const cluster::Job& job,
                                             PoolId current,
                                             const cluster::ClusterView& view) {
  std::vector<PoolId> pools = EligibleCandidatePools(job, view, cross_site_);
  std::erase(pools, current);
  if (pools.empty()) return std::nullopt;
  return pools[rng_.UniformIndex(pools.size())];
}

std::optional<PoolId> ShortestQueueSelector::Select(
    const cluster::Job& job, PoolId current,
    const cluster::ClusterView& view) {
  const std::vector<PoolId> pools = EligibleCandidatePools(job, view);
  if (pools.empty()) return std::nullopt;

  auto key = [&](PoolId pool) {
    return std::tuple(view.PoolQueueLength(pool), view.PoolUtilization(pool),
                      pool);
  };
  const PoolId best =
      *std::min_element(pools.begin(), pools.end(),
                        [&](PoolId a, PoolId b) { return key(a) < key(b); });
  if (best == current || (current.valid() && !(key(best) < key(current)))) {
    return std::nullopt;
  }
  return best;
}

std::optional<PoolId> PredictedDelaySelector::Select(
    const cluster::Job& job, PoolId current,
    const cluster::ClusterView& view) {
  const std::vector<PoolId> pools = EligibleCandidatePools(job, view);
  if (pools.empty()) return std::nullopt;

  // Crude start-delay estimate: jobs already queued per unit of capacity,
  // amplified as the pool approaches saturation. A pool with free cores and
  // an empty queue scores ~0; a saturated pool with a backlog scores high.
  auto score = [&](PoolId pool) {
    const double cores = static_cast<double>(view.PoolTotalCores(pool));
    const double queue = static_cast<double>(view.PoolQueueLength(pool));
    const double util = view.PoolUtilization(pool);
    return (queue / std::max(1.0, cores) + util) / (1.001 - util);
  };
  PoolId best;
  double best_score = std::numeric_limits<double>::infinity();
  for (PoolId pool : pools) {
    const double s = score(pool);
    if (s < best_score || (s == best_score && pool < best)) {
      best = pool;
      best_score = s;
    }
  }
  if (best == current || (current.valid() && score(current) <= best_score)) {
    return std::nullopt;
  }
  return best;
}

}  // namespace netbatch::core

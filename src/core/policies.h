// The paper's dynamic rescheduling policies (§3).
//
// Five named schemes are evaluated:
//   NoRes           - never reschedule (the NetBatch baseline)
//   ResSusUtil      - restart suspended jobs at the least-utilized pool
//   ResSusRand      - restart suspended jobs at a random pool
//   ResSusWaitUtil  - ResSusUtil + move jobs waiting > threshold to the
//                     least-utilized pool
//   ResSusWaitRand  - ResSusRand + move jobs waiting > threshold to a
//                     random pool
// All are instances of one composite policy: a selector for suspension
// events plus an optional selector/threshold for wait-queue timeouts.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "cluster/interfaces.h"
#include "core/pool_selector.h"

namespace netbatch::core {

// The paper's NoRes baseline: jobs stay suspended or queued where they are.
class NoResPolicy final : public cluster::ReschedulingPolicy {
 public:
  std::optional<PoolId> OnSuspended(const cluster::Job& job,
                                    const cluster::ClusterView& view) override {
    (void)job;
    (void)view;
    return std::nullopt;
  }
};

// Composite policy: rescheduling of suspended jobs via `suspend_selector`,
// plus (optionally) rescheduling of waiting jobs via `wait_selector` once
// they have queued for `wait_threshold`.
class CompositeReschedulingPolicy final : public cluster::ReschedulingPolicy {
 public:
  // `suspend_selector` may be null (wait-only rescheduling);
  // `wait_selector` null disables wait rescheduling. With `duplicate` set,
  // suspension decisions launch a duplicate in the alternate pool instead
  // of restarting (the paper's §5 duplication extension).
  CompositeReschedulingPolicy(std::unique_ptr<PoolSelector> suspend_selector,
                              std::unique_ptr<PoolSelector> wait_selector,
                              Ticks wait_threshold, bool duplicate = false);

  std::optional<PoolId> OnSuspended(const cluster::Job& job,
                                    const cluster::ClusterView& view) override;
  std::optional<Ticks> WaitRescheduleThreshold() const override;
  std::optional<PoolId> OnWaitTimeout(const cluster::Job& job,
                                      const cluster::ClusterView& view) override;
  bool DuplicateInsteadOfRestart() const override { return duplicate_; }

  // Checkpoint/restore: concatenation of the two selectors' states, each
  // length-prefixed (u32 LE). Null selectors contribute a zero length, so
  // the blob shape also validates the policy was rebuilt with the same
  // selector arrangement.
  void ExportState(std::vector<std::uint8_t>& out) const override;
  bool ImportState(const std::uint8_t* data, std::size_t size) override;

 private:
  std::unique_ptr<PoolSelector> suspend_selector_;
  std::unique_ptr<PoolSelector> wait_selector_;
  Ticks wait_threshold_;
  bool duplicate_;
};

// The paper's scheme names, used by benches and reports.
enum class PolicyKind {
  kNoRes,
  kResSusUtil,
  kResSusRand,
  kResSusWaitUtil,
  kResSusWaitRand,
};

const char* ToString(PolicyKind kind);

// Inverse of ToString: parses one of the five scheme names exactly as
// ToString renders them ("NoRes", "ResSusUtil", ...). Unknown names yield
// std::nullopt; ParsePolicyKind(ToString(k)) == k for every kind.
std::optional<PolicyKind> ParsePolicyKind(std::string_view name);

// Every named policy kind, in ToString/table order. Lets callers (CLI flag
// validation, sweeps over "all policies") enumerate without hand-written
// lists that silently go stale when a kind is added.
inline constexpr PolicyKind kAllPolicyKinds[] = {
    PolicyKind::kNoRes,          PolicyKind::kResSusUtil,
    PolicyKind::kResSusRand,     PolicyKind::kResSusWaitUtil,
    PolicyKind::kResSusWaitRand,
};

// Knobs shared by the factory. The paper sets the wait threshold to 30
// minutes, "about twice the expected average waiting time in the original
// system" (§3.3).
struct PolicyOptions {
  Ticks wait_threshold = MinutesToTicks(30);
  std::uint64_t seed = 0x9e3779b9u;  // for the random selectors
  // Inter-site rescheduling (paper §5): selectors ignore the job's
  // candidate-pool restriction and consider every pool in the cluster.
  bool cross_site = false;
};

// Builds one of the paper's five policies.
std::unique_ptr<cluster::ReschedulingPolicy> MakePolicy(
    PolicyKind kind, const PolicyOptions& options = {});

// Extension (paper §5): "DupSusUtil" — like ResSusUtil, but a suspended
// job's alternate-pool copy runs as a duplicate racing the suspended
// original; the first to finish wins. Keeps the original's progress as a
// hedge at the cost of duplicated execution.
std::unique_ptr<cluster::ReschedulingPolicy> MakeDuplicationPolicy(
    const PolicyOptions& options = {});

}  // namespace netbatch::core

// Alternate-pool selection strategies.
//
// A rescheduling decision reduces to "which pool should this job move to,
// if any?". The paper evaluates two selectors — lowest-utilization and
// random (§3.2) — and motivates richer ones as future work ("multiple
// metrics (e.g., utilization, queue lengths, prediction of job completion
// times within a pool)", §5); this file implements all of them behind one
// interface so policies can mix and match.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/job.h"
#include "cluster/view.h"
#include "common/rng.h"

namespace netbatch::core {

class PoolSelector {
 public:
  virtual ~PoolSelector() = default;

  // Chooses an alternate pool for `job`, currently located in `current`.
  // Implementations must only return pools that are eligible for the job
  // (view.PoolEligible). std::nullopt means "stay where you are".
  virtual std::optional<PoolId> Select(const cluster::Job& job,
                                       PoolId current,
                                       const cluster::ClusterView& view) = 0;

  // Opaque decision-state capture for daemon checkpoint/restore (see
  // cluster::InitialScheduler). Only RandomSelector carries state.
  virtual void ExportState(std::vector<std::uint8_t>& out) const {
    (void)out;
  }
  virtual bool ImportState(const std::uint8_t* data, std::size_t size) {
    (void)data;
    return size == 0;
  }
};

// Candidate pools of `job` that are eligible in `view` (helper for all
// selectors). Includes `current` — selectors decide whether to exclude it.
// With `ignore_candidate_restriction`, every pool in the cluster is
// considered (inter-site rescheduling, paper §5): the job is resubmitted
// beyond its own site's pools, typically paying a cross-site transfer cost
// (SimulationOptions::transfer_matrix).
std::vector<PoolId> EligibleCandidatePools(
    const cluster::Job& job, const cluster::ClusterView& view,
    bool ignore_candidate_restriction = false);

// Picks the candidate pool with the lowest utilization. Returns
// std::nullopt when the current pool already has the lowest utilization —
// the paper's retain rule: "if all alternate pools are even more utilized
// than the current pool, ResSusUtil will simply retain the suspended job
// in its current pool" (§3.2.1).
class LowestUtilizationSelector final : public PoolSelector {
 public:
  // `retain_if_current_best` = false disables the retain rule (the job is
  // moved to the least-utilized *alternate* even when its own pool is the
  // least utilized); the ablation bench shows the rule is what keeps
  // rescheduling from backfiring under cluster-wide saturation.
  // `cross_site` widens the choice to every pool in the cluster (paper §5
  // inter-site rescheduling).
  explicit LowestUtilizationSelector(bool retain_if_current_best = true,
                                     bool cross_site = false)
      : retain_if_current_best_(retain_if_current_best),
        cross_site_(cross_site) {}

  std::optional<PoolId> Select(const cluster::Job& job, PoolId current,
                               const cluster::ClusterView& view) override;

 private:
  bool retain_if_current_best_;
  bool cross_site_;
};

// Picks a uniformly random candidate pool other than the current one
// ("a randomly selected pool among all candidate pools", §3.2). Requires
// no pool statistics at all — the property that makes the paper's
// decentralized, job-driven rescheduling possible (§3.3.2).
// `cross_site` widens the choice to every pool in the cluster, matching
// LowestUtilizationSelector's inter-site mode (paper §5).
class RandomSelector final : public PoolSelector {
 public:
  explicit RandomSelector(std::uint64_t seed, bool cross_site = false)
      : rng_(seed), cross_site_(cross_site) {}

  std::optional<PoolId> Select(const cluster::Job& job, PoolId current,
                               const cluster::ClusterView& view) override;

  // The selector's only state is its RNG position; 32 bytes, little-endian.
  void ExportState(std::vector<std::uint8_t>& out) const override {
    for (const std::uint64_t word : rng_.SaveState()) {
      for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(word >> (8 * i)));
      }
    }
  }
  bool ImportState(const std::uint8_t* data, std::size_t size) override {
    if (size != 32) return false;
    std::array<std::uint64_t, 4> state{};
    for (int w = 0; w < 4; ++w) {
      for (int i = 0; i < 8; ++i) {
        state[w] |= static_cast<std::uint64_t>(data[w * 8 + i]) << (8 * i);
      }
    }
    rng_.LoadState(state);
    return true;
  }

 private:
  Rng rng_;
  bool cross_site_;
};

// Extension (paper §5 future work): picks the candidate with the shortest
// wait queue, breaking ties by utilization, then pool id. Returns
// std::nullopt when the current pool is already best.
class ShortestQueueSelector final : public PoolSelector {
 public:
  std::optional<PoolId> Select(const cluster::Job& job, PoolId current,
                               const cluster::ClusterView& view) override;
};

// Extension (paper §5 future work): scores each pool by a crude predicted
// start delay — queue length weighted by how loaded the pool is — and
// picks the minimum. Combines both metrics the paper names (utilization
// and queue length).
class PredictedDelaySelector final : public PoolSelector {
 public:
  std::optional<PoolId> Select(const cluster::Job& job, PoolId current,
                               const cluster::ClusterView& view) override;
};

}  // namespace netbatch::core

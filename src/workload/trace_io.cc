#include "workload/trace_io.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "common/check.h"
#include "common/csv.h"

namespace netbatch::workload {
namespace {

constexpr std::string_view kHeader =
    "job_id,task_id,submit_ticks,priority,cores,memory_mb,runtime_ticks,"
    "owner,pools";

std::int64_t ParseInt(std::string_view s) {
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  NETBATCH_CHECK(ec == std::errc{} && ptr == s.data() + s.size(),
                 "malformed integer field in trace");
  return value;
}

std::string PoolsField(const JobSpec& job) {
  std::string out;
  for (std::size_t i = 0; i < job.candidate_pools.size(); ++i) {
    if (i > 0) out += ';';
    out += std::to_string(job.candidate_pools[i].value());
  }
  return out;
}

std::vector<PoolId> ParsePools(std::string_view field) {
  std::vector<PoolId> pools;
  std::size_t start = 0;
  while (start < field.size()) {
    std::size_t end = field.find(';', start);
    if (end == std::string_view::npos) end = field.size();
    pools.push_back(PoolId(
        static_cast<PoolId::ValueType>(ParseInt(field.substr(start, end - start)))));
    start = end + 1;
  }
  return pools;
}

}  // namespace

void WriteTrace(const Trace& trace, std::ostream& out) {
  out << kHeader << '\n';
  CsvWriter writer(out);
  for (const JobSpec& job : trace.jobs()) {
    writer.WriteRow({
        std::to_string(job.id.value()),
        job.task.valid() ? std::to_string(job.task.value()) : std::string{},
        std::to_string(job.submit_time),
        std::to_string(job.priority),
        std::to_string(job.cores),
        std::to_string(job.memory_mb),
        std::to_string(job.runtime),
        std::to_string(job.owner),
        PoolsField(job),
    });
  }
}

void WriteTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  NETBATCH_CHECK(static_cast<bool>(out), "cannot open trace file for write");
  WriteTrace(trace, out);
}

Trace ReadTrace(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto rows = ParseCsv(buffer.str());
  NETBATCH_CHECK(!rows.empty(), "empty trace file");

  // Reconstruct the header line for comparison.
  std::string header;
  for (std::size_t i = 0; i < rows[0].size(); ++i) {
    if (i > 0) header += ',';
    header += rows[0][i];
  }
  NETBATCH_CHECK(header == kHeader, "unexpected trace header");

  std::vector<JobSpec> jobs;
  jobs.reserve(rows.size() - 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    NETBATCH_CHECK(row.size() == 9, "trace row with wrong field count");
    JobSpec job;
    job.id = JobId(static_cast<JobId::ValueType>(ParseInt(row[0])));
    if (!row[1].empty()) {
      job.task = TaskId(static_cast<TaskId::ValueType>(ParseInt(row[1])));
    }
    job.submit_time = ParseInt(row[2]);
    job.priority = static_cast<Priority>(ParseInt(row[3]));
    job.cores = static_cast<std::int32_t>(ParseInt(row[4]));
    job.memory_mb = ParseInt(row[5]);
    job.runtime = ParseInt(row[6]);
    job.owner = static_cast<OwnerId>(ParseInt(row[7]));
    job.candidate_pools = ParsePools(row[8]);
    jobs.push_back(std::move(job));
  }
  return Trace(std::move(jobs));
}

Trace ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  NETBATCH_CHECK(static_cast<bool>(in), "cannot open trace file for read");
  return ReadTrace(in);
}

}  // namespace netbatch::workload

#include "workload/trace_io.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "common/check.h"
#include "common/csv.h"

namespace netbatch::workload {
namespace {

constexpr std::string_view kHeader =
    "job_id,task_id,submit_ticks,priority,cores,memory_mb,runtime_ticks,"
    "owner,pools";

// Parse failures name the line, the field, and the offending value: a
// corrupted multi-megabyte trace is undebuggable from a bare abort.
std::int64_t ParseInt(std::string_view s, std::size_t line_no,
                      std::string_view field) {
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  NETBATCH_CHECK(ec == std::errc{} && ptr == s.data() + s.size(),
                 "trace line " + std::to_string(line_no) +
                     ": malformed integer in field '" + std::string(field) +
                     "': '" + std::string(s) + "'");
  return value;
}

std::string PoolsField(const JobSpec& job) {
  std::string out;
  for (std::size_t i = 0; i < job.candidate_pools.size(); ++i) {
    if (i > 0) out += ';';
    out += std::to_string(job.candidate_pools[i].value());
  }
  return out;
}

std::vector<PoolId> ParsePools(std::string_view field, std::size_t line_no) {
  std::vector<PoolId> pools;
  std::size_t start = 0;
  while (start < field.size()) {
    std::size_t end = field.find(';', start);
    if (end == std::string_view::npos) end = field.size();
    pools.push_back(PoolId(static_cast<PoolId::ValueType>(
        ParseInt(field.substr(start, end - start), line_no, "pools"))));
    start = end + 1;
  }
  return pools;
}

}  // namespace

void WriteTrace(const Trace& trace, std::ostream& out) {
  out << kHeader << '\n';
  CsvWriter writer(out);
  for (const JobSpec& job : trace.jobs()) {
    writer.WriteRow({
        std::to_string(job.id.value()),
        job.task.valid() ? std::to_string(job.task.value()) : std::string{},
        std::to_string(job.submit_time),
        std::to_string(job.priority),
        std::to_string(job.cores),
        std::to_string(job.memory_mb),
        std::to_string(job.runtime),
        std::to_string(job.owner),
        PoolsField(job),
    });
  }
}

void WriteTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  NETBATCH_CHECK(static_cast<bool>(out), "cannot open trace file for write");
  WriteTrace(trace, out);
}

Trace ReadTrace(std::istream& in) {
  std::vector<JobSpec> jobs;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!saw_header) {
      NETBATCH_CHECK(line == kHeader,
                     "unexpected trace header at line " +
                         std::to_string(line_no) + ": '" + line + "'");
      saw_header = true;
      continue;
    }
    const auto row = ParseCsvLine(line);
    NETBATCH_CHECK(row.size() == 9,
                   "trace line " + std::to_string(line_no) + ": " +
                       std::to_string(row.size()) + " fields, expected 9");
    JobSpec job;
    job.id = JobId(
        static_cast<JobId::ValueType>(ParseInt(row[0], line_no, "job_id")));
    if (!row[1].empty()) {
      job.task = TaskId(
          static_cast<TaskId::ValueType>(ParseInt(row[1], line_no, "task_id")));
    }
    job.submit_time = ParseInt(row[2], line_no, "submit_ticks");
    job.priority =
        static_cast<Priority>(ParseInt(row[3], line_no, "priority"));
    job.cores = static_cast<std::int32_t>(ParseInt(row[4], line_no, "cores"));
    job.memory_mb = ParseInt(row[5], line_no, "memory_mb");
    job.runtime = ParseInt(row[6], line_no, "runtime_ticks");
    job.owner = static_cast<OwnerId>(ParseInt(row[7], line_no, "owner"));
    job.candidate_pools = ParsePools(row[8], line_no);
    jobs.push_back(std::move(job));
  }
  NETBATCH_CHECK(saw_header, "empty trace file");
  return Trace(std::move(jobs));
}

Trace ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  NETBATCH_CHECK(static_cast<bool>(in), "cannot open trace file for read");
  return ReadTrace(in);
}

}  // namespace netbatch::workload

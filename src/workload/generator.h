// Synthetic NetBatch-like trace generation.
//
// The paper's evaluation replays a proprietary year-long Intel trace; we
// cannot obtain it, so this generator regenerates its *structure* (see
// DESIGN.md §2):
//
//   * a steady base of low-priority jobs (Poisson arrivals, all pools
//     eligible) with heavy-tailed runtimes (lognormal body + bounded-Pareto
//     tail — the paper observes jobs needing >100k minutes, Fig. 2);
//   * one or more streams of high-priority jobs whose arrival rate is
//     modulated by an on/off Markov process ("bursty in nature ... last
//     from several hours to a week", §2.3), each pinned to a small set of
//     candidate pools ("configured to only run in specific sets of physical
//     pools", §2.3);
//   * heterogeneous per-job core and memory demands.
//
// All sampling is driven by a single seed; the same config + seed always
// yields the identical trace.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "workload/trace.h"

namespace netbatch::workload {

// One stream of bursty high-priority arrivals with pool affinity.
struct BurstStreamConfig {
  double jobs_per_minute_on = 0;   // arrival rate during a burst
  double jobs_per_minute_off = 0;  // trickle rate between bursts
  double mean_burst_minutes = 12 * 60;   // expected burst length
  double mean_gap_minutes = 3 * 24 * 60; // expected quiet gap
  std::vector<PoolId> target_pools;      // candidate pools for these jobs
  Priority priority = kHighPriority;
  // Business group submitting this stream (paper 2.2 ownership); its jobs
  // may preempt on machines the group owns.
  OwnerId owner = kNoOwner;

  // When non-empty, bursts occur exactly in these [start, start+length)
  // windows (minutes) instead of the random on/off process. Week-long
  // evaluation scenarios use this to reproduce the paper's setup — a window
  // chosen *because* it "captures a typical burst of high-priority jobs"
  // (§3.1) — without burst-count variance across seeds.
  struct Window {
    double start_minute = 0;
    double length_minutes = 0;
  };
  std::vector<Window> scheduled_bursts;
};

// The runtime (service demand) model, in minutes at unit machine speed.
struct RuntimeModel {
  double lognormal_mu = 4.6;    // exp(4.6) ~ 100 min median body
  double lognormal_sigma = 1.4; // broad body
  double tail_probability = 0.02;  // chance of a bounded-Pareto tail draw
  double tail_alpha = 1.1;         // tail heaviness
  double min_minutes = 1;
  double max_minutes = 100000;     // paper observes >100k-minute jobs
};

struct GeneratorConfig {
  std::uint64_t seed = 1;
  Ticks duration = kTicksPerWeek;
  std::uint32_t num_pools = 20;

  // Low-priority base load.
  double low_jobs_per_minute = 10.0;
  RuntimeModel low_runtime;
  // Diurnal modulation of the low-priority arrival rate: the instantaneous
  // rate is low_jobs_per_minute * (1 + A * sin(2*pi*t/day)), A in [0, 1).
  // Engineering submission patterns follow the working day; the year-long
  // scenario uses this to give Fig. 4's utilization curve its daily ripple.
  double diurnal_amplitude = 0.0;

  // Virtual-pool-manager structure (paper §2.1, Fig. 1): each site's VPM is
  // connected to a subset of the physical pools, and a job submitted at
  // that site can only run in those pools. Low-priority jobs pick a site
  // uniformly and inherit its pool set as their candidate list. Empty means
  // a single site connected to every pool (candidate lists stay empty).
  std::vector<std::vector<PoolId>> sites;

  // High-priority burst streams.
  std::vector<BurstStreamConfig> bursts;
  RuntimeModel high_runtime;  // typically shorter than low-priority work

  // Resource demands: P(cores = core_choices[i]) = core_weights[i].
  // Low-priority jobs are mostly small...
  std::vector<std::int32_t> core_choices{1, 2, 4, 8};
  std::vector<double> core_weights{0.60, 0.25, 0.10, 0.05};
  // ...while high-priority (owner) chip-simulation batches are wider.
  std::vector<std::int32_t> high_core_choices{2, 4, 8};
  std::vector<double> high_core_weights{0.35, 0.45, 0.20};
  std::int64_t memory_per_core_mb_lo = 1024;
  std::int64_t memory_per_core_mb_hi = 4096;

  // When > 0, consecutive low-priority jobs are grouped into logical tasks
  // of this size (paper §2.2); 0 disables task grouping.
  std::uint32_t task_size = 0;
};

// Generates the full trace for `config`. Deterministic in (config, seed).
Trace GenerateTrace(const GeneratorConfig& config);

// Expected offered load of the config, in core-minutes per minute. Useful
// for sizing clusters to a target utilization:
//   utilization ~= OfferedCoreMinutesPerMinute / total_cores.
double OfferedCoreMinutesPerMinute(const GeneratorConfig& config);

}  // namespace netbatch::workload

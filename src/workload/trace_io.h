// Trace serialization.
//
// Traces round-trip through CSV so experiments can be re-run on the exact
// submissions of a previous run, shared between binaries, or inspected with
// standard tools. Column layout:
//
//   job_id,task_id,submit_ticks,priority,cores,memory_mb,runtime_ticks,pools
//
// `task_id` is empty for task-less jobs; `pools` is a ';'-separated list of
// pool indices, empty meaning "any pool".
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.h"

namespace netbatch::workload {

void WriteTrace(const Trace& trace, std::ostream& out);
void WriteTraceFile(const Trace& trace, const std::string& path);

// Parses a trace; aborts on malformed input (header mismatch, bad fields) —
// a silently mis-parsed trace would corrupt every downstream result. The
// diagnostic names the line number and the offending field/value. Blank
// lines and CRLF line endings are tolerated.
Trace ReadTrace(std::istream& in);
Trace ReadTraceFile(const std::string& path);

}  // namespace netbatch::workload

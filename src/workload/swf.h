// Standard Workload Format (SWF) import.
//
// The Parallel Workloads Archive publishes real cluster logs in SWF: `;`-
// prefixed header comments followed by whitespace-separated 18-field job
// records (job, submit, wait, run, procs, avg-cpu, used-mem, req-procs,
// req-time, req-mem, status, user, group, executable, queue, partition,
// preceding-job, think-time), times in seconds, -1 meaning "unknown".
//
// `ReadSwfTrace` maps such a log onto the NetBatchSim `Trace` model so any
// PWA workload can drive the simulator directly or be fitted into a named
// generator preset (see calib/fit.h):
//
//   * submit/run seconds become ticks (one tick is one second), rebased so
//     the earliest imported submission is t = 0;
//   * partition ids (queue ids as fallback) are densely renumbered into
//     PoolIds and become the job's single-entry candidate-pool list;
//   * group ids (user ids as fallback) are densely renumbered into OwnerIds;
//   * records are status-filtered: completed jobs (status 1, partial 2-4,
//     unknown -1) are kept, failed (0) and cancelled (5) are dropped unless
//     the options say otherwise, and records without a positive runtime or
//     processor count are unusable for replay and counted as invalid.
//
// The parser tolerates CRLF line endings, blank lines, and unknown header
// fields; a malformed *record* aborts with the line number and offending
// field, like the CSV trace reader.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/trace.h"

namespace netbatch::workload {

struct SwfImportOptions {
  bool include_failed = false;     // status 0
  bool include_cancelled = false;  // status 5
  // Jobs submitted to these SWF queue numbers import as kHighPriority
  // (SWF has no priority field; queues are how archives express service
  // classes). Everything else imports as kLowPriority.
  std::vector<std::int64_t> high_priority_queues;
};

struct SwfImportResult {
  Trace trace;
  std::size_t total_records = 0;    // data lines seen
  std::size_t skipped_status = 0;   // dropped by the status filter
  std::size_t skipped_invalid = 0;  // no positive runtime / processor count
  std::size_t pool_count = 0;       // distinct partitions/queues mapped
  std::size_t owner_count = 0;      // distinct groups/users mapped
};

SwfImportResult ReadSwfTrace(std::istream& in,
                             const SwfImportOptions& options = {});
SwfImportResult ReadSwfTraceFile(const std::string& path,
                                 const SwfImportOptions& options = {});

}  // namespace netbatch::workload

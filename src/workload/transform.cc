#include "workload/transform.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace netbatch::workload {

Trace ShiftToStart(const Trace& trace, Ticks new_start) {
  if (trace.empty()) return Trace{};
  const Ticks delta = new_start - trace[0].submit_time;
  std::vector<JobSpec> jobs(trace.jobs().begin(), trace.jobs().end());
  for (JobSpec& job : jobs) {
    job.submit_time += delta;
    NETBATCH_CHECK(job.submit_time >= 0, "shift would move jobs before t=0");
  }
  return Trace(std::move(jobs));
}

Trace ScaleRuntimes(const Trace& trace, double factor) {
  NETBATCH_CHECK(factor > 0, "runtime scale factor must be positive");
  std::vector<JobSpec> jobs(trace.jobs().begin(), trace.jobs().end());
  for (JobSpec& job : jobs) {
    job.runtime = std::max<Ticks>(
        1, static_cast<Ticks>(std::llround(
               static_cast<double>(job.runtime) * factor)));
  }
  return Trace(std::move(jobs));
}

Trace ThinArrivals(const Trace& trace, double keep_fraction,
                   std::uint64_t seed) {
  NETBATCH_CHECK(keep_fraction >= 0 && keep_fraction <= 1,
                 "keep fraction must be in [0, 1]");
  Rng rng(seed);
  std::vector<JobSpec> jobs;
  for (const JobSpec& job : trace.jobs()) {
    if (rng.Bernoulli(keep_fraction)) jobs.push_back(job);
  }
  return Trace(std::move(jobs));
}

Trace FilterByPriority(const Trace& trace, Priority priority) {
  std::vector<JobSpec> jobs;
  for (const JobSpec& job : trace.jobs()) {
    if (job.priority == priority) jobs.push_back(job);
  }
  return Trace(std::move(jobs));
}

Trace Merge(const Trace& a, const Trace& b, bool rebase_b_ids) {
  std::vector<JobSpec> jobs(a.jobs().begin(), a.jobs().end());
  JobId::ValueType next_id = 0;
  for (const JobSpec& job : a.jobs()) {
    next_id = std::max(next_id, job.id.value() + 1);
  }
  for (JobSpec job : b.jobs()) {
    if (rebase_b_ids) job.id = JobId(next_id++);
    jobs.push_back(std::move(job));
  }
  // Trace's constructor validates id uniqueness across the merge.
  return Trace(std::move(jobs));
}

}  // namespace netbatch::workload

#include "workload/trace.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace netbatch::workload {

Trace::Trace(std::vector<JobSpec> jobs) : jobs_(std::move(jobs)) {
  std::sort(jobs_.begin(), jobs_.end(),
            [](const JobSpec& a, const JobSpec& b) {
              if (a.submit_time != b.submit_time)
                return a.submit_time < b.submit_time;
              return a.id < b.id;
            });
  std::unordered_set<JobId> seen;
  seen.reserve(jobs_.size());
  for (const JobSpec& job : jobs_) {
    NETBATCH_CHECK(job.id.valid(), "trace job without id");
    NETBATCH_CHECK(seen.insert(job.id).second, "duplicate job id in trace");
    NETBATCH_CHECK(job.submit_time >= 0, "negative submit time");
    NETBATCH_CHECK(job.cores > 0, "job must require at least one core");
    NETBATCH_CHECK(job.memory_mb > 0, "job must require memory");
    NETBATCH_CHECK(job.runtime > 0, "job must have positive runtime");
  }
}

TraceStats Trace::Stats() const {
  TraceStats stats;
  stats.job_count = jobs_.size();
  if (jobs_.empty()) return stats;
  stats.first_submit = jobs_.front().submit_time;
  stats.last_submit = jobs_.back().submit_time;
  double runtime_sum = 0;
  double cores_sum = 0;
  for (const JobSpec& job : jobs_) {
    if (job.priority > kLowPriority) ++stats.high_priority_count;
    runtime_sum += TicksToMinutes(job.runtime);
    cores_sum += job.cores;
    stats.total_work_core_minutes +=
        static_cast<std::int64_t>(TicksToMinutes(job.runtime)) * job.cores;
  }
  stats.mean_runtime_minutes = runtime_sum / static_cast<double>(jobs_.size());
  stats.mean_cores = cores_sum / static_cast<double>(jobs_.size());
  return stats;
}

Trace Trace::Window(Ticks begin, Ticks end) const {
  std::vector<JobSpec> selected;
  for (const JobSpec& job : jobs_) {
    if (job.submit_time >= begin && job.submit_time < end) {
      selected.push_back(job);
    }
  }
  return Trace(std::move(selected));
}

}  // namespace netbatch::workload

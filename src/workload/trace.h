// A job trace: the complete set of submissions driving one simulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "workload/job_spec.h"

namespace netbatch::workload {

// Summary statistics of a trace, for sanity checks and reports.
struct TraceStats {
  std::size_t job_count = 0;
  std::size_t high_priority_count = 0;
  Ticks first_submit = 0;
  Ticks last_submit = 0;
  double mean_runtime_minutes = 0;
  double mean_cores = 0;
  std::int64_t total_work_core_minutes = 0;  // sum(runtime * cores)
};

// An immutable, submit-time-ordered collection of JobSpecs.
class Trace {
 public:
  Trace() = default;

  // Takes ownership of `jobs`; sorts by (submit_time, id) and validates
  // that ids are unique and fields are in-range (aborts on violation —
  // a malformed trace invalidates any experiment built on it).
  explicit Trace(std::vector<JobSpec> jobs);

  std::span<const JobSpec> jobs() const { return jobs_; }
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  const JobSpec& operator[](std::size_t i) const { return jobs_[i]; }

  TraceStats Stats() const;

  // A new trace containing only jobs with submit_time in [begin, end).
  // Ids are preserved. Mirrors the paper's selection of a one-week busy
  // window out of the year-long trace (§3.1).
  Trace Window(Ticks begin, Ticks end) const;

 private:
  std::vector<JobSpec> jobs_;
};

}  // namespace netbatch::workload

#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <span>

#include "common/check.h"
#include "common/distributions.h"
#include "common/rng.h"

namespace netbatch::workload {
namespace {

// Samples a runtime in ticks from the lognormal-body / Pareto-tail mix.
Ticks SampleRuntime(Rng& rng, const RuntimeModel& model) {
  double minutes;
  // Tail draws start where the body is already rare (~p95 of the body), so
  // the mix produces the paper's ">100k minute" stragglers without shifting
  // the median. When the configured cap sits below the tail's start, the
  // tail degenerates and only the body is sampled.
  const double tail_lo =
      std::max(std::exp(model.lognormal_mu + 1.65 * model.lognormal_sigma),
               model.min_minutes);
  if (tail_lo < model.max_minutes &&
      rng.Bernoulli(model.tail_probability)) {
    minutes =
        SampleBoundedPareto(rng, tail_lo, model.max_minutes, model.tail_alpha);
  } else {
    minutes = SampleLognormal(rng, model.lognormal_mu, model.lognormal_sigma);
  }
  minutes = std::clamp(minutes, model.min_minutes, model.max_minutes);
  return std::max<Ticks>(1, static_cast<Ticks>(minutes * kTicksPerMinute));
}

std::int32_t SampleCores(Rng& rng, std::span<const std::int32_t> choices,
                         std::span<const double> weights) {
  const double u = rng.NextDouble();
  double cum = 0;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    cum += weights[i];
    if (u < cum) return choices[i];
  }
  return choices.back();
}

std::int64_t SampleMemory(Rng& rng, const GeneratorConfig& config,
                          std::int32_t cores) {
  const std::int64_t per_core = rng.UniformInt(config.memory_per_core_mb_lo,
                                               config.memory_per_core_mb_hi);
  return per_core * cores;
}

// Mean of the runtime model in minutes (analytic lognormal mean; the
// truncated tail contribution is approximated by the bounded-Pareto mean).
double MeanRuntimeMinutes(const RuntimeModel& m) {
  const double body_mean =
      std::exp(m.lognormal_mu + m.lognormal_sigma * m.lognormal_sigma / 2);
  const double tail_lo =
      std::max(std::exp(m.lognormal_mu + 1.65 * m.lognormal_sigma),
               m.min_minutes);
  double tail_mean;
  if (std::abs(m.tail_alpha - 1.0) < 1e-9) {
    tail_mean = tail_lo * std::log(m.max_minutes / tail_lo);
  } else {
    const double a = m.tail_alpha;
    const double l = tail_lo, h = m.max_minutes;
    tail_mean = std::pow(l, a) / (1 - std::pow(l / h, a)) * (a / (a - 1)) *
                (1 / std::pow(l, a - 1) - 1 / std::pow(h, a - 1));
  }
  return (1 - m.tail_probability) * std::min(body_mean, m.max_minutes) +
         m.tail_probability * tail_mean;
}

double MeanCores(std::span<const std::int32_t> choices,
                 std::span<const double> weights) {
  double mean = 0;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    mean += choices[i] * weights[i];
  }
  return mean;
}

void ValidateConfig(const GeneratorConfig& config) {
  NETBATCH_CHECK(config.duration > 0, "generator duration must be positive");
  NETBATCH_CHECK(config.num_pools > 0, "generator needs at least one pool");
  NETBATCH_CHECK(
      config.diurnal_amplitude >= 0 && config.diurnal_amplitude < 1,
      "diurnal amplitude must be in [0, 1)");
  NETBATCH_CHECK(config.core_choices.size() == config.core_weights.size(),
                 "core_choices and core_weights must align");
  NETBATCH_CHECK(!config.core_choices.empty(), "no core choices configured");
  NETBATCH_CHECK(
      config.high_core_choices.size() == config.high_core_weights.size(),
      "high_core_choices and high_core_weights must align");
  NETBATCH_CHECK(!config.high_core_choices.empty(),
                 "no high-priority core choices configured");
  NETBATCH_CHECK(
      config.memory_per_core_mb_lo > 0 &&
          config.memory_per_core_mb_lo <= config.memory_per_core_mb_hi,
      "invalid memory-per-core range");
  for (const BurstStreamConfig& burst : config.bursts) {
    NETBATCH_CHECK(!burst.target_pools.empty(),
                   "burst stream needs target pools");
    for (PoolId pool : burst.target_pools) {
      NETBATCH_CHECK(pool.value() < config.num_pools,
                     "burst target pool out of range");
    }
  }
  for (const auto& site : config.sites) {
    NETBATCH_CHECK(!site.empty(), "site without pools");
    for (PoolId pool : site) {
      NETBATCH_CHECK(pool.value() < config.num_pools,
                     "site pool out of range");
    }
  }
}

}  // namespace

Trace GenerateTrace(const GeneratorConfig& config) {
  ValidateConfig(config);
  Rng root(config.seed);
  Rng low_rng = root.Fork();
  Rng resource_rng = root.Fork();

  std::vector<JobSpec> jobs;
  const auto duration_minutes = config.duration / kTicksPerMinute;
  jobs.reserve(static_cast<std::size_t>(
      (config.low_jobs_per_minute + 1) * static_cast<double>(duration_minutes)));

  JobId::ValueType next_id = 0;
  TaskId::ValueType next_task = 0;
  std::uint32_t jobs_in_current_task = 0;

  auto make_job = [&](Ticks submit, Priority priority,
                      const RuntimeModel& runtime_model,
                      std::vector<PoolId> pools, OwnerId owner = kNoOwner) {
    JobSpec job;
    job.id = JobId(next_id++);
    job.submit_time = submit;
    job.priority = priority;
    job.owner = owner;
    job.runtime = SampleRuntime(resource_rng, runtime_model);
    job.cores = priority > kLowPriority
                    ? SampleCores(resource_rng, config.high_core_choices,
                                  config.high_core_weights)
                    : SampleCores(resource_rng, config.core_choices,
                                  config.core_weights);
    job.memory_mb = SampleMemory(resource_rng, config, job.cores);
    job.candidate_pools = std::move(pools);
    if (priority == kLowPriority && config.task_size > 0) {
      job.task = TaskId(next_task);
      if (++jobs_in_current_task == config.task_size) {
        ++next_task;
        jobs_in_current_task = 0;
      }
    }
    return job;
  };

  // Low-priority base load: per-minute Poisson arrival counts (optionally
  // diurnally modulated), placed uniformly within the minute, each
  // submitted at a random site.
  constexpr double kMinutesPerDay = 24.0 * 60.0;
  for (std::int64_t minute = 0; minute < duration_minutes; ++minute) {
    const double rate =
        config.low_jobs_per_minute *
        (1.0 + config.diurnal_amplitude *
                   std::sin(2.0 * std::numbers::pi *
                            static_cast<double>(minute) / kMinutesPerDay));
    const std::int64_t arrivals = SamplePoisson(low_rng, std::max(0.0, rate));
    for (std::int64_t i = 0; i < arrivals; ++i) {
      const Ticks submit = minute * kTicksPerMinute +
                           low_rng.UniformInt(0, kTicksPerMinute - 1);
      std::vector<PoolId> pools;
      if (!config.sites.empty()) {
        pools = config.sites[low_rng.UniformIndex(config.sites.size())];
      }
      jobs.push_back(make_job(submit, kLowPriority, config.low_runtime,
                              std::move(pools)));
    }
  }

  // High-priority burst streams.
  for (const BurstStreamConfig& burst : config.bursts) {
    Rng stream_rng = root.Fork();
    MarkovModulatedBursts process(burst.mean_gap_minutes,
                                  burst.mean_burst_minutes, stream_rng.Fork());
    const auto scheduled_on = [&burst](double minute) {
      for (const BurstStreamConfig::Window& window : burst.scheduled_bursts) {
        if (minute >= window.start_minute &&
            minute < window.start_minute + window.length_minutes) {
          return true;
        }
      }
      return false;
    };
    for (std::int64_t minute = 0; minute < duration_minutes; ++minute) {
      const bool on = burst.scheduled_bursts.empty()
                          ? process.IsOnAt(static_cast<double>(minute))
                          : scheduled_on(static_cast<double>(minute));
      const double rate =
          on ? burst.jobs_per_minute_on : burst.jobs_per_minute_off;
      const std::int64_t arrivals = SamplePoisson(stream_rng, rate);
      for (std::int64_t i = 0; i < arrivals; ++i) {
        const Ticks submit = minute * kTicksPerMinute +
                             stream_rng.UniformInt(0, kTicksPerMinute - 1);
        jobs.push_back(make_job(submit, burst.priority, config.high_runtime,
                                burst.target_pools, burst.owner));
      }
    }
  }

  return Trace(std::move(jobs));
}

double OfferedCoreMinutesPerMinute(const GeneratorConfig& config) {
  double offered = config.low_jobs_per_minute *
                   MeanRuntimeMinutes(config.low_runtime) *
                   MeanCores(config.core_choices, config.core_weights);
  const double high_cores =
      MeanCores(config.high_core_choices, config.high_core_weights);
  const double duration_minutes =
      static_cast<double>(config.duration) / kTicksPerMinute;
  for (const BurstStreamConfig& burst : config.bursts) {
    double on_fraction;
    if (burst.scheduled_bursts.empty()) {
      on_fraction = burst.mean_burst_minutes /
                    (burst.mean_burst_minutes + burst.mean_gap_minutes);
    } else {
      double scheduled = 0;
      for (const auto& window : burst.scheduled_bursts) {
        scheduled += window.length_minutes;
      }
      on_fraction = std::min(1.0, scheduled / duration_minutes);
    }
    const double mean_rate = on_fraction * burst.jobs_per_minute_on +
                             (1 - on_fraction) * burst.jobs_per_minute_off;
    offered +=
        mean_rate * MeanRuntimeMinutes(config.high_runtime) * high_cores;
  }
  return offered;
}

}  // namespace netbatch::workload

// Trace transformation utilities.
//
// Trace-driven studies routinely derive variants of a base trace: load
// scaling (speed up / thin out arrivals), windowing to a busy period (the
// paper analyses jobs "with submission time between 76000 and 86080
// minutes"), class filtering, and merging independently generated streams.
// These helpers keep such derivations deterministic and id-safe.
#pragma once

#include <cstdint>

#include "workload/trace.h"

namespace netbatch::workload {

// A new trace whose submissions are shifted so the earliest lands at
// `new_start` (relative spacing preserved).
Trace ShiftToStart(const Trace& trace, Ticks new_start);

// A new trace with every runtime multiplied by `factor` (> 0); runtimes are
// clamped to at least one tick.
Trace ScaleRuntimes(const Trace& trace, double factor);

// A deterministic thinning: keeps each job independently with probability
// `keep_fraction` using `seed`. Models reducing trace load without
// changing its temporal structure.
Trace ThinArrivals(const Trace& trace, double keep_fraction,
                   std::uint64_t seed);

// Only jobs matching the priority class.
Trace FilterByPriority(const Trace& trace, Priority priority);

// Merges two traces into one. Job ids must not collide; the ids of `b` can
// be re-based with `rebase_b_ids` when they do.
Trace Merge(const Trace& a, const Trace& b, bool rebase_b_ids = false);

}  // namespace netbatch::workload

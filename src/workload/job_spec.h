// The static description of one job, as recorded in a NetBatch trace.
//
// Matches the paper's description of trace contents (§3.1): "computing
// resource and memory requirements, submission time and priority", plus the
// candidate-pool restriction that drives the paper's key observation that
// latency-sensitive jobs "are usually configured to only run in specific
// sets of physical pools" (§2.3). `task` groups jobs into the paper's
// logical tasks (§2.2), where a task is only useful once (almost) all of
// its jobs have completed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/time.h"

namespace netbatch::workload {

// Job priority. The paper's NetBatch distinguishes high-priority (owner /
// latency-sensitive) from low-priority jobs; we keep an integer level so
// nested preemption chains can be expressed. Higher value preempts lower.
using Priority = std::int32_t;

inline constexpr Priority kLowPriority = 0;
inline constexpr Priority kHighPriority = 10;

// Business-group ownership (paper §2.2): a group that "owns" a machine may
// preempt other work on it. kNoOwner on a job means it claims no ownership
// rights; kNoOwner on a machine means anyone may preempt there (subject to
// priority).
using OwnerId = std::int32_t;
inline constexpr OwnerId kNoOwner = -1;

struct JobSpec {
  JobId id;
  TaskId task;             // invalid() when the job is not part of a task
  Ticks submit_time = 0;
  Priority priority = kLowPriority;
  std::int32_t cores = 1;          // CPU cores required
  std::int64_t memory_mb = 1024;   // resident memory required
  Ticks runtime = 0;               // work at unit machine speed, in ticks
  OwnerId owner = kNoOwner;        // business group paying for this job
  // Pools this job may run in; empty means "any pool".
  std::vector<PoolId> candidate_pools;

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

}  // namespace netbatch::workload

#include "workload/swf.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>
#include <string_view>

#include "common/check.h"

namespace netbatch::workload {
namespace {

// 1-based SWF field indices, per the PWA format definition.
enum SwfField : std::size_t {
  kJobNumber = 0,
  kSubmitSeconds = 1,
  kWaitSeconds = 2,
  kRunSeconds = 3,
  kAllocatedProcs = 4,
  kAvgCpuSeconds = 5,
  kUsedMemoryKb = 6,
  kRequestedProcs = 7,
  kRequestedSeconds = 8,
  kRequestedMemoryKb = 9,
  kStatus = 10,
  kUserId = 11,
  kGroupId = 12,
  kExecutable = 13,
  kQueue = 14,
  kPartition = 15,
  kPrecedingJob = 16,
  kThinkSeconds = 17,
};
constexpr std::size_t kSwfFieldCount = 18;

constexpr const char* kFieldNames[kSwfFieldCount] = {
    "job_number",      "submit_seconds",    "wait_seconds",
    "run_seconds",     "allocated_procs",   "avg_cpu_seconds",
    "used_memory_kb",  "requested_procs",   "requested_seconds",
    "requested_memory_kb", "status",        "user_id",
    "group_id",        "executable",        "queue",
    "partition",       "preceding_job",     "think_seconds",
};

std::vector<std::string_view> SplitWhitespace(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

// SWF fields are integers in the spec, but archives occasionally carry
// fractional values (average CPU time); parse as double and round.
double ParseField(std::string_view text, std::size_t field,
                  std::size_t line_no) {
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  NETBATCH_CHECK(end == copy.c_str() + copy.size() && !copy.empty(),
                 "swf line " + std::to_string(line_no) + ": field '" +
                     kFieldNames[field] + "' is not a number: '" + copy + "'");
  return value;
}

// The raw numeric content of one kept record, before id remapping.
struct SwfRecord {
  std::int64_t submit_seconds = 0;
  std::int64_t run_seconds = 0;
  std::int32_t procs = 1;
  std::int64_t memory_mb = 0;  // 0 = unknown, defaulted later
  std::int64_t pool_key = -1;  // partition (queue fallback); -1 = any pool
  std::int64_t owner_key = -1; // group (user fallback); -1 = no owner
  Priority priority = kLowPriority;
};

}  // namespace

SwfImportResult ReadSwfTrace(std::istream& in,
                             const SwfImportOptions& options) {
  SwfImportResult result;
  std::vector<SwfRecord> records;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view view = line;
    while (!view.empty() && (view.front() == ' ' || view.front() == '\t')) {
      view.remove_prefix(1);
    }
    if (view.empty()) continue;       // blank line
    if (view.front() == ';') continue;  // header comment — all fields are
                                        // informational; unknown ones too.

    ++result.total_records;
    const auto fields = SplitWhitespace(view);
    NETBATCH_CHECK(
        fields.size() >= kSwfFieldCount,
        "swf line " + std::to_string(line_no) + ": expected " +
            std::to_string(kSwfFieldCount) + " fields, got " +
            std::to_string(fields.size()));

    const auto get = [&](std::size_t field) {
      return ParseField(fields[field], field, line_no);
    };

    const auto status = static_cast<std::int64_t>(get(kStatus));
    const bool keep_status =
        status == 1 || status == -1 || (status >= 2 && status <= 4) ||
        (status == 0 && options.include_failed) ||
        (status == 5 && options.include_cancelled);
    if (!keep_status) {
      ++result.skipped_status;
      continue;
    }

    SwfRecord record;
    record.submit_seconds = static_cast<std::int64_t>(get(kSubmitSeconds));
    record.run_seconds =
        static_cast<std::int64_t>(std::llround(get(kRunSeconds)));
    double procs = get(kAllocatedProcs);
    if (procs <= 0) procs = get(kRequestedProcs);
    if (record.run_seconds <= 0 || procs <= 0 ||
        record.submit_seconds < 0) {
      ++result.skipped_invalid;
      continue;
    }
    record.procs = static_cast<std::int32_t>(procs);

    // Used memory is KB per processor; fall back to the request.
    double memory_kb = get(kUsedMemoryKb);
    if (memory_kb <= 0) memory_kb = get(kRequestedMemoryKb);
    if (memory_kb > 0) {
      record.memory_mb = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(
                 std::ceil(memory_kb * procs / 1024.0)));
    }

    const auto queue = static_cast<std::int64_t>(get(kQueue));
    const auto partition = static_cast<std::int64_t>(get(kPartition));
    record.pool_key = partition >= 0 ? partition : queue;
    const auto user = static_cast<std::int64_t>(get(kUserId));
    const auto group = static_cast<std::int64_t>(get(kGroupId));
    record.owner_key = group >= 0 ? group : user;
    if (std::find(options.high_priority_queues.begin(),
                  options.high_priority_queues.end(),
                  queue) != options.high_priority_queues.end()) {
      record.priority = kHighPriority;
    }
    records.push_back(record);
  }

  // Dense, deterministic id remapping: distinct raw keys in sorted order.
  std::map<std::int64_t, PoolId::ValueType> pool_map;
  std::map<std::int64_t, OwnerId> owner_map;
  for (const SwfRecord& record : records) {
    if (record.pool_key >= 0) pool_map.emplace(record.pool_key, 0);
    if (record.owner_key >= 0) owner_map.emplace(record.owner_key, 0);
  }
  PoolId::ValueType next_pool = 0;
  for (auto& [raw, id] : pool_map) id = next_pool++;
  OwnerId next_owner = 0;
  for (auto& [raw, id] : owner_map) id = next_owner++;
  result.pool_count = pool_map.size();
  result.owner_count = owner_map.size();

  std::int64_t base_seconds = 0;
  if (!records.empty()) {
    base_seconds = records.front().submit_seconds;
    for (const SwfRecord& record : records) {
      base_seconds = std::min(base_seconds, record.submit_seconds);
    }
  }

  std::vector<JobSpec> jobs;
  jobs.reserve(records.size());
  JobId::ValueType next_id = 0;
  for (const SwfRecord& record : records) {
    JobSpec job;
    job.id = JobId(next_id++);
    // One tick is one second, so SWF times map 1:1 onto the simulator
    // clock; rebase the trace to start at t = 0.
    job.submit_time = record.submit_seconds - base_seconds;
    job.runtime = record.run_seconds;
    job.priority = record.priority;
    job.cores = record.procs;
    job.memory_mb = record.memory_mb > 0
                        ? record.memory_mb
                        : static_cast<std::int64_t>(1024) * record.procs;
    job.owner = record.owner_key >= 0 ? owner_map.at(record.owner_key)
                                      : kNoOwner;
    if (record.pool_key >= 0) {
      job.candidate_pools = {PoolId(pool_map.at(record.pool_key))};
    }
    jobs.push_back(std::move(job));
  }
  result.trace = Trace(std::move(jobs));
  return result;
}

SwfImportResult ReadSwfTraceFile(const std::string& path,
                                 const SwfImportOptions& options) {
  std::ifstream in(path);
  NETBATCH_CHECK(static_cast<bool>(in), "cannot open swf file: " + path);
  return ReadSwfTrace(in, options);
}

}  // namespace netbatch::workload

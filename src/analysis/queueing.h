// Analytic queueing-theory reference formulas.
//
// Used to validate the simulator against closed-form results (the role the
// paper's reference [12] plays for ASCA: demonstrating the simulator
// "achieves the performance characteristics of the actual deployment").
// All formulas are for M/M/c: Poisson arrivals (rate lambda), exponential
// service (rate mu per server), c identical servers.
#pragma once

namespace netbatch::analysis {

// Offered load in Erlangs: a = lambda / mu.
double ErlangsOffered(double lambda, double mu);

// Erlang-B blocking probability for an M/M/c/c loss system; computed with
// the numerically stable recurrence (valid for any a > 0, c >= 0).
double ErlangB(double erlangs, int servers);

// Erlang-C probability that an arriving job must wait (M/M/c with infinite
// queue); requires lambda < c * mu for stability.
double ErlangC(double lambda, double mu, int servers);

// Mean wait in queue Wq for M/M/c: ErlangC / (c*mu - lambda).
double MeanQueueWait(double lambda, double mu, int servers);

// Mean number of jobs in the system (Little: L = lambda * (Wq + 1/mu)).
double MeanJobsInSystem(double lambda, double mu, int servers);

// Server utilization rho = lambda / (c * mu).
double ServerUtilization(double lambda, double mu, int servers);

}  // namespace netbatch::analysis

// Utilization / suspension time-series analysis (paper Fig. 4).
//
// The paper samples suspended-job counts and utilization every minute and
// aggregates to 100-minute means over a year of traces; these helpers do
// the same bucket aggregation over MetricsCollector samples.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "metrics/collector.h"

namespace netbatch::analysis {

struct BucketPoint {
  Ticks bucket_start = 0;
  double mean_utilization = 0;      // [0, 1]
  double mean_suspended_jobs = 0;
  double mean_waiting_jobs = 0;
};

// Aggregates per-minute samples into fixed-width buckets (the paper uses
// 100-minute buckets). Partial final buckets are averaged over the samples
// they contain.
std::vector<BucketPoint> AggregateSamples(
    std::span<const metrics::Sample> samples, Ticks bucket_width);

// Headline statistics of the utilization series (the paper reports ~40%
// average, typically 20%-60%).
struct UtilizationSummary {
  double mean = 0;
  double p10 = 0;
  double p90 = 0;
  double max_suspended_jobs = 0;
};
UtilizationSummary SummarizeUtilization(
    std::span<const metrics::Sample> samples);

// CSV rendering (bucket_start_min, utilization_pct, suspended, waiting)
// for the Fig. 4 bench binary.
std::string RenderTimeSeriesCsv(std::span<const BucketPoint> points);

}  // namespace netbatch::analysis

#include "analysis/pool_imbalance.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/histogram.h"
#include "common/table.h"

namespace netbatch::analysis {

ImbalanceSummary AnalyzePoolImbalance(
    std::span<const std::vector<float>> pool_utilization,
    std::span<const std::vector<std::uint32_t>> pool_queue_lengths,
    std::span<const double> cluster_utilization) {
  ImbalanceSummary summary;
  if (pool_utilization.empty()) return summary;
  const std::size_t samples = pool_utilization.front().size();
  NETBATCH_CHECK(pool_queue_lengths.size() == pool_utilization.size(),
                 "per-pool series must align");
  for (const auto& series : pool_utilization) {
    NETBATCH_CHECK(series.size() == samples, "per-pool series must align");
  }
  NETBATCH_CHECK(cluster_utilization.size() == samples,
                 "cluster series must align with pool series");

  // Per-pool aggregates.
  summary.per_pool.resize(pool_utilization.size());
  for (std::size_t p = 0; p < pool_utilization.size(); ++p) {
    PoolStats& stats = summary.per_pool[p];
    EmpiricalCdf cdf;
    cdf.Reserve(samples);
    double queue_sum = 0;
    for (std::size_t i = 0; i < samples; ++i) {
      cdf.Add(pool_utilization[p][i]);
      queue_sum += pool_queue_lengths[p][i];
      stats.max_queue_length =
          std::max(stats.max_queue_length,
                   static_cast<double>(pool_queue_lengths[p][i]));
    }
    if (samples > 0) {
      stats.mean_utilization = cdf.Mean();
      stats.p95_utilization = cdf.Quantile(0.95);
      stats.mean_queue_length = queue_sum / static_cast<double>(samples);
    }
  }

  // Sample-wise imbalance conditions.
  std::size_t imbalanced = 0, imbalanced_underloaded = 0;
  double spread_sum = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    float lo = 1.0f, hi = 0.0f;
    for (const auto& series : pool_utilization) {
      lo = std::min(lo, series[i]);
      hi = std::max(hi, series[i]);
    }
    spread_sum += static_cast<double>(hi - lo);
    const bool condition = hi >= 0.95f && lo <= 0.30f;
    if (condition) {
      ++imbalanced;
      if (cluster_utilization[i] < 0.60) ++imbalanced_underloaded;
    }
  }
  if (samples > 0) {
    const auto n = static_cast<double>(samples);
    summary.imbalanced_fraction = static_cast<double>(imbalanced) / n;
    summary.imbalanced_while_underloaded_fraction =
        static_cast<double>(imbalanced_underloaded) / n;
    summary.mean_utilization_spread = spread_sum / n;
  }
  return summary;
}

std::string RenderPoolImbalance(const ImbalanceSummary& summary) {
  std::ostringstream out;
  TextTable table({"Pool", "Mean util", "p95 util", "Mean queue",
                   "Max queue"});
  for (std::size_t p = 0; p < summary.per_pool.size(); ++p) {
    const PoolStats& stats = summary.per_pool[p];
    table.AddRow({
        std::to_string(p),
        TextTable::Percent(stats.mean_utilization, 1),
        TextTable::Percent(stats.p95_utilization, 1),
        TextTable::Fixed(stats.mean_queue_length, 1),
        TextTable::Fixed(stats.max_queue_length, 0),
    });
  }
  out << table.Render() << '\n'
      << "mean max-min utilization spread: "
      << TextTable::Percent(summary.mean_utilization_spread, 1) << '\n'
      << "minutes with a saturated pool (>=95%) while another is barely "
         "utilized (<=30%): "
      << TextTable::Percent(summary.imbalanced_fraction, 1) << '\n'
      << "...of which cluster-wide utilization was under 60%: "
      << TextTable::Percent(summary.imbalanced_while_underloaded_fraction, 1)
      << " (the paper's 'suspension without overload' regime)\n";
  return out.str();
}

}  // namespace netbatch::analysis

#include "analysis/queueing.h"

#include "common/check.h"

namespace netbatch::analysis {

double ErlangsOffered(double lambda, double mu) {
  NETBATCH_CHECK(mu > 0, "service rate must be positive");
  return lambda / mu;
}

double ErlangB(double erlangs, int servers) {
  NETBATCH_CHECK(erlangs >= 0, "offered load cannot be negative");
  NETBATCH_CHECK(servers >= 0, "server count cannot be negative");
  // B(a, 0) = 1; B(a, k) = a*B(a,k-1) / (k + a*B(a,k-1)).
  double b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    b = erlangs * b / (static_cast<double>(k) + erlangs * b);
  }
  return b;
}

double ErlangC(double lambda, double mu, int servers) {
  NETBATCH_CHECK(servers > 0, "need at least one server");
  const double a = ErlangsOffered(lambda, mu);
  const double rho = a / servers;
  NETBATCH_CHECK(rho < 1.0, "Erlang-C requires a stable queue (rho < 1)");
  const double b = ErlangB(a, servers);
  return b / (1.0 - rho * (1.0 - b));
}

double MeanQueueWait(double lambda, double mu, int servers) {
  const double c_over = static_cast<double>(servers) * mu - lambda;
  NETBATCH_CHECK(c_over > 0, "unstable queue has unbounded wait");
  return ErlangC(lambda, mu, servers) / c_over;
}

double MeanJobsInSystem(double lambda, double mu, int servers) {
  return lambda * (MeanQueueWait(lambda, mu, servers) + 1.0 / mu);
}

double ServerUtilization(double lambda, double mu, int servers) {
  NETBATCH_CHECK(servers > 0, "need at least one server");
  return lambda / (static_cast<double>(servers) * mu);
}

}  // namespace netbatch::analysis

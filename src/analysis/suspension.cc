#include "analysis/suspension.h"

#include <cmath>
#include <sstream>

#include "common/table.h"

namespace netbatch::analysis {

SuspensionSummary SummarizeSuspension(const EmpiricalCdf& cdf) {
  SuspensionSummary summary;
  summary.suspended_jobs = cdf.count();
  if (cdf.count() == 0) return summary;
  summary.median_minutes = cdf.Median();
  summary.mean_minutes = cdf.Mean();
  summary.p90_minutes = cdf.Quantile(0.9);
  summary.fraction_above_1100 = cdf.FractionAbove(1100.0);
  summary.max_minutes = cdf.Quantile(1.0);
  return summary;
}

std::vector<CdfPoint> SuspensionCdfCurve(const EmpiricalCdf& cdf, double lo,
                                         double hi, int points_per_decade) {
  std::vector<CdfPoint> curve;
  if (cdf.count() == 0 || lo <= 0 || hi <= lo || points_per_decade <= 0) {
    return curve;
  }
  const double step = std::log(10.0) / points_per_decade;
  for (double log_x = std::log(lo); log_x <= std::log(hi) + 1e-12;
       log_x += step) {
    const double x = std::exp(log_x);
    curve.push_back({x, cdf.At(x)});
  }
  return curve;
}

std::string RenderSuspensionCdf(const EmpiricalCdf& cdf) {
  std::ostringstream out;
  const SuspensionSummary summary = SummarizeSuspension(cdf);
  out << "Suspended jobs: " << summary.suspended_jobs << "\n"
      << "Median suspension:  " << TextTable::Fixed(summary.median_minutes, 1)
      << " min (paper: 437 min)\n"
      << "Mean suspension:    " << TextTable::Fixed(summary.mean_minutes, 1)
      << " min (paper: 905 min)\n"
      << "Fraction > 1100min: "
      << TextTable::Percent(summary.fraction_above_1100, 1)
      << " (paper: ~20%)\n"
      << "Max suspension:     " << TextTable::Fixed(summary.max_minutes, 0)
      << " min\n\n";

  TextTable table({"Suspension time (min)", "CDF (%)"});
  for (const CdfPoint& point :
       SuspensionCdfCurve(cdf, 10.0, 1e6, 2)) {
    table.AddRow({TextTable::Fixed(point.minutes, 0),
                  TextTable::Fixed(point.cdf * 100.0, 1)});
  }
  out << table.Render();
  return out.str();
}

}  // namespace netbatch::analysis

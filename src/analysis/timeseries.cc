#include "analysis/timeseries.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/histogram.h"
#include "common/table.h"

namespace netbatch::analysis {

std::vector<BucketPoint> AggregateSamples(
    std::span<const metrics::Sample> samples, Ticks bucket_width) {
  NETBATCH_CHECK(bucket_width > 0, "bucket width must be positive");
  std::vector<BucketPoint> points;
  if (samples.empty()) return points;

  Ticks bucket_start = samples.front().time - samples.front().time % bucket_width;
  double util_sum = 0, suspended_sum = 0, waiting_sum = 0;
  std::size_t count = 0;

  auto flush = [&] {
    if (count == 0) return;
    BucketPoint point;
    point.bucket_start = bucket_start;
    point.mean_utilization = util_sum / static_cast<double>(count);
    point.mean_suspended_jobs = suspended_sum / static_cast<double>(count);
    point.mean_waiting_jobs = waiting_sum / static_cast<double>(count);
    points.push_back(point);
    util_sum = suspended_sum = waiting_sum = 0;
    count = 0;
  };

  for (const metrics::Sample& sample : samples) {
    const Ticks start = sample.time - sample.time % bucket_width;
    if (start != bucket_start) {
      flush();
      bucket_start = start;
    }
    util_sum += sample.utilization;
    suspended_sum += static_cast<double>(sample.suspended_jobs);
    waiting_sum += static_cast<double>(sample.waiting_jobs);
    ++count;
  }
  flush();
  return points;
}

UtilizationSummary SummarizeUtilization(
    std::span<const metrics::Sample> samples) {
  UtilizationSummary summary;
  if (samples.empty()) return summary;
  EmpiricalCdf cdf;
  cdf.Reserve(samples.size());
  double sum = 0;
  double max_suspended = 0;
  for (const metrics::Sample& sample : samples) {
    cdf.Add(sample.utilization);
    sum += sample.utilization;
    max_suspended =
        std::max(max_suspended, static_cast<double>(sample.suspended_jobs));
  }
  summary.mean = sum / static_cast<double>(samples.size());
  summary.p10 = cdf.Quantile(0.1);
  summary.p90 = cdf.Quantile(0.9);
  summary.max_suspended_jobs = max_suspended;
  return summary;
}

std::string RenderTimeSeriesCsv(std::span<const BucketPoint> points) {
  std::ostringstream out;
  out << "bucket_start_min,utilization_pct,suspended_jobs,waiting_jobs\n";
  for (const BucketPoint& point : points) {
    out << TicksToMinutes(point.bucket_start) << ','
        << TextTable::Fixed(point.mean_utilization * 100.0, 2) << ','
        << TextTable::Fixed(point.mean_suspended_jobs, 1) << ','
        << TextTable::Fixed(point.mean_waiting_jobs, 1) << '\n';
  }
  return out.str();
}

}  // namespace netbatch::analysis

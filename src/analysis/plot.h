// Gnuplot export for the paper's figures.
//
// The figure benches print text tables by default; when pointed at a
// directory they additionally emit a .dat data file plus a ready-to-run
// .gp gnuplot script so `gnuplot fig2.gp` reproduces the paper's plot
// (log-scaled suspension-time CDF for Fig. 2; dual-axis utilization /
// suspension series for Fig. 4).
#pragma once

#include <string>
#include <vector>

#include "analysis/suspension.h"
#include "analysis/timeseries.h"

namespace netbatch::analysis {

// Writes `<dir>/fig2_suspension_cdf.dat` and `.gp`. Returns the script
// path. The CDF curve uses the paper's log-scaled x axis (minutes).
std::string WriteSuspensionCdfPlot(const std::string& dir,
                                   const EmpiricalCdf& cdf);

// Writes `<dir>/fig4_year_timeseries.dat` and `.gp` (utilization % on the
// right axis, suspended jobs on the left, as in the paper's Figure 4).
std::string WriteYearTimeseriesPlot(const std::string& dir,
                                    std::span<const BucketPoint> points);

}  // namespace netbatch::analysis

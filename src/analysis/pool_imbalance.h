// Pool imbalance analysis (paper §2.3).
//
// The paper's central observation motivating rescheduling: "suspension may
// arise in cases even when the system is not overloaded (at 40-60%
// utilization) ... those pools are quickly overwhelmed and lots of low
// priority jobs are suspended. However, during the same time period, other
// pools may be barely utilized." These helpers quantify exactly that from
// per-pool samples.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace netbatch::analysis {

struct PoolStats {
  double mean_utilization = 0;
  double p95_utilization = 0;
  double mean_queue_length = 0;
  double max_queue_length = 0;
};

struct ImbalanceSummary {
  std::vector<PoolStats> per_pool;
  // Fraction of samples where at least one pool is saturated (>= 95%
  // utilization) while at least one other sits below 30% — the paper's
  // "overwhelmed while others are barely utilized" condition.
  double imbalanced_fraction = 0;
  // Fraction of samples satisfying the above *and* cluster-wide utilization
  // below 60% — suspension without overload (§2.3's sharper claim).
  double imbalanced_while_underloaded_fraction = 0;
  // Mean over samples of (max - min) pool utilization.
  double mean_utilization_spread = 0;
};

// `pool_utilization[p][i]` is pool p's utilization at sample i (all pools
// must have the same sample count); `cluster_utilization[i]` is the
// cluster-wide value at sample i.
ImbalanceSummary AnalyzePoolImbalance(
    std::span<const std::vector<float>> pool_utilization,
    std::span<const std::vector<std::uint32_t>> pool_queue_lengths,
    std::span<const double> cluster_utilization);

// Text table of per-pool stats plus the summary lines.
std::string RenderPoolImbalance(const ImbalanceSummary& summary);

}  // namespace netbatch::analysis

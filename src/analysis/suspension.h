// Suspension-time distribution analysis (paper Fig. 2 and §2.2).
//
// The paper reports, over a year of traces: median suspension 437 minutes,
// mean 905 minutes, 20% of suspended jobs above 1100 minutes, and a long
// tail beyond 100k minutes. These helpers compute the same summary and the
// CDF curve (on the paper's log-scaled x axis) from an EmpiricalCdf of
// per-job suspension minutes.
#pragma once

#include <string>
#include <vector>

#include "common/histogram.h"

namespace netbatch::analysis {

struct SuspensionSummary {
  std::size_t suspended_jobs = 0;
  double median_minutes = 0;
  double mean_minutes = 0;
  double p90_minutes = 0;
  // Fraction of suspended jobs suspended longer than 1100 minutes — the
  // paper's "20% of all jobs are suspended for more than 1100 minutes".
  double fraction_above_1100 = 0;
  double max_minutes = 0;
};

SuspensionSummary SummarizeSuspension(const EmpiricalCdf& cdf);

// One point of the Fig. 2 curve: suspension time (minutes, log-spaced from
// `lo` to `hi`) against cumulative fraction of suspended jobs.
struct CdfPoint {
  double minutes;
  double cdf;  // in [0, 1]
};
std::vector<CdfPoint> SuspensionCdfCurve(const EmpiricalCdf& cdf, double lo,
                                         double hi, int points_per_decade);

// Text rendering of curve + summary for the Fig. 2 bench binary.
std::string RenderSuspensionCdf(const EmpiricalCdf& cdf);

}  // namespace netbatch::analysis

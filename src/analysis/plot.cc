#include "analysis/plot.h"

#include <fstream>

#include "common/check.h"

namespace netbatch::analysis {
namespace {

std::ofstream OpenOrDie(const std::string& path) {
  std::ofstream out(path);
  NETBATCH_CHECK(static_cast<bool>(out), "cannot open plot file: " + path);
  return out;
}

}  // namespace

std::string WriteSuspensionCdfPlot(const std::string& dir,
                                   const EmpiricalCdf& cdf) {
  const std::string dat = dir + "/fig2_suspension_cdf.dat";
  const std::string gp = dir + "/fig2_suspension_cdf.gp";
  {
    std::ofstream out = OpenOrDie(dat);
    out << "# suspension_minutes cdf_percent\n";
    for (const CdfPoint& point : SuspensionCdfCurve(cdf, 10.0, 1e6, 8)) {
      out << point.minutes << ' ' << point.cdf * 100.0 << '\n';
    }
  }
  {
    std::ofstream out = OpenOrDie(gp);
    out << "# Reproduces paper Figure 2: CDF of job suspension time.\n"
           "set terminal pngcairo size 800,600\n"
           "set output 'fig2_suspension_cdf.png'\n"
           "set logscale x\n"
           "set xrange [10:1000000]\n"
           "set yrange [0:100]\n"
           "set xlabel 'Suspension Time (minutes)'\n"
           "set ylabel 'CDF (%)'\n"
           "set grid\n"
           "plot 'fig2_suspension_cdf.dat' using 1:2 with lines lw 2 "
           "title 'suspension time CDF'\n";
  }
  return gp;
}

std::string WriteYearTimeseriesPlot(const std::string& dir,
                                    std::span<const BucketPoint> points) {
  const std::string dat = dir + "/fig4_year_timeseries.dat";
  const std::string gp = dir + "/fig4_year_timeseries.gp";
  {
    std::ofstream out = OpenOrDie(dat);
    out << "# minute utilization_percent suspended_jobs\n";
    for (const BucketPoint& point : points) {
      out << TicksToMinutes(point.bucket_start) << ' '
          << point.mean_utilization * 100.0 << ' '
          << point.mean_suspended_jobs << '\n';
    }
  }
  {
    std::ofstream out = OpenOrDie(gp);
    out << "# Reproduces paper Figure 4: suspension and utilization over a "
           "year.\n"
           "set terminal pngcairo size 1200,500\n"
           "set output 'fig4_year_timeseries.png'\n"
           "set xlabel 'time (minutes)'\n"
           "set ylabel '# of suspended jobs'\n"
           "set y2label 'Utilization (%)'\n"
           "set y2range [0:120]\n"
           "set y2tics\n"
           "set grid\n"
           "plot 'fig4_year_timeseries.dat' using 1:3 with lines "
           "title 'suspended jobs' axes x1y1, \\\n"
           "     'fig4_year_timeseries.dat' using 1:2 with dots "
           "title 'utilization' axes x1y2\n";
  }
  return gp;
}

}  // namespace netbatch::analysis

#include "metrics/report_json.h"

#include <cmath>
#include <sstream>

namespace netbatch::metrics {
namespace {

// Minimal JSON string escaping (labels are policy/scenario names, but a
// user-supplied label must not corrupt the document).
void AppendEscaped(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void AppendNumber(std::ostringstream& out, double value) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out << buf;
}

}  // namespace

std::string ReportToJson(const MetricsReport& report) {
  std::ostringstream out;
  out << "{\"label\":";
  AppendEscaped(out, report.label);
  out << ",\"job_count\":" << report.job_count
      << ",\"completed_count\":" << report.completed_count
      << ",\"rejected_count\":" << report.rejected_count
      << ",\"suspended_job_count\":" << report.suspended_job_count
      << ",\"high_priority_count\":" << report.high_priority_count
      << ",\"preemption_count\":" << report.preemption_count
      << ",\"reschedule_count\":" << report.reschedule_count
      << ",\"duplicate_count\":" << report.duplicate_count
      << ",\"outage_count\":" << report.outage_count
      << ",\"eviction_count\":" << report.eviction_count;
  const std::pair<const char*, double> fields[] = {
      {"suspend_rate", report.suspend_rate},
      {"avg_ct_all_minutes", report.avg_ct_all_minutes},
      {"avg_ct_suspended_minutes", report.avg_ct_suspended_minutes},
      {"avg_ct_high_minutes", report.avg_ct_high_minutes},
      {"avg_ct_low_minutes", report.avg_ct_low_minutes},
      {"avg_st_minutes", report.avg_st_minutes},
      {"avg_wait_minutes", report.avg_wait_minutes},
      {"avg_suspend_minutes", report.avg_suspend_minutes},
      {"avg_resched_waste_minutes", report.avg_resched_waste_minutes},
      {"avg_wct_minutes", report.avg_wct_minutes},
      {"p50_ct_minutes", report.p50_ct_minutes},
      {"p90_ct_minutes", report.p90_ct_minutes},
      {"p99_ct_minutes", report.p99_ct_minutes},
      {"max_ct_minutes", report.max_ct_minutes},
      {"median_st_minutes", report.median_st_minutes},
  };
  for (const auto& [key, value] : fields) {
    out << ",\"" << key << "\":";
    AppendNumber(out, value);
  }
  out << '}';
  return out.str();
}

std::string ReportsToJson(const std::vector<MetricsReport>& reports) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out << ',';
    out << ReportToJson(reports[i]);
  }
  out << ']';
  return out.str();
}

}  // namespace netbatch::metrics

// Metrics collection over a simulation run.
//
// MetricsCollector observes the simulation the way ASCA's per-minute state
// logs do (§3.1): it records a utilization / suspended-jobs time series
// while the run progresses, and computes the paper's job-level aggregate
// metrics from the job table when the run finishes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/interfaces.h"
#include "cluster/simulation.h"
#include "common/histogram.h"
#include "metrics/report.h"

namespace netbatch::cluster {
class ShardedSimulation;
}

namespace netbatch::metrics {

// One sampled point of system state (per simulated minute by default).
struct Sample {
  Ticks time = 0;
  double utilization = 0;        // cluster-wide, [0, 1]
  std::int64_t suspended_jobs = 0;
  std::int64_t waiting_jobs = 0;
};

class MetricsCollector final : public cluster::SimulationObserver {
 public:
  void OnSample(Ticks now, const cluster::ClusterView& view) override;

  const std::vector<Sample>& samples() const { return samples_; }

  // Opt-in per-pool sampling (utilization and queue length per pool per
  // sample) for the pool-imbalance analysis of paper §2.3. Call before the
  // run starts.
  void EnablePerPoolSamples() { per_pool_enabled_ = true; }
  // pool_utilization()[p][i]: pool p's utilization at sample i.
  const std::vector<std::vector<float>>& pool_utilization() const {
    return pool_utilization_;
  }
  const std::vector<std::vector<std::uint32_t>>& pool_queue_lengths() const {
    return pool_queue_lengths_;
  }

  // Distribution of per-job *total* suspension time, over jobs suspended at
  // least once (Fig. 2's CDF), in minutes. Valid after the run.
  const EmpiricalCdf& SuspensionTimeCdf() const { return suspension_cdf_; }

  // Distribution of per-job total wait time over all jobs, in minutes —
  // quantifies the paper's §2 "high wait time of jobs" observation.
  const EmpiricalCdf& WaitTimeCdf() const { return wait_cdf_; }

  // Aggregates the paper's metrics from a finished simulation.
  // Also (re)builds the suspension-time CDF.
  MetricsReport BuildReport(const cluster::NetBatchSimulation& simulation,
                            std::string label);

  // Sharded-engine overload: walks every domain's job table (domain order,
  // then slot order — independent of the shard count), skipping the stale
  // reclaimed slots that jobs handed off to another domain leave behind.
  MetricsReport BuildReport(const cluster::ShardedSimulation& simulation,
                            std::string label);

 private:
  std::vector<Sample> samples_;
  EmpiricalCdf suspension_cdf_;
  EmpiricalCdf wait_cdf_;
  bool per_pool_enabled_ = false;
  std::vector<std::vector<float>> pool_utilization_;
  std::vector<std::vector<std::uint32_t>> pool_queue_lengths_;
};

}  // namespace netbatch::metrics

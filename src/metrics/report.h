// The paper's evaluation metrics (§3.1), aggregated over one simulation run.
//
// All time-valued metrics are reported in minutes, matching the paper:
//   Suspend Rate - fraction of submitted jobs suspended at least once
//   AvgCT        - mean completion time, over all jobs and over jobs that
//                  were suspended at least once
//   AvgST        - mean total suspension time over suspended jobs
//   AvgWCT       - mean wasted completion time over all jobs, split into
//                  (c1) wait, (c2) suspend, (c3) waste by rescheduling
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace netbatch::metrics {

struct MetricsReport {
  std::string label;  // policy / scenario name for table rendering

  // Jobs the cluster accepted (excludes rejected jobs and duplicate shadow
  // copies) — the denominator of suspend_rate and of every per-job average.
  std::size_t job_count = 0;
  std::size_t completed_count = 0;
  std::size_t rejected_count = 0;
  std::size_t suspended_job_count = 0;  // jobs suspended at least once
  std::uint64_t preemption_count = 0;   // suspension events
  std::uint64_t reschedule_count = 0;   // restart operations
  std::uint64_t duplicate_count = 0;    // duplication-extension copies
  std::uint64_t outage_count = 0;       // machine failures (injection)
  std::uint64_t eviction_count = 0;     // jobs evicted by failures

  double suspend_rate = 0;  // suspended_job_count / job_count

  double avg_ct_all_minutes = 0;
  double avg_ct_suspended_minutes = 0;
  double avg_st_minutes = 0;  // over suspended jobs

  // Wasted-completion-time components, averaged over all jobs (Fig. 3).
  double avg_wait_minutes = 0;            // (c1)
  double avg_suspend_minutes = 0;         // (c2), over ALL jobs
  double avg_resched_waste_minutes = 0;   // (c3): lost progress + transfer
  double avg_wct_minutes = 0;             // c1 + c2 + c3

  // Completion-time distribution over all jobs (minutes).
  double p50_ct_minutes = 0;
  double p90_ct_minutes = 0;
  double p99_ct_minutes = 0;
  double max_ct_minutes = 0;
  double median_st_minutes = 0;  // over suspended jobs (Fig. 2 headline)

  // Per-priority-class breakdown: the paper's premise is that owner
  // (high-priority) jobs stay latency-sensitive-fast regardless of what
  // rescheduling does for the low-priority population.
  double avg_ct_high_minutes = 0;
  double avg_ct_low_minutes = 0;
  std::size_t high_priority_count = 0;
};

// Renders reports in the layout of the paper's Tables 1-5:
// rows = policies, columns = Suspend rate | AvgCT Suspend | AvgCT All |
// AvgST | AvgWCT.
std::string RenderPaperTable(const std::vector<MetricsReport>& rows);

// Renders the Fig. 3 decomposition: one row per policy with the three
// wasted-completion-time components.
std::string RenderWasteComponents(const std::vector<MetricsReport>& rows);

// Renders the completion-time distribution and priority-class breakdown —
// detail beyond the paper's mean-based tables.
std::string RenderDetailTable(const std::vector<MetricsReport>& rows);

}  // namespace netbatch::metrics

// Per-job lifecycle event logging.
//
// ASCA "outputs the results as logs for post-analysis" (§3.1); this
// observer reconstructs that: every job transition the engine reports is
// recorded as a timestamped event, exportable as CSV for external tooling
// (Gantt charts, custom analyses) and checkable for state-machine legality
// (the event-sequence property tests).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/interfaces.h"

namespace netbatch::metrics {

enum class EventKind {
  kSuspended,
  kRescheduled,
  kCompleted,
  kRejected,
};

const char* ToString(EventKind kind);

struct JobEvent {
  Ticks time = 0;
  JobId job;
  EventKind kind = EventKind::kCompleted;
  PoolId pool;        // pool the job is (or was) in
  PoolId target_pool; // valid for kRescheduled
};

class EventLog final : public cluster::SimulationObserver {
 public:
  void OnJobSuspended(const cluster::Job& job) override;
  void OnJobRescheduled(const cluster::Job& job, PoolId from, PoolId to,
                        cluster::RescheduleReason reason) override;
  void OnJobCompleted(const cluster::Job& job) override;
  void OnJobRejected(const cluster::Job& job) override;

  const std::vector<JobEvent>& events() const { return events_; }

  // CSV export: minute,job,kind,pool,target_pool.
  void WriteCsv(std::ostream& out) const;

  // Events of one job, in time order (events are appended in simulation
  // order, so this is a stable filter).
  std::vector<JobEvent> EventsFor(JobId job) const;

 private:
  void Append(Ticks time, const cluster::Job& job, EventKind kind,
              PoolId target = PoolId());

  std::vector<JobEvent> events_;
};

}  // namespace netbatch::metrics

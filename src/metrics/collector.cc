#include "metrics/collector.h"

#include <algorithm>

#include "cluster/sharded_simulation.h"
#include "common/stats.h"

namespace netbatch::metrics {

namespace {

// The per-job metric accumulation shared by both BuildReport overloads, so
// a sharded run aggregates jobs with exactly the single-engine arithmetic.
struct JobAggregates {
  StreamingStats ct_all, ct_suspended, st_suspended;
  StreamingStats wait_all, suspend_all, waste_all, wct_all;
  StreamingStats ct_high, ct_low;
  EmpiricalCdf ct_cdf;

  void Add(const cluster::Job& job, MetricsReport& report,
           EmpiricalCdf& suspension_cdf, EmpiricalCdf& wait_cdf) {
    ++report.job_count;

    const double ct =
        TicksToMinutes(job.completion_time() - job.submit_time());
    const double wait = TicksToMinutes(job.wait_ticks());
    const double suspend = TicksToMinutes(job.suspend_ticks());
    // (c3): execution progress thrown away by restarts, transfer time the
    // restart itself cost, and any killed duplicate's discarded execution.
    const double waste =
        TicksToMinutes(job.resched_waste_ticks() + job.transit_ticks() +
                       job.extra_waste_ticks());

    ct_all.Add(ct);
    ct_cdf.Add(ct);
    wait_cdf.Add(wait);
    wait_all.Add(wait);
    suspend_all.Add(suspend);
    waste_all.Add(waste);
    wct_all.Add(wait + suspend + waste);
    if (job.priority() > workload::kLowPriority) {
      ++report.high_priority_count;
      ct_high.Add(ct);
    } else {
      ct_low.Add(ct);
    }

    if (job.ever_suspended()) {
      ++report.suspended_job_count;
      ct_suspended.Add(ct);
      st_suspended.Add(suspend);
      suspension_cdf.Add(suspend);
    }
  }

  void Finalize(MetricsReport& report, const EmpiricalCdf& suspension_cdf) {
    report.suspend_rate =
        report.job_count == 0
            ? 0.0
            : static_cast<double>(report.suspended_job_count) /
                  static_cast<double>(report.job_count);
    report.avg_ct_all_minutes = ct_all.mean();
    report.avg_ct_suspended_minutes = ct_suspended.mean();
    report.avg_st_minutes = st_suspended.mean();
    report.avg_wait_minutes = wait_all.mean();
    report.avg_suspend_minutes = suspend_all.mean();
    report.avg_resched_waste_minutes = waste_all.mean();
    report.avg_wct_minutes = wct_all.mean();
    report.max_ct_minutes = ct_all.max();
    if (ct_cdf.count() > 0) {
      report.p50_ct_minutes = ct_cdf.Quantile(0.5);
      report.p90_ct_minutes = ct_cdf.Quantile(0.9);
      report.p99_ct_minutes = ct_cdf.Quantile(0.99);
    }
    report.median_st_minutes =
        suspension_cdf.count() > 0 ? suspension_cdf.Median() : 0.0;
    report.avg_ct_high_minutes = ct_high.mean();
    report.avg_ct_low_minutes = ct_low.mean();
  }
};

}  // namespace

void MetricsCollector::OnSample(Ticks now, const cluster::ClusterView& view) {
  Sample sample;
  sample.time = now;
  sample.utilization = view.ClusterUtilization();
  sample.suspended_jobs = static_cast<std::int64_t>(view.SuspendedJobCount());
  std::int64_t waiting = 0;
  for (std::size_t p = 0; p < view.PoolCount(); ++p) {
    waiting += static_cast<std::int64_t>(
        view.PoolQueueLength(PoolId(static_cast<PoolId::ValueType>(p))));
  }
  sample.waiting_jobs = waiting;
  samples_.push_back(sample);

  if (per_pool_enabled_) {
    if (pool_utilization_.empty()) {
      pool_utilization_.resize(view.PoolCount());
      pool_queue_lengths_.resize(view.PoolCount());
    }
    for (std::size_t p = 0; p < view.PoolCount(); ++p) {
      const PoolId pool(static_cast<PoolId::ValueType>(p));
      pool_utilization_[p].push_back(
          static_cast<float>(view.PoolUtilization(pool)));
      pool_queue_lengths_[p].push_back(
          static_cast<std::uint32_t>(view.PoolQueueLength(pool)));
    }
  }
}

MetricsReport MetricsCollector::BuildReport(
    const cluster::NetBatchSimulation& simulation, std::string label) {
  MetricsReport report;
  report.label = std::move(label);
  report.preemption_count = simulation.preemption_count();
  report.reschedule_count = simulation.reschedule_count();
  report.duplicate_count = simulation.duplicate_count();
  report.outage_count = simulation.outage_count();
  report.eviction_count = simulation.eviction_count();
  report.completed_count = simulation.completed_count();
  report.rejected_count = simulation.rejected_count();

  JobAggregates agg;
  suspension_cdf_ = EmpiricalCdf{};
  wait_cdf_ = EmpiricalCdf{};

  for (const cluster::Job& job : simulation.jobs()) {
    // Duplicates are shadow copies: their outcome is already credited to
    // their original (completion time, extra waste), so they are not jobs.
    if (job.is_duplicate()) continue;
    // Rejected jobs never entered the system: they are tracked only in
    // rejected_count, and counting them in job_count would deflate
    // suspend_rate (its denominator) whenever rejections occur.
    if (job.state() == cluster::JobState::kRejected) continue;
    agg.Add(job, report, suspension_cdf_, wait_cdf_);
  }

  agg.Finalize(report, suspension_cdf_);
  return report;
}

MetricsReport MetricsCollector::BuildReport(
    const cluster::ShardedSimulation& simulation, std::string label) {
  MetricsReport report;
  report.label = std::move(label);
  report.preemption_count = simulation.preemption_count();
  report.reschedule_count = simulation.reschedule_count();
  report.duplicate_count = 0;  // duplication is rejected at construction
  report.outage_count = simulation.outage_count();
  report.eviction_count = simulation.eviction_count();
  report.completed_count = simulation.completed_count();
  report.rejected_count = simulation.rejected_count();

  JobAggregates agg;
  suspension_cdf_ = EmpiricalCdf{};
  wait_cdf_ = EmpiricalCdf{};

  for (std::size_t d = 0; d < simulation.DomainCount(); ++d) {
    const cluster::JobTable& jobs = simulation.domain_jobs(d);
    for (const cluster::Job& job : jobs) {
      // A job handed off to another domain leaves its erased slot parked
      // here with stale columns: its id either no longer resolves in this
      // table or resolves to a different (recycled) slot. Every live job is
      // walked exactly once, in the domain that currently owns it.
      if (jobs.reclaim_enabled() &&
          (!jobs.Contains(job.id()) || jobs.at(job.id()).slot() != job.slot())) {
        continue;
      }
      if (job.is_duplicate()) continue;
      if (job.state() == cluster::JobState::kRejected) continue;
      agg.Add(job, report, suspension_cdf_, wait_cdf_);
    }
  }

  agg.Finalize(report, suspension_cdf_);
  return report;
}

}  // namespace netbatch::metrics

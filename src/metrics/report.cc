#include "metrics/report.h"

#include "common/table.h"

namespace netbatch::metrics {

std::string RenderPaperTable(const std::vector<MetricsReport>& rows) {
  TextTable table({"Policy", "Suspend rate", "AvgCT Suspend", "AvgCT All",
                   "AvgST", "AvgWCT"});
  for (const MetricsReport& row : rows) {
    table.AddRow({
        row.label,
        TextTable::Percent(row.suspend_rate, 2),
        TextTable::Fixed(row.avg_ct_suspended_minutes, 1),
        TextTable::Fixed(row.avg_ct_all_minutes, 1),
        TextTable::Fixed(row.avg_st_minutes, 1),
        TextTable::Fixed(row.avg_wct_minutes, 1),
    });
  }
  return table.Render();
}

std::string RenderDetailTable(const std::vector<MetricsReport>& rows) {
  TextTable table({"Policy", "p50 CT", "p90 CT", "p99 CT", "Max CT",
                   "AvgCT high", "AvgCT low"});
  for (const MetricsReport& row : rows) {
    table.AddRow({
        row.label,
        TextTable::Fixed(row.p50_ct_minutes, 1),
        TextTable::Fixed(row.p90_ct_minutes, 1),
        TextTable::Fixed(row.p99_ct_minutes, 1),
        TextTable::Fixed(row.max_ct_minutes, 0),
        TextTable::Fixed(row.avg_ct_high_minutes, 1),
        TextTable::Fixed(row.avg_ct_low_minutes, 1),
    });
  }
  return table.Render();
}

std::string RenderWasteComponents(const std::vector<MetricsReport>& rows) {
  TextTable table({"Policy", "Wait", "Suspend", "Resched waste", "AvgWCT"});
  for (const MetricsReport& row : rows) {
    table.AddRow({
        row.label,
        TextTable::Fixed(row.avg_wait_minutes, 1),
        TextTable::Fixed(row.avg_suspend_minutes, 1),
        TextTable::Fixed(row.avg_resched_waste_minutes, 1),
        TextTable::Fixed(row.avg_wct_minutes, 1),
    });
  }
  return table.Render();
}

}  // namespace netbatch::metrics

// Machine-readable report output.
//
// Emits a MetricsReport (or a list of them) as JSON so experiment results
// can be archived, diffed in CI, or plotted by external tooling without
// parsing the human-oriented tables.
#pragma once

#include <string>
#include <vector>

#include "metrics/report.h"

namespace netbatch::metrics {

// One report as a JSON object (stable key order, no trailing whitespace).
std::string ReportToJson(const MetricsReport& report);

// Several reports as a JSON array.
std::string ReportsToJson(const std::vector<MetricsReport>& reports);

}  // namespace netbatch::metrics
